//! Social-network analytics with recursive queries.
//!
//! Uses an Erdős–Rényi "follows" graph and the non-regular μ-RA terms of
//! the paper: reachability (influence spread) and same-generation
//! (accounts at equal depth below a common influencer).
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use dist_mu_ra::prelude::*;
use mura_core::eval::{EvalOptions, Evaluator};
use mura_ucrpq::suites::{reach_term, same_generation_term};

fn main() -> Result<()> {
    let graph = erdos_renyi(2_000, 0.0012, 99);
    println!("follows graph: {} users, {} edges", graph.n_nodes, graph.edge_count());
    let mut db = graph.to_database();
    // Rename the generated relation for readability.
    let follows = db.relation_by_name("edge").expect("generator relation").clone();
    db.insert_relation("follows", follows);

    // 1. Influence spread: who is (transitively) reachable from user 0?
    let reach = reach_term(&mut db, "follows", Value::node(0))?;
    let plan = optimize(&reach, &mut db)?;
    let mut ev = Evaluator::new(&db, EvalOptions::default());
    let reached = ev.eval(&plan)?;
    println!(
        "user 0 transitively reaches {} users ({} fixpoint iterations)",
        reached.len(),
        ev.stats().fixpoint_iterations
    );

    // 2. Same generation: pairs of users at the same depth below a common
    //    influencer — a non-regular query (not expressible as a UCRPQ).
    let sg = same_generation_term(&mut db, "follows")?;
    let mut engine = QueryEngine::new(db);
    let out = engine.run_term(&sg)?;
    println!(
        "same-generation pairs: {} (computed distributed: {} shuffles, {} rows moved)",
        out.relation.len(),
        out.comm.shuffles,
        out.comm.rows_shuffled
    );

    // 3. Follower-of-follower chains ending at user 0, via the UCRPQ
    //    frontend this time.
    engine.db_mut().bind_constant("root", Value::node(0));
    let out = engine.run_ucrpq("?fan <- ?fan follows+ root")?;
    println!("users with a follow chain into user 0: {}", out.relation.len());
    Ok(())
}
