//! One query, two pipelines: μ-RA vs Datalog (BigDatalog-style).
//!
//! Shows the generated Datalog program, both logical plans, and why the
//! Datalog engine cannot push a *right-side* filter (the paper's C2
//! asymmetry, §VI).
//!
//! ```sh
//! cargo run --release --example datalog_vs_mura
//! ```

use dist_mu_ra::prelude::*;
use mura_datalog::{ucrpq_to_program, DatalogEngine, DatalogStyle};

fn main() -> Result<()> {
    let graph = mura_datagen::yago_like(mura_datagen::YagoConfig { people: 600, seed: 1 });
    let db = graph.to_database();
    let query = "?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon"; // the paper's Q9 (class C2)

    // Datalog route.
    let parsed = parse_ucrpq(query)?;
    let program = ucrpq_to_program(&parsed, &db)?;
    println!("generated Datalog program:\n{program}\n");

    let mut dl = DatalogEngine::new(db.clone(), DatalogStyle::BigDatalog);
    let dl_out = dl.run_ucrpq(query)?;
    println!(
        "BigDatalog-style: {} rows in {:.1?}\n  plan: {}\n",
        dl_out.relation.len(),
        dl_out.wall(),
        dl_out.plan.display(dl.db().dict())
    );

    // μ-RA route: the rewriter reverses the fixpoint and pushes the
    // 'Kevin_Bacon' filter into the (reversed) seed.
    let mut mura = QueryEngine::new(db);
    let mura_out = mura.run_ucrpq(query)?;
    println!(
        "Dist-μ-RA: {} rows in {:.1?}\n  plan: {}\n",
        mura_out.relation.len(),
        mura_out.wall(),
        mura_out.plan.display(mura.db().dict())
    );

    assert_eq!(dl_out.relation.len(), mura_out.relation.len(), "pipelines must agree");
    let dl_moved = (dl_out.comm.rows_shuffled + dl_out.comm.rows_broadcast).max(1);
    let mura_moved = (mura_out.comm.rows_shuffled + mura_out.comm.rows_broadcast).max(1);
    println!(
        "same answers; μ-RA moved {:.1}x less data ({dl_moved} vs {mura_moved} rows)",
        dl_moved as f64 / mura_moved as f64
    );
    Ok(())
}
