//! Quickstart: load a graph, run a recursive query, inspect the plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dist_mu_ra::prelude::*;

fn main() -> Result<()> {
    // A small flight network: cities connected by two airlines.
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation(
        "alpha",
        Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 6)]),
    );
    db.insert_relation("beta", Relation::from_pairs(src, dst, [(1, 4), (4, 5), (6, 5)]));
    db.bind_constant("Paris", Value::node(0));

    let mut engine = QueryEngine::new(db);

    // Which cities are reachable from Paris using alpha flights only?
    let out = engine.run_ucrpq("?city <- Paris alpha+ ?city")?;
    println!("reachable from Paris via alpha+: {} cities", out.relation.len());
    println!("{}", out.relation);

    // Any number of alpha hops followed by at least one beta hop.
    let out = engine.run_ucrpq("?a, ?b <- ?a alpha+/beta+ ?b")?;
    println!("alpha+/beta+ pairs: {}", out.relation.len());

    // The optimized plan: the rewriter merged the two closures into one
    // fixpoint (the paper's "merging fixpoints" rule).
    println!("\noptimized plan:\n  {}", out.plan.display(engine.db().dict()));
    println!(
        "\nexecution: {} fixpoint iterations, {} rows shuffled, {} rows broadcast",
        out.stats.fixpoint_iterations, out.comm.rows_shuffled, out.comm.rows_broadcast
    );
    Ok(())
}
