//! Knowledge-graph querying: the paper's Yago workload in miniature.
//!
//! Generates a Yago-schema graph and runs queries from each of the six
//! classes C1..C6, showing how classification predicts which rewrites the
//! optimizer applies.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use dist_mu_ra::prelude::*;
use mura_datagen::YagoConfig;

fn main() -> Result<()> {
    let graph = mura_datagen::yago_like(YagoConfig { people: 800, seed: 7 });
    println!(
        "generated Yago-like graph: {} nodes, {} edges, {} predicates",
        graph.n_nodes,
        graph.edge_count(),
        graph.labels.len()
    );
    let mut engine = QueryEngine::new(graph.to_database());

    let queries = [
        ("C1: all located-in pairs", "?a, ?b <- ?a isLocatedIn+ ?b"),
        ("C2: who acted with Kevin Bacon", "?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon"),
        ("C3: trade partners of Japan", "?x <- Japan dealsWith+ ?x"),
        ("C4: regions then one trade hop", "?a, ?b <- ?a isLocatedIn+/dealsWith ?b"),
        ("C5: birthplace hierarchy", "?a, ?b <- ?a wasBornIn/isLocatedIn+ ?b"),
        ("C6: location then trade closure", "?a, ?b <- ?a isLocatedIn+/dealsWith+ ?b"),
    ];
    for (label, q) in queries {
        let classes = classify(&parse_ucrpq(q)?);
        let out = engine.run_ucrpq(q)?;
        println!(
            "\n{label}\n  query   : {q}\n  classes : {:?}\n  answers : {} rows in {:.1?} \
             ({} fixpoint iterations, {} shuffles)",
            classes,
            out.relation.len(),
            out.wall(),
            out.stats.fixpoint_iterations,
            out.comm.shuffles,
        );
    }
    Ok(())
}
