//! The paper's §IV in action: `P_gld` vs `P_plw` and stable columns.
//!
//! Replays the Fig. 2 / Example 2 setting, shows the stabilizer analysis,
//! and contrasts the communication profile of the two distributed fixpoint
//! plans on a larger graph.
//!
//! ```sh
//! cargo run --release --example distributed_plans
//! ```

use dist_mu_ra::prelude::*;
use mura_core::analysis::{stable_columns, TypeEnv};
use mura_core::Term;
use mura_dist::exec::FixpointPlan;

fn main() -> Result<()> {
    // --- Part 1: the paper's Example 2 on the Fig. 2 graph. --------------
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let m = db.intern("m");
    let x = db.intern("X");
    let e = db.insert_relation(
        "E",
        Relation::from_pairs(
            src,
            dst,
            [(1, 2), (1, 4), (10, 11), (10, 13), (2, 3), (4, 5), (11, 5), (13, 12), (3, 6), (5, 6)],
        ),
    );
    let s = db
        .insert_relation("S", Relation::from_pairs(src, dst, [(1, 2), (1, 4), (10, 11), (10, 13)]));
    // μ(X = S ∪ π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(E)))
    let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
    let body = Term::var(s).union(step);
    let fix = body.clone().fix(x);

    let mut env = TypeEnv::from_db(&db);
    let stable = stable_columns(x, &body, &mut env)?;
    println!(
        "Example 2 stabilizer: {:?}  (paper: 'src' is stable, 'dst' is not)",
        stable.iter().map(|c| db.dict().resolve(*c)).collect::<Vec<_>>()
    );

    let mut engine = QueryEngine::new(db);
    let out = engine.run_term(&fix)?;
    println!("fixpoint result ({} pairs):\n{}", out.relation.len(), out.relation);

    // --- Part 2: communication profile of the two plans. ----------------
    let graph = erdos_renyi(1_200, 0.002, 5);
    println!(
        "\ntransitive closure of rnd_1200_0.002 ({} edges) under both plans:",
        graph.edge_count()
    );
    for (name, plan) in [("P_plw (auto)", FixpointPlan::Auto), ("P_gld", FixpointPlan::ForceGld)] {
        let config = ExecConfig { plan, ..Default::default() };
        let mut engine = QueryEngine::with_config(graph.to_database(), config);
        let out = engine.run_ucrpq("?x, ?y <- ?x edge+ ?y")?;
        println!(
            "  {name:<12} {:>8} rows  {:>4} shuffles  {:>9} rows shuffled  {:>9} rows broadcast  {:.1?}",
            out.relation.len(),
            out.comm.shuffles,
            out.comm.rows_shuffled,
            out.comm.rows_broadcast,
            out.wall(),
        );
    }
    println!("\nP_plw repartitions once by the stable column and then iterates locally;");
    println!("P_gld pays at least one shuffle per fixpoint iteration (paper §IV-A).");
    Ok(())
}
