//! Randomized tests of the relational algebra core: classical algebra laws
//! over seeded randomly generated relations (64 cases per law, each case
//! reproducible from its printed seed).

use mura_core::{Relation, Schema, Sym, Value};
use mura_datagen::SplitMix64;

const A: Sym = Sym(0);
const B: Sym = Sym(1);
const C: Sym = Sym(2);
const CASES: u64 = 64;

/// Random binary relation with small-domain values.
fn rel(rng: &mut SplitMix64, x: Sym, y: Sym) -> Relation {
    let len = rng.gen_range(0..25usize);
    let pairs: Vec<(u64, u64)> =
        (0..len).map(|_| (rng.gen_range(0..8u64), rng.gen_range(0..8u64))).collect();
    Relation::from_pairs(x, y, pairs)
}

fn for_each_case(f: impl Fn(&mut SplitMix64, u64)) {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x0a16_eb7a ^ case);
        f(&mut rng, case);
    }
}

#[test]
fn union_is_commutative_and_idempotent() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        let s = rel(rng, A, B);
        assert_eq!(r.union(&s).sorted_rows(), s.union(&r).sorted_rows(), "case {case}");
        assert_eq!(r.union(&r).sorted_rows(), r.sorted_rows(), "case {case}");
    });
}

#[test]
fn join_is_commutative_up_to_schema() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        let s = rel(rng, B, C);
        let rs = r.join(&s);
        let sr = s.join(&r);
        assert_eq!(rs.schema(), sr.schema(), "case {case}");
        assert_eq!(rs.sorted_rows(), sr.sorted_rows(), "case {case}");
    });
}

#[test]
fn join_with_self_is_identity() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        assert_eq!(r.join(&r).sorted_rows(), r.sorted_rows(), "case {case}");
    });
}

#[test]
fn minus_and_union_partition() {
    for_each_case(|rng, case| {
        // (r \ s) ∪ (r ⋂ s) == r, and (r \ s) ⋂ s == ∅.
        let r = rel(rng, A, B);
        let s = rel(rng, A, B);
        let diff = r.minus(&s);
        let inter = r.join(&s); // same schema: intersection
        assert_eq!(diff.union(&inter).sorted_rows(), r.sorted_rows(), "case {case}");
        for row in diff.iter() {
            assert!(!s.contains(row), "case {case}");
        }
    });
}

#[test]
fn antijoin_is_minus_of_matching() {
    for_each_case(|rng, case| {
        // r ▷ s keeps exactly rows whose B value has no match in s.
        let r = rel(rng, A, B);
        let s = rel(rng, B, C);
        let aj = r.antijoin(&s);
        let b_pos = r.schema().position(B).unwrap();
        let s_b = s.schema().position(B).unwrap();
        let s_keys: std::collections::HashSet<Value> = s.iter().map(|row| row[s_b]).collect();
        for row in r.iter() {
            let keep = !s_keys.contains(&row[b_pos]);
            assert_eq!(aj.contains(row), keep, "case {case}");
        }
        assert!(aj.len() <= r.len(), "case {case}");
    });
}

#[test]
fn rename_round_trips() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        let rn = r.rename(A, C).rename(C, A);
        assert_eq!(rn.sorted_rows(), r.sorted_rows(), "case {case}");
    });
}

#[test]
fn antiproject_shrinks_schema_not_rows_beyond() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        let p = r.antiproject(&[B]);
        assert_eq!(p.schema(), &Schema::new(vec![A]), "case {case}");
        assert!(p.len() <= r.len(), "case {case}");
        // Every projected value came from some row.
        let a_pos = r.schema().position(A).unwrap();
        for row in p.iter() {
            assert!(r.iter().any(|orig| orig[a_pos] == row[0]), "case {case}");
        }
    });
}

#[test]
fn filter_is_monotone_and_exact() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        let target = Value::node(rng.gen_range(0..8u64));
        let a_pos = r.schema().position(A).unwrap();
        let f = r.filter(|row| row[a_pos] == target);
        assert!(f.len() <= r.len(), "case {case}");
        for row in r.iter() {
            assert_eq!(f.contains(row), row[a_pos] == target, "case {case}");
        }
    });
}

#[test]
fn join_distributes_over_union() {
    for_each_case(|rng, case| {
        let r = rel(rng, A, B);
        let s = rel(rng, B, C);
        let t = rel(rng, B, C);
        let left = r.join(&s.union(&t));
        let right = r.join(&s).union(&r.join(&t));
        assert_eq!(left.sorted_rows(), right.sorted_rows(), "case {case}");
    });
}

#[test]
fn sorted_engine_matches_hash_engine() {
    for_each_case(|rng, case| {
        use mura_dist::sorted::SortedRelation;
        let r = rel(rng, A, B);
        let s = rel(rng, B, C);
        let sr = SortedRelation::from_relation(&r);
        let ss = SortedRelation::from_relation(&s);
        assert_eq!(
            sr.join(&ss).to_relation().sorted_rows(),
            r.join(&s).sorted_rows(),
            "case {case}"
        );
        assert_eq!(
            sr.antijoin(&ss).to_relation().sorted_rows(),
            r.antijoin(&s).sorted_rows(),
            "case {case}"
        );
        let r2 = SortedRelation::from_relation(&r.rename(A, C).rename(C, A));
        assert_eq!(
            sr.union(&r2).to_relation().sorted_rows(),
            r.union(&r).sorted_rows(),
            "case {case}"
        );
    });
}
