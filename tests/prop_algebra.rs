//! Property-based tests of the relational algebra core: classical algebra
//! laws over randomly generated relations.

use mura_core::{Relation, Schema, Sym, Value};
use proptest::prelude::*;

const A: Sym = Sym(0);
const B: Sym = Sym(1);
const C: Sym = Sym(2);

/// Strategy: a binary relation over (A, B) with small-domain values.
fn rel_ab() -> impl Strategy<Value = Relation> {
    prop::collection::vec((0u64..8, 0u64..8), 0..25)
        .prop_map(|pairs| Relation::from_pairs(A, B, pairs))
}

/// Strategy: a binary relation over (B, C).
fn rel_bc() -> impl Strategy<Value = Relation> {
    prop::collection::vec((0u64..8, 0u64..8), 0..25)
        .prop_map(|pairs| Relation::from_pairs(B, C, pairs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_is_commutative_and_idempotent(r in rel_ab(), s in rel_ab()) {
        prop_assert_eq!(r.union(&s).sorted_rows(), s.union(&r).sorted_rows());
        prop_assert_eq!(r.union(&r).sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn join_is_commutative_up_to_schema(r in rel_ab(), s in rel_bc()) {
        let rs = r.join(&s);
        let sr = s.join(&r);
        prop_assert_eq!(rs.schema(), sr.schema());
        prop_assert_eq!(rs.sorted_rows(), sr.sorted_rows());
    }

    #[test]
    fn join_with_self_is_identity(r in rel_ab()) {
        prop_assert_eq!(r.join(&r).sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn minus_and_union_partition(r in rel_ab(), s in rel_ab()) {
        // (r \ s) ∪ (r ⋂ s) == r, and (r \ s) ⋂ s == ∅.
        let diff = r.minus(&s);
        let inter = r.join(&s); // same schema: intersection
        prop_assert_eq!(diff.union(&inter).sorted_rows(), r.sorted_rows());
        prop_assert!(diff.join(&s).is_empty() || !diff.join(&s).iter().any(|row| s.contains(row)) == false);
        for row in diff.iter() {
            prop_assert!(!s.contains(row));
        }
    }

    #[test]
    fn antijoin_is_minus_of_matching(r in rel_ab(), s in rel_bc()) {
        // r ▷ s keeps exactly rows whose B value has no match in s.
        let aj = r.antijoin(&s);
        let b_pos = r.schema().position(B).unwrap();
        let s_b = s.schema().position(B).unwrap();
        let s_keys: std::collections::HashSet<Value> = s.iter().map(|row| row[s_b]).collect();
        for row in r.iter() {
            let keep = !s_keys.contains(&row[b_pos]);
            prop_assert_eq!(aj.contains(row), keep);
        }
        prop_assert!(aj.len() <= r.len());
    }

    #[test]
    fn rename_round_trips(r in rel_ab()) {
        let rn = r.rename(A, C).rename(C, A);
        prop_assert_eq!(rn.sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn antiproject_shrinks_schema_not_rows_beyond(r in rel_ab()) {
        let p = r.antiproject(&[B]);
        prop_assert_eq!(p.schema(), &Schema::new(vec![A]));
        prop_assert!(p.len() <= r.len());
        // Every projected value came from some row.
        let a_pos = r.schema().position(A).unwrap();
        for row in p.iter() {
            prop_assert!(r.iter().any(|orig| orig[a_pos] == row[0]));
        }
    }

    #[test]
    fn filter_is_monotone_and_exact(r in rel_ab(), v in 0u64..8) {
        let target = Value::node(v);
        let a_pos = r.schema().position(A).unwrap();
        let f = r.filter(|row| row[a_pos] == target);
        prop_assert!(f.len() <= r.len());
        for row in r.iter() {
            prop_assert_eq!(f.contains(row), row[a_pos] == target);
        }
    }

    #[test]
    fn join_distributes_over_union(r in rel_ab(), s in rel_bc(), t in rel_bc()) {
        let left = r.join(&s.union(&t));
        let right = r.join(&s).union(&r.join(&t));
        prop_assert_eq!(left.sorted_rows(), right.sorted_rows());
    }

    #[test]
    fn sorted_engine_matches_hash_engine(r in rel_ab(), s in rel_bc()) {
        use mura_dist::sorted::SortedRelation;
        let sr = SortedRelation::from_relation(&r);
        let ss = SortedRelation::from_relation(&s);
        prop_assert_eq!(sr.join(&ss).to_relation().sorted_rows(), r.join(&s).sorted_rows());
        prop_assert_eq!(sr.antijoin(&ss).to_relation().sorted_rows(), r.antijoin(&s).sorted_rows());
        let r2 = SortedRelation::from_relation(&r.rename(A, C).rename(C, A));
        prop_assert_eq!(sr.union(&r2).to_relation().sorted_rows(), r.union(&r).sorted_rows());
    }
}
