//! The paper's running example (Fig. 2 / Example 1–2), end to end.

use dist_mu_ra::prelude::*;
use mura_core::Term;

/// Fig. 2: a root-edge relation S and the full edge relation E.
fn paper_db() -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation(
        "E",
        Relation::from_pairs(
            src,
            dst,
            [(1, 2), (1, 4), (10, 11), (10, 13), (2, 3), (4, 5), (11, 5), (13, 12), (3, 6), (5, 6)],
        ),
    );
    db.insert_relation("S", Relation::from_pairs(src, dst, [(1, 2), (1, 4), (10, 11), (10, 13)]));
    db
}

/// Example 1: paths of length 2 starting from root edges.
#[test]
fn example1_length_two_paths() {
    let mut db = paper_db();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let c = db.intern("c");
    let s = db.dict().lookup("S").unwrap();
    let e = db.dict().lookup("E").unwrap();
    let term = Term::var(s).rename(dst, c).join(Term::var(e).rename(src, c)).antiproject(c);
    let result = mura_core::eval(&term, &db).unwrap();
    let expected = Relation::from_pairs(src, dst, [(1, 3), (1, 5), (10, 5), (10, 12)]);
    assert_eq!(result.sorted_rows(), expected.sorted_rows());
}

/// Example 2: the fixpoint reaches exactly the paper's X₃ after the
/// documented number of steps, on every execution route.
#[test]
fn example2_fixpoint_all_routes() {
    let db = paper_db();
    let src = db.dict().lookup("src").unwrap();
    let dst = db.dict().lookup("dst").unwrap();
    let expected = Relation::from_pairs(
        src,
        dst,
        [(1, 2), (1, 4), (10, 11), (10, 13), (1, 3), (1, 5), (10, 5), (10, 12), (1, 6), (10, 6)],
    );

    // Build μ(X = S ∪ π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(E))).
    let mut db2 = db.clone();
    let m = db2.intern("m");
    let x = db2.intern("X");
    let s = db2.dict().lookup("S").unwrap();
    let e = db2.dict().lookup("E").unwrap();
    let term = Term::var(s)
        .union(Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m))
        .fix(x);

    // Centralized (semi-naive and naive).
    let central = mura_core::eval(&term, &db2).unwrap();
    assert_eq!(central.sorted_rows(), expected.sorted_rows());
    let naive = mura_core::eval::eval_naive_fixpoints(&term, &db2).unwrap();
    assert_eq!(naive.sorted_rows(), expected.sorted_rows());

    // Distributed (all plans and both local engines).
    use mura_dist::exec::FixpointPlan;
    use mura_dist::LocalEngine;
    for plan in [
        FixpointPlan::Auto,
        FixpointPlan::ForceGld,
        FixpointPlan::ForcePlw,
        FixpointPlan::ForceAsync,
    ] {
        for engine in [LocalEngine::SetRdd, LocalEngine::Sorted] {
            let config = ExecConfig { plan, local_engine: engine, ..Default::default() };
            let mut qe = QueryEngine::with_config(db2.clone(), config);
            let out = qe.run_term(&term).unwrap();
            assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "{plan:?}/{engine:?}");
        }
    }
}

/// The stable-column partitioning claim (§IV-A2): splitting S by `src`
/// yields disjoint local fixpoints — worker results never overlap.
#[test]
fn stable_partitioning_gives_disjoint_local_fixpoints() {
    let db = paper_db();
    let src = db.dict().lookup("src").unwrap();
    let dst = db.dict().lookup("dst").unwrap();
    let s = db.dict().lookup("S").unwrap();
    let e = db.dict().lookup("E").unwrap();
    let s_rel = db.relation(s).unwrap();
    // Partition S by src = {1} vs {10} (the paper's two workers).
    let part = |keep: i64| {
        let pos = s_rel.schema().position(src).unwrap();
        s_rel.filter(|row| row[pos] == Value::Int(keep))
    };
    let mut results = Vec::new();
    for part_rel in [part(1), part(10)] {
        let mut db_i = db.clone();
        let m = db_i.intern("m");
        let x = db_i.intern("X");
        let term = Term::cst(part_rel)
            .union(Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m))
            .fix(x);
        results.push(mura_core::eval(&term, &db_i).unwrap());
    }
    // Disjoint…
    for row in results[0].iter() {
        assert!(!results[1].contains(row), "local fixpoints overlap on {row:?}");
    }
    // …and their union is the global fixpoint (Proposition 3).
    let union = results[0].union(&results[1]);
    assert_eq!(union.len(), 10);
}

/// The UCRPQ route over the same graph: `?x, ?y <- ?x S/E* ?y`-style
/// navigation expressed with labels.
#[test]
fn ucrpq_route_on_paper_graph() {
    let db = paper_db();
    let mut qe = QueryEngine::new(db);
    // S/E* == S ∪ S/E+ — expressed with + and alternation.
    let out = qe.run_ucrpq("?x, ?y <- ?x S ?y ; ?x, ?y <- ?x S/E+ ?y").unwrap();
    assert_eq!(out.relation.len(), 10);
}
