//! Every query of the paper's suites (Q1..Q25 Yago, Q26..Q50 Uniprot) runs
//! end to end, and the optimized distributed answers match the unoptimized
//! centralized reference.

use dist_mu_ra::prelude::*;
use mura_datagen::{UniprotConfig, YagoConfig};
use mura_ucrpq::suites::{uniprot_queries, yago_queries};
use mura_ucrpq::to_mura;

fn check_suite(db: &Database, queries: &[mura_ucrpq::suites::NamedQuery]) {
    for q in queries {
        let parsed = parse_ucrpq(q.text).unwrap_or_else(|e| panic!("{}: parse: {e}", q.id));
        // Reference: unoptimized, centralized.
        let mut ref_db = db.clone();
        let term = to_mura(&parsed, &mut ref_db).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let expected = mura_core::eval(&term, &ref_db).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        // System under test: rewritten, distributed, auto plan.
        let mut qe = QueryEngine::new(db.clone());
        let out = qe.run_ucrpq(q.text).unwrap_or_else(|e| panic!("{}: dist: {e}", q.id));
        assert_eq!(
            out.relation.sorted_rows(),
            expected.sorted_rows(),
            "{} diverged\n  optimized plan: {}",
            q.id,
            out.plan.display(qe.db().dict())
        );
    }
}

// Dataset sizes are deliberately small: the *reference* evaluation is the
// unoptimized plan, whose intermediate results explode combinatorially on
// multi-closure queries (that blow-up is the paper's point — here we only
// need answer equality).

#[test]
fn yago_suite_q1_to_q25() {
    let db = mura_datagen::yago_like(YagoConfig { people: 250, seed: 11 }).to_database();
    check_suite(&db, &yago_queries());
}

#[test]
fn uniprot_suite_q26_to_q50() {
    let db =
        mura_datagen::uniprot_like(UniprotConfig { target_edges: 1_500, seed: 5 }).to_database();
    check_suite(&db, &uniprot_queries());
}

#[test]
fn concatenated_closures_small() {
    let db = mura_bench_like_labeled_db();
    for n in 2..=4 {
        let q = mura_ucrpq::suites::concat_closure_query(n);
        let parsed = parse_ucrpq(&q).unwrap();
        let mut ref_db = db.clone();
        let term = to_mura(&parsed, &mut ref_db).unwrap();
        let expected = mura_core::eval(&term, &ref_db).unwrap();
        let mut qe = QueryEngine::new(db.clone());
        let out = qe.run_ucrpq(&q).unwrap();
        assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "n={n}");
    }
}

fn mura_bench_like_labeled_db() -> Database {
    let mut rng = mura_datagen::SplitMix64::seed_from_u64(4);
    let g = mura_datagen::erdos_renyi(200, 0.02, 9);
    mura_datagen::with_random_labels(&g, 10, &mut rng).to_database()
}
