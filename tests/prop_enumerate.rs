//! Randomized soundness of the plan-space enumerator: **every** candidate
//! the memo admits — not just the extracted winner — must be semantically
//! equivalent to the original term. Random graphs × random UCRPQ shapes,
//! checked against centralized evaluation, and executed distributed under
//! all three fixpoint plans (Auto, `P_gld`, `P_plw`).

use dist_mu_ra::prelude::*;
use mura_datagen::SplitMix64;
use mura_dist::exec::FixpointPlan;
use mura_rewrite::Rewriter;
use mura_ucrpq::{to_mura, Endpoint, Path};
use std::time::Duration;

/// Random path expression over labels {a, b} with bounded depth, biased
/// toward the shapes where the enumerator actually makes decisions:
/// closures, compositions of closures, and inverses.
fn rand_path(rng: &mut SplitMix64, depth: u32) -> Path {
    let leaf = |rng: &mut SplitMix64| match rng.gen_range(0..4u64) {
        0 => Path::label("a"),
        1 => Path::label("b"),
        2 => Path::label("a").inverse(),
        _ => Path::label("b").inverse(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..8u64) {
        0 | 1 => rand_path(rng, depth - 1).then(rand_path(rng, depth - 1)),
        2 => rand_path(rng, depth - 1).or(rand_path(rng, depth - 1)),
        3..=5 => rand_path(rng, depth - 1).plus(),
        _ => leaf(rng),
    }
}

fn rand_endpoint(rng: &mut SplitMix64, var: &str) -> Endpoint {
    if rng.gen_range(0..3u64) < 2 {
        Endpoint::Var(var.to_string())
    } else {
        Endpoint::Const(rng.gen_range(0..24u64).to_string())
    }
}

fn rand_graph(rng: &mut SplitMix64) -> Vec<(u64, u64, bool)> {
    let len = rng.gen_range(1..50usize);
    (0..len)
        .map(|_| (rng.gen_range(0..24u64), rng.gen_range(0..24u64), rng.gen_bool(0.5)))
        .collect()
}

fn build_db(edges: &[(u64, u64, bool)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let a: Vec<(u64, u64)> =
        edges.iter().filter(|(_, _, is_a)| *is_a).map(|&(s, d, _)| (s, d)).collect();
    let b: Vec<(u64, u64)> =
        edges.iter().filter(|(_, _, is_a)| !*is_a).map(|&(s, d, _)| (s, d)).collect();
    db.insert_relation("a", Relation::from_pairs(src, dst, a));
    db.insert_relation("b", Relation::from_pairs(src, dst, b));
    db
}

fn build_query(path: &Path, left: Endpoint, right: Endpoint) -> Ucrpq {
    let mut head = Vec::new();
    if let Endpoint::Var(v) = &left {
        head.push(v.clone());
    }
    if let Endpoint::Var(v) = &right {
        if !head.contains(v) {
            head.push(v.clone());
        }
    }
    let (left, right) = if head.is_empty() {
        // Both endpoints constant: keep one variable to have a head.
        head.push("x".to_string());
        (left, Endpoint::Var("x".to_string()))
    } else {
        (left, right)
    };
    mura_ucrpq::Ucrpq {
        branches: vec![mura_ucrpq::Crpq {
            head,
            atoms: vec![mura_ucrpq::Atom { left, path: path.clone(), right }],
        }],
    }
}

/// Every memo candidate evaluates (centralized) to the reference answer.
#[test]
fn every_candidate_matches_centralized_reference() {
    const CASES: u64 = 40;
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xe9b0_51de ^ case);
        let edges = rand_graph(&mut rng);
        let path = rand_path(&mut rng, 3);
        let left = rand_endpoint(&mut rng, "x");
        let right = rand_endpoint(&mut rng, "y");

        let db = build_db(&edges);
        let q = build_query(&path, left, right);
        let mut ref_db = db.clone();
        let Ok(term) = to_mura(&q, &mut ref_db) else { continue };
        let expected = mura_core::eval(&term, &ref_db).expect("centralized eval").sorted_rows();

        let rw = Rewriter::new(&mut ref_db);
        let cands = rw.candidates(&term, &mut ref_db).expect("enumeration");
        assert!(!cands.is_empty(), "case {case}: empty candidate set for {q}");
        for (i, cand) in cands.iter().enumerate() {
            let got = mura_core::eval(cand, &ref_db)
                .unwrap_or_else(|e| panic!("case {case} candidate {i} failed to eval: {e}\n{q}"));
            assert_eq!(
                got.sorted_rows(),
                expected,
                "case {case} candidate {i} diverged on {q}\ncandidate: {}",
                cand.display(ref_db.dict())
            );
        }
    }
}

/// Every memo candidate, executed *distributed* under each of the three
/// fixpoint plans, matches the centralized reference.
#[test]
fn every_candidate_matches_on_all_fixpoint_plans() {
    const CASES: u64 = 12;
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xd15c_0f1e ^ case);
        let edges = rand_graph(&mut rng);
        let path = rand_path(&mut rng, 2);
        let left = rand_endpoint(&mut rng, "x");
        let right = rand_endpoint(&mut rng, "y");

        let db = build_db(&edges);
        let q = build_query(&path, left, right);
        let mut ref_db = db.clone();
        let Ok(term) = to_mura(&q, &mut ref_db) else { continue };
        let expected = mura_core::eval(&term, &ref_db).expect("centralized eval").sorted_rows();

        let rw = Rewriter::new(&mut ref_db);
        let cands = rw.candidates(&term, &mut ref_db).expect("enumeration");
        for plan in [FixpointPlan::Auto, FixpointPlan::ForceGld, FixpointPlan::ForcePlw] {
            let config = ExecConfig { plan, ..Default::default() };
            // The engine shares `ref_db`'s dictionary: candidates reference
            // symbols (fresh recursion variables) interned during planning.
            let qe = QueryEngine::with_config(ref_db.clone(), config);
            for (i, cand) in cands.iter().enumerate() {
                let planned =
                    mura_dist::PlannedQuery { plan: cand.clone(), planning: Duration::ZERO };
                let out = qe.execute_plan(&planned).unwrap_or_else(|e| {
                    panic!("case {case} candidate {i} failed under {plan:?}: {e}\n{q}")
                });
                assert_eq!(
                    out.relation.sorted_rows(),
                    expected,
                    "case {case} candidate {i} diverged under {plan:?} on {q}"
                );
            }
        }
    }
}
