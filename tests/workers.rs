//! Worker-count invariance: answers must not depend on the number of
//! partitions, for either fixpoint plan, including the stable-column
//! repartitioning path of `P_plw`.

use dist_mu_ra::prelude::*;
use mura_dist::exec::FixpointPlan;

fn db() -> Database {
    let mut rng = mura_datagen::SplitMix64::seed_from_u64(8);
    let g = erdos_renyi(150, 0.015, 23);
    let lg = mura_datagen::with_random_labels(&g, 2, &mut rng);
    let mut db = lg.to_database();
    db.bind_constant("C", Value::node(4));
    db
}

#[test]
fn answers_invariant_under_worker_count() {
    let base = db();
    let queries = [
        "?x, ?y <- ?x a1+ ?y",
        "?x <- ?x a1+ C",
        "?x, ?y <- ?x a1+/a2+ ?y",
        "?x, ?z <- ?x a1 ?y, ?y a2+ ?z",
    ];
    for q in queries {
        let mut reference: Option<Vec<_>> = None;
        for workers in [1usize, 2, 3, 5, 8] {
            for plan in [
                FixpointPlan::Auto,
                FixpointPlan::ForceGld,
                FixpointPlan::ForcePlw,
                FixpointPlan::ForceAsync,
            ] {
                let config = ExecConfig { workers, plan, ..Default::default() };
                let mut qe = QueryEngine::with_config(base.clone(), config);
                let rows = qe
                    .run_ucrpq(q)
                    .unwrap_or_else(|e| panic!("{q} @ {workers} workers / {plan:?}: {e}"))
                    .relation
                    .sorted_rows();
                match &reference {
                    None => reference = Some(rows),
                    Some(r) => {
                        assert_eq!(&rows, r, "{q} diverged at {workers} workers / {plan:?}")
                    }
                }
            }
        }
    }
}

#[test]
fn single_worker_plw_equals_centralized() {
    let base = db();
    let config = ExecConfig { workers: 1, plan: FixpointPlan::ForcePlw, ..Default::default() };
    let mut qe = QueryEngine::with_config(base.clone(), config);
    let out = qe.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
    // Single-worker P_plw moves no rows between partitions at all.
    assert_eq!(out.comm.rows_shuffled, 0, "{:?}", out.comm);

    let mut refdb = base.clone();
    let parsed = parse_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
    let term = mura_ucrpq::to_mura(&parsed, &mut refdb).unwrap();
    let expected = mura_core::eval(&term, &refdb).unwrap();
    assert_eq!(out.relation.sorted_rows(), expected.sorted_rows());
}
