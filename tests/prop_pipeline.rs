//! Randomized end-to-end tests: random graphs × random regular path
//! queries → every execution route agrees.
//!
//! This covers the main soundness obligations at once:
//! * the rewriter preserves semantics (random plans through `optimize`);
//! * semi-naive ≡ naive fixpoint evaluation;
//! * `P_gld` ≡ `P_plw` ≡ centralized;
//! * the Datalog and Pregel baselines compute the same answers.

use dist_mu_ra::prelude::*;
use mura_datagen::SplitMix64;
use mura_ucrpq::{to_mura, Endpoint, Path};

const CASES: u64 = 48;

/// Random path expression over labels {a, b} with bounded depth.
fn rand_path(rng: &mut SplitMix64, depth: u32) -> Path {
    let leaf = |rng: &mut SplitMix64| match rng.gen_range(0..4u64) {
        0 => Path::label("a"),
        1 => Path::label("b"),
        2 => Path::label("a").inverse(),
        _ => Path::label("b").inverse(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..7u64) {
        0 | 1 => rand_path(rng, depth - 1).then(rand_path(rng, depth - 1)),
        2 | 3 => rand_path(rng, depth - 1).or(rand_path(rng, depth - 1)),
        4 => rand_path(rng, depth - 1).plus(),
        _ => leaf(rng),
    }
}

/// Random endpoint: variable (3:1) or a constant node.
fn rand_endpoint(rng: &mut SplitMix64, var: &str) -> Endpoint {
    if rng.gen_range(0..4u64) < 3 {
        Endpoint::Var(var.to_string())
    } else {
        Endpoint::Const(rng.gen_range(0..30u64).to_string())
    }
}

/// Random two-label graph as (src, dst, is_a) triples.
fn rand_graph(rng: &mut SplitMix64) -> Vec<(u64, u64, bool)> {
    let len = rng.gen_range(1..60usize);
    (0..len)
        .map(|_| (rng.gen_range(0..30u64), rng.gen_range(0..30u64), rng.gen_bool(0.5)))
        .collect()
}

fn build_db(edges: &[(u64, u64, bool)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let a: Vec<(u64, u64)> =
        edges.iter().filter(|(_, _, is_a)| *is_a).map(|&(s, d, _)| (s, d)).collect();
    let b: Vec<(u64, u64)> =
        edges.iter().filter(|(_, _, is_a)| !*is_a).map(|&(s, d, _)| (s, d)).collect();
    db.insert_relation("a", Relation::from_pairs(src, dst, a));
    db.insert_relation("b", Relation::from_pairs(src, dst, b));
    db
}

fn build_query(path: &Path, left: Endpoint, right: Endpoint) -> Ucrpq {
    let mut head = Vec::new();
    if let Endpoint::Var(v) = &left {
        head.push(v.clone());
    }
    if let Endpoint::Var(v) = &right {
        if !head.contains(v) {
            head.push(v.clone());
        }
    }
    if head.is_empty() {
        // Both endpoints constant: keep one variable to have a head.
        head.push("x".to_string());
    }
    let (left, right) = if head == ["x"]
        && matches!(left, Endpoint::Const(_))
        && matches!(right, Endpoint::Const(_))
    {
        (left, Endpoint::Var("x".to_string()))
    } else {
        (left, right)
    };
    mura_ucrpq::Ucrpq {
        branches: vec![mura_ucrpq::Crpq {
            head,
            atoms: vec![mura_ucrpq::Atom { left, path: path.clone(), right }],
        }],
    }
}

#[test]
fn all_routes_agree() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x91be11e ^ case);
        let edges = rand_graph(&mut rng);
        let path = rand_path(&mut rng, 3);
        let left = rand_endpoint(&mut rng, "x");
        let right = rand_endpoint(&mut rng, "y");

        let db = build_db(&edges);
        let q = build_query(&path, left, right);
        // Skip queries the frontend rejects (e.g. ε-matching paths cannot
        // arise here — no star — but keep the guard for robustness).
        let mut ref_db = db.clone();
        let Ok(term) = to_mura(&q, &mut ref_db) else { continue };
        let expected = mura_core::eval(&term, &ref_db).expect("centralized eval");

        // Naive fixpoints agree.
        let naive = mura_core::eval::eval_naive_fixpoints(&term, &ref_db).unwrap();
        assert_eq!(naive.sorted_rows(), expected.sorted_rows(), "case {case}: {q}");

        // Optimized + distributed (auto plan).
        let mut qe = QueryEngine::new(db.clone());
        let out = qe.run_term(&term).expect("distributed eval");
        assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "case {case}: {q}");

        // Forced P_gld.
        let config =
            ExecConfig { plan: mura_dist::exec::FixpointPlan::ForceGld, ..Default::default() };
        let mut qe2 = QueryEngine::with_config(db.clone(), config);
        let out2 = qe2.run_term(&term).expect("gld eval");
        assert_eq!(out2.relation.sorted_rows(), expected.sorted_rows(), "case {case}: {q}");
    }
}

#[test]
fn baselines_agree_on_cardinality() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xba5e11e ^ case);
        let edges = rand_graph(&mut rng);
        let path = rand_path(&mut rng, 3);

        let db = build_db(&edges);
        let q = build_query(&path, Endpoint::Var("x".to_string()), Endpoint::Var("y".to_string()));
        let query_text = q.to_string();
        let mut ref_db = db.clone();
        let Ok(term) = to_mura(&q, &mut ref_db) else { continue };
        let expected = mura_core::eval(&term, &ref_db).unwrap().len();

        // BigDatalog pipeline.
        let mut dl =
            mura_datalog::DatalogEngine::new(db.clone(), mura_datalog::DatalogStyle::BigDatalog);
        let dl_out = dl.run_ucrpq(&query_text).expect("datalog eval");
        assert_eq!(dl_out.relation.len(), expected, "datalog diverged on {query_text}");

        // GraphX pipeline.
        let mut pdb = db.clone();
        mura_pregel::engine::intern_query_vars(&q, &mut pdb);
        let pregel = mura_pregel::PregelEngine::new(pdb, mura_pregel::PregelConfig::default());
        let p_out = pregel.run(&q).expect("pregel eval");
        assert_eq!(p_out.relation.len(), expected, "pregel diverged on {query_text}");
    }
}
