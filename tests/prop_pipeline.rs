//! Property-based end-to-end tests: random graphs × random regular path
//! queries → every execution route agrees.
//!
//! This covers the main soundness obligations at once:
//! * the rewriter preserves semantics (random plans through `optimize`);
//! * semi-naive ≡ naive fixpoint evaluation;
//! * `P_gld` ≡ `P_plw` ≡ centralized;
//! * the Datalog and Pregel baselines compute the same answers.

use dist_mu_ra::prelude::*;
use mura_ucrpq::{to_mura, Endpoint, Path};
use proptest::prelude::*;

/// Random path expressions over labels {a, b} with bounded depth.
fn path_strategy() -> impl Strategy<Value = Path> {
    let leaf = prop_oneof![
        Just(Path::label("a")),
        Just(Path::label("b")),
        Just(Path::label("a").inverse()),
        Just(Path::label("b").inverse()),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.then(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            inner.prop_map(|x| x.plus()),
        ]
    })
}

/// Random endpoint: variable or a constant node.
fn endpoint_strategy(var: &'static str) -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        3 => Just(Endpoint::Var(var.to_string())),
        1 => (0u64..30).prop_map(|n| Endpoint::Const(n.to_string())),
    ]
}

/// Random two-label graphs.
fn graph_strategy() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    prop::collection::vec((0u64..30, 0u64..30, any::<bool>()), 1..60)
}

fn build_db(edges: &[(u64, u64, bool)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let a: Vec<(u64, u64)> =
        edges.iter().filter(|(_, _, is_a)| *is_a).map(|&(s, d, _)| (s, d)).collect();
    let b: Vec<(u64, u64)> =
        edges.iter().filter(|(_, _, is_a)| !*is_a).map(|&(s, d, _)| (s, d)).collect();
    db.insert_relation("a", Relation::from_pairs(src, dst, a));
    db.insert_relation("b", Relation::from_pairs(src, dst, b));
    db
}

fn build_query(path: &Path, left: Endpoint, right: Endpoint) -> Ucrpq {
    let mut head = Vec::new();
    if let Endpoint::Var(v) = &left {
        head.push(v.clone());
    }
    if let Endpoint::Var(v) = &right {
        if !head.contains(v) {
            head.push(v.clone());
        }
    }
    if head.is_empty() {
        // Both endpoints constant: keep one variable to have a head.
        head.push("x".to_string());
    }
    let (left, right) = if head == ["x"] && matches!(left, Endpoint::Const(_)) && matches!(right, Endpoint::Const(_))
    {
        (left, Endpoint::Var("x".to_string()))
    } else {
        (left, right)
    };
    mura_ucrpq::Ucrpq {
        branches: vec![mura_ucrpq::Crpq {
            head,
            atoms: vec![mura_ucrpq::Atom { left, path: path.clone(), right }],
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_routes_agree(
        edges in graph_strategy(),
        path in path_strategy(),
        left in endpoint_strategy("x"),
        right in endpoint_strategy("y"),
    ) {
        let db = build_db(&edges);
        let q = build_query(&path, left, right);
        // Skip queries the frontend rejects (e.g. ε-matching paths cannot
        // arise here — no star — but keep the guard for robustness).
        let mut ref_db = db.clone();
        let Ok(term) = to_mura(&q, &mut ref_db) else { return Ok(()) };
        let expected = mura_core::eval(&term, &ref_db).expect("centralized eval");

        // Naive fixpoints agree.
        let naive = mura_core::eval::eval_naive_fixpoints(&term, &ref_db).unwrap();
        prop_assert_eq!(naive.sorted_rows(), expected.sorted_rows());

        // Optimized + distributed (auto plan).
        let mut qe = QueryEngine::new(db.clone());
        let out = qe.run_term(&term).expect("distributed eval");
        prop_assert_eq!(out.relation.sorted_rows(), expected.sorted_rows());

        // Forced P_gld.
        let config = ExecConfig {
            plan: mura_dist::exec::FixpointPlan::ForceGld,
            ..Default::default()
        };
        let mut qe2 = QueryEngine::with_config(db.clone(), config);
        let out2 = qe2.run_term(&term).expect("gld eval");
        prop_assert_eq!(out2.relation.sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn baselines_agree_on_cardinality(
        edges in graph_strategy(),
        path in path_strategy(),
    ) {
        let db = build_db(&edges);
        let q = build_query(
            &path,
            Endpoint::Var("x".to_string()),
            Endpoint::Var("y".to_string()),
        );
        let query_text = q.to_string();
        let mut ref_db = db.clone();
        let Ok(term) = to_mura(&q, &mut ref_db) else { return Ok(()) };
        let expected = mura_core::eval(&term, &ref_db).unwrap().len();

        // BigDatalog pipeline.
        let mut dl = mura_datalog::DatalogEngine::new(db.clone(), mura_datalog::DatalogStyle::BigDatalog);
        let dl_out = dl.run_ucrpq(&query_text).expect("datalog eval");
        prop_assert_eq!(dl_out.relation.len(), expected, "datalog diverged on {}", query_text);

        // GraphX pipeline.
        let mut pdb = db.clone();
        mura_pregel::engine::intern_query_vars(&q, &mut pdb);
        let pregel = mura_pregel::PregelEngine::new(pdb, mura_pregel::PregelConfig::default());
        let p_out = pregel.run(&q).expect("pregel eval");
        prop_assert_eq!(p_out.relation.len(), expected, "pregel diverged on {}", query_text);
    }
}
