//! `bench-smoke`: a minutes-free sanity benchmark for the loop-invariant
//! fixpoint kernels, suitable for CI.
//!
//! Computes the transitive closure of an Erdős–Rényi graph on a 4-worker
//! cluster along the `P_plw` SetRdd path twice:
//!
//! * **reference** — the pre-optimization kernel (`local_fixpoint_reference`):
//!   every worker re-evaluates constant subtrees and rebuilds its join hash
//!   table on every iteration;
//! * **optimized** — the current kernel: constants folded and the join index
//!   built **once per fixpoint** (`prepare` + `local_fixpoint_prepared`),
//!   shared by all workers.
//!
//! Both variants run over the *same* partitions with the same 4-way
//! parallelism, so the measured difference is exactly the kernel work the
//! optimization removes. Results (wall times, speedup, iteration counts,
//! communication and kernel counters) are written to `BENCH_fixpoint.json`.
//!
//! A third section runs the full `P_plw` plan through the evaluator with
//! tracing off and at `TraceLevel::Superstep` (min-of-samples each) to
//! bound the cost of per-superstep tracing.
//!
//! Environment knobs: `BENCH_NODES`, `BENCH_EDGE_PROB`, `BENCH_SEED`,
//! `BENCH_SAMPLES`, `BENCH_OUT` (output path), `BENCH_MIN_SPEEDUP`
//! (exit non-zero if the measured speedup falls below it; CI sets `2.0`),
//! `BENCH_MAX_TRACE_OVERHEAD` (max tracing overhead in percent, default
//! 5.0), and `BENCH_TRACE_OUT` (dump one superstep trace as JSON).
//!
//! A fourth section replays the same IVM mutation stream against a durable
//! serving tier (WAL on, fsync off) and a memory-only one, gating the WAL's
//! mutation-path overhead with `BENCH_MAX_WAL_OVERHEAD` (percent, default
//! 10.0; `BENCH_WAL_BATCHES` sets the stream length).
//!
//! `BENCH_PROC_WORKERS=<n>` (default 0 = skip) repeats the tracing
//! overhead measurement over `n` real worker processes, so the gate also
//! bounds the wire-side cost of span batching and TRACE flushes. The
//! worker binary resolves via `MURA_WORKER_BIN` or as a sibling of the
//! bench executable.

use std::time::{Duration, Instant};

use mura_core::kernel::kernel_stats;
use mura_core::{Database, Relation, Term};
use mura_datagen::er::erdos_renyi;
use mura_dist::localfix::{
    local_fixpoint_prepared, local_fixpoint_reference, prepare, Budget, LocalEngine, Prepared,
};
use mura_dist::{
    Cluster, DistEvaluator, DistRel, ExecConfig, FixpointPlan, QueryEngine, TraceLevel,
};

const WORKERS: usize = 4;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Timings {
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

fn summarize(samples: &[Duration]) -> Timings {
    let ms = |d: &Duration| d.as_secs_f64() * 1e3;
    let total: f64 = samples.iter().map(ms).sum();
    Timings {
        mean_ms: total / samples.len() as f64,
        min_ms: samples.iter().map(ms).fold(f64::INFINITY, f64::min),
        max_ms: samples.iter().map(ms).fold(0.0, f64::max),
    }
}

fn json_timings(t: &Timings) -> String {
    format!(
        "{{\"mean_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}}",
        t.mean_ms, t.min_ms, t.max_ms
    )
}

fn main() {
    // Defaults: a sparse supercritical ER graph (mean degree ~1.6) whose
    // giant component has a long diameter — many semi-naive iterations, so
    // the reference kernel's per-iteration constant re-evaluation and join
    // table rebuilds dominate. Runs in well under a second per variant.
    let n = env_u64("BENCH_NODES", 20_000);
    let p = env_f64("BENCH_EDGE_PROB", 0.000_08);
    let seed = env_u64("BENCH_SEED", 42);
    let samples = env_u64("BENCH_SAMPLES", 3).max(1) as usize;
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_fixpoint.json".into());

    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let m = db.intern("m");
    let x = db.intern("X");
    let g = erdos_renyi(n, p, seed);
    let e = Relation::from_pairs(src, dst, g.plain_edges());
    let step = Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
    let recs = vec![step.clone()];
    let term = Term::cst(e.clone()).union(step).fix(x);

    println!("bench-smoke: TC of ER(n={n}, p={p}, seed={seed}), {WORKERS} workers, P_plw/SetRdd");
    println!("  edges: {}", e.len());

    // Shared 4-way partitioning: both kernels see identical per-worker seeds.
    let cluster = Cluster::new(WORKERS);
    let seed_rel = DistRel::from_relation(&e, &cluster);
    let budget = Budget::new(None, None);

    // --- reference kernel: re-evaluates constants, rebuilds join tables ---
    let mut ref_samples = Vec::with_capacity(samples);
    let mut ref_rows = 0usize;
    for round in 0..=samples {
        let t = Instant::now();
        let parts = cluster
            .try_par_map(seed_rel.parts(), |_, part| {
                local_fixpoint_reference(part, &recs, x, LocalEngine::SetRdd, &budget)
            })
            .expect("reference fixpoint");
        let wall = t.elapsed();
        let mut acc = Relation::new(e.schema().clone());
        for part in parts {
            acc.absorb(part);
        }
        if round > 0 {
            // Round 0 is the untimed warmup.
            ref_samples.push(wall);
        }
        ref_rows = acc.len();
    }

    // --- optimized kernel: prepare once per fixpoint, probe cached index ---
    let kernel_before = kernel_stats().snapshot();
    let mut opt_samples = Vec::with_capacity(samples);
    let mut opt_rows = 0usize;
    let mut loop_iterations = 0u64;
    for round in 0..=samples {
        let iters_before = kernel_stats().snapshot();
        let t = Instant::now();
        let prepared: Vec<Prepared<Relation>> =
            recs.iter().map(|r| prepare(r, x, e.schema()).expect("prepare")).collect();
        let parts = cluster
            .try_par_map(seed_rel.parts(), |_, part| {
                local_fixpoint_prepared(part, &prepared, &budget)
            })
            .expect("optimized fixpoint");
        let wall = t.elapsed();
        let mut acc = Relation::new(e.schema().clone());
        for part in parts {
            acc.absorb(part);
        }
        if round > 0 {
            opt_samples.push(wall);
        }
        opt_rows = acc.len();
        loop_iterations = kernel_stats().snapshot().since(&iters_before).iterations;
    }
    let kernel = kernel_stats().snapshot().since(&kernel_before);

    assert_eq!(ref_rows, opt_rows, "kernels disagree on the fixpoint");

    // --- full P_plw plan through the evaluator, for comm + kernel stats
    // and for the cost of superstep tracing (traced vs untraced walls) ---
    let run_plan = |trace: TraceLevel| {
        let config = ExecConfig {
            plan: FixpointPlan::ForcePlw,
            local_engine: LocalEngine::SetRdd,
            workers: WORKERS,
            trace,
            ..Default::default()
        };
        let mut ev = DistEvaluator::new(&db, config);
        let comm_before = ev.cluster().metrics().snapshot();
        let t = Instant::now();
        let full = ev.eval_collect(&term).expect("P_plw evaluation");
        let wall = t.elapsed();
        let comm = ev.cluster().metrics().snapshot().since(&comm_before);
        (wall, full, comm, ev.stats().clone())
    };

    let (_, full, comm, first_stats) = run_plan(TraceLevel::Off);
    let plan_kernel = first_stats.kernel;
    assert_eq!(full.len(), opt_rows, "P_plw plan disagrees with kernel loops");

    // Min-of-samples on both sides: the floor of each distribution is the
    // honest cost comparison, insensitive to scheduler noise spikes.
    let mut off_min = Duration::MAX;
    let mut traced_min = Duration::MAX;
    let mut trace = None;
    for _ in 0..samples {
        off_min = off_min.min(run_plan(TraceLevel::Off).0);
        let (wall, _, _, stats) = run_plan(TraceLevel::Superstep);
        traced_min = traced_min.min(wall);
        trace = stats.trace;
    }
    let trace = trace.expect("superstep run records a trace");
    let overhead_pct = (traced_min.as_secs_f64() / off_min.as_secs_f64() - 1.0) * 100.0;
    if let Ok(path) = std::env::var("BENCH_TRACE_OUT") {
        std::fs::write(&path, trace.to_json()).expect("write trace");
        println!("  trace written to {path}");
    }

    // --- tracing overhead over real worker processes: the same P_plw plan
    // behind a ProcCluster, so the measurement includes TraceCtx bytes on
    // every exchange frame plus the span batches shipped back over TRACE
    // frames at fixpoint end. ---
    let proc_workers = env_u64("BENCH_PROC_WORKERS", 0) as usize;
    let mut proc_tracing = None;
    if proc_workers > 0 {
        let backend: std::sync::Arc<dyn mura_dist::CommBackend> =
            mura_dist::ProcCluster::spawn(proc_workers).expect("spawn worker processes");
        let run_proc = |trace: TraceLevel| {
            let config = ExecConfig {
                plan: FixpointPlan::ForcePlw,
                local_engine: LocalEngine::SetRdd,
                workers: proc_workers,
                trace,
                backend: Some(std::sync::Arc::clone(&backend)),
                ..Default::default()
            };
            let mut ev = DistEvaluator::new(&db, config);
            let t = Instant::now();
            let rows = ev.eval_collect(&term).expect("P_plw over processes").len();
            (t.elapsed(), rows, ev.stats().trace.clone())
        };
        let (_, rows, _) = run_proc(TraceLevel::Off); // untimed warmup
        assert_eq!(rows, opt_rows, "process backend disagrees on the fixpoint");
        let mut p_off = Duration::MAX;
        let mut p_traced = Duration::MAX;
        let mut p_trace = None;
        for _ in 0..samples {
            p_off = p_off.min(run_proc(TraceLevel::Off).0);
            let (wall, _, stats_trace) = run_proc(TraceLevel::Superstep);
            p_traced = p_traced.min(wall);
            p_trace = stats_trace;
        }
        let p_trace = p_trace.expect("traced process run records a trace");
        assert!(
            p_trace.events.iter().any(|e| e.kind.is_worker_comm()),
            "a process-mode trace must carry worker-lane exchange events"
        );
        let pct = (p_traced.as_secs_f64() / p_off.as_secs_f64() - 1.0) * 100.0;
        proc_tracing = Some((p_off, p_traced, pct, p_trace.events.len()));
    }

    // --- WAL overhead: the identical IVM mutation stream against a durable
    // serving tier (WAL on, fsync off — CI filesystems make fsync walls
    // meaningless) vs a memory-only one. Incremental maintenance work is
    // the same on both sides, so the measured delta is exactly the cost of
    // record encode + checksum + buffered write on the mutation path. ---
    let wal_batches = env_u64("BENCH_WAL_BATCHES", 64);
    let wal_dir = std::env::temp_dir().join(format!("mura-bench-wal-{}", std::process::id()));
    let run_mutation_stream = |data_dir: Option<std::path::PathBuf>| -> Duration {
        let mut sdb = Database::new();
        let s = sdb.intern("src");
        let d = sdb.intern("dst");
        sdb.insert_relation("edge", Relation::from_pairs(s, d, g.plain_edges()));
        let config = mura_serve::ServeConfig {
            data_dir,
            wal_sync: mura_serve::SyncPolicy::Never,
            snapshot_every: 0, // never: measure the WAL alone
            ..Default::default()
        };
        let server =
            mura_serve::Server::try_start(QueryEngine::new(sdb), config).expect("start server");
        let client = server.client();
        client.query("?x, ?y <- ?x edge+ ?y").expect("warm TC view");
        let rel = server.with_db(|db| db.dict().lookup("edge").expect("edge relation"));
        let t = Instant::now();
        for i in 0..wal_batches {
            // Fresh chain edges: never duplicates, so every batch survives
            // normalization and drives one real maintenance round.
            let mut batch = mura_serve::DeltaBatch::new();
            let row = vec![mura_core::Value::node(n + i), mura_core::Value::node(n + i + 1)]
                .into_boxed_slice();
            server.with_db(|db| batch.push_insert(db, rel, row)).expect("push insert");
            server.apply_delta(batch).expect("apply delta");
        }
        let wall = t.elapsed();
        server.shutdown();
        wall
    };
    let mut wal_off = Duration::MAX;
    let mut wal_on = Duration::MAX;
    for _ in 0..samples {
        wal_off = wal_off.min(run_mutation_stream(None));
        let _ = std::fs::remove_dir_all(&wal_dir);
        wal_on = wal_on.min(run_mutation_stream(Some(wal_dir.clone())));
    }
    let _ = std::fs::remove_dir_all(&wal_dir);
    let wal_overhead_pct = (wal_on.as_secs_f64() / wal_off.as_secs_f64() - 1.0) * 100.0;

    let reference = summarize(&ref_samples);
    let optimized = summarize(&opt_samples);
    let speedup = reference.mean_ms / optimized.mean_ms;

    println!("  tc rows: {opt_rows}");
    println!("  per-worker loop iterations (sum): {loop_iterations}");
    println!(
        "  reference: {:.1} ms  [{:.1} .. {:.1}]",
        reference.mean_ms, reference.min_ms, reference.max_ms
    );
    println!(
        "  optimized: {:.1} ms  [{:.1} .. {:.1}]",
        optimized.mean_ms, optimized.min_ms, optimized.max_ms
    );
    println!("  speedup:   {speedup:.2}x");
    println!(
        "  plan comm: {} shuffles, {} rows shuffled; plan kernel: {} index builds, {} probes",
        comm.shuffles, comm.rows_shuffled, plan_kernel.index_builds, plan_kernel.join_probes
    );
    println!(
        "  tracing:   off {:.1} ms, superstep {:.1} ms ({} events) → overhead {overhead_pct:+.1}%",
        off_min.as_secs_f64() * 1e3,
        traced_min.as_secs_f64() * 1e3,
        trace.events.len(),
    );
    if let Some((p_off, p_traced, pct, events)) = &proc_tracing {
        println!(
            "  tracing ({proc_workers} procs): off {:.1} ms, superstep {:.1} ms ({events} events) → overhead {pct:+.1}%",
            p_off.as_secs_f64() * 1e3,
            p_traced.as_secs_f64() * 1e3,
        );
    }
    println!(
        "  wal:       off {:.1} ms, on {:.1} ms ({wal_batches} batches, no fsync) → overhead {wal_overhead_pct:+.1}%",
        wal_off.as_secs_f64() * 1e3,
        wal_on.as_secs_f64() * 1e3,
    );

    let proc_json = proc_tracing
        .as_ref()
        .map(|(off, traced, pct, events)| {
            format!(
                "  \"tracing_proc\": {{\"workers\": {proc_workers}, \"off_min_ms\": {:.3}, \"superstep_min_ms\": {:.3}, \"overhead_pct\": {pct:.2}, \"events\": {events}}},\n",
                off.as_secs_f64() * 1e3,
                traced.as_secs_f64() * 1e3,
            )
        })
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"fixpoint_tc_er\",\n  \"plan\": \"p_plw\",\n  \"engine\": \"set_rdd\",\n  \"workers\": {WORKERS},\n  \"graph\": {{\"nodes\": {n}, \"edge_prob\": {p}, \"seed\": {seed}, \"edges\": {}, \"tc_rows\": {opt_rows}}},\n  \"samples\": {samples},\n  \"iterations\": {loop_iterations},\n  \"reference\": {},\n  \"optimized\": {},\n  \"speedup\": {speedup:.3},\n  \"tracing\": {{\"off_min_ms\": {:.3}, \"superstep_min_ms\": {:.3}, \"overhead_pct\": {overhead_pct:.2}, \"events\": {}}},\n{proc_json}  \"wal\": {{\"off_min_ms\": {:.3}, \"on_min_ms\": {:.3}, \"overhead_pct\": {wal_overhead_pct:.2}, \"batches\": {wal_batches}}},\n  \"comm\": {{\"shuffles\": {}, \"rows_shuffled\": {}}},\n  \"kernel\": {{\"index_builds\": {}, \"key_index_builds\": {}, \"join_probes\": {}, \"antijoin_probes\": {}, \"rows_allocated\": {}, \"const_folds\": {}, \"iterations\": {}, \"eval_nanos\": {}}}\n}}\n",
        e.len(),
        json_timings(&reference),
        json_timings(&optimized),
        off_min.as_secs_f64() * 1e3,
        traced_min.as_secs_f64() * 1e3,
        trace.events.len(),
        wal_off.as_secs_f64() * 1e3,
        wal_on.as_secs_f64() * 1e3,
        comm.shuffles,
        comm.rows_shuffled,
        kernel.index_builds,
        kernel.key_index_builds,
        kernel.join_probes,
        kernel.antijoin_probes,
        kernel.rows_allocated,
        kernel.const_folds,
        kernel.iterations,
        kernel.eval_nanos,
    );
    std::fs::write(&out_path, json).expect("write BENCH_fixpoint.json");
    println!("  wrote {out_path}");

    let mut failed = false;
    let min_speedup = env_f64("BENCH_MIN_SPEEDUP", 0.0);
    if speedup < min_speedup {
        eprintln!("FAIL: speedup {speedup:.2}x below required {min_speedup:.2}x");
        failed = true;
    }
    let max_overhead = env_f64("BENCH_MAX_TRACE_OVERHEAD", 5.0);
    if overhead_pct > max_overhead {
        eprintln!("FAIL: tracing overhead {overhead_pct:.1}% above allowed {max_overhead:.1}%");
        failed = true;
    }
    if let Some((_, _, pct, _)) = &proc_tracing {
        if *pct > max_overhead {
            eprintln!(
                "FAIL: process-mode tracing overhead {pct:.1}% above allowed {max_overhead:.1}%"
            );
            failed = true;
        }
    }
    let max_wal_overhead = env_f64("BENCH_MAX_WAL_OVERHEAD", 10.0);
    if wal_overhead_pct > max_wal_overhead {
        eprintln!(
            "FAIL: WAL overhead {wal_overhead_pct:.1}% above allowed {max_wal_overhead:.1}% \
             (no-fsync mutation path)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
