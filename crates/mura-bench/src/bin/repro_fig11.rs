//! Fig. 11: the non-regular mu-RA queries (anbn, same generation, reach).
use mura_bench::{banner, fig11, Scale};

fn main() {
    banner("Fig. 11 — mu-RA queries (C1)");
    fig11(Scale::from_env()).print();
}
