//! Regenerates Table I (dataset inventory with exact transitive closure
//! sizes) at the scaled sizes documented in `mura_bench::datasets`.
use mura_bench::{banner, table1, Scale};

fn main() {
    banner("Table I — real and synthetic graphs (scaled)");
    table1(Scale::from_env()).print();
}
