//! Fig. 10: concatenated closure queries a1+/../an+.
use mura_bench::{banner, fig10, Scale};

fn main() {
    banner("Fig. 10 — concatenated closures (all C6)");
    fig10(Scale::from_env()).print();
}
