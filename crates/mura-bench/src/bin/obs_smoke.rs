//! `obs-smoke`: CI gate for the observability surface.
//!
//! Two checks, both dependency-free:
//!
//! 1. **Trace schema** — reads the trace JSON named by `OBS_TRACE_FILE`
//!    (default `trace.json`, as written by `murash --trace-out` or
//!    `BENCH_TRACE_OUT`), parses it with the in-tree JSON codec, verifies
//!    a parse → print → parse round trip, and validates it against the
//!    `required` key lists of `schemas/trace.schema.json` (path
//!    overridable via `OBS_SCHEMA`).
//! 2. **Metrics exposition** — starts an in-process server over a small
//!    graph, runs a transitive-closure query plus a `.profile`, fetches
//!    `.metrics` over the TCP protocol and greps the page for every
//!    required metric family.
//!
//! Exits non-zero with a list of violations on any failure.

use mura_core::{Database, Relation};
use mura_dist::QueryEngine;
use mura_obs::json::Json;
use mura_serve::{protocol, serve_tcp, ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// Metric families the `.metrics` page must expose.
const REQUIRED_FAMILIES: &[&str] = &[
    "mura_queries_total",
    "mura_queries_submitted_total",
    "mura_cache_events_total",
    "mura_comm_shuffles_total",
    "mura_comm_rows_shuffled_total",
    "mura_comm_broadcasts_total",
    "mura_comm_rows_broadcast_total",
    "mura_cluster_workers",
    "mura_cluster_workers_live",
    "mura_cluster_respawns_total",
    "mura_cluster_reconnects_total",
    "mura_supervisor_events_total",
    "mura_cluster_skew_ratio",
    "mura_trace_dropped_spans_total",
    "mura_worker_superstep_seconds",
    "mura_heartbeat_rtt_seconds",
    "mura_wire_bytes_total",
    "mura_wire_exchange_bytes_total",
    "mura_faults_injected_total",
    "mura_fault_recoveries_total",
    "mura_degraded_queries_total",
    "mura_kernel_events_total",
    "mura_query_wall_seconds",
    "mura_query_queue_seconds",
    "mura_query_execution_seconds",
    "mura_query_planning_seconds",
    "mura_db_epoch",
    "mura_db_version",
    "mura_db_delta_rows_total",
    "mura_ivm_applied_total",
    "mura_ivm_fallback_total",
    "mura_ivm_rederived_rows",
    "mura_ivm_maintenance_seconds",
    "mura_shed_total",
    "mura_breaker_state",
    "mura_breaker_opened_total",
    "mura_mem_current_bytes",
    "mura_mem_high_water_bytes",
    "mura_drain_phase",
    "mura_wal_appends_total",
    "mura_wal_bytes_total",
    "mura_snapshots_total",
    "mura_snapshot_age_seconds",
    "mura_recovery_replayed_batches",
];

/// Checks `doc` against the `required`/`properties`/`items` structure of a
/// (draft-07-style) schema. Only the subset the trace schema uses is
/// interpreted: required keys recurse through object properties and array
/// items; anything else passes.
fn validate(schema: &Json, doc: &Json, path: &str, errors: &mut Vec<String>) {
    if let Some(required) = schema.get("required").and_then(|r| r.as_array()) {
        for key in required.iter().filter_map(|k| k.as_str()) {
            if doc.get(key).is_none() {
                errors.push(format!("{path}: missing required key '{key}'"));
            }
        }
    }
    if let Some(props) = schema.get("properties").and_then(|p| p.as_object()) {
        for (key, sub) in props {
            if let Some(value) = doc.get(key) {
                validate(sub, value, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let Some(items) = schema.get("items") {
        if let Some(arr) = doc.as_array() {
            for (i, item) in arr.iter().enumerate() {
                validate(items, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn check_trace_file(errors: &mut Vec<String>) {
    let trace_path = std::env::var("OBS_TRACE_FILE").unwrap_or_else(|_| "trace.json".into());
    let schema_path =
        std::env::var("OBS_SCHEMA").unwrap_or_else(|_| "schemas/trace.schema.json".into());

    let raw = match std::fs::read_to_string(&trace_path) {
        Ok(s) => s,
        Err(e) => {
            errors.push(format!("read {trace_path}: {e}"));
            return;
        }
    };
    let doc = match Json::parse(&raw) {
        Ok(d) => d,
        Err(e) => {
            errors.push(format!("{trace_path} is not valid JSON: {e}"));
            return;
        }
    };
    // Round trip: printing and re-parsing must reproduce the same value.
    match Json::parse(&doc.to_string()) {
        Ok(again) if again == doc => {}
        Ok(_) => errors.push(format!("{trace_path}: print → parse round trip diverged")),
        Err(e) => errors.push(format!("{trace_path}: re-parse of printed form failed: {e}")),
    }
    let schema = match std::fs::read_to_string(&schema_path).map_err(|e| e.to_string()) {
        Ok(s) => match Json::parse(&s) {
            Ok(j) => j,
            Err(e) => {
                errors.push(format!("{schema_path} is not valid JSON: {e}"));
                return;
            }
        },
        Err(e) => {
            errors.push(format!("read {schema_path}: {e}"));
            return;
        }
    };
    validate(&schema, &doc, "$", errors);
    // The cluster-tracing schema bump: version 2 added the wire-level
    // trace id that ties worker-side spans to their query.
    let version = doc.get("mura").and_then(|m| m.get("version")).and_then(|v| v.as_f64());
    if version.is_none_or(|v| v < 2.0) {
        errors.push(format!("{trace_path}: mura.version must be >= 2, got {version:?}"));
    }
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).map_or(0, |a| a.len());
    if events == 0 {
        errors.push(format!("{trace_path}: traceEvents is empty — nothing was traced"));
    }
    println!("obs-smoke: {trace_path} valid ({events} events, schema {schema_path})");
}

fn check_metrics_page(errors: &mut Vec<String>) {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("e", Relation::from_pairs(src, dst, (0..12).map(|i| (i, i + 1))));
    // `OBS_CLUSTER=<n>` routes every execution through n real worker
    // processes (the mura-worker binary resolves via `MURA_WORKER_BIN`),
    // so the page is validated against the multi-process backend too.
    let cluster_workers: usize =
        std::env::var("OBS_CLUSTER").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
    // Durable data dir so the WAL/snapshot families carry real samples
    // (the mutation verbs below are then WAL-logged before they apply).
    let data_dir = std::env::temp_dir().join(format!("mura-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let durable = ServeConfig { data_dir: Some(data_dir.clone()), ..Default::default() };
    let config = if cluster_workers > 0 {
        ServeConfig {
            cluster: mura_serve::ClusterMode::Processes { workers: cluster_workers },
            ..durable
        }
    } else {
        durable
    };
    let server = match Server::try_start(QueryEngine::new(db), config) {
        Ok(s) => s,
        Err(e) => {
            errors.push(format!("start server (OBS_CLUSTER={cluster_workers}): {e}"));
            return;
        }
    };
    let handle = serve_tcp(&server, "127.0.0.1:0").expect("bind ephemeral port");

    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut send = |line: &str| -> (String, Vec<String>) {
        let mut s = stream.try_clone().expect("clone stream");
        s.write_all(format!("{line}\n").as_bytes()).expect("send");
        protocol::read_response(&mut reader).expect("response")
    };

    let (status, _) = send("?x, ?y <- ?x e+ ?y");
    if !status.starts_with("OK ") {
        errors.push(format!("TC query failed: {status}"));
    }
    let (status, body) = send(".profile ?x, ?y <- ?x e+ ?y");
    if !status.starts_with("OK profile") || !body.iter().any(|l| l.contains("superstep")) {
        errors
            .push(format!(".profile gave no superstep timeline: {status} / {} lines", body.len()));
    }
    // Exercise the mutation verbs so the IVM families carry real samples:
    // an insert extends the cached closure, a delete DRed-maintains it.
    let (status, _) = send(".insert e 100 101");
    if !status.starts_with("OK v=1 ") {
        errors.push(format!(".insert failed: {status}"));
    }
    let (status, _) = send(".delete e 0 1");
    if !status.starts_with("OK v=2 ") {
        errors.push(format!(".delete failed: {status}"));
    }
    let (status, _) = send(".insert e nonsense");
    if !status.starts_with("ERR ") {
        errors.push(format!(".insert with a bad value must ERR, got: {status}"));
    }
    let (status, page) = send(".metrics");
    if status != "OK metrics" {
        errors.push(format!(".metrics failed: {status}"));
    }
    for family in REQUIRED_FAMILIES {
        if !page.iter().any(|l| l.starts_with(&format!("# TYPE {family} "))) {
            errors.push(format!(".metrics is missing family {family}"));
        }
    }
    let sample = |name: &str| {
        page.iter()
            .find(|l| l.starts_with(name) && !l.starts_with("# "))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<f64>().ok())
    };
    // Durability must be live behind the page, not just present: both
    // mutations were WAL-logged and the recovery bootstrap wrote a
    // snapshot before the server accepted connections.
    if sample("mura_wal_appends_total ").unwrap_or(0.0) < 2.0 {
        errors.push("mura_wal_appends_total must count both mutations".into());
    }
    if sample("mura_wal_bytes_total ").unwrap_or(0.0) <= 0.0 {
        errors.push("mura_wal_bytes_total recorded no bytes".into());
    }
    if sample("mura_snapshots_total ").unwrap_or(0.0) < 1.0 {
        errors.push("mura_snapshots_total missing the bootstrap snapshot".into());
    }
    let (status, stats_body) = send(".stats");
    if !status.starts_with("OK stats") {
        errors.push(format!(".stats failed: {status}"));
    }
    if !stats_body.iter().any(|l| l.starts_with("durability") && l.contains("wal appends")) {
        errors.push(".stats is missing the durability line".into());
    }
    if cluster_workers > 0 {
        // The process backend must actually be live behind the page: the
        // worker gauge shows the fleet and the supervisor's heartbeats
        // have populated the RTT histogram.
        if sample("mura_cluster_workers ") != Some(cluster_workers as f64) {
            errors.push(format!("mura_cluster_workers must read {cluster_workers}"));
        }
        if sample("mura_heartbeat_rtt_seconds_count").unwrap_or(0.0) < 1.0 {
            errors.push("mura_heartbeat_rtt_seconds recorded no heartbeats".into());
        }
        if sample("mura_worker_superstep_seconds_count").unwrap_or(0.0) < 1.0 {
            errors.push("mura_worker_superstep_seconds recorded no traced supersteps".into());
        }
    }
    send(".quit");
    handle.stop();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!(
        "obs-smoke: .metrics exposes {} families, .profile renders (cluster={cluster_workers})",
        REQUIRED_FAMILIES.len()
    );
}

fn main() {
    let mut errors = Vec::new();
    check_trace_file(&mut errors);
    check_metrics_page(&mut errors);
    if !errors.is_empty() {
        eprintln!("obs-smoke FAILED:");
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    println!("obs-smoke: OK");
}
