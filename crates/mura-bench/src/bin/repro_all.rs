//! Runs the complete evaluation and prints every table/figure in order.
//! Set REPRO_QUICK=1 for a fast pass.
use mura_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner("Table I — real and synthetic graphs (scaled)");
    table1(scale).print();
    banner("Figs. 5/6 — query classification C1..C6");
    class_matrix().print();
    banner("Fig. 7 — P_plw implementations on Yago");
    fig7(scale).print();
    banner("Fig. 9 — Yago suite across systems");
    fig9(scale).print();
    banner("Fig. 10 — concatenated closures");
    fig10(scale).print();
    banner("Fig. 11 — mu-RA queries");
    fig11(scale).print();
    banner("Fig. 12 — same generation vs Myria");
    fig12(scale).print();
    banner("Fig. 13 — Uniprot suite across systems");
    fig13(scale).print();
    banner("Fig. 14 — Myria comparison on small Uniprot");
    fig14(scale).print();
    banner("Fig. 8 — Uniprot scalability sweep");
    fig8(scale).print();
    banner("Communication ablation — P_plw vs P_gld per class");
    comm_ablation(scale).print();
}
