//! Fig. 13: the Uniprot suite (Q26..Q50) across systems.
use mura_bench::{banner, fig13, Scale};

fn main() {
    banner("Fig. 13 — Uniprot suite across systems (scaled uniprot_1M)");
    fig13(Scale::from_env()).print();
}
