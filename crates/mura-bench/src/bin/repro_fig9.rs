//! Fig. 9: running times on Yago for Q1..Q25 across all systems.
use mura_bench::{banner, fig9, Scale};

fn main() {
    banner("Fig. 9 — Yago suite across systems (scaled; paper timeout 1000s)");
    fig9(Scale::from_env()).print();
}
