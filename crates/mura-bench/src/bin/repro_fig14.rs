//! Fig. 14: Myria vs Dist-muRA on the small Uniprot graph.
use mura_bench::{banner, fig14, Scale};

fn main() {
    banner("Fig. 14 — Myria comparison (scaled uniprot_100k)");
    fig14(Scale::from_env()).print();
}
