//! `bench_plans`: greedy pipeline vs memoized plan-space enumeration,
//! suitable for CI.
//!
//! For each query class of the repro suite (plain closure, source/dest
//! filters, merged closures, filtered merged closures, concatenation) over
//! a labeled Erdős–Rényi graph, this measures:
//!
//! * **pipeline** — wall time of the plan the greedy rewrite pipeline
//!   picks (`Rewriter::optimize_pipeline`), and its planning time;
//! * **enumerated** — wall time of the plan extracted from the memoized
//!   enumeration (`Rewriter::optimize_report`), and its planning time.
//!
//! Both plans execute on the same engine with the same configuration, so
//! the measured difference is exactly the plan choice. Results are written
//! to `BENCH_plans.json`.
//!
//! Gates (non-zero exit on failure):
//! * per class, the enumerated plan's wall time must not exceed the
//!   pipeline plan's by more than `BENCH_MAX_SLOWDOWN_PCT` (default 5%);
//! * across the suite, total enumeration planning time must stay under
//!   `BENCH_MAX_ENUM_OVERHEAD_PCT` (default 5%) of total execution time.
//!
//! Environment knobs: `BENCH_NODES`, `BENCH_EDGE_PROB`, `BENCH_SEED`,
//! `BENCH_LABELS`, `BENCH_SAMPLES`, `BENCH_OUT`.

use std::time::{Duration, Instant};

use mura_core::Term;
use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
use mura_dist::{PlannedQuery, QueryEngine};
use mura_rewrite::Rewriter;
use mura_ucrpq::{parse_ucrpq, to_mura};

/// The query classes of the repro suite, exercised against labels a1/a2
/// and the bound constant C. `filtered_merged` is the class where
/// enumeration beats the greedy pipeline: the pipeline merges `a1+/a2+`
/// into one fixpoint first, which loses the destination-filter push; the
/// enumerator keeps the unmerged composition alive, where reversing the
/// second closure lets the filter seed the iteration.
const CLASSES: &[(&str, &str)] = &[
    ("tc", "?x, ?y <- ?x a1+ ?y"),
    ("filtered_src", "?x <- C a1+ ?x"),
    ("filtered_dst", "?x <- ?x a1+ C"),
    ("merged", "?x, ?y <- ?x a1+/a2+ ?y"),
    ("filtered_merged", "?x <- ?x a1+/a2+ C"),
    ("concat", "?x, ?y <- ?x a1/a2+ ?y"),
];

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Timings {
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
}

fn summarize(samples: &[Duration]) -> Timings {
    let ms = |d: &Duration| d.as_secs_f64() * 1e3;
    let total: f64 = samples.iter().map(ms).sum();
    Timings {
        mean_ms: total / samples.len() as f64,
        min_ms: samples.iter().map(ms).fold(f64::INFINITY, f64::min),
        max_ms: samples.iter().map(ms).fold(0.0, f64::max),
    }
}

fn json_timings(t: &Timings) -> String {
    format!(
        "{{\"mean_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}}",
        t.mean_ms, t.min_ms, t.max_ms
    )
}

/// Executes `plan` `samples` times (plus an untimed warmup) on `engine`.
fn run_samples(engine: &QueryEngine, plan: &Term, samples: usize) -> (Vec<Duration>, usize) {
    let planned = PlannedQuery { plan: plan.clone(), planning: Duration::ZERO };
    let mut walls = Vec::with_capacity(samples);
    let mut rows = 0usize;
    for round in 0..=samples {
        let t = Instant::now();
        let out = engine.execute_plan(&planned).expect("execution");
        let wall = t.elapsed();
        if round > 0 {
            walls.push(wall);
        }
        rows = out.relation.len();
    }
    (walls, rows)
}

fn main() {
    let n = env_u64("BENCH_NODES", 600);
    let p = env_f64("BENCH_EDGE_PROB", 0.01);
    let seed = env_u64("BENCH_SEED", 42);
    let labels = env_u64("BENCH_LABELS", 3) as u32;
    let samples = env_u64("BENCH_SAMPLES", 5).max(1) as usize;
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_plans.json".into());
    let max_slowdown_pct = env_f64("BENCH_MAX_SLOWDOWN_PCT", 5.0);
    let max_enum_overhead_pct = env_f64("BENCH_MAX_ENUM_OVERHEAD_PCT", 5.0);

    let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) | 1);
    let g = erdos_renyi(n, p, seed);
    let lg = with_random_labels(&g, labels, &mut rng);
    let mut db = lg.to_database();
    // Bind C to a node that actually sources an a1 edge (override with
    // BENCH_CONST), so the filtered classes return non-trivial answers.
    let c = std::env::var("BENCH_CONST").ok().and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(
        || {
            let a1 = db.dict().lookup("a1").and_then(|s| db.relation(s)).expect("a1 relation");
            a1.sorted_rows().first().and_then(|r| r[0].as_int()).unwrap_or(0) as u64
        },
    );
    db.bind_constant("C", mura_core::Value::node(c));

    println!(
        "bench-plans: ER(n={n}, p={p}, seed={seed}) × {labels} labels, {} classes, {samples} samples",
        CLASSES.len()
    );

    let mut class_jsons = Vec::new();
    let mut failed = false;
    let mut total_exec_ms = 0.0f64;
    let mut total_enum_plan_ms = 0.0f64;
    let mut any_enumerated_win = false;

    for (name, query) in CLASSES {
        let q = parse_ucrpq(query).expect("parse query class");
        let term = to_mura(&q, &mut db).expect("translate query class");
        let rw = Rewriter::new(&mut db);

        // Planning times: the greedy pipeline alone vs the full memoized
        // enumeration (which embeds one pipeline run as its cost floor).
        let t = Instant::now();
        let pipeline_plan = rw.optimize_pipeline(&term, &mut db).expect("pipeline optimize");
        let pipeline_plan_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let (enum_plan, report) = rw.optimize_report(&term, &mut db).expect("enumerate optimize");
        let enum_plan_ms = t.elapsed().as_secs_f64() * 1e3;

        let engine = QueryEngine::new(db.clone());
        let (pipe_walls, pipe_rows) = run_samples(&engine, &pipeline_plan, samples);
        // When the enumerator's winner IS the pipeline plan, timing it
        // separately only measures scheduler noise — share the samples.
        let (enum_walls, enum_rows) = if enum_plan == pipeline_plan {
            (pipe_walls.clone(), pipe_rows)
        } else {
            run_samples(&engine, &enum_plan, samples)
        };
        assert_eq!(pipe_rows, enum_rows, "{name}: plans disagree on the answer");

        let pipe = summarize(&pipe_walls);
        let enu = summarize(&enum_walls);
        // Min-of-samples: the floor of each distribution is the honest
        // comparison, insensitive to scheduler noise spikes.
        let slowdown_pct = (enu.min_ms / pipe.min_ms - 1.0) * 100.0;
        total_exec_ms += enu.mean_ms * samples as f64;
        total_enum_plan_ms += enum_plan_ms;
        if report.enumerated_won {
            any_enumerated_win = true;
        }

        println!(
            "  {name:<16} {pipe_rows:>7} rows  pipeline {:>8.2} ms  enumerated {:>8.2} ms  \
             ({:+.1}%)  [{} candidates / {} groups, plan {:.2} ms vs {:.2} ms{}]",
            pipe.min_ms,
            enu.min_ms,
            slowdown_pct,
            report.candidates,
            report.groups,
            enum_plan_ms,
            pipeline_plan_ms,
            if report.enumerated_won { ", enumerated won" } else { "" },
        );

        if slowdown_pct > max_slowdown_pct {
            eprintln!(
                "FAIL: {name}: enumerated plan {:.2} ms is {slowdown_pct:.1}% slower than \
                 pipeline {:.2} ms (allowed {max_slowdown_pct:.1}%)",
                enu.min_ms, pipe.min_ms
            );
            failed = true;
        }

        class_jsons.push(format!(
            "    {{\"class\": \"{name}\", \"query\": \"{query}\", \"rows\": {pipe_rows}, \
             \"pipeline\": {}, \"enumerated\": {}, \
             \"pipeline_plan_ms\": {pipeline_plan_ms:.3}, \"enumerated_plan_ms\": {enum_plan_ms:.3}, \
             \"candidates\": {}, \"groups\": {}, \"enumerated_won\": {}, \
             \"winner_cost\": {:.1}, \"pipeline_cost\": {:.1}, \"slowdown_pct\": {slowdown_pct:.2}}}",
            json_timings(&pipe),
            json_timings(&enu),
            report.candidates,
            report.groups,
            report.enumerated_won,
            report.winner_cost,
            report.pipeline_cost,
        ));
    }

    let overhead_pct = total_enum_plan_ms / total_exec_ms.max(f64::MIN_POSITIVE) * 100.0;
    println!(
        "  enumeration planning: {total_enum_plan_ms:.2} ms over {total_exec_ms:.1} ms execution \
         → {overhead_pct:.2}% overhead"
    );
    if overhead_pct > max_enum_overhead_pct {
        eprintln!(
            "FAIL: enumeration overhead {overhead_pct:.2}% above allowed \
             {max_enum_overhead_pct:.1}%"
        );
        failed = true;
    }
    if !any_enumerated_win {
        eprintln!("FAIL: no query class chose an enumerated plan over the pipeline's");
        failed = true;
    }

    let json = format!(
        "{{\n  \"bench\": \"plan_enumeration\",\n  \"graph\": {{\"nodes\": {n}, \"edge_prob\": {p}, \
         \"seed\": {seed}, \"labels\": {labels}}},\n  \"samples\": {samples},\n  \"classes\": [\n{}\n  ],\n  \
         \"enum_planning_total_ms\": {total_enum_plan_ms:.3},\n  \"execution_total_ms\": {total_exec_ms:.3},\n  \
         \"enum_overhead_pct\": {overhead_pct:.3}\n}}\n",
        class_jsons.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_plans.json");
    println!("  wrote {out_path}");

    if failed {
        std::process::exit(1);
    }
}
