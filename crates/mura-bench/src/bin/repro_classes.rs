//! Regenerates the C1..C6 class matrix of the query suites (Figs. 5 and 6).
use mura_bench::{banner, class_matrix};

fn main() {
    banner("Figs. 5/6 — query classification C1..C6");
    class_matrix().print();
}
