//! Communication ablation: P_plw vs P_gld shuffle/broadcast volumes per
//! query class (the claim behind paper Fig. 4 and the Fig. 9 discussion).
use mura_bench::{banner, comm_ablation, Scale};

fn main() {
    banner("Communication ablation — P_plw vs P_gld per class");
    comm_ablation(Scale::from_env()).print();
}
