//! Fig. 7: the two P_plw implementations (SetRDD vs sorted/pg) on Yago.
use mura_bench::{banner, fig7, Scale};

fn main() {
    banner("Fig. 7 — P_plw implementations on Yago (scaled)");
    fig7(Scale::from_env()).print();
}
