//! Fig. 8: Dist-muRA vs BigDatalog scalability on growing Uniprot graphs.
use mura_bench::{banner, fig8, Scale};

fn main() {
    banner("Fig. 8 — Uniprot scalability sweep (scaled 1M/5M/10M)");
    fig8(Scale::from_env()).print();
}
