//! Fig. 12: Myria vs Dist-muRA on same generation over growing graphs.
use mura_bench::{banner, fig12, Scale};

fn main() {
    banner("Fig. 12 — same generation vs Myria");
    fig12(Scale::from_env()).print();
}
