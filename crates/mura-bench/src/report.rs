//! Table output for the repro binaries: fixed-width text tables in the
//! shape of the paper's figures, plus a TSV mode for post-processing.

use crate::systems::Outcome;

/// Formats one outcome the way the paper's figures annotate them:
/// a time, `fail` (system crashed), or `timeout`.
pub fn fmt_outcome(o: &Outcome) -> String {
    match o {
        Outcome::Ok { millis, .. } => {
            if *millis >= 1000.0 {
                format!("{:.2}s", millis / 1000.0)
            } else {
                format!("{millis:.1}ms")
            }
        }
        Outcome::Failed(reason) => format!("fail({reason})"),
        Outcome::Timeout => "timeout".to_string(),
        Outcome::Unsupported => "n/a".to_string(),
    }
}

/// Formats an outcome's result cardinality.
pub fn fmt_rows(o: &Outcome) -> String {
    match o.rows() {
        Some(r) => r.to_string(),
        None => "-".to_string(),
    }
}

/// A simple fixed-width table writer.
pub struct Table {
    widths: Vec<usize>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            widths: header.iter().map(|h| h.len()).collect(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$} | ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &self.widths));
        out.push('\n');
        let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &self.widths));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &self.widths));
            out.push('\n');
        }
        out
    }

    /// Renders as TSV (for scripting).
    pub fn render_tsv(&self) -> String {
        let mut out = self.header.join("\t");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_formatting() {
        assert_eq!(fmt_outcome(&Outcome::Ok { millis: 12.34, rows: 5, comm_rows: 0 }), "12.3ms");
        assert_eq!(fmt_outcome(&Outcome::Ok { millis: 2500.0, rows: 5, comm_rows: 0 }), "2.50s");
        assert_eq!(fmt_outcome(&Outcome::Failed("OOM".into())), "fail(OOM)");
        assert_eq!(fmt_outcome(&Outcome::Timeout), "timeout");
        assert_eq!(fmt_outcome(&Outcome::Unsupported), "n/a");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["query", "time"]);
        t.row(vec!["Q1".into(), "1.0ms".into()]);
        t.row(vec!["Q22".into(), "timeout".into()]);
        let s = t.render();
        assert!(s.contains("| query | time    |"), "{s}");
        assert!(s.lines().count() == 4);
        let tsv = t.render_tsv();
        assert!(tsv.starts_with("query\ttime\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
