//! # mura-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) at
//! laptop scale:
//!
//! | paper artifact | harness entry |
//! |----------------|---------------|
//! | Table I (datasets + TC sizes)        | `repro_table1`, bench `table1_tc` |
//! | Fig. 5/6 (query classes)             | `repro_classes` |
//! | Fig. 7 (P_plw implementations)       | `repro_fig7`, bench `fig7_plw_impls` |
//! | Fig. 8 (Uniprot scalability)         | `repro_fig8`, bench `fig8_scalability` |
//! | Fig. 9 (Yago, all systems)           | `repro_fig9`, bench `fig9_yago` |
//! | Fig. 10 (concatenated closures)      | `repro_fig10`, bench `fig10_concat` |
//! | Fig. 11 (μ-RA queries)               | `repro_fig11`, bench `fig11_mura_queries` |
//! | Fig. 12 (Myria, same generation)     | `repro_fig12`, bench `fig12_myria_sg` |
//! | Fig. 13 (Uniprot, all systems)       | `repro_fig13`, bench `fig13_uniprot` |
//! | Fig. 14 (Myria, Uniprot)             | `repro_fig14`, bench `fig14_myria_uniprot` |
//! | §V-E communication claims            | `repro_comm`, bench `ablation_comm` |
//! | §III rewrite rules                   | bench `ablation_rewrites` |
//!
//! Run everything: `cargo run --release -p mura-bench --bin repro_all`.
//!
//! Graph sizes are scaled down (documented per dataset in [`datasets`]);
//! the reproduction target is the *shape* of each figure — which system
//! wins, by roughly what factor, where failures start — not absolute
//! seconds.

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod systems;

pub use datasets::*;
pub use experiments::*;
pub use report::*;
pub use systems::*;
