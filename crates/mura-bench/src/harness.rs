//! Minimal benchmark harness with a criterion-compatible surface.
//!
//! The workspace builds fully offline, so the benches cannot depend on the
//! criterion crate. This module implements the small slice of its API the
//! bench files use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `BatchSize` and the `criterion_group!`/`criterion_main!` macros — on
//! plain `std::time::Instant` timing. Keeping the surface identical means
//! the bench files read like every other Rust benchmark suite.
//!
//! Each benchmark runs one untimed warmup, then `sample_size` timed
//! samples, and prints `mean [min .. max]` to stdout.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level driver; holds nothing but exists for API compatibility.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> Group {
        println!("\n== {name} ==");
        Group { samples: 20 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), 20, f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct Group {
    samples: usize,
}

impl Group {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmarks a closure under the given name.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), self.samples, f);
        self
    }

    /// Benchmarks a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&id.0, self.samples, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Joins a function name and a parameter into one label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// How per-iteration setup output is batched. Only a hint in criterion;
/// ignored here (every iteration gets a fresh setup value).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over all samples (one untimed warmup first).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.timings.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh values from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.timings.push(t.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, timings: Vec::with_capacity(samples) };
    f(&mut b);
    if b.timings.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.timings.iter().sum();
    let mean = total / b.timings.len() as u32;
    let min = b.timings.iter().min().unwrap();
    let max = b.timings.iter().max().unwrap();
    println!(
        "{label:<40} {:>10.3?} [{:.3?} .. {:.3?}] ({} samples)",
        mean,
        min,
        max,
        b.timings.len()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher { samples: 5, timings: Vec::new() };
        b.iter(|| 1 + 1);
        assert_eq!(b.timings.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0;
        let mut b = Bencher { samples: 3, timings: Vec::new() };
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::LargeInput,
        );
        // 1 warmup + 3 samples.
        assert_eq!(setups, 4);
        assert_eq!(b.timings.len(), 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("sys", 42).0, "sys/42");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
