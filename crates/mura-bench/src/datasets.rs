//! Scaled experiment datasets.
//!
//! The paper's graphs are scaled to laptop size while keeping the
//! structural features the experiments depend on. The scale factor per
//! dataset:
//!
//! | paper             | here (repro)              | here (criterion)  |
//! |-------------------|---------------------------|-------------------|
//! | Yago (62M edges)  | yago-like, ~20k edges     | ~6k edges         |
//! | uniprot_{1,5,10}M | 20k / 60k / 120k edges    | 8k / 16k / 32k    |
//! | rnd_10k_0.001 …   | rnd_{400..2000} (TC keeps the super-linear blow-up) | smaller |
//! | tree_10 / tree_150 (thousands of nodes) | tree_{200..2000} | tree_200 |

use mura_core::Database;
use mura_datagen::SplitMix64;
use mura_datagen::{
    erdos_renyi, random_tree, uniprot_like, with_random_labels, yago_like, Graph, UniprotConfig,
    YagoConfig,
};

/// Yago-like database (repro scale).
pub fn yago_db(people: u64) -> Database {
    yago_like(YagoConfig { people, seed: 0xa60 }).to_database()
}

/// Uniprot-like database with roughly `edges` edges.
pub fn uniprot_db(edges: u64) -> Database {
    uniprot_like(UniprotConfig { target_edges: edges, seed: 0x09 }).to_database()
}

/// Erdős–Rényi graph as a single-relation database (`edge`).
pub fn rnd_db(n: u64, p: f64, seed: u64) -> Database {
    erdos_renyi(n, p, seed).to_database()
}

/// Erdős–Rényi graph with `k` random labels `a1..ak`.
pub fn labeled_rnd_db(n: u64, p: f64, k: u32, seed: u64) -> Database {
    labeled_rnd_graph(n, p, k, seed).to_database()
}

/// The underlying labeled graph (for Table I-style stats).
pub fn labeled_rnd_graph(n: u64, p: f64, k: u32, seed: u64) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0x5eed);
    let g = erdos_renyi(n, p, seed);
    with_random_labels(&g, k, &mut rng)
}

/// Random recursive tree database (`edge` relation).
pub fn tree_db(n: u64, seed: u64) -> Database {
    random_tree(n, seed).to_database()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build() {
        assert!(yago_db(200).total_rows() > 500);
        assert!(uniprot_db(2000).total_rows() > 800);
        assert!(rnd_db(100, 0.05, 1).total_rows() > 100);
        let l = labeled_rnd_db(100, 0.05, 3, 1);
        assert!(l.relation_count() == 3);
        assert_eq!(tree_db(100, 1).total_rows(), 99);
    }
}
