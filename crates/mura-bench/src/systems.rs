//! Unified runner over all compared systems.
//!
//! Maps the paper's five systems (§V-C) to the workspace's engines:
//!
//! | paper                       | here |
//! |-----------------------------|------|
//! | Dist-μ-RA                   | full rewriter + auto plan (`P_plw` when stable) |
//! | Dist-μ-RA with `P_gld`      | full rewriter + forced global-loop plan |
//! | Dist-μ-RA `P_plw^pg`        | full rewriter + sorted local engine (Fig. 7) |
//! | BigDatalog                  | Datalog pipeline, magic-sets envelope, GPS decomposition |
//! | Myria                       | Datalog pipeline, no recursion-aware rewrites, global sync |
//! | GraphX                      | Pregel/NFA engine |
//! | Centralized μ-RA            | full rewriter + single-threaded evaluator |
//!
//! Failures are produced *honestly*: every engine runs under the same row
//! (or message) budget; an engine "fails" exactly when its intermediate
//! results exceed it, and "times out" when the deadline passes — the same
//! two outcomes the paper reports.

use mura_core::eval::{EvalOptions, Evaluator};
use mura_core::{Database, MuraError, Sym, Value};
use mura_datalog::ast::{DlAtom, DlTerm, Program, Rule};
use mura_datalog::{DatalogEngine, DatalogStyle};
use mura_dist::exec::{ExecConfig, FixpointPlan, ResourceLimits};
use mura_dist::{LocalEngine, QueryEngine};
use mura_pregel::{PregelConfig, PregelEngine};
use mura_rewrite::Rewriter;
use std::time::{Duration, Instant};

/// The compared systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemId {
    DistMuRA,
    DistMuRAGld,
    DistMuRAPlwSorted,
    BigDatalog,
    Myria,
    GraphX,
    Centralized,
}

impl SystemId {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            SystemId::DistMuRA => "Dist-muRA",
            SystemId::DistMuRAGld => "Dist-muRA(Pgld)",
            SystemId::DistMuRAPlwSorted => "Dist-muRA(Pplw-pg)",
            SystemId::BigDatalog => "BigDatalog",
            SystemId::Myria => "Myria",
            SystemId::GraphX => "GraphX",
            SystemId::Centralized => "muRA-central",
        }
    }

    /// The system set of the paper's Fig. 9 (Yago comparison).
    pub fn fig9_set() -> [SystemId; 5] {
        [
            SystemId::DistMuRA,
            SystemId::DistMuRAGld,
            SystemId::BigDatalog,
            SystemId::GraphX,
            SystemId::Centralized,
        ]
    }
}

/// A workload item: a UCRPQ or one of the paper's non-regular μ-RA terms
/// (§V-D c).
#[derive(Debug, Clone)]
pub enum Workload {
    Ucrpq(String),
    /// aⁿbⁿ over two edge labels.
    AnBn {
        a: String,
        b: String,
    },
    /// Same generation over a parent relation.
    SameGeneration {
        rel: String,
    },
    /// Reachability from a source node.
    Reach {
        rel: String,
        source: u64,
    },
}

impl Workload {
    pub fn ucrpq(q: &str) -> Workload {
        Workload::Ucrpq(q.to_string())
    }
}

/// Budgets shared by all systems in one experiment.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    pub timeout: Duration,
    pub max_rows: u64,
    pub workers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { timeout: Duration::from_secs(30), max_rows: 50_000_000, workers: 4 }
    }
}

/// Outcome of one (system, workload) run.
#[derive(Debug, Clone)]
pub enum Outcome {
    Ok {
        millis: f64,
        rows: usize,
        /// Rows shuffled + broadcast (0 for centralized systems).
        comm_rows: u64,
    },
    Failed(String),
    Timeout,
    Unsupported,
}

impl Outcome {
    /// Milliseconds if the run succeeded.
    pub fn millis(&self) -> Option<f64> {
        match self {
            Outcome::Ok { millis, .. } => Some(*millis),
            _ => None,
        }
    }

    /// Result cardinality if the run succeeded.
    pub fn rows(&self) -> Option<usize> {
        match self {
            Outcome::Ok { rows, .. } => Some(*rows),
            _ => None,
        }
    }
}

fn classify_err(e: MuraError) -> Outcome {
    match e {
        MuraError::Timeout { .. } => Outcome::Timeout,
        MuraError::ResourceExhausted { .. } => Outcome::Failed("OOM".into()),
        other => Outcome::Failed(other.to_string()),
    }
}

/// Runs one workload on one system under the given budgets.
pub fn run_system(system: SystemId, db: &Database, w: &Workload, limits: Limits) -> Outcome {
    match system {
        SystemId::DistMuRA => run_dist(db, w, limits, FixpointPlan::Auto, LocalEngine::SetRdd),
        SystemId::DistMuRAGld => {
            run_dist(db, w, limits, FixpointPlan::ForceGld, LocalEngine::SetRdd)
        }
        SystemId::DistMuRAPlwSorted => {
            run_dist(db, w, limits, FixpointPlan::Auto, LocalEngine::Sorted)
        }
        SystemId::BigDatalog => run_datalog(db, w, limits, DatalogStyle::BigDatalog),
        SystemId::Myria => run_datalog(db, w, limits, DatalogStyle::Myria),
        SystemId::GraphX => run_graphx(db, w, limits),
        SystemId::Centralized => run_centralized(db, w, limits),
    }
}

fn exec_config(limits: Limits, plan: FixpointPlan, engine: LocalEngine) -> ExecConfig {
    ExecConfig {
        workers: limits.workers,
        plan,
        local_engine: engine,
        broadcast_threshold: 1_000_000,
        limits: ResourceLimits {
            max_rows: Some(limits.max_rows),
            max_bytes: None,
            timeout: Some(limits.timeout),
        },
        ..Default::default()
    }
}

fn run_dist(
    db: &Database,
    w: &Workload,
    limits: Limits,
    plan: FixpointPlan,
    engine: LocalEngine,
) -> Outcome {
    let config = exec_config(limits, plan, engine);
    let mut qe = QueryEngine::with_config(db.clone(), config);
    let result = match w {
        Workload::Ucrpq(q) => qe.run_ucrpq(q),
        Workload::AnBn { a, b } => {
            mura_ucrpq::suites::anbn_term(qe.db_mut(), a, b).and_then(|t| qe.run_term(&t))
        }
        Workload::SameGeneration { rel } => {
            mura_ucrpq::suites::same_generation_term(qe.db_mut(), rel).and_then(|t| qe.run_term(&t))
        }
        Workload::Reach { rel, source } => {
            mura_ucrpq::suites::reach_term(qe.db_mut(), rel, Value::node(*source))
                .and_then(|t| qe.run_term(&t))
        }
    };
    match result {
        Ok(out) => Outcome::Ok {
            millis: out.wall().as_secs_f64() * 1e3,
            rows: out.relation.len(),
            comm_rows: out.comm.rows_shuffled + out.comm.rows_broadcast,
        },
        Err(e) => classify_err(e),
    }
}

fn run_datalog(db: &Database, w: &Workload, limits: Limits, style: DatalogStyle) -> Outcome {
    let config = exec_config(
        limits,
        match style {
            DatalogStyle::BigDatalog => FixpointPlan::Auto,
            DatalogStyle::Myria => FixpointPlan::ForceGld,
        },
        LocalEngine::SetRdd,
    );
    let mut e = DatalogEngine::new(db.clone(), style).with_config(config);
    let result = match w {
        Workload::Ucrpq(q) => e.run_ucrpq(q),
        Workload::AnBn { a, b } => {
            let p = anbn_program(a, b);
            e.run_program_term(&p)
        }
        Workload::SameGeneration { rel } => {
            let p = same_generation_program(rel);
            e.run_program_term(&p)
        }
        Workload::Reach { rel, source } => {
            let p = reach_program(rel, *source);
            e.run_program_term(&p)
        }
    };
    match result {
        Ok(out) => Outcome::Ok {
            millis: out.wall().as_secs_f64() * 1e3,
            rows: out.relation.len(),
            comm_rows: out.comm.rows_shuffled + out.comm.rows_broadcast,
        },
        Err(e) => classify_err(e),
    }
}

fn run_graphx(db: &Database, w: &Workload, limits: Limits) -> Outcome {
    let Workload::Ucrpq(q) = w else {
        // aⁿbⁿ and same-generation are not regular path queries.
        return Outcome::Unsupported;
    };
    // Intern the ?var columns the Pregel engine resolves results against.
    let mut db = db.clone();
    let Ok(parsed) = mura_ucrpq::parse_ucrpq(q) else {
        return Outcome::Failed("parse error".into());
    };
    mura_pregel::engine::intern_query_vars(&parsed, &mut db);
    let config = PregelConfig {
        workers: limits.workers,
        // One message carries one (origin, state) pair — comparable to a
        // row in the relational engines.
        max_messages: Some(limits.max_rows),
        max_supersteps: 1_000_000,
        timeout: Some(limits.timeout),
    };
    let engine = PregelEngine::new(db, config);
    match engine.run(&parsed) {
        Ok(out) => Outcome::Ok {
            millis: out.wall.as_secs_f64() * 1e3,
            rows: out.relation.len(),
            comm_rows: out.stats.messages,
        },
        Err(e) => classify_err(e),
    }
}

fn run_centralized(db: &Database, w: &Workload, limits: Limits) -> Outcome {
    let mut db = db.clone();
    let start = Instant::now();
    let term = match w {
        Workload::Ucrpq(q) => {
            mura_ucrpq::parse_ucrpq(q).and_then(|p| mura_ucrpq::to_mura(&p, &mut db))
        }
        Workload::AnBn { a, b } => mura_ucrpq::suites::anbn_term(&mut db, a, b),
        Workload::SameGeneration { rel } => mura_ucrpq::suites::same_generation_term(&mut db, rel),
        Workload::Reach { rel, source } => {
            mura_ucrpq::suites::reach_term(&mut db, rel, Value::node(*source))
        }
    };
    let term = match term {
        Ok(t) => t,
        Err(e) => return classify_err(e),
    };
    // The centralized system uses the same logical optimizer (the paper's
    // centralized μ-RA on PostgreSQL shares the rewriter).
    let plan = match Rewriter::new(&mut db).optimize(&term, &mut db) {
        Ok(p) => p,
        Err(e) => return classify_err(e),
    };
    let opts = EvalOptions {
        semi_naive: true,
        max_rows: Some(limits.max_rows),
        timeout: Some(limits.timeout),
    };
    match Evaluator::new(&db, opts).eval(&plan) {
        Ok(rel) => Outcome::Ok {
            millis: start.elapsed().as_secs_f64() * 1e3,
            rows: rel.len(),
            comm_rows: 0,
        },
        Err(e) => classify_err(e),
    }
}

// ----------------------------------------------------- datalog specials

/// `anbn(X,Y) :- a(X,Z), b(Z,Y).  anbn(X,Y) :- a(X,P), anbn(P,Q), b(Q,Y).`
pub fn anbn_program(a: &str, b: &str) -> Program {
    Program {
        rules: vec![
            Rule {
                head: DlAtom::new("anbn", &["x", "y"]),
                body: vec![DlAtom::new(a, &["x", "z"]), DlAtom::new(b, &["z", "y"])],
            },
            Rule {
                head: DlAtom::new("anbn", &["x", "y"]),
                body: vec![
                    DlAtom::new(a, &["x", "p"]),
                    DlAtom::new("anbn", &["p", "q"]),
                    DlAtom::new(b, &["q", "y"]),
                ],
            },
        ],
        query: DlAtom::new("anbn", &["x", "y"]),
    }
}

/// Classic same-generation program.
pub fn same_generation_program(rel: &str) -> Program {
    Program {
        rules: vec![
            Rule {
                head: DlAtom::new("sg", &["x", "y"]),
                body: vec![DlAtom::new(rel, &["p", "x"]), DlAtom::new(rel, &["p", "y"])],
            },
            Rule {
                head: DlAtom::new("sg", &["x", "y"]),
                body: vec![
                    DlAtom::new(rel, &["p", "x"]),
                    DlAtom::new("sg", &["p", "q"]),
                    DlAtom::new(rel, &["q", "y"]),
                ],
            },
        ],
        query: DlAtom::new("sg", &["x", "y"]),
    }
}

/// Reachability from a constant source.
pub fn reach_program(rel: &str, source: u64) -> Program {
    let c = DlTerm::Cst(Value::node(source));
    Program {
        rules: vec![
            Rule {
                head: DlAtom::new("reach", &["y"]),
                body: vec![DlAtom {
                    pred: rel.to_string(),
                    args: vec![c.clone(), DlTerm::Var("y".into())],
                }],
            },
            Rule {
                head: DlAtom::new("reach", &["y"]),
                body: vec![DlAtom::new("reach", &["x"]), DlAtom::new(rel, &["x", "y"])],
            },
        ],
        query: DlAtom::new("reach", &["y"]),
    }
}

/// Resolves a named constant's node id (for Pregel-style anchored runs).
pub fn constant_node(db: &Database, name: &str) -> Option<u64> {
    db.constant(name).and_then(|v| v.as_int()).map(|i| i as u64)
}

/// Interns a symbol by name (test/bench convenience).
pub fn sym(db: &mut Database, name: &str) -> Sym {
    db.intern(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{labeled_rnd_db, rnd_db, tree_db};

    #[test]
    fn all_systems_agree_on_a_small_tc() {
        let db = labeled_rnd_db(80, 0.03, 2, 7);
        let w = Workload::ucrpq("?x, ?y <- ?x a1+ ?y");
        let limits = Limits::default();
        let reference = run_system(SystemId::Centralized, &db, &w, limits);
        let expected = reference.rows().expect("centralized must succeed");
        for s in [
            SystemId::DistMuRA,
            SystemId::DistMuRAGld,
            SystemId::DistMuRAPlwSorted,
            SystemId::BigDatalog,
            SystemId::Myria,
            SystemId::GraphX,
        ] {
            let out = run_system(s, &db, &w, limits);
            assert_eq!(out.rows(), Some(expected), "{} diverged: {out:?}", s.name());
        }
    }

    #[test]
    fn specials_agree_across_relational_systems() {
        let db = tree_db(120, 3);
        let limits = Limits::default();
        for w in [
            Workload::SameGeneration { rel: "edge".into() },
            Workload::Reach { rel: "edge".into(), source: 0 },
        ] {
            let reference = run_system(SystemId::Centralized, &db, &w, limits);
            let expected = reference.rows().expect("centralized must succeed");
            for s in [SystemId::DistMuRA, SystemId::BigDatalog, SystemId::Myria] {
                let out = run_system(s, &db, &w, limits);
                assert_eq!(out.rows(), Some(expected), "{} on {w:?}: {out:?}", s.name());
            }
            // Not a regular path query.
            assert!(matches!(run_system(SystemId::GraphX, &db, &w, limits), Outcome::Unsupported));
        }
    }

    #[test]
    fn anbn_agrees() {
        let db = labeled_rnd_db(100, 0.03, 2, 9);
        let w = Workload::AnBn { a: "a1".into(), b: "a2".into() };
        let limits = Limits::default();
        let expected = run_system(SystemId::Centralized, &db, &w, limits).rows().unwrap();
        for s in [SystemId::DistMuRA, SystemId::BigDatalog] {
            let out = run_system(s, &db, &w, limits);
            assert_eq!(out.rows(), Some(expected), "{}", s.name());
        }
    }

    #[test]
    fn budget_produces_failed_outcome() {
        let db = rnd_db(300, 0.02, 5);
        let w = Workload::ucrpq("?x, ?y <- ?x edge+ ?y");
        let limits = Limits { max_rows: 50, ..Default::default() };
        let out = run_system(SystemId::DistMuRA, &db, &w, limits);
        assert!(matches!(out, Outcome::Failed(_)), "{out:?}");
    }
}
