//! The paper's experiments (§V), one function per table/figure.
//!
//! Every function returns a rendered [`Table`] whose rows mirror the
//! corresponding figure's series. Binaries under `src/bin/` are thin
//! wrappers; criterion benches reuse the same workloads at smaller scale.

use crate::datasets::*;
use crate::report::{fmt_outcome, Table};
use crate::systems::{run_system, Limits, Outcome, SystemId, Workload};
use mura_core::Database;
use mura_datagen::{random_tree, tc_size, uniprot_like, UniprotConfig};
use mura_ucrpq::suites::{concat_closure_query, uniprot_queries, yago_queries};
use mura_ucrpq::{classify, parse_ucrpq};
use std::time::Duration;

/// Experiment scale knobs. `repro()` is the default for the `repro_*`
/// binaries; `quick()` keeps criterion benches and CI fast.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub yago_people: u64,
    pub uniprot_sizes: [u64; 3],
    pub uniprot_small: u64,
    pub timeout: Duration,
    pub max_rows: u64,
    /// Myria ran on a single machine in the paper — smaller budget.
    pub myria_max_rows: u64,
    pub concat_max_n: usize,
}

impl Scale {
    /// Default scale of the repro binaries.
    pub fn repro() -> Scale {
        Scale {
            yago_people: 1200,
            uniprot_sizes: [8_000, 16_000, 32_000],
            uniprot_small: 4_000,
            // The paper's cluster timeout is 1000s on 62M-edge graphs; at
            // our ~3000x smaller scale, 20s plays the same role.
            timeout: Duration::from_secs(20),
            max_rows: 10_000_000,
            myria_max_rows: 1_000_000,
            concat_max_n: 8,
        }
    }

    /// Reduced scale for criterion benches / CI.
    pub fn quick() -> Scale {
        Scale {
            yago_people: 400,
            uniprot_sizes: [4_000, 8_000, 16_000],
            uniprot_small: 3_000,
            timeout: Duration::from_secs(10),
            max_rows: 3_000_000,
            myria_max_rows: 400_000,
            concat_max_n: 5,
        }
    }

    /// Reads `REPRO_QUICK=1` to switch scales from the environment.
    pub fn from_env() -> Scale {
        if std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1") {
            Scale::quick()
        } else {
            Scale::repro()
        }
    }

    /// Budgets for the standard cluster systems.
    pub fn limits(&self) -> Limits {
        Limits { timeout: self.timeout, max_rows: self.max_rows, workers: 4 }
    }

    /// Budgets for Myria (single-machine configuration of the paper).
    pub fn myria_limits(&self) -> Limits {
        Limits { timeout: self.timeout, max_rows: self.myria_max_rows, workers: 4 }
    }
}

// ------------------------------------------------------------- Table I

/// Table I: the synthetic dataset inventory with exact TC sizes.
pub fn table1(scale: Scale) -> Table {
    let mut t = Table::new(&["dataset", "edges", "nodes", "TC size"]);
    let rnd_specs: &[(u64, f64, &str)] = &[
        (400, 0.01, "rnd_400_0.01"),
        (800, 0.005, "rnd_800_0.005"),
        (1200, 0.0033, "rnd_1200_0.0033"),
        (400, 0.05, "rnd_400_0.05"),
        (2000, 0.002, "rnd_2000_0.002"),
    ];
    for &(n, p, name) in rnd_specs {
        let g = mura_datagen::erdos_renyi(n, p, 42);
        t.row(vec![
            name.to_string(),
            g.edge_count().to_string(),
            n.to_string(),
            tc_size(&g).to_string(),
        ]);
    }
    for n in [1000u64, 5000] {
        let g = random_tree(n, 42);
        t.row(vec![
            format!("tree_{n}"),
            g.edge_count().to_string(),
            n.to_string(),
            tc_size(&g).to_string(),
        ]);
    }
    for edges in scale.uniprot_sizes {
        let g = uniprot_like(UniprotConfig { target_edges: edges, seed: 0x09 });
        t.row(vec![
            format!("uniprot_{edges}"),
            g.edge_count().to_string(),
            g.n_nodes.to_string(),
            "-".to_string(), // like the paper, TC not reported for uniprot
        ]);
    }
    t
}

// -------------------------------------------------------- Fig. 5 / 6

/// The class matrix of the query suites (paper Figs. 5 and 6).
pub fn class_matrix() -> Table {
    let mut t = Table::new(&["query", "C1", "C2", "C3", "C4", "C5", "C6", "text"]);
    for q in yago_queries().iter().chain(uniprot_queries().iter()) {
        let classes = classify(&parse_ucrpq(q.text).expect("suite query parses"));
        let mark =
            |c: mura_ucrpq::QueryClass| if classes.contains(&c) { "x" } else { "" }.to_string();
        use mura_ucrpq::QueryClass::*;
        t.row(vec![
            q.id.to_string(),
            mark(C1),
            mark(C2),
            mark(C3),
            mark(C4),
            mark(C5),
            mark(C6),
            q.text.chars().take(60).collect(),
        ]);
    }
    t
}

// ------------------------------------------------------------- Fig. 7

/// Fig. 7: the two `P_plw` implementations on the Yago suite.
pub fn fig7(scale: Scale) -> Table {
    let db = yago_db(scale.yago_people);
    let limits = scale.limits();
    let mut t = Table::new(&["query", "Pplw-SetRDD", "Pplw-sorted(pg)"]);
    for q in yago_queries() {
        let w = Workload::ucrpq(q.text);
        let set = run_system(SystemId::DistMuRA, &db, &w, limits);
        let sorted = run_system(SystemId::DistMuRAPlwSorted, &db, &w, limits);
        t.row(vec![q.id.to_string(), fmt_outcome(&set), fmt_outcome(&sorted)]);
    }
    t
}

// ------------------------------------------------------------- Fig. 9

/// Fig. 9: the Yago suite across all systems.
pub fn fig9(scale: Scale) -> Table {
    let db = yago_db(scale.yago_people);
    let limits = scale.limits();
    let systems = SystemId::fig9_set();
    let mut header: Vec<&str> = vec!["query"];
    header.extend(systems.iter().map(|s| s.name()));
    let mut t = Table::new(&header);
    for q in yago_queries() {
        let w = Workload::ucrpq(q.text);
        let mut row = vec![q.id.to_string()];
        for s in systems {
            row.push(fmt_outcome(&run_system(s, &db, &w, limits)));
        }
        t.row(row);
    }
    t
}

// ------------------------------------------------------------- Fig. 8

/// Fig. 8: Dist-μ-RA vs BigDatalog on growing Uniprot graphs (the paper's
/// uniprot_{1M,5M,10M} sweep where BigDatalog fails 44/75 evaluations).
pub fn fig8(scale: Scale) -> Table {
    let limits = scale.limits();
    let mut t = Table::new(&["query", "size", "Dist-muRA", "BigDatalog"]);
    for edges in scale.uniprot_sizes {
        let db = uniprot_db(edges);
        for q in uniprot_queries() {
            let w = Workload::ucrpq(q.text);
            let a = run_system(SystemId::DistMuRA, &db, &w, limits);
            let b = run_system(SystemId::BigDatalog, &db, &w, limits);
            t.row(vec![q.id.to_string(), edges.to_string(), fmt_outcome(&a), fmt_outcome(&b)]);
        }
    }
    t
}

// ------------------------------------------------------------ Fig. 10

/// Fig. 10: concatenated closures `a1+/…/an+`.
pub fn fig10(scale: Scale) -> Table {
    let db = labeled_rnd_db(600, 0.03, 10, 77);
    let limits = scale.limits();
    let systems =
        [SystemId::DistMuRA, SystemId::BigDatalog, SystemId::GraphX, SystemId::Centralized];
    let mut header: Vec<&str> = vec!["n"];
    header.extend(systems.iter().map(|s| s.name()));
    let mut t = Table::new(&header);
    for n in 2..=scale.concat_max_n {
        let q = concat_closure_query(n);
        let w = Workload::Ucrpq(q);
        let mut row = vec![n.to_string()];
        for s in systems {
            row.push(fmt_outcome(&run_system(s, &db, &w, limits)));
        }
        t.row(row);
    }
    t
}

// ------------------------------------------------------------ Fig. 11

/// Fig. 11: the non-regular μ-RA queries (aⁿbⁿ, same generation, reach).
pub fn fig11(scale: Scale) -> Table {
    let limits = scale.limits();
    let mut t = Table::new(&["query", "dataset", "Dist-muRA", "BigDatalog"]);
    let mut run = |name: &str, ds: &str, db: &Database, w: &Workload| {
        let a = run_system(SystemId::DistMuRA, db, w, limits);
        let b = run_system(SystemId::BigDatalog, db, w, limits);
        t.row(vec![name.to_string(), ds.to_string(), fmt_outcome(&a), fmt_outcome(&b)]);
    };
    for (n, p, seed) in [(400u64, 0.01, 1u64), (800, 0.005, 2)] {
        let db = labeled_rnd_db(n, p, 2, seed);
        let ds = format!("rnd_{n}_{p}");
        run("anbn", &ds, &db, &Workload::AnBn { a: "a1".into(), b: "a2".into() });
    }
    for n in [1000u64, 5000] {
        let db = tree_db(n, 3);
        run(
            "same_gen",
            &format!("tree_{n}"),
            &db,
            &Workload::SameGeneration { rel: "edge".into() },
        );
    }
    for (n, p) in [(400u64, 0.01), (1000, 0.004)] {
        let db = rnd_db(n, p, 5);
        run(
            "same_gen",
            &format!("rnd_{n}_{p}"),
            &db,
            &Workload::SameGeneration { rel: "edge".into() },
        );
        let db2 = rnd_db(n, p, 6);
        run(
            "reach",
            &format!("rnd_{n}_{p}"),
            &db2,
            &Workload::Reach { rel: "edge".into(), source: 0 },
        );
    }
    t
}

// ------------------------------------------------------------ Fig. 12

/// Fig. 12: Myria vs Dist-μ-RA on same generation over growing graphs
/// (the paper: the gap widens with size; Myria crashes on `rnd_10k_0.001`).
pub fn fig12(scale: Scale) -> Table {
    let mut t = Table::new(&["dataset", "Dist-muRA", "Myria"]);
    let w = Workload::SameGeneration { rel: "edge".into() };
    let datasets: Vec<(String, Database)> = vec![
        ("tree_200".into(), tree_db(200, 1)),
        ("tree_1000".into(), tree_db(1000, 1)),
        ("rnd_200_0.01".into(), rnd_db(200, 0.01, 2)),
        ("rnd_400_0.01".into(), rnd_db(400, 0.01, 2)),
        ("rnd_800_0.01".into(), rnd_db(800, 0.01, 2)),
    ];
    for (name, db) in datasets {
        let a = run_system(SystemId::DistMuRA, &db, &w, scale.limits());
        let b = run_system(SystemId::Myria, &db, &w, scale.myria_limits());
        t.row(vec![name, fmt_outcome(&a), fmt_outcome(&b)]);
    }
    t
}

// ------------------------------------------------------------ Fig. 13

/// Fig. 13: the Uniprot suite across systems on `uniprot_1M` (scaled).
pub fn fig13(scale: Scale) -> Table {
    let db = uniprot_db(scale.uniprot_sizes[0]);
    let limits = scale.limits();
    let systems =
        [SystemId::DistMuRA, SystemId::DistMuRAGld, SystemId::BigDatalog, SystemId::GraphX];
    let mut header: Vec<&str> = vec!["query"];
    header.extend(systems.iter().map(|s| s.name()));
    let mut t = Table::new(&header);
    for q in uniprot_queries() {
        let w = Workload::ucrpq(q.text);
        let mut row = vec![q.id.to_string()];
        for s in systems {
            row.push(fmt_outcome(&run_system(s, &db, &w, limits)));
        }
        t.row(row);
    }
    t
}

// ------------------------------------------------------------ Fig. 14

/// Fig. 14: Myria vs Dist-μ-RA on the small Uniprot graph.
pub fn fig14(scale: Scale) -> Table {
    let db = uniprot_db(scale.uniprot_small);
    let mut t = Table::new(&["query", "Dist-muRA", "Myria"]);
    for q in uniprot_queries() {
        let w = Workload::ucrpq(q.text);
        let a = run_system(SystemId::DistMuRA, &db, &w, scale.limits());
        let b = run_system(SystemId::Myria, &db, &w, scale.myria_limits());
        t.row(vec![q.id.to_string(), fmt_outcome(&a), fmt_outcome(&b)]);
    }
    t
}

// ----------------------------------------------- communication ablation

/// §IV/§V-E claim: `P_plw` eliminates per-iteration communication.
/// Reports shuffle/broadcast volumes for auto plan selection vs forced
/// `P_gld` on one representative query per class.
pub fn comm_ablation(scale: Scale) -> Table {
    let db = yago_db(scale.yago_people);
    let limits = scale.limits();
    let queries: &[(&str, &str)] = &[
        ("C1", "?a, ?b <- ?a isLocatedIn+ ?b"),
        ("C2", "?a <- ?a isLocatedIn+ Japan"),
        ("C3", "?a <- Japan dealsWith+ ?a"),
        ("C4", "?a, ?b <- ?a isLocatedIn+/dealsWith ?b"),
        ("C5", "?a, ?b <- ?a wasBornIn/isLocatedIn+ ?b"),
        ("C6", "?a, ?b <- ?a isLocatedIn+/dealsWith+ ?b"),
    ];
    let mut t =
        Table::new(&["class", "plan", "time", "shuffles", "rows shuffled", "rows broadcast"]);
    for (class, q) in queries {
        for (plan_name, system) in [("auto", SystemId::DistMuRA), ("Pgld", SystemId::DistMuRAGld)] {
            let out = run_system(system, &db, &Workload::ucrpq(q), limits);
            let (shuffled, broadcast) = match &out {
                Outcome::Ok { comm_rows, .. } => (*comm_rows, 0),
                _ => (0, 0),
            };
            // run_system folds comm into one number; re-run through the
            // QueryEngine for the detailed split.
            let detail = detailed_comm(&db, q, system, limits);
            let _ = (shuffled, broadcast);
            match detail {
                Some((time, shuffles, rs, rb)) => t.row(vec![
                    class.to_string(),
                    plan_name.to_string(),
                    format!("{time:.1}ms"),
                    shuffles.to_string(),
                    rs.to_string(),
                    rb.to_string(),
                ]),
                None => t.row(vec![
                    class.to_string(),
                    plan_name.to_string(),
                    fmt_outcome(&out),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
    }
    t
}

fn detailed_comm(
    db: &Database,
    query: &str,
    system: SystemId,
    limits: Limits,
) -> Option<(f64, u64, u64, u64)> {
    use mura_dist::exec::{ExecConfig, FixpointPlan, ResourceLimits};
    let plan = match system {
        SystemId::DistMuRAGld => FixpointPlan::ForceGld,
        _ => FixpointPlan::Auto,
    };
    let config = ExecConfig {
        workers: limits.workers,
        plan,
        local_engine: mura_dist::LocalEngine::SetRdd,
        broadcast_threshold: 1_000_000,
        limits: ResourceLimits {
            max_rows: Some(limits.max_rows),
            max_bytes: None,
            timeout: Some(limits.timeout),
        },
        ..Default::default()
    };
    let mut qe = mura_dist::QueryEngine::with_config(db.clone(), config);
    let out = qe.run_ucrpq(query).ok()?;
    Some((
        out.wall().as_secs_f64() * 1e3,
        out.comm.shuffles,
        out.comm.rows_shuffled,
        out.comm.rows_broadcast,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_rows() {
        let t = table1(Scale::quick());
        let s = t.render();
        assert!(s.contains("rnd_400_0.01"));
        assert!(s.contains("tree_1000"));
        assert!(s.contains("uniprot_"), "{s}");
    }

    #[test]
    fn class_matrix_covers_q1_to_q50() {
        let s = class_matrix().render();
        assert!(s.contains("Q1 "));
        assert!(s.contains("Q50"));
    }

    #[test]
    fn comm_ablation_shows_plw_advantage() {
        let scale = Scale::quick();
        let db = yago_db(scale.yago_people);
        let limits = scale.limits();
        let auto = detailed_comm(&db, "?a, ?b <- ?a isLocatedIn+ ?b", SystemId::DistMuRA, limits)
            .expect("auto run succeeds");
        let gld = detailed_comm(&db, "?a, ?b <- ?a isLocatedIn+ ?b", SystemId::DistMuRAGld, limits)
            .expect("gld run succeeds");
        assert!(auto.1 < gld.1, "P_plw must shuffle fewer times ({} vs {})", auto.1, gld.1);
    }
}
