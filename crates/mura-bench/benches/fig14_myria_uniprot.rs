//! Fig. 14: Myria vs Dist-muRA on the small Uniprot graph.
use mura_bench::harness::Criterion;
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, uniprot_db, Limits, SystemId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_myria_uniprot");
    g.sample_size(10);
    let db = uniprot_db(3_000);
    let limits = Limits::default();
    let w = Workload::ucrpq("?x <- HubProtein (encodes/-encodes)+ ?x");
    g.bench_function("dist_mura", |b| b.iter(|| run_system(SystemId::DistMuRA, &db, &w, limits)));
    g.bench_function("myria", |b| b.iter(|| run_system(SystemId::Myria, &db, &w, limits)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
