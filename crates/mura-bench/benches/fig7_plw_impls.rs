//! Fig. 7: P_plw local engines (SetRDD vs sorted/pg) on a Yago query.
use mura_bench::harness::Criterion;
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, yago_db, Limits, SystemId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_plw_impls");
    g.sample_size(10);
    let db = yago_db(400);
    let w = Workload::ucrpq("?x <- ?x isLocatedIn+/dealsWith+ United_States");
    let limits = Limits::default();
    g.bench_function("setrdd", |b| b.iter(|| run_system(SystemId::DistMuRA, &db, &w, limits)));
    g.bench_function("sorted_pg", |b| {
        b.iter(|| run_system(SystemId::DistMuRAPlwSorted, &db, &w, limits))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
