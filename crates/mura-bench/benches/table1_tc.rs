//! Table I: transitive closure size computation on the synthetic graphs.
use mura_bench::harness::Criterion;
use mura_bench::{criterion_group, criterion_main};
use mura_datagen::{erdos_renyi, random_tree, tc_size};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_tc");
    g.sample_size(10);
    let rnd = erdos_renyi(400, 0.01, 42);
    g.bench_function("tc_rnd_400_0.01", |b| b.iter(|| tc_size(std::hint::black_box(&rnd))));
    let tree = random_tree(1000, 42);
    g.bench_function("tc_tree_1000", |b| b.iter(|| tc_size(std::hint::black_box(&tree))));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
