//! Ablation: P_plw vs P_gld (the paper's central communication claim,
//! Fig. 4 / Fig. 9 discussion) — wall time on a stable-column closure.
use mura_bench::harness::Criterion;
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, yago_db, Limits, SystemId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_comm");
    g.sample_size(10);
    let db = yago_db(400);
    let limits = Limits::default();
    let w = Workload::ucrpq("?a, ?b <- ?a isLocatedIn+ ?b");
    g.bench_function("auto_plw", |b| b.iter(|| run_system(SystemId::DistMuRA, &db, &w, limits)));
    g.bench_function("forced_gld", |b| {
        b.iter(|| run_system(SystemId::DistMuRAGld, &db, &w, limits))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
