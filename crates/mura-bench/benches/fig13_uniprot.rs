//! Fig. 13: Uniprot queries across systems.
use mura_bench::harness::{BenchmarkId, Criterion};
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, uniprot_db, Limits, SystemId, Workload};
use mura_ucrpq::suites::uniprot_queries;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_uniprot");
    g.sample_size(10);
    let db = uniprot_db(4_000);
    let limits = Limits::default();
    let suite = uniprot_queries();
    for id in ["Q36", "Q49", "Q42"] {
        let q = suite.iter().find(|q| q.id == id).expect("suite query");
        let w = Workload::ucrpq(q.text);
        for s in [SystemId::DistMuRA, SystemId::BigDatalog, SystemId::GraphX] {
            g.bench_with_input(BenchmarkId::new(s.name(), id), &w, |b, w| {
                b.iter(|| run_system(s, &db, w, limits))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
