//! Fig. 8: Uniprot scalability, Dist-muRA vs BigDatalog (Q31).
use mura_bench::harness::{BenchmarkId, Criterion};
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, uniprot_db, Limits, SystemId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_scalability");
    g.sample_size(10);
    let w = Workload::ucrpq("?x, ?y <- ?x interacts+/(occurs/-occurs)+ ?y");
    let limits = Limits::default();
    for edges in [4_000u64, 8_000] {
        let db = uniprot_db(edges);
        g.bench_with_input(BenchmarkId::new("dist_mura", edges), &db, |b, db| {
            b.iter(|| run_system(SystemId::DistMuRA, db, &w, limits))
        });
        g.bench_with_input(BenchmarkId::new("bigdatalog", edges), &db, |b, db| {
            b.iter(|| run_system(SystemId::BigDatalog, db, &w, limits))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
