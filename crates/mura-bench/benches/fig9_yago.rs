//! Fig. 9: representative Yago queries (Q9: C2, Q13: C6) across systems.
use mura_bench::harness::{BenchmarkId, Criterion};
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, yago_db, Limits, SystemId, Workload};
use mura_ucrpq::suites::yago_queries;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_yago");
    g.sample_size(10);
    let db = yago_db(400);
    let limits = Limits::default();
    let suite = yago_queries();
    for id in ["Q9", "Q13", "Q22"] {
        let q = suite.iter().find(|q| q.id == id).expect("suite query");
        let w = Workload::ucrpq(q.text);
        for s in
            [SystemId::DistMuRA, SystemId::DistMuRAGld, SystemId::BigDatalog, SystemId::Centralized]
        {
            g.bench_with_input(BenchmarkId::new(s.name(), id), &w, |b, w| {
                b.iter(|| run_system(s, &db, w, limits))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
