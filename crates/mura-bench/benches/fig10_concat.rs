//! Fig. 10: concatenated closures a1+/../an+ (all C6).
use mura_bench::harness::{BenchmarkId, Criterion};
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{labeled_rnd_db, run_system, Limits, SystemId, Workload};
use mura_ucrpq::suites::concat_closure_query;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_concat");
    g.sample_size(10);
    let db = labeled_rnd_db(300, 0.04, 10, 77);
    let limits = Limits::default();
    for n in [2usize, 3, 4] {
        let w = Workload::Ucrpq(concat_closure_query(n));
        g.bench_with_input(BenchmarkId::new("dist_mura", n), &w, |b, w| {
            b.iter(|| run_system(SystemId::DistMuRA, &db, w, limits))
        });
        g.bench_with_input(BenchmarkId::new("bigdatalog", n), &w, |b, w| {
            b.iter(|| run_system(SystemId::BigDatalog, &db, w, limits))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
