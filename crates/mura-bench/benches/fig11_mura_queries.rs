//! Fig. 11: the non-regular mu-RA queries (anbn / same generation / reach).
use mura_bench::harness::{BenchmarkId, Criterion};
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{labeled_rnd_db, rnd_db, run_system, tree_db, Limits, SystemId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_mura_queries");
    g.sample_size(10);
    let limits = Limits::default();
    let cases: Vec<(&str, mura_core::Database, Workload)> = vec![
        (
            "anbn",
            labeled_rnd_db(300, 0.02, 2, 1),
            Workload::AnBn { a: "a1".into(), b: "a2".into() },
        ),
        ("same_gen", tree_db(500, 3), Workload::SameGeneration { rel: "edge".into() }),
        ("reach", rnd_db(400, 0.01, 5), Workload::Reach { rel: "edge".into(), source: 0 }),
    ];
    for (name, db, w) in &cases {
        for s in [SystemId::DistMuRA, SystemId::BigDatalog] {
            g.bench_with_input(BenchmarkId::new(s.name(), name), w, |b, w| {
                b.iter(|| run_system(s, db, w, limits))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
