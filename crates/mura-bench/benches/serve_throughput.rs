//! Serving-layer throughput: queries/sec through `mura-serve` at 1, 4 and
//! 16 concurrent clients, with the result cache on and off.
//!
//! Each configuration replays a fixed mixed-UCRPQ workload; clients pull
//! query indices from a shared counter until the workload is exhausted, so
//! adding clients increases concurrency, not total work. With the cache on,
//! repeats are answered from the result cache and throughput should scale
//! far past the cache-off numbers.

use mura_core::Value;
use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
use mura_dist::QueryEngine;
use mura_serve::{ServeConfig, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

const QUERIES: [&str; 8] = [
    "?x, ?y <- ?x a1+ ?y",
    "?x <- ?x a1+ C",
    "?y <- C a1+ ?y",
    "?x, ?y <- ?x a1+/a2+ ?y",
    "?x, ?y <- ?x a2/a1+ ?y",
    "?x, ?y <- ?x a2+ ?y",
    "?x, ?y <- ?x a1/a2 ?y",
    "?x, ?y <- ?x (a1|a2)+ ?y",
];

/// Total queries per configuration: every query repeated this many times.
const REPEATS: usize = 8;

fn engine() -> QueryEngine {
    let mut rng = SplitMix64::seed_from_u64(29);
    let g = erdos_renyi(200, 0.015, 13);
    let lg = with_random_labels(&g, 2, &mut rng);
    let mut db = lg.to_database();
    db.bind_constant("C", Value::node(7));
    QueryEngine::new(db)
}

fn run_workload(clients: usize, cache: bool) -> f64 {
    let server = Server::start(
        engine(),
        ServeConfig {
            workers: clients.min(8),
            queue_depth: 256,
            result_cache: if cache { 128 } else { 0 },
            plan_cache: if cache { 128 } else { 0 },
            ..Default::default()
        },
    );
    let total = QUERIES.len() * REPEATS;
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let client = server.client();
            let next = Arc::clone(&next);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                client.query(QUERIES[i % QUERIES.len()]).expect("query failed");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let qps = total as f64 / elapsed.as_secs_f64();
    let stats = server.stats();
    println!(
        "serve_throughput/clients={clients}/cache={}  {qps:8.1} q/s  \
         ({total} queries in {elapsed:.2?}, hit rate {:.0}%)",
        if cache { "on" } else { "off" },
        stats.hit_rate() * 100.0,
    );
    server.shutdown();
    qps
}

fn main() {
    println!("== serve_throughput ==");
    for cache in [false, true] {
        for clients in [1usize, 4, 16] {
            run_workload(clients, cache);
        }
    }
}
