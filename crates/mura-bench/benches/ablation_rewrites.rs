//! Ablation: the logical rewriter on vs off (per DESIGN.md's design-choice
//! index) on a C2 query, where reversal + filter pushing matters most.
use mura_bench::harness::Criterion;
use mura_bench::yago_db;
use mura_bench::{criterion_group, criterion_main};
use mura_dist::QueryEngine;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_rewrites");
    g.sample_size(10);
    let query = "?x <- ?x isLocatedIn+ Japan";
    g.bench_function("with_rewrites", |b| {
        b.iter_batched(
            || QueryEngine::new(yago_db(400)),
            |mut e| e.run_ucrpq(query).unwrap(),
            mura_bench::harness::BatchSize::LargeInput,
        )
    });
    g.bench_function("without_rewrites", |b| {
        b.iter_batched(
            || QueryEngine::new(yago_db(400)).without_rewrites(),
            |mut e| e.run_ucrpq(query).unwrap(),
            mura_bench::harness::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
