//! Fig. 12: same generation, Dist-muRA vs Myria.
use mura_bench::harness::{BenchmarkId, Criterion};
use mura_bench::{criterion_group, criterion_main};
use mura_bench::{run_system, tree_db, Limits, SystemId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_myria_sg");
    g.sample_size(10);
    let limits = Limits::default();
    let w = Workload::SameGeneration { rel: "edge".into() };
    for n in [200u64, 500] {
        let db = tree_db(n, 1);
        g.bench_with_input(BenchmarkId::new("dist_mura", n), &db, |b, db| {
            b.iter(|| run_system(SystemId::DistMuRA, db, &w, limits))
        });
        g.bench_with_input(BenchmarkId::new("myria", n), &db, |b, db| {
            b.iter(|| run_system(SystemId::Myria, db, &w, limits))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
