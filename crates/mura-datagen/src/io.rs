//! Reading and writing graphs as labeled edge lists.
//!
//! The format is the common whitespace/TAB-separated triple file used by
//! SNAP-style datasets and RDF exports after identifier mapping:
//!
//! ```text
//! # comment
//! <src-id> <label> <dst-id>
//! ```
//!
//! plus an optional constants section that names nodes (for query anchors
//! like `Japan`):
//!
//! ```text
//! @node Japan 17
//! ```
//!
//! Two-column lines (`src dst`) are accepted too and get the label `edge`.

use crate::graph::Graph;
use mura_core::{MuraError, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parses a graph from edge-list text (see the module docs for the
/// format).
pub fn parse_edge_list(text: &str) -> Result<Graph> {
    let mut g = Graph::new(0);
    let mut max_node = 0u64;
    let mut pending: Vec<(u64, String, u64)> = Vec::new();
    let mut named: Vec<(String, u64)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = |what: &str| {
            MuraError::Frontend(format!("edge list line {}: {what}: '{line}'", lineno + 1))
        };
        if let Some(rest) = line.strip_prefix("@node") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or_else(|| bad("missing node name"))?;
            let id: u64 = it
                .next()
                .ok_or_else(|| bad("missing node id"))?
                .parse()
                .map_err(|_| bad("invalid node id"))?;
            named.push((name.to_string(), id));
            max_node = max_node.max(id);
            continue;
        }
        let first = parts.next().ok_or_else(|| bad("missing source"))?;
        let second = parts.next().ok_or_else(|| bad("missing label or target"))?;
        let third = parts.next();
        if parts.next().is_some() {
            return Err(bad("too many fields"));
        }
        let src: u64 = first.parse().map_err(|_| bad("invalid source id"))?;
        let (label, dst_text) = match third {
            Some(t) => (second.to_string(), t),
            None => ("edge".to_string(), second),
        };
        let dst: u64 = dst_text.parse().map_err(|_| bad("invalid target id"))?;
        max_node = max_node.max(src).max(dst);
        pending.push((src, label, dst));
    }
    g.n_nodes = if pending.is_empty() && named.is_empty() { 0 } else { max_node + 1 };
    for (s, label, d) in pending {
        let l = g.add_label(&label);
        g.add_edge(s, l, d);
    }
    for (name, id) in named {
        g.name_node(&name, id);
    }
    Ok(g)
}

/// Loads a graph from an edge-list file.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| MuraError::Other(format!("open {}: {e}", path.as_ref().display())))?;
    let mut text = String::new();
    let mut reader = BufReader::new(file);
    std::io::Read::read_to_string(&mut reader, &mut text)
        .map_err(|e| MuraError::Other(format!("read {}: {e}", path.as_ref().display())))?;
    parse_edge_list(&text)
}

/// Writes a graph as an edge-list file (round-trips with
/// [`load_edge_list`]).
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| MuraError::Other(format!("create {}: {e}", path.as_ref().display())))?;
    let mut w = BufWriter::new(file);
    let emit = |w: &mut BufWriter<std::fs::File>| -> std::io::Result<()> {
        writeln!(w, "# {} nodes, {} edges", g.n_nodes, g.edge_count())?;
        for &(s, l, d) in &g.edges {
            writeln!(w, "{s}\t{}\t{d}", g.labels[l as usize])?;
        }
        for (name, id) in &g.named_nodes {
            writeln!(w, "@node {name} {id}")?;
        }
        Ok(())
    };
    emit(&mut w).map_err(|e| MuraError::Other(format!("write: {e}")))?;
    w.flush().map_err(|e| MuraError::Other(format!("flush: {e}")))
}

/// Convenience: read lines interactively (used by the CLI). Returns `None`
/// on EOF.
pub fn read_line(prompt: &str) -> Option<String> {
    print!("{prompt}");
    std::io::stdout().flush().ok()?;
    let mut line = String::new();
    match std::io::stdin().lock().read_line(&mut line) {
        Ok(0) => None,
        Ok(_) => Some(line),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_triples_and_pairs() {
        let g =
            parse_edge_list("# a comment\n0 knows 1\n1 knows 2\n\n3 4\n@node root 0\n").unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.n_nodes, 5);
        assert_eq!(g.labels.len(), 2); // knows + edge
        assert_eq!(g.named_nodes, vec![("root".to_string(), 0)]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_edge_list("0 a 1 extra").is_err());
        assert!(parse_edge_list("x a 1").is_err());
        assert!(parse_edge_list("0 a y").is_err());
        assert!(parse_edge_list("@node onlyname").is_err());
    }

    #[test]
    fn round_trips_through_files() {
        let g = crate::yago::yago_like(crate::yago::YagoConfig { people: 60, seed: 2 });
        let path = std::env::temp_dir().join(format!("mura_io_test_{}.tsv", std::process::id()));
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(g2.named_nodes.len(), g.named_nodes.len());
        // Same database after the round trip.
        let db1 = g.to_database();
        let db2 = g2.to_database();
        assert_eq!(db1.total_rows(), db2.total_rows());
        for (name, rel) in db1.relations() {
            let n = db1.dict().resolve(name);
            assert_eq!(db2.relation_by_name(n).map(|r| r.len()), Some(rel.len()), "{n} differs");
        }
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("# nothing\n").unwrap();
        assert_eq!(g.n_nodes, 0);
        assert_eq!(g.edge_count(), 0);
    }
}
