//! Zipf-distributed sampling (inverse-CDF over a precomputed table).
//!
//! Real knowledge graphs have heavily skewed degree distributions — hub
//! entities like countries, popular actors and hub proteins. gMark models
//! this with Zipfian in/out-degrees; we reuse the same family here.

use crate::rng::SplitMix64;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s >= 0.0, "negative exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there is a single item (always sampled).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u: f64 = rng.gen_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("no NaN")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SplitMix64::seed_from_u64(0);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 800, "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be sampled about twice as often as rank 1,
        // and far more often than rank 50.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10 * counts[50].max(1));
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SplitMix64::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
