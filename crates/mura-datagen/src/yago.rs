//! Yago-like knowledge graph generator.
//!
//! The paper queries Yago2s through 15 predicates (Fig. 5). Since the real
//! dump is not available offline, this generator produces a graph with the
//! same predicate schema, the same named constants, and the structural
//! features the queries exercise:
//!
//! * a **deep `isLocatedIn` hierarchy** (city → city chains → region →
//!   country) so `isL+` has nontrivial depth;
//! * a **dense `dealsWith`** digraph over countries so `dw+` saturates;
//! * a **Zipf-skewed `actedIn`** bipartite graph whose hub actor is named
//!   `Kevin_Bacon`, making `(actedIn/-actedIn)+` the co-actor closure the
//!   paper's Q9 navigates;
//! * symmetric **`isConnectedTo`** flight connections with `Shannon_Airport`;
//! * people relations (`isMarriedTo`, `hasChild`, `influences`, …) with the
//!   acyclicity/symmetry each predicate has in Yago.

use crate::graph::Graph;
use crate::rng::SplitMix64;
use crate::zipf::Zipf;

/// Size knobs for [`yago_like`]. `people` scales everything else.
#[derive(Debug, Clone, Copy)]
pub struct YagoConfig {
    /// Number of person entities (the dominant entity kind).
    pub people: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig { people: 2000, seed: 0xa60 }
    }
}

/// Generates a Yago-schema knowledge graph. See the module docs.
pub fn yago_like(cfg: YagoConfig) -> Graph {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);
    let p = cfg.people.max(50);

    // Entity id ranges (contiguous).
    let n_countries = 40u64;
    let n_regions = (p / 50).max(10);
    let n_cities = (p / 10).max(30);
    let n_movies = (p / 10).max(10);
    let n_airports = (p / 50).max(12);
    let n_companies = (p / 25).max(10);
    let n_classes = 20u64;

    let base_countries = 0;
    let base_regions = base_countries + n_countries;
    let base_cities = base_regions + n_regions;
    let base_people = base_cities + n_cities;
    let base_movies = base_people + p;
    let base_airports = base_movies + n_movies;
    let base_companies = base_airports + n_airports;
    let base_classes = base_companies + n_companies;
    let n_total = base_classes + n_classes;

    let mut g = Graph::new(n_total);
    let l_isl = g.add_label("isLocatedIn");
    let l_dw = g.add_label("dealsWith");
    let l_married = g.add_label("isMarriedTo");
    let l_child = g.add_label("hasChild");
    let l_infl = g.add_label("influences");
    let l_succ = g.add_label("hasSuccessor");
    let l_pred = g.add_label("hasPredecessor");
    let l_advisor = g.add_label("hasAcademicAdvisor");
    let l_lives = g.add_label("livesIn");
    let l_born = g.add_label("wasBornIn");
    let l_acted = g.add_label("actedIn");
    let l_conn = g.add_label("isConnectedTo");
    let l_owns = g.add_label("owns");
    let l_type = g.add_label("type");
    let l_subclass = g.add_label("subClassOf");

    let zipf_country = Zipf::new(n_countries as usize, 0.8);
    let zipf_city = Zipf::new(n_cities as usize, 0.7);

    // isLocatedIn: 15% of cities chain under an earlier city (depth), the
    // rest under a region; regions under Zipf-chosen countries.
    for c in 0..n_cities {
        if c > 0 && rng.gen_bool(0.15) {
            let target = base_cities + rng.gen_range(0..c);
            g.add_edge(base_cities + c, l_isl, target);
        } else {
            let r = base_regions + rng.gen_range(0..n_regions);
            g.add_edge(base_cities + c, l_isl, r);
        }
    }
    for r in 0..n_regions {
        let country = base_countries + zipf_country.sample(&mut rng) as u64;
        g.add_edge(base_regions + r, l_isl, country);
    }
    for comp in 0..n_companies {
        let city = base_cities + zipf_city.sample(&mut rng) as u64;
        g.add_edge(base_companies + comp, l_isl, city);
    }
    for a in 0..n_airports {
        let city = base_cities + zipf_city.sample(&mut rng) as u64;
        g.add_edge(base_airports + a, l_isl, city);
    }

    // dealsWith: each country trades with 2..=4 Zipf partners.
    for c in 0..n_countries {
        let k = rng.gen_range(2..=4);
        for _ in 0..k {
            let other = zipf_country.sample(&mut rng) as u64;
            if other != c {
                g.add_edge(base_countries + c, l_dw, base_countries + other);
            }
        }
    }

    // People relations.
    let person = |i: u64| base_people + i;
    for _ in 0..p / 3 {
        let a = rng.gen_range(0..p);
        let b = rng.gen_range(0..p);
        if a != b {
            g.add_edge(person(a), l_married, person(b));
            g.add_edge(person(b), l_married, person(a));
        }
    }
    for i in 0..p {
        // hasChild: acyclic (children have higher ids), avg ~0.8.
        if i + 1 < p {
            let k = [0, 0, 1, 1, 2][rng.gen_range(0..5usize)];
            for _ in 0..k {
                let child = rng.gen_range(i + 1..p);
                g.add_edge(person(i), l_child, person(child));
            }
        }
        // livesIn / wasBornIn: exactly one city each.
        g.add_edge(person(i), l_lives, base_cities + zipf_city.sample(&mut rng) as u64);
        g.add_edge(person(i), l_born, base_cities + zipf_city.sample(&mut rng) as u64);
    }
    for (label, frac) in [(l_infl, 4u64), (l_succ, 5), (l_pred, 5), (l_advisor, 6)] {
        for _ in 0..p / frac {
            let a = rng.gen_range(0..p);
            let b = rng.gen_range(0..p);
            if a != b {
                g.add_edge(person(a), label, person(b));
            }
        }
    }

    // actedIn: actors are the first third of people; Zipf rank 0 is the hub
    // ("Kevin_Bacon"). Each movie casts 3..=8 actors.
    let n_actors = (p / 3).max(5);
    let zipf_actor = Zipf::new(n_actors as usize, 1.0);
    for m in 0..n_movies {
        let cast = rng.gen_range(3..=8);
        for _ in 0..cast {
            let actor = zipf_actor.sample(&mut rng) as u64;
            g.add_edge(person(actor), l_acted, base_movies + m);
        }
    }

    // isConnectedTo: 3 outgoing connections per airport, plus the reverse
    // edge (flight connections are bidirectional in Yago).
    for a in 0..n_airports {
        for _ in 0..3 {
            let b = rng.gen_range(0..n_airports);
            if a != b {
                g.add_edge(base_airports + a, l_conn, base_airports + b);
                g.add_edge(base_airports + b, l_conn, base_airports + a);
            }
        }
    }

    // owns: sparse person → company.
    for _ in 0..p / 10 {
        let a = rng.gen_range(0..p);
        let c = rng.gen_range(0..n_companies);
        g.add_edge(person(a), l_owns, base_companies + c);
    }

    // type: cities typed; ~8% are capitals (class 0 = wce). subClassOf tree.
    let zipf_class = Zipf::new(n_classes as usize - 1, 0.5);
    for c in 0..n_cities {
        let class = if rng.gen_bool(0.08) { 0 } else { 1 + zipf_class.sample(&mut rng) as u64 };
        g.add_edge(base_cities + c, l_type, base_classes + class);
    }
    for cl in 1..n_classes {
        g.add_edge(base_classes + cl, l_subclass, base_classes + cl / 2);
    }

    dedup_edges(&mut g);

    // Named constants used by Q1..Q25.
    g.name_node("United_States", base_countries);
    g.name_node("USA", base_countries);
    g.name_node("Japan", base_countries + 1);
    g.name_node("Argentina", base_countries + 2);
    g.name_node("Sweden", base_countries + 3);
    g.name_node("India", base_countries + 4);
    g.name_node("Germany", base_countries + 5);
    g.name_node("Netherlands", base_countries + 6);
    g.name_node("Kevin_Bacon", person(0));
    g.name_node("John_Lawrence_Toole", person(1));
    g.name_node("Jay_Kappraff", person(2));
    g.name_node("Shannon_Airport", base_airports);
    g.name_node("wikicat_Capitals_in_Europe", base_classes);
    g
}

fn dedup_edges(g: &mut Graph) {
    g.edges.sort_unstable();
    g.edges.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_all_predicates_and_constants() {
        let g = yago_like(YagoConfig { people: 300, seed: 1 });
        for pred in [
            "isLocatedIn",
            "dealsWith",
            "isMarriedTo",
            "hasChild",
            "influences",
            "hasSuccessor",
            "hasPredecessor",
            "hasAcademicAdvisor",
            "livesIn",
            "wasBornIn",
            "actedIn",
            "isConnectedTo",
            "owns",
            "type",
            "subClassOf",
        ] {
            let counts = g.label_counts();
            let c =
                counts.iter().find(|(n, _)| n == pred).unwrap_or_else(|| panic!("{pred} missing"));
            assert!(c.1 > 0, "{pred} has no edges");
        }
        for name in [
            "Japan",
            "United_States",
            "USA",
            "Kevin_Bacon",
            "Shannon_Airport",
            "wikicat_Capitals_in_Europe",
        ] {
            assert!(g.named_nodes.iter().any(|(n, _)| n == name), "{name} missing");
        }
    }

    #[test]
    fn deterministic() {
        let a = yago_like(YagoConfig { people: 200, seed: 9 });
        let b = yago_like(YagoConfig { people: 200, seed: 9 });
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn kevin_bacon_is_the_hub_actor() {
        let g = yago_like(YagoConfig { people: 600, seed: 2 });
        let kb = g.named_nodes.iter().find(|(n, _)| n == "Kevin_Bacon").unwrap().1;
        let acted = g.labels.iter().position(|l| l == "actedIn").unwrap() as u32;
        let mut deg = std::collections::HashMap::new();
        for &(s, l, _) in &g.edges {
            if l == acted {
                *deg.entry(s).or_insert(0u32) += 1;
            }
        }
        let kb_deg = deg.get(&kb).copied().unwrap_or(0);
        let max_deg = deg.values().copied().max().unwrap();
        assert_eq!(kb_deg, max_deg, "hub actor must be Kevin_Bacon");
    }

    #[test]
    fn located_in_reaches_countries() {
        // Every city must reach some country through isLocatedIn+.
        let g = yago_like(YagoConfig { people: 300, seed: 3 });
        let isl = g.labels.iter().position(|l| l == "isLocatedIn").unwrap() as u32;
        let mut next = std::collections::HashMap::new();
        for &(s, l, d) in &g.edges {
            if l == isl {
                next.entry(s).or_insert_with(Vec::new).push(d);
            }
        }
        // Follow any chain from each isLocatedIn source; must terminate < 50 hops.
        for &start in next.keys() {
            let mut cur = start;
            let mut hops = 0;
            while let Some(ds) = next.get(&cur) {
                cur = ds[0];
                hops += 1;
                assert!(hops < 50, "isLocatedIn chain too deep / cyclic");
            }
            assert!(cur < 40, "chain from {start} ends at non-country {cur}");
        }
    }
}
