//! Labeled directed multigraphs and their conversion to μ-RA databases.

use crate::rng::SplitMix64;
use mura_core::{Database, Relation, Schema, Value};

/// A directed graph with labeled edges and optional named nodes
/// (query constants such as `Japan` or `Kevin_Bacon`).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Number of nodes; node ids are `0..n_nodes`.
    pub n_nodes: u64,
    /// Label names; edge labels index into this.
    pub labels: Vec<String>,
    /// Edges `(src, label, dst)`.
    pub edges: Vec<(u64, u32, u64)>,
    /// Named nodes, registered as constants on export.
    pub named_nodes: Vec<(String, u64)>,
}

impl Graph {
    /// Empty graph with `n_nodes` nodes and no labels.
    pub fn new(n_nodes: u64) -> Self {
        Graph { n_nodes, ..Default::default() }
    }

    /// Single-label graph from an edge list.
    pub fn single_label(
        label: &str,
        n_nodes: u64,
        edges: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let mut g = Graph::new(n_nodes);
        let l = g.add_label(label);
        for (s, d) in edges {
            g.add_edge(s, l, d);
        }
        g
    }

    /// Registers a label, returning its id (idempotent).
    pub fn add_label(&mut self, name: &str) -> u32 {
        if let Some(i) = self.labels.iter().position(|l| l == name) {
            return i as u32;
        }
        self.labels.push(name.to_string());
        (self.labels.len() - 1) as u32
    }

    /// Adds one edge.
    ///
    /// # Panics
    /// Panics if an endpoint or the label is out of range.
    pub fn add_edge(&mut self, src: u64, label: u32, dst: u64) {
        assert!(src < self.n_nodes && dst < self.n_nodes, "edge endpoint out of range");
        assert!((label as usize) < self.labels.len(), "unknown label id");
        self.edges.push((src, label, dst));
    }

    /// Names a node (exported as a query constant).
    pub fn name_node(&mut self, name: &str, node: u64) {
        assert!(node < self.n_nodes);
        self.named_nodes.push((name.to_string(), node));
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge count per label.
    pub fn label_counts(&self) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; self.labels.len()];
        for &(_, l, _) in &self.edges {
            counts[l as usize] += 1;
        }
        self.labels.iter().cloned().zip(counts).collect()
    }

    /// Plain `(src, dst)` pairs, ignoring labels, deduplicated.
    pub fn plain_edges(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.edges.iter().map(|&(s, _, d)| (s, d)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Builds a μ-RA [`Database`]: one binary relation per label with
    /// columns `src`/`dst`, plus the named-node constants.
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let schema = Schema::new(vec![src, dst]);
        let ps = schema.position(src).unwrap();
        let mut rels: Vec<Relation> =
            (0..self.labels.len()).map(|_| Relation::new(schema.clone())).collect();
        for &(s, l, d) in &self.edges {
            let mut row = vec![Value::node(0); 2];
            row[ps] = Value::node(s);
            row[1 - ps] = Value::node(d);
            rels[l as usize].insert(row.into_boxed_slice());
        }
        for (name, rel) in self.labels.iter().zip(rels) {
            db.insert_relation(name, rel);
        }
        for (name, node) in &self.named_nodes {
            db.bind_constant(name, Value::node(*node));
        }
        db
    }
}

/// Returns a copy of `g` whose edges are uniformly re-labeled with `k` fresh
/// labels `a1..ak` (the paper's "graphs derived from rnd_p_n by adding a set
/// of predefined labels randomly", used for concatenated closures and aⁿbⁿ).
pub fn with_random_labels(g: &Graph, k: u32, rng: &mut SplitMix64) -> Graph {
    let mut out = Graph::new(g.n_nodes);
    let labels: Vec<u32> = (1..=k).map(|i| out.add_label(&format!("a{i}"))).collect();
    for &(s, _, d) in &g.edges {
        let l = *rng.choose(&labels).expect("k >= 1");
        out.add_edge(s, l, d);
    }
    out.named_nodes = g.named_nodes.clone();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_export() {
        let mut g = Graph::new(3);
        let a = g.add_label("a");
        let b = g.add_label("b");
        g.add_edge(0, a, 1);
        g.add_edge(1, b, 2);
        g.name_node("start", 0);
        let db = g.to_database();
        assert_eq!(db.relation_by_name("a").unwrap().len(), 1);
        assert_eq!(db.relation_by_name("b").unwrap().len(), 1);
        assert_eq!(db.constant("start"), Some(Value::node(0)));
    }

    #[test]
    fn add_label_idempotent() {
        let mut g = Graph::new(1);
        assert_eq!(g.add_label("x"), g.add_label("x"));
        assert_eq!(g.labels.len(), 1);
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let g = Graph::single_label("edge", 10, (0..9).map(|i| (i, i + 1)));
        let lg = with_random_labels(&g, 3, &mut rng);
        assert_eq!(lg.edge_count(), g.edge_count());
        assert_eq!(lg.labels.len(), 3);
        assert_eq!(lg.plain_edges(), g.plain_edges());
    }

    #[test]
    fn label_counts_sum() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let g = Graph::single_label("edge", 100, (0..99).map(|i| (i, i + 1)));
        let lg = with_random_labels(&g, 4, &mut rng);
        let total: usize = lg.label_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_edge() {
        let mut g = Graph::new(2);
        let a = g.add_label("a");
        g.add_edge(0, a, 5);
    }
}
