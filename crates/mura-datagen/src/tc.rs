//! Exact transitive closure size (the `TC size` column of Table I).
//!
//! Computed by Tarjan SCC condensation followed by reachability bitsets
//! propagated in reverse topological order: `O(V·E/64)` words of work, which
//! handles the scaled dataset sizes in milliseconds.

use crate::graph::Graph;

/// Number of pairs `(u, v)` such that `v` is reachable from `u` by a path of
/// **at least one** edge (the size of `edge+`).
pub fn tc_size(g: &Graph) -> u64 {
    let n = g.n_nodes as usize;
    if n == 0 {
        return 0;
    }
    let edges = g.plain_edges();
    let adj = to_adjacency(n, &edges);
    let scc = tarjan_scc(n, &adj);
    let n_scc = scc.count;
    // SCC sizes and whether an SCC is "cyclic" (its members reach themselves).
    let mut size = vec![0u64; n_scc];
    for v in 0..n {
        size[scc.comp[v]] += 1;
    }
    let mut cyclic = vec![false; n_scc];
    for &(s, d) in &edges {
        if scc.comp[s as usize] == scc.comp[d as usize] {
            cyclic[scc.comp[s as usize]] = true; // self-loop or multi-node SCC
        }
    }
    // Condensation edges (deduplicated).
    let mut cedges: Vec<(usize, usize)> = edges
        .iter()
        .filter_map(|&(s, d)| {
            let (a, b) = (scc.comp[s as usize], scc.comp[d as usize]);
            (a != b).then_some((a, b))
        })
        .collect();
    cedges.sort_unstable();
    cedges.dedup();
    let cadj = to_adjacency_usize(n_scc, &cedges);
    // Tarjan emits SCCs in reverse topological order: comp index of a source
    // is *larger* than its targets'. Process components 0..n_scc (targets
    // first) and union successor bitsets.
    let words = n_scc.div_ceil(64);
    let mut bits = vec![0u64; n_scc * words];
    let mut total = 0u64;
    for c in 0..n_scc {
        // Own slot first to avoid aliasing while OR-ing successor rows.
        if cyclic[c] {
            bits[c * words + c / 64] |= 1 << (c % 64);
        }
        for &succ in &cadj[c] {
            debug_assert!(succ < c, "reverse topological order violated");
            bits[succ * words + succ / 64] |= 1 << (succ % 64);
            let (head, tail) = bits.split_at_mut(c * words);
            let src = &head[succ * words..succ * words + words];
            let dst = &mut tail[..words];
            for (d, s) in dst.iter_mut().zip(src) {
                *d |= *s;
            }
            // Undo the temporary self-bit if succ is not cyclic (it was set
            // above only to mark succ itself reachable from c).
            if !cyclic[succ] {
                // The bit stays correct in c's row (succ IS reachable from
                // c); but remove it from succ's own row again.
                bits[succ * words + succ / 64] &= !(1 << (succ % 64));
            }
        }
        let reach_weight: u64 = {
            let row = &bits[c * words..c * words + words];
            let mut w = 0u64;
            for word_i in 0..words {
                let mut word = row[word_i];
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    w += size[word_i * 64 + b];
                    word &= word - 1;
                }
            }
            w
        };
        total += size[c] * reach_weight;
    }
    total
}

fn to_adjacency(n: usize, edges: &[(u64, u64)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(s, d) in edges {
        adj[s as usize].push(d as usize);
    }
    adj
}

fn to_adjacency_usize(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(s, d) in edges {
        adj[s].push(d);
    }
    adj
}

struct SccResult {
    /// Component id per node; ids are in reverse topological order
    /// (an edge u→v across components satisfies `comp[u] > comp[v]`).
    comp: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan SCC (explicit stack; safe for deep graphs).
fn tarjan_scc(n: usize, adj: &[Vec<usize>]) -> SccResult {
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut count = 0usize;
    // Call stack frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = count;
                        if w == v {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccResult { comp, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::erdos_renyi;
    use crate::graph::Graph;

    fn brute_force_tc(g: &Graph) -> u64 {
        let n = g.n_nodes as usize;
        let mut reach = vec![vec![false; n]; n];
        for &(s, d) in &g.plain_edges() {
            reach[s as usize][d as usize] = true;
        }
        // Floyd-Warshall closure.
        for k in 0..n {
            let row_k = reach[k].clone();
            for row_i in reach.iter_mut() {
                if row_i[k] {
                    for (j, &via) in row_k.iter().enumerate() {
                        if via {
                            row_i[j] = true;
                        }
                    }
                }
            }
        }
        reach.iter().flatten().filter(|&&b| b).count() as u64
    }

    #[test]
    fn chain_tc() {
        // 0->1->2->3: TC = 3+2+1 = 6.
        let g = Graph::single_label("edge", 4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(tc_size(&g), 6);
    }

    #[test]
    fn cycle_tc() {
        // 3-cycle: every node reaches every node including itself: 9 pairs.
        let g = Graph::single_label("edge", 3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(tc_size(&g), 9);
    }

    #[test]
    fn self_loop_counts() {
        let g = Graph::single_label("edge", 2, [(0, 0), (0, 1)]);
        assert_eq!(tc_size(&g), 2); // (0,0) and (0,1)
    }

    #[test]
    fn two_cycles_bridged() {
        // cycle {0,1} -> cycle {2,3}: 2*2 (first) + 2*2 (second) + 2*2 cross = 12.
        let g = Graph::single_label("edge", 4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        assert_eq!(tc_size(&g), 12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(tc_size(&Graph::new(0)), 0);
        assert_eq!(tc_size(&Graph::new(5)), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..5 {
            let g = erdos_renyi(60, 0.05, seed);
            assert_eq!(tc_size(&g), brute_force_tc(&g), "seed {seed}");
        }
    }

    #[test]
    fn dense_random_graph_goes_quadratic() {
        // A connected ER graph's TC approaches n² — the blow-up Table I shows.
        let n = 300u64;
        let g = erdos_renyi(n, 0.05, 7);
        let tc = tc_size(&g);
        assert!(tc > n * n / 2, "tc = {tc}");
    }
}
