//! Erdős–Rényi random graphs (`rnd_n_p` in the paper's Table I).

use crate::graph::Graph;
use crate::rng::SplitMix64;

/// Generates `rnd_n_p`: every unordered node pair `{i, j}` becomes a
/// directed edge with probability `p`, with uniformly random orientation.
///
/// This matches the paper's counts (e.g. `rnd_10k_0.001` has ≈ 50k edges =
/// `p · n(n-1)/2`). Pair enumeration uses geometric skipping, so generation
/// is `O(edges)` rather than `O(n²)`.
pub fn erdos_renyi(n: u64, p: f64, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let label = g.add_label("edge");
    if p == 0.0 {
        return g;
    }
    let total_pairs = n * (n - 1) / 2;
    // Skip-sampling: jump over non-edges with geometric gaps.
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        if p < 1.0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (u.ln() / log_q).floor() as u64;
            idx = idx.saturating_add(skip);
        }
        if idx >= total_pairs {
            break;
        }
        let (i, j) = pair_from_index(idx, n);
        if rng.gen_bool(0.5) {
            g.add_edge(i, label, j);
        } else {
            g.add_edge(j, label, i);
        }
        idx += 1;
    }
    g
}

/// Maps a linear index in `0..n(n-1)/2` to the unordered pair `(i, j)`,
/// `i < j`, in row-major order over the strict upper triangle.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row i holds (n-1-i) pairs; find i by solving the triangular prefix.
    // prefix(i) = i*n - i*(i+1)/2 pairs precede row i.
    let mut lo = 0u64;
    let mut hi = n - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let prefix = mid * n - mid * (mid + 1) / 2;
        if prefix <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let i = lo;
    let prefix = i * n - i * (i + 1) / 2;
    let j = i + 1 + (idx - prefix);
    (i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (i, j) = pair_from_index(idx, n);
            assert!(i < j && j < n, "bad pair ({i},{j})");
            assert!(seen.insert((i, j)), "duplicate pair");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn edge_count_close_to_expectation() {
        let n = 2000;
        let p = 0.002;
        let g = erdos_renyi(n, p, 42);
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!((got - expect).abs() < expect * 0.15, "got {got}, expected about {expect}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(500, 0.01, 1);
        let b = erdos_renyi(500, 0.01, 1);
        let c = erdos_renyi(500, 0.01, 2);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn p_zero_and_one() {
        assert_eq!(erdos_renyi(100, 0.0, 3).edge_count(), 0);
        let full = erdos_renyi(50, 1.0, 3);
        assert_eq!(full.edge_count() as u64, 50 * 49 / 2);
    }

    #[test]
    fn no_self_loops_or_dup_pairs() {
        let g = erdos_renyi(300, 0.05, 9);
        let mut pairs = std::collections::HashSet::new();
        for &(s, _, d) in &g.edges {
            assert_ne!(s, d);
            let key = (s.min(d), s.max(d));
            assert!(pairs.insert(key), "pair sampled twice");
        }
    }
}
