//! A small in-tree seeded PRNG (SplitMix64).
//!
//! The generators in this crate only need a fast, deterministic,
//! well-mixed source of `u64`s — not cryptographic strength. SplitMix64
//! (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number Generators*)
//! fits in a dozen lines and passes BigCrush, which keeps the whole
//! workspace free of external dependencies so it builds with no network
//! access.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a 64-bit state marched through a Weyl sequence and
/// finalized with an avalanche mix.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a range; see [`SampleRange`] for supported types.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniformly chosen element of a slice (`None` when empty).
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_range(0..items.len())])
        }
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

fn sample_u64(rng: &mut SplitMix64, lo: u64, width: u64) -> u64 {
    debug_assert!(width > 0, "empty range");
    // Multiply-shift mapping of a 64-bit draw onto the width; the modulo
    // bias of `% width` is avoided by taking the high 64 bits of the
    // 128-bit product (Lemire's unbiased-enough fast path).
    lo + ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        assert!(self.start < self.end, "empty range");
        sample_u64(rng, self.start, self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SplitMix64) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // hi - lo + 1 can overflow only for the full u64 domain, which the
        // generators never request.
        sample_u64(rng, lo, hi - lo + 1)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty range");
        sample_u64(rng, self.start as u64, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        let mut c = SplitMix64::seed_from_u64(43);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..10).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn known_vector() {
        // Reference outputs of SplitMix64 with seed 0 (from the original
        // public-domain implementation).
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = r.gen_range(0..4usize);
            assert!(z < 4);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = SplitMix64::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = SplitMix64::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as i64 - 30_000).abs() < 1_500, "{hits}");
    }

    #[test]
    fn choose_covers_all_items() {
        let mut r = SplitMix64::seed_from_u64(3);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*r.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert!(r.choose::<u8>(&[]).is_none());
    }
}
