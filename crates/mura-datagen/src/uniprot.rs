//! Uniprot-like protein graph generator (gMark-style).
//!
//! The paper generates `uniprot_n` graphs with the gMark benchmark tool
//! modelling the Uniprot protein database. Queries Q26–Q50 use seven
//! predicates; this generator produces the same schema with gMark's Zipfian
//! degree skew:
//!
//! | predicate   | shape                    |
//! |-------------|--------------------------|
//! | interacts   | protein → protein        |
//! | encodes     | protein → gene           |
//! | occurs      | protein → tissue         |
//! | hasKeyword  | protein → keyword        |
//! | reference   | protein → reference      |
//! | authoredBy  | reference → author       |
//! | publishes   | reference → journal      |
//!
//! Hub constants are exported for the constant-anchored queries:
//! `HubProtein`, `HubKeyword`, `HubJournal`.

use crate::graph::Graph;
use crate::rng::SplitMix64;
use crate::zipf::Zipf;

/// Size knobs for [`uniprot_like`].
#[derive(Debug, Clone, Copy)]
pub struct UniprotConfig {
    /// Approximate number of edges in the generated graph (the paper's
    /// `uniprot_1M/5M/10M` are scaled through this knob).
    pub target_edges: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniprotConfig {
    fn default() -> Self {
        UniprotConfig { target_edges: 50_000, seed: 0x09 }
    }
}

/// Generates a Uniprot-schema graph. See the module docs.
pub fn uniprot_like(cfg: UniprotConfig) -> Graph {
    let e = cfg.target_edges.max(1000);
    let mut rng = SplitMix64::seed_from_u64(cfg.seed);

    let n_proteins = (e / 5).max(50);
    let n_genes = (n_proteins / 2).max(20);
    let n_tissues = (n_proteins / 50).max(15);
    let n_keywords = (n_proteins / 20).max(20);
    let n_refs = (n_proteins / 2).max(20);
    let n_authors = (n_refs / 3).max(10);
    let n_journals = (n_refs / 50).max(5);

    let base_proteins = 0;
    let base_genes = base_proteins + n_proteins;
    let base_tissues = base_genes + n_genes;
    let base_keywords = base_tissues + n_tissues;
    let base_refs = base_keywords + n_keywords;
    let base_authors = base_refs + n_refs;
    let base_journals = base_authors + n_authors;
    let n_total = base_journals + n_journals;

    let mut g = Graph::new(n_total);
    let l_int = g.add_label("interacts");
    let l_enc = g.add_label("encodes");
    let l_occ = g.add_label("occurs");
    let l_kw = g.add_label("hasKeyword");
    let l_ref = g.add_label("reference");
    let l_auth = g.add_label("authoredBy");
    let l_pub = g.add_label("publishes");

    let zp = Zipf::new(n_proteins as usize, 0.6);
    let zg = Zipf::new(n_genes as usize, 0.6);
    let zt = Zipf::new(n_tissues as usize, 0.7);
    let zk = Zipf::new(n_keywords as usize, 0.8);
    let zr = Zipf::new(n_refs as usize, 0.6);
    let za = Zipf::new(n_authors as usize, 0.7);
    let zj = Zipf::new(n_journals as usize, 0.8);

    // interacts: 30% of edges; both endpoints Zipf over proteins, so the
    // hub protein is extremely connected (the (int)+ closure saturates).
    for _ in 0..e * 30 / 100 {
        let a = zp.sample(&mut rng) as u64;
        let b = zp.sample(&mut rng) as u64;
        if a != b {
            g.add_edge(base_proteins + a, l_int, base_proteins + b);
        }
    }
    // encodes: shared genes create the (enc/-enc)+ protein-similarity closure.
    for _ in 0..e * 10 / 100 {
        let p = rng.gen_range(0..n_proteins);
        let gene = zg.sample(&mut rng) as u64;
        g.add_edge(base_proteins + p, l_enc, base_genes + gene);
    }
    // occurs.
    for _ in 0..e * 15 / 100 {
        let p = rng.gen_range(0..n_proteins);
        let t = zt.sample(&mut rng) as u64;
        g.add_edge(base_proteins + p, l_occ, base_tissues + t);
    }
    // hasKeyword.
    for _ in 0..e * 15 / 100 {
        let p = rng.gen_range(0..n_proteins);
        let k = zk.sample(&mut rng) as u64;
        g.add_edge(base_proteins + p, l_kw, base_keywords + k);
    }
    // reference.
    for _ in 0..e * 15 / 100 {
        let p = rng.gen_range(0..n_proteins);
        let r = zr.sample(&mut rng) as u64;
        g.add_edge(base_proteins + p, l_ref, base_refs + r);
    }
    // authoredBy.
    for _ in 0..e * 10 / 100 {
        let r = rng.gen_range(0..n_refs);
        let a = za.sample(&mut rng) as u64;
        g.add_edge(base_refs + r, l_auth, base_authors + a);
    }
    // publishes (reference published in journal).
    for _ in 0..e * 5 / 100 {
        let r = rng.gen_range(0..n_refs);
        let j = zj.sample(&mut rng) as u64;
        g.add_edge(base_refs + r, l_pub, base_journals + j);
    }

    g.edges.sort_unstable();
    g.edges.dedup();

    g.name_node("HubProtein", base_proteins);
    g.name_node("HubKeyword", base_keywords);
    g.name_node("HubJournal", base_journals);
    g.name_node("HubReference", base_refs);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_constants() {
        let g = uniprot_like(UniprotConfig { target_edges: 5000, seed: 1 });
        let counts = g.label_counts();
        for pred in
            ["interacts", "encodes", "occurs", "hasKeyword", "reference", "authoredBy", "publishes"]
        {
            let c = counts.iter().find(|(n, _)| n == pred).unwrap();
            assert!(c.1 > 0, "{pred} empty");
        }
        for name in ["HubProtein", "HubKeyword", "HubJournal"] {
            assert!(g.named_nodes.iter().any(|(n, _)| n == name));
        }
    }

    #[test]
    fn interacts_dominates() {
        let g = uniprot_like(UniprotConfig { target_edges: 20_000, seed: 2 });
        let counts = g.label_counts();
        let get = |p: &str| counts.iter().find(|(n, _)| n == p).unwrap().1;
        assert!(get("interacts") > get("encodes"));
        assert!(get("interacts") > get("publishes"));
    }

    #[test]
    fn edge_count_near_target() {
        let cfg = UniprotConfig { target_edges: 30_000, seed: 3 };
        let g = uniprot_like(cfg);
        let got = g.edge_count() as f64;
        // All fractions sum to 100%; dedup removes a few.
        assert!(got > 20_000.0 && got < 31_000.0, "got {got}");
    }

    #[test]
    fn deterministic() {
        let a = uniprot_like(UniprotConfig { target_edges: 4000, seed: 4 });
        let b = uniprot_like(UniprotConfig { target_edges: 4000, seed: 4 });
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn type_partitions_do_not_overlap() {
        // Every predicate must connect the right node kinds: spot-check that
        // encodes sources are proteins (< n_proteins) and targets are genes.
        let cfg = UniprotConfig { target_edges: 5000, seed: 5 };
        let g = uniprot_like(cfg);
        let n_proteins = (cfg.target_edges / 5).max(50);
        let enc = g.labels.iter().position(|l| l == "encodes").unwrap() as u32;
        for &(s, l, d) in &g.edges {
            if l == enc {
                assert!(s < n_proteins);
                assert!(d >= n_proteins);
            }
        }
    }
}
