//! Random recursive trees (`tree_n` in the paper's Table I).

use crate::graph::Graph;
use crate::rng::SplitMix64;

/// Generates `tree_n`: starting from a single node, node `i` (for `i ≥ 1`)
/// is attached as a child of a uniformly random node among `0..i`. Edges
/// point parent → child, matching the paper's "connected as a child of a
/// randomly selected node" construction (`n-1` edges).
pub fn random_tree(n: u64, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let label = g.add_label("edge");
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(parent, label, i);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tc::tc_size;

    #[test]
    fn has_n_minus_one_edges() {
        assert_eq!(random_tree(1, 0).edge_count(), 0);
        assert_eq!(random_tree(100, 0).edge_count(), 99);
    }

    #[test]
    fn every_nonroot_has_one_parent() {
        let g = random_tree(200, 5);
        let mut indeg = vec![0u32; 200];
        for &(s, _, d) in &g.edges {
            assert!(s < d, "parent must precede child");
            indeg[d as usize] += 1;
        }
        assert_eq!(indeg[0], 0);
        assert!(indeg[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn tc_matches_depth_sum() {
        // In a tree, |TC| = sum over nodes of their depth.
        let g = random_tree(50, 1);
        let mut parent = vec![u64::MAX; 50];
        for &(s, _, d) in &g.edges {
            parent[d as usize] = s;
        }
        let mut depth_sum = 0u64;
        for mut v in 1..50u64 {
            while parent[v as usize] != u64::MAX {
                depth_sum += 1;
                v = parent[v as usize];
            }
        }
        assert_eq!(tc_size(&g), depth_sum);
    }
}
