//! # mura-datagen — graphs and datasets for Dist-μ-RA experiments
//!
//! The paper evaluates on real graphs (Yago2s, SNAP collections) and
//! synthetic ones (Erdős–Rényi `rnd_n_p`, random trees `tree_n`, gMark
//! Uniprot `uniprot_n`). Real downloads are not available offline, so this
//! crate provides generators that preserve what the queries actually depend
//! on: predicate schemas, selectivity skew, hierarchy shapes and transitive
//! closure blow-up.
//!
//! * [`erdos_renyi`] — `rnd_n_p`: each unordered pair is an edge with
//!   probability `p`, randomly oriented (matches the paper's edge counts:
//!   `rnd_10k_0.001` ≈ 50k directed edges).
//! * [`random_tree`] — `tree_n`: node *i+1* attaches to a uniformly random
//!   earlier node.
//! * [`with_random_labels`] — relabels a graph with `k` edge labels (for the
//!   concatenated-closure and aⁿbⁿ experiments).
//! * [`yago_like`] — a knowledge graph with the 15 predicates and the named
//!   constants used by queries Q1–Q25.
//! * [`uniprot_like`] — a gMark-style protein graph with the 7 predicates
//!   used by queries Q26–Q50.
//! * [`tc`] — exact transitive closure size via SCC condensation + bitsets
//!   (regenerates Table I's `TC size` column).

pub mod er;
pub mod graph;
pub mod io;
pub mod rng;
pub mod tc;
pub mod tree;
pub mod uniprot;
pub mod yago;
pub mod zipf;

pub use er::erdos_renyi;
pub use graph::{with_random_labels, Graph};
pub use io::{load_edge_list, parse_edge_list, save_edge_list};
pub use rng::SplitMix64;
pub use tc::tc_size;
pub use tree::random_tree;
pub use uniprot::{uniprot_like, UniprotConfig};
pub use yago::{yago_like, YagoConfig};
pub use zipf::Zipf;
