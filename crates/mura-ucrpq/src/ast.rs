//! UCRPQ abstract syntax.

use std::fmt;

/// A regular path expression over edge labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Path {
    /// An edge label, e.g. `isLocatedIn`.
    Label(String),
    /// Reverse traversal `-p`.
    Inverse(Box<Path>),
    /// Concatenation `p/q`.
    Concat(Box<Path>, Box<Path>),
    /// Alternation `p|q`.
    Alt(Box<Path>, Box<Path>),
    /// One-or-more `p+`.
    Plus(Box<Path>),
    /// Zero-or-more `p*` (desugared to `ε | p+` during normalization).
    Star(Box<Path>),
    /// Zero-or-one `p?` (desugared to `ε | p` during normalization).
    Optional(Box<Path>),
}

impl Path {
    /// Label leaf.
    pub fn label(l: &str) -> Path {
        Path::Label(l.to_string())
    }

    /// `self/other`.
    pub fn then(self, other: Path) -> Path {
        Path::Concat(Box::new(self), Box::new(other))
    }

    /// `self|other`.
    pub fn or(self, other: Path) -> Path {
        Path::Alt(Box::new(self), Box::new(other))
    }

    /// `self+`.
    pub fn plus(self) -> Path {
        Path::Plus(Box::new(self))
    }

    /// `-self`.
    pub fn inverse(self) -> Path {
        Path::Inverse(Box::new(self))
    }

    /// True if the expression contains a `+` or `*` (recursion).
    pub fn is_recursive(&self) -> bool {
        match self {
            Path::Label(_) => false,
            Path::Plus(_) | Path::Star(_) => true,
            Path::Inverse(p) | Path::Optional(p) => p.is_recursive(),
            Path::Concat(a, b) | Path::Alt(a, b) => a.is_recursive() || b.is_recursive(),
        }
    }

    /// `self?`.
    pub fn optional(self) -> Path {
        Path::Optional(Box::new(self))
    }

    /// Bounded repetition `self{lo, hi}` (or `self{lo,}` when `hi` is
    /// `None`), desugared into concatenations / optionals / `+`.
    ///
    /// # Panics
    /// Panics when `hi < lo` or when the range is `{0, 0}`.
    pub fn repeat(self, lo: u32, hi: Option<u32>) -> Path {
        if let Some(h) = hi {
            assert!(h >= lo, "invalid repetition bounds");
            assert!(h > 0, "p{{0,0}} denotes only the empty word");
        }
        match hi {
            // p{m,}: m-1 mandatory copies then p+.
            None => {
                let mut out = self.clone().plus();
                for _ in 1..lo.max(1) {
                    out = self.clone().then(out);
                }
                if lo == 0 {
                    out = Path::Star(Box::new(self));
                }
                out
            }
            Some(h) => {
                // Optional tail of (h - lo) copies, innermost first.
                let mut tail: Option<Path> = None;
                for _ in 0..h - lo {
                    let inner = match tail {
                        None => self.clone(),
                        Some(t) => self.clone().then(t),
                    };
                    tail = Some(inner.optional());
                }
                // lo mandatory copies.
                let mut parts: Vec<Path> = (0..lo).map(|_| self.clone()).collect();
                if let Some(t) = tail {
                    parts.push(t);
                }
                let mut it = parts.into_iter();
                let first = it.next().expect("h > 0 guarantees a part");
                it.fold(first, |acc, p| acc.then(p))
            }
        }
    }

    /// All labels mentioned (with duplicates removed, in first-seen order).
    pub fn labels(&self) -> Vec<&str> {
        fn go<'p>(p: &'p Path, out: &mut Vec<&'p str>) {
            match p {
                Path::Label(l) => {
                    if !out.contains(&l.as_str()) {
                        out.push(l);
                    }
                }
                Path::Inverse(p) | Path::Plus(p) | Path::Star(p) | Path::Optional(p) => go(p, out),
                Path::Concat(a, b) | Path::Alt(a, b) => {
                    go(a, out);
                    go(b, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Path::Label(l) => write!(f, "{l}"),
            Path::Inverse(p) => write!(f, "-{p}"),
            Path::Concat(a, b) => write!(f, "{a}/{b}"),
            Path::Alt(a, b) => write!(f, "({a}|{b})"),
            // Alt prints its own parentheses; labels and inverses bind
            // tighter than the postfix operator.
            Path::Plus(p) => match **p {
                Path::Label(_) | Path::Alt(_, _) | Path::Inverse(_) => write!(f, "{p}+"),
                _ => write!(f, "({p})+"),
            },
            Path::Star(p) => match **p {
                Path::Label(_) | Path::Alt(_, _) | Path::Inverse(_) => write!(f, "{p}*"),
                _ => write!(f, "({p})*"),
            },
            Path::Optional(p) => match **p {
                Path::Label(_) | Path::Alt(_, _) | Path::Inverse(_) => write!(f, "{p}?"),
                _ => write!(f, "({p})?"),
            },
        }
    }
}

/// An endpoint of a path atom: a variable (`?x`) or a named constant
/// (`Japan`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Query variable, stored without the `?` sigil.
    Var(String),
    /// Named constant, resolved against the database's constant registry.
    Const(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Var(v) => write!(f, "?{v}"),
            Endpoint::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One regular path atom: `left path right`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    pub left: Endpoint,
    pub path: Path,
    pub right: Endpoint,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.path, self.right)
    }
}

/// A conjunction of path atoms with a projection head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crpq {
    /// Head variables (without `?`).
    pub head: Vec<String>,
    /// Body atoms, implicitly joined on shared variables.
    pub atoms: Vec<Atom>,
}

/// A union of CRPQs sharing the same head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucrpq {
    pub branches: Vec<Crpq>,
}

impl Ucrpq {
    /// Head variables (all branches share them).
    pub fn head(&self) -> &[String] {
        &self.branches[0].head
    }

    /// All body variables across branches and atoms.
    pub fn body_vars(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for b in &self.branches {
            for a in &b.atoms {
                for e in [&a.left, &a.right] {
                    if let Endpoint::Var(v) = e {
                        if !out.contains(&v.as_str()) {
                            out.push(v);
                        }
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Ucrpq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            for (j, h) in b.head.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "?{h}")?;
            }
            write!(f, " <- ")?;
            for (j, a) in b.atoms.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recursive_detection() {
        let p = Path::label("a").then(Path::label("b").plus());
        assert!(p.is_recursive());
        assert!(!Path::label("a").then(Path::label("b")).is_recursive());
        assert!(Path::Star(Box::new(Path::label("a"))).is_recursive());
    }

    #[test]
    fn labels_deduplicated() {
        let p = Path::label("a").then(Path::label("a").plus().or(Path::label("b")));
        assert_eq!(p.labels(), vec!["a", "b"]);
    }

    #[test]
    fn display_round_shapes() {
        let p = Path::label("a").inverse().then(Path::label("b").or(Path::label("c")).plus());
        assert_eq!(p.to_string(), "-a/(b|c)+");
    }
}
