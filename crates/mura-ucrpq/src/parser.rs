//! Recursive-descent parser for the paper's UCRPQ notation.
//!
//! Grammar:
//!
//! ```text
//! query    := crpq (';' crpq)*                 -- union of branches
//! crpq     := head ('<-' | '←') atoms
//! head     := var (',' var)*
//! atoms    := atom (',' atom)*
//! atom     := endpoint path endpoint
//! endpoint := var | constant
//! path     := alt
//! alt      := seq ('|' seq)*
//! seq      := postfix ('/' postfix)*
//! postfix  := primary ('+' | '*')*
//! primary  := '-' primary | label | '(' alt ')'
//! var      := '?' ident
//! ```
//!
//! Labels and constants are identifiers over `[A-Za-z0-9_:.']`, so RDF-style
//! names like `rdfs:subClassOf` and `wikicat_Capitals_in_Europe` parse as-is.

use crate::ast::{Atom, Crpq, Endpoint, Path, Ucrpq};
use mura_core::{MuraError, Result};

/// Parses a UCRPQ from the paper's notation.
pub fn parse_ucrpq(input: &str) -> Result<Ucrpq> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    let q = p.query()?;
    p.skip_ws();
    if p.pos < p.input.len() {
        return Err(p.err("trailing input"));
    }
    // All branches must share the head.
    for b in &q.branches[1..] {
        if b.head != q.branches[0].head {
            return Err(MuraError::Frontend(
                "union branches must share the same head variables".into(),
            ));
        }
    }
    Ok(q)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> MuraError {
        let around: String = String::from_utf8_lossy(
            &self.input[self.pos.min(self.input.len())..(self.pos + 20).min(self.input.len())],
        )
        .into_owned();
        MuraError::Frontend(format!("parse error at byte {}: {msg} (near '{around}')", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b':' | b'.' | b'\'') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn var(&mut self) -> Result<String> {
        self.expect(b'?')?;
        // No whitespace allowed between ? and the name.
        if self.input.get(self.pos).is_none_or(|c| c.is_ascii_whitespace()) {
            return Err(self.err("expected variable name after '?'"));
        }
        self.ident()
    }

    fn query(&mut self) -> Result<Ucrpq> {
        let mut branches = vec![self.crpq()?];
        while self.eat(b';') {
            branches.push(self.crpq()?);
        }
        Ok(Ucrpq { branches })
    }

    fn crpq(&mut self) -> Result<Crpq> {
        let mut head = vec![self.var()?];
        while self.eat(b',') {
            head.push(self.var()?);
        }
        // '<-' or '←' (UTF-8: e2 86 90)
        self.skip_ws();
        if self.input[self.pos..].starts_with(b"<-") {
            self.pos += 2;
        } else if self.input[self.pos..].starts_with("←".as_bytes()) {
            self.pos += "←".len();
        } else {
            return Err(self.err("expected '<-'"));
        }
        let mut atoms = vec![self.atom()?];
        while self.eat(b',') {
            atoms.push(self.atom()?);
        }
        Ok(Crpq { head, atoms })
    }

    fn endpoint(&mut self) -> Result<Endpoint> {
        if self.peek() == Some(b'?') {
            Ok(Endpoint::Var(self.var()?))
        } else {
            Ok(Endpoint::Const(self.ident()?))
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let left = self.endpoint()?;
        let path = self.alt()?;
        let right = self.endpoint()?;
        Ok(Atom { left, path, right })
    }

    fn alt(&mut self) -> Result<Path> {
        let mut p = self.seq()?;
        while self.eat(b'|') {
            p = p.or(self.seq()?);
        }
        Ok(p)
    }

    fn seq(&mut self) -> Result<Path> {
        let mut p = self.postfix()?;
        while self.eat(b'/') {
            p = p.then(self.postfix()?);
        }
        Ok(p)
    }

    fn postfix(&mut self) -> Result<Path> {
        let mut p = self.primary()?;
        loop {
            if self.eat(b'+') {
                p = p.plus();
            } else if self.eat(b'*') {
                p = Path::Star(Box::new(p));
            } else if self.peek() == Some(b'?') && !self.next_is_var() {
                self.pos += 1;
                p = p.optional();
            } else if self.eat(b'{') {
                let lo = self.number()?;
                let hi = if self.eat(b',') {
                    if self.peek() == Some(b'}') {
                        None // open-ended {m,}
                    } else {
                        Some(self.number()?)
                    }
                } else {
                    Some(lo) // exact {m}
                };
                self.expect(b'}')?;
                if let Some(h) = hi {
                    if h < lo || h == 0 {
                        return Err(self.err("invalid repetition bounds"));
                    }
                }
                p = p.repeat(lo, hi);
            } else {
                return Ok(p);
            }
        }
    }

    /// Distinguishes the optional operator `p?` from a variable endpoint
    /// `?y`: a `?` immediately followed by an identifier character is a
    /// variable sigil (variables never have a space after `?`).
    fn next_is_var(&mut self) -> bool {
        debug_assert_eq!(self.peek(), Some(b'?'));
        matches!(
            self.input.get(self.pos + 1),
            Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b':' | b'.' | b'\'')
        )
    }

    fn number(&mut self) -> Result<u32> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii digits")
            .parse()
            .map_err(|_| self.err("number too large"))
    }

    fn primary(&mut self) -> Result<Path> {
        if self.eat(b'-') {
            return Ok(self.primary()?.inverse());
        }
        if self.eat(b'(') {
            let p = self.alt()?;
            self.expect(b')')?;
            return Ok(p);
        }
        Ok(Path::Label(self.ident()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q1() {
        let q = parse_ucrpq("?x <- ?x isMarriedTo/livesIn/isL+/dw+ Argentina").unwrap();
        assert_eq!(q.head(), &["x".to_string()]);
        let atom = &q.branches[0].atoms[0];
        assert_eq!(atom.left, Endpoint::Var("x".into()));
        assert_eq!(atom.right, Endpoint::Const("Argentina".into()));
        assert_eq!(atom.path.to_string(), "isMarriedTo/livesIn/isL+/dw+");
    }

    #[test]
    fn parses_inverse_and_groups() {
        let q = parse_ucrpq("?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon").unwrap();
        let atom = &q.branches[0].atoms[0];
        assert_eq!(atom.path.to_string(), "(actedIn/-actedIn)+");
    }

    #[test]
    fn parses_alternation() {
        let q = parse_ucrpq("?a, ?b <- ?a (isL|dw|rdfs:subClassOf|isConnectedTo)+ ?b").unwrap();
        assert!(q.branches[0].atoms[0].path.is_recursive());
    }

    #[test]
    fn parses_conjunction() {
        let q = parse_ucrpq("?a, ?b, ?c <- ?a wasBornIn/isL+ ?b, ?b isConnectedTo+ ?c").unwrap();
        assert_eq!(q.branches[0].atoms.len(), 2);
    }

    #[test]
    fn parses_union_branches() {
        let q = parse_ucrpq("?x <- ?x a+ ?y ; ?x <- ?x b+ ?y").unwrap();
        assert_eq!(q.branches.len(), 2);
    }

    #[test]
    fn rejects_mismatched_union_heads() {
        assert!(parse_ucrpq("?x <- ?x a ?y ; ?y <- ?x b ?y").is_err());
    }

    #[test]
    fn parses_unicode_arrow() {
        let q = parse_ucrpq("?x ← ?x a+ C").unwrap();
        assert_eq!(q.branches[0].atoms[0].right, Endpoint::Const("C".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_ucrpq("").is_err());
        assert!(parse_ucrpq("?x <-").is_err());
        assert!(parse_ucrpq("?x <- ?x a+ ?y extra!").is_err());
        assert!(parse_ucrpq("?x <- ?x (a ?y").is_err());
        assert!(parse_ucrpq("x <- ?x a ?y").is_err());
    }

    #[test]
    fn star_parses() {
        let q = parse_ucrpq("?x, ?y <- ?x a/b* ?y").unwrap();
        assert!(matches!(
            q.branches[0].atoms[0].path,
            Path::Concat(_, ref b) if matches!(**b, Path::Star(_))
        ));
    }

    #[test]
    fn optional_operator_vs_variable_sigil() {
        // `b?` is the optional operator; `?y` is a variable.
        let q = parse_ucrpq("?x, ?y <- ?x a/b? ?y").unwrap();
        assert_eq!(q.branches[0].atoms[0].path.to_string(), "a/b?");
        assert_eq!(q.branches[0].atoms[0].right, Endpoint::Var("y".into()));
        // Optional directly before the endpoint still disambiguates.
        let q2 = parse_ucrpq("?x, ?y <- ?x (a/b)? ?y").unwrap();
        assert!(matches!(q2.branches[0].atoms[0].path, Path::Optional(_)));
    }

    #[test]
    fn bounded_repetition() {
        let q = parse_ucrpq("?x, ?y <- ?x a{2,3} ?y").unwrap();
        // a{2,3} desugars to a/a/a? (concatenation with optional tail).
        assert_eq!(q.branches[0].atoms[0].path.to_string(), "a/a/a?");
        let q2 = parse_ucrpq("?x, ?y <- ?x a{2} ?y").unwrap();
        assert_eq!(q2.branches[0].atoms[0].path.to_string(), "a/a");
        let q3 = parse_ucrpq("?x, ?y <- ?x a{2,} ?y").unwrap();
        assert_eq!(q3.branches[0].atoms[0].path.to_string(), "a/a+");
        assert!(parse_ucrpq("?x, ?y <- ?x a{3,2} ?y").is_err());
        assert!(parse_ucrpq("?x, ?y <- ?x a{0,0} ?y").is_err());
    }

    #[test]
    fn constant_left_endpoint() {
        let q = parse_ucrpq("?x <- Jay_Kappraff (livesIn/isL/-livesIn)+ ?x").unwrap();
        assert_eq!(q.branches[0].atoms[0].left, Endpoint::Const("Jay_Kappraff".into()));
    }
}
