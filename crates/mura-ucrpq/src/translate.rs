//! `Query2Mu`: translation of UCRPQs into μ-RA terms.
//!
//! Following the μ-RA paper's scheme:
//!
//! * a regular path denotes a binary relation over canonical columns
//!   `src`/`dst`;
//! * `a` is the database relation `a`; `-a` swaps its columns;
//! * `p/q` is `π̃_m(ρ_dst→m(P) ⋈ ρ_src→m(Q))` with a fresh middle column;
//! * `p|q` is a union;
//! * `p+` is the right-linear fixpoint
//!   `μ(X = P ∪ π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(P)))`;
//! * `p*` is desugared during normalization (`ε | p+`; a path that can match
//!   the empty word at the top level of an atom is rejected — it would need
//!   a node-domain relation);
//! * an atom `?x p ?y` renames `src/dst` to columns named after the
//!   variables; a constant endpoint becomes a filter plus antiprojection;
//! * a conjunction is a natural join of its atoms (shared variables join);
//! * the head antiprojects all non-head variables; unions of branches map
//!   to μ-RA unions.
//!
//! The produced terms are *unoptimized* — `mura-rewrite` is responsible for
//! pushing filters/joins into fixpoints, merging and reversing them.

use crate::ast::{Atom, Crpq, Endpoint, Path, Ucrpq};
use mura_core::{Database, MuraError, Pred, Result, Sym, Term, Value};

/// Normalizes a path: inverses pushed down to labels, `*` desugared.
/// Returns the ε-free core (`None` if the path matches only ε) and whether
/// the path can match the empty word.
pub fn normalize(path: &Path) -> (Option<Path>, bool) {
    fn push_inv(p: &Path, inv: bool) -> Path {
        match p {
            Path::Label(_) => {
                if inv {
                    Path::Inverse(Box::new(p.clone()))
                } else {
                    p.clone()
                }
            }
            Path::Inverse(q) => push_inv(q, !inv),
            Path::Concat(a, b) => {
                if inv {
                    Path::Concat(Box::new(push_inv(b, true)), Box::new(push_inv(a, true)))
                } else {
                    Path::Concat(Box::new(push_inv(a, false)), Box::new(push_inv(b, false)))
                }
            }
            Path::Alt(a, b) => Path::Alt(Box::new(push_inv(a, inv)), Box::new(push_inv(b, inv))),
            Path::Plus(q) => Path::Plus(Box::new(push_inv(q, inv))),
            Path::Star(q) => Path::Star(Box::new(push_inv(q, inv))),
            Path::Optional(q) => Path::Optional(Box::new(push_inv(q, inv))),
        }
    }
    fn elim_star(p: &Path) -> (Option<Path>, bool) {
        match p {
            Path::Label(_) | Path::Inverse(_) => (Some(p.clone()), false),
            Path::Concat(a, b) => {
                let (ca, ea) = elim_star(a);
                let (cb, eb) = elim_star(b);
                let mut alts: Vec<Path> = Vec::new();
                if let (Some(x), Some(y)) = (&ca, &cb) {
                    alts.push(x.clone().then(y.clone()));
                }
                if eb {
                    if let Some(x) = &ca {
                        alts.push(x.clone());
                    }
                }
                if ea {
                    if let Some(y) = &cb {
                        alts.push(y.clone());
                    }
                }
                (alts_to_path(alts), ea && eb)
            }
            Path::Alt(a, b) => {
                let (ca, ea) = elim_star(a);
                let (cb, eb) = elim_star(b);
                let alts = ca.into_iter().chain(cb).collect();
                (alts_to_path(alts), ea || eb)
            }
            Path::Plus(q) => {
                let (cq, eq) = elim_star(q);
                (cq.map(|c| c.plus()), eq)
            }
            Path::Star(q) => {
                let (cq, _) = elim_star(q);
                (cq.map(|c| c.plus()), true)
            }
            Path::Optional(q) => {
                let (cq, _) = elim_star(q);
                (cq, true)
            }
        }
    }
    elim_star(&push_inv(path, false))
}

fn alts_to_path(mut alts: Vec<Path>) -> Option<Path> {
    let first = alts.pop()?;
    Some(alts.into_iter().fold(first, |acc, p| acc.or(p)))
}

/// Flattens a top-level alternation into its branches.
pub fn alt_list(p: &Path) -> Vec<&Path> {
    match p {
        Path::Alt(a, b) => {
            let mut v = alt_list(a);
            v.extend(alt_list(b));
            v
        }
        _ => vec![p],
    }
}

/// Flattens a top-level concatenation into its elements.
pub fn concat_list(p: &Path) -> Vec<&Path> {
    match p {
        Path::Concat(a, b) => {
            let mut v = concat_list(a);
            v.extend(concat_list(b));
            v
        }
        _ => vec![p],
    }
}

/// Translates a normalized path into a μ-RA term over columns `src`/`dst`.
pub fn path_term(p: &Path, db: &mut Database) -> Result<Term> {
    let src = db.intern("src");
    let dst = db.intern("dst");
    path_term_inner(p, db, src, dst)
}

fn label_term(l: &str, db: &mut Database) -> Result<Term> {
    if db.relation_by_name(l).is_none() {
        return Err(MuraError::Frontend(format!("unknown edge label '{l}'")));
    }
    Ok(Term::var(db.intern(l)))
}

fn path_term_inner(p: &Path, db: &mut Database, src: Sym, dst: Sym) -> Result<Term> {
    match p {
        Path::Label(l) => label_term(l, db),
        Path::Inverse(q) => {
            let Path::Label(l) = &**q else {
                unreachable!("normalize() pushes inverses to labels")
            };
            let t = label_term(l, db)?;
            let tmp = db.dict_mut().fresh("swap");
            Ok(t.rename(src, tmp).rename(dst, src).rename(tmp, dst))
        }
        Path::Concat(a, b) => {
            let ta = path_term_inner(a, db, src, dst)?;
            let tb = path_term_inner(b, db, src, dst)?;
            let m = db.dict_mut().fresh("m");
            Ok(ta.rename(dst, m).join(tb.rename(src, m)).antiproject(m))
        }
        Path::Alt(a, b) => {
            let ta = path_term_inner(a, db, src, dst)?;
            let tb = path_term_inner(b, db, src, dst)?;
            Ok(ta.union(tb))
        }
        Path::Plus(q) => {
            let inner = path_term_inner(q, db, src, dst)?;
            let x = db.dict_mut().fresh("X");
            let m = db.dict_mut().fresh("m");
            let step =
                Term::var(x).rename(dst, m).join(inner.clone().rename(src, m)).antiproject(m);
            Ok(inner.union(step).fix(x))
        }
        Path::Star(_) | Path::Optional(_) => Err(MuraError::Frontend(
            "internal: '*'/'?' must be desugared before translation".into(),
        )),
    }
}

/// Resolves a constant endpoint to a value: named constant from the
/// database registry, else an integer literal.
fn resolve_const(name: &str, db: &Database) -> Result<Value> {
    if let Some(v) = db.constant(name) {
        return Ok(v);
    }
    name.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| MuraError::Frontend(format!("unknown constant '{name}'")))
}

/// Column symbol for a query variable (`?x` → column `?x`, which cannot
/// collide with `src`/`dst` or edge labels).
pub fn var_column(v: &str, db: &mut Database) -> Sym {
    db.intern(&format!("?{v}"))
}

fn atom_term(atom: &Atom, db: &mut Database) -> Result<Term> {
    let (core, eps) = normalize(&atom.path);
    if eps {
        return Err(MuraError::Frontend(format!(
            "path '{}' can match the empty word; bind it through a node relation instead",
            atom.path
        )));
    }
    let core = core.ok_or_else(|| {
        MuraError::Frontend(format!("path '{}' denotes only the empty word", atom.path))
    })?;
    let src = db.intern("src");
    let dst = db.intern("dst");
    let mut t = path_term_inner(&core, db, src, dst)?;
    // Endpoints. Handle the ?x p ?x self-join with an explicit equality.
    match (&atom.left, &atom.right) {
        (Endpoint::Var(l), Endpoint::Var(r)) if l == r => {
            let col = var_column(l, db);
            let aux = db.dict_mut().fresh("self");
            t = t.rename(src, col).rename(dst, aux).filter(Pred::EqCol(col, aux)).antiproject(aux);
        }
        _ => {
            t = match &atom.left {
                Endpoint::Var(l) => t.rename(src, var_column(l, db)),
                Endpoint::Const(c) => {
                    let v = resolve_const(c, db)?;
                    t.filter(Pred::Eq(src, v)).antiproject(src)
                }
            };
            t = match &atom.right {
                Endpoint::Var(r) => t.rename(dst, var_column(r, db)),
                Endpoint::Const(c) => {
                    let v = resolve_const(c, db)?;
                    t.filter(Pred::Eq(dst, v)).antiproject(dst)
                }
            };
        }
    }
    Ok(t)
}

fn crpq_term(crpq: &Crpq, db: &mut Database) -> Result<Term> {
    if crpq.atoms.is_empty() {
        return Err(MuraError::Frontend("empty query body".into()));
    }
    // Join all atoms.
    let mut atoms = crpq.atoms.iter();
    let mut t = atom_term(atoms.next().expect("nonempty"), db)?;
    for a in atoms {
        t = t.join(atom_term(a, db)?);
    }
    // Collect body variables; project the head.
    let mut body_vars: Vec<&str> = Vec::new();
    for a in &crpq.atoms {
        for e in [&a.left, &a.right] {
            if let Endpoint::Var(v) = e {
                if !body_vars.contains(&v.as_str()) {
                    body_vars.push(v);
                }
            }
        }
    }
    for h in &crpq.head {
        if !body_vars.contains(&h.as_str()) {
            return Err(MuraError::Frontend(format!("head variable ?{h} not in body")));
        }
    }
    let drop: Vec<Sym> = body_vars
        .iter()
        .filter(|v| !crpq.head.iter().any(|h| h == *v))
        .map(|v| var_column(v, db))
        .collect();
    if !drop.is_empty() {
        t = t.antiproject_all(drop);
    }
    Ok(t)
}

/// Translates a UCRPQ into a μ-RA term. The output schema has one column
/// per head variable, named `?v`.
pub fn to_mura(q: &Ucrpq, db: &mut Database) -> Result<Term> {
    let mut terms = Vec::with_capacity(q.branches.len());
    for b in &q.branches {
        terms.push(crpq_term(b, db)?);
    }
    Ok(Term::union_all(terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_ucrpq;
    use mura_core::{eval, Relation, Schema};

    /// 0 -a-> 1 -a-> 2 -b-> 3; constant "C" = node 3.
    fn db() -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
        db.insert_relation("b", Relation::from_pairs(src, dst, [(2, 3)]));
        db.bind_constant("C", Value::node(3));
        db
    }

    fn run(query: &str, db: &mut Database) -> Relation {
        let q = parse_ucrpq(query).unwrap();
        let t = to_mura(&q, db).unwrap();
        eval(&t, db).unwrap()
    }

    #[test]
    fn single_label() {
        let mut d = db();
        let r = run("?x, ?y <- ?x a ?y", &mut d);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn plus_closure() {
        let mut d = db();
        let r = run("?x, ?y <- ?x a+ ?y", &mut d);
        assert_eq!(r.len(), 3); // (0,1) (1,2) (0,2)
    }

    #[test]
    fn concat_and_constant_right() {
        let mut d = db();
        // a+/b reaching C=3: sources 0 and 1.
        let r = run("?x <- ?x a+/b C", &mut d);
        assert_eq!(r.len(), 2);
        let schema = r.schema().clone();
        assert_eq!(schema.arity(), 1);
    }

    #[test]
    fn constant_left() {
        let mut d = db();
        let r = run("?y <- 0 a+ ?y", &mut d);
        assert_eq!(r.len(), 2); // 1 and 2
    }

    #[test]
    fn inverse_edges() {
        let mut d = db();
        let r = run("?x, ?y <- ?x -a ?y", &mut d);
        // reversed a: (1,0) (2,1)
        assert_eq!(r.len(), 2);
        let q = parse_ucrpq("?x, ?y <- ?x -a ?y").unwrap();
        let t = to_mura(&q, &mut d).unwrap();
        let rel = eval(&t, &d).unwrap();
        let x = d.dict().lookup("?x").unwrap();
        let y = d.dict().lookup("?y").unwrap();
        assert_eq!(rel.schema(), &Schema::new(vec![x, y]));
    }

    #[test]
    fn alternation_union() {
        let mut d = db();
        let r = run("?x, ?y <- ?x (a|b) ?y", &mut d);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn conjunction_joins_on_shared_var() {
        let mut d = db();
        let r = run("?x, ?z <- ?x a ?y, ?y a ?z", &mut d);
        assert_eq!(r.len(), 1); // 0->1->2
    }

    #[test]
    fn union_branches() {
        let mut d = db();
        let r = run("?x, ?y <- ?x a ?y ; ?x, ?y <- ?x b ?y", &mut d);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn star_desugars_in_concat() {
        let mut d = db();
        // a/b* = a | a/b+ : pairs (0,1),(1,2),(2,3 via b? no a first): a/b+ = (1,3). So 3 rows.
        let r = run("?x, ?y <- ?x a/b* ?y", &mut d);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn top_level_epsilon_rejected() {
        let mut d = db();
        let q = parse_ucrpq("?x, ?y <- ?x a* ?y").unwrap();
        assert!(to_mura(&q, &mut d).is_err());
    }

    #[test]
    fn self_join_variable() {
        let mut d = db();
        // add a cycle edge 2 -c-> 2
        let src = d.dict().lookup("src").unwrap();
        let dst = d.dict().lookup("dst").unwrap();
        d.insert_relation("c", Relation::from_pairs(src, dst, [(2, 2), (0, 1)]));
        let r = run("?x <- ?x c ?x", &mut d);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn unknown_label_and_constant_errors() {
        let mut d = db();
        let q = parse_ucrpq("?x, ?y <- ?x nope ?y").unwrap();
        assert!(to_mura(&q, &mut d).is_err());
        let q = parse_ucrpq("?x <- ?x a Nowhere").unwrap();
        assert!(to_mura(&q, &mut d).is_err());
    }

    #[test]
    fn head_var_must_occur() {
        let mut d = db();
        let q = parse_ucrpq("?z <- ?x a ?y").and_then(|q| to_mura(&q, &mut d));
        assert!(q.is_err());
    }

    #[test]
    fn numeric_constants_work() {
        let mut d = db();
        let r = run("?y <- 1 a ?y", &mut d);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn inverse_of_group_normalizes() {
        let (core, eps) = normalize(&Path::label("a").then(Path::label("b")).inverse());
        assert!(!eps);
        assert_eq!(core.unwrap().to_string(), "-b/-a");
    }

    #[test]
    fn inverse_of_plus_normalizes() {
        let (core, _) = normalize(&Path::label("a").plus().inverse());
        assert_eq!(core.unwrap().to_string(), "-a+");
    }

    #[test]
    fn optional_in_concat_evaluates() {
        let mut d = db();
        // a/b? = a ∪ a/b: (0,1),(1,2) plus a/b = (1,3): 3 rows.
        let r = run("?x, ?y <- ?x a/b? ?y", &mut d);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn bounded_repetition_evaluates() {
        let mut d = db();
        // a{1,2} on the chain 0→1→2: a = 2 rows, a/a = (0,2): 3 rows.
        let r = run("?x, ?y <- ?x a{1,2} ?y", &mut d);
        assert_eq!(r.len(), 3);
        // a{2,} = a/a+ : only (0,2).
        let r2 = run("?x, ?y <- ?x a{2,} ?y", &mut d);
        assert_eq!(r2.len(), 1);
    }

    #[test]
    fn top_level_optional_rejected() {
        let mut d = db();
        let q = parse_ucrpq("?x, ?y <- ?x a? ?y").unwrap();
        assert!(to_mura(&q, &mut d).is_err(), "ε-matching path must be rejected");
    }

    #[test]
    fn kevin_bacon_style_query() {
        // (a/-a)+ from a constant: co-source closure.
        let mut d = db();
        d.bind_constant("N0", Value::node(0));
        let r = run("?x <- ?x (a/-a)+ N0", &mut d);
        // a/-a pairs: {(0,0),(1,1)} from edges (0,1),(1,2) sharing targets…
        // (0,1),(1,2): a/-a = {(0,0),(1,1)}: only reflexive here, so ?x = 0.
        assert_eq!(r.len(), 1);
    }
}
