//! # mura-ucrpq — UCRPQ frontend for Dist-μ-RA
//!
//! UCRPQs (unions of conjunctions of regular path queries) are the paper's
//! query language frontend. This crate provides:
//!
//! * the query AST ([`ast`]) and a parser ([`parser`]) for the paper's
//!   notation, e.g. `?x <- ?x isMarriedTo/livesIn/isLocatedIn+/dealsWith+
//!   Argentina`;
//! * the `Query2Mu` translation to μ-RA terms ([`translate`]), following the
//!   scheme of the μ-RA paper: each regular path maps to a binary term over
//!   columns `src`/`dst`, Kleene-plus maps to a (right-linear) fixpoint,
//!   conjunctions map to natural joins on shared variables;
//! * the paper's query classification `C1..C6` ([`classify`], §V-D);
//! * the full experimental query suites of the paper ([`suites`]):
//!   Q1–Q25 (Yago), Q26–Q50 (Uniprot), concatenated closures, and the
//!   non-regular μ-RA specials (aⁿbⁿ, same generation, reach).

pub mod ast;
pub mod classify;
pub mod parser;
pub mod suites;
pub mod translate;

pub use ast::{Atom, Crpq, Endpoint, Path, Ucrpq};
pub use classify::{classify, QueryClass};
pub use parser::parse_ucrpq;
pub use translate::to_mura;
