//! The paper's query classification `C1..C6` (§V-D).
//!
//! Each class captures one recursive feature; a query may belong to several
//! classes, and the more classes it belongs to the more optimization
//! techniques its evaluation requires:
//!
//! | class | feature                                             | example              |
//! |-------|-----------------------------------------------------|----------------------|
//! | C1    | single recursion                                    | `?x a+ ?y`           |
//! | C2    | filter to the right of a recursion                  | `?x a+ C`            |
//! | C3    | filter to the left of a recursion                   | `C a+ ?x`            |
//! | C4    | non-recursive term concatenated right of recursion  | `?x a+/b ?y`         |
//! | C5    | non-recursive term concatenated left of recursion   | `?x b/a+ ?y`         |
//! | C6    | concatenation of recursions                         | `?x a+/b+ ?y`        |

use crate::ast::{Endpoint, Path, Ucrpq};
use crate::translate::{alt_list, concat_list, normalize};
use std::fmt;

/// One of the six query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryClass {
    C1,
    C2,
    C3,
    C4,
    C5,
    C6,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", *self as u8 + 1)
    }
}

/// Classifies a query into the classes it belongs to (sorted, deduplicated).
///
/// Classification follows the paper's per-feature definitions and is applied
/// per atom; the query's classes are the union over atoms. Star-desugared
/// alternatives are each inspected.
pub fn classify(q: &Ucrpq) -> Vec<QueryClass> {
    use QueryClass::*;
    let mut out = Vec::new();
    let add = |c: QueryClass, out: &mut Vec<QueryClass>| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    for branch in &q.branches {
        for atom in &branch.atoms {
            let (core, _eps) = normalize(&atom.path);
            let Some(core) = core else { continue };
            let atom_recursive = core.is_recursive();
            let left_const = matches!(atom.left, Endpoint::Const(_));
            let right_const = matches!(atom.right, Endpoint::Const(_));
            if atom_recursive && right_const {
                add(C2, &mut out);
            }
            if atom_recursive && left_const {
                add(C3, &mut out);
            }
            for alternative in alt_list(&core) {
                let elems = concat_list(alternative);
                let rec: Vec<bool> = elems.iter().map(|e| is_closure(e)).collect();
                let n_rec = rec.iter().filter(|&&r| r).count();
                if elems.len() == 1 && rec[0] && !left_const && !right_const {
                    add(C1, &mut out);
                }
                if n_rec >= 2 {
                    add(C6, &mut out);
                }
                // C4/C5: a non-recursive element on the appropriate side of
                // some recursion.
                for i in 0..elems.len() {
                    if !rec[i] {
                        continue;
                    }
                    if rec[i + 1..].iter().any(|r| !r) {
                        add(C4, &mut out);
                    }
                    if rec[..i].iter().any(|r| !r) {
                        add(C5, &mut out);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// True if the element is itself a closure (`p+`), as opposed to merely
/// containing one deeper inside a concatenation.
fn is_closure(p: &Path) -> bool {
    matches!(p, Path::Plus(_) | Path::Star(_))
}

#[cfg(test)]
mod tests {
    use super::QueryClass::*;
    use super::*;
    use crate::parser::parse_ucrpq;

    fn classes(q: &str) -> Vec<QueryClass> {
        classify(&parse_ucrpq(q).unwrap())
    }

    #[test]
    fn paper_class_examples() {
        // The six canonical examples from §V-D.
        assert_eq!(classes("?x, ?y <- ?x a+ ?y"), vec![C1]);
        assert_eq!(classes("?x <- ?x a+ C"), vec![C2]);
        assert_eq!(classes("?x <- C a+ ?x"), vec![C3]);
        assert_eq!(classes("?x, ?y <- ?x a+/b ?y"), vec![C4]);
        assert_eq!(classes("?x, ?y <- ?x b/a+ ?y"), vec![C5]);
        assert_eq!(classes("?x, ?y <- ?x a+/b+ ?y"), vec![C6]);
    }

    #[test]
    fn paper_combined_example() {
        // "?x ← C a/b+ ?x belongs to C3 … and also belongs to C5" (§V-D).
        assert_eq!(classes("?x <- C a/b+ ?x"), vec![C3, C5]);
    }

    #[test]
    fn q9_is_c2() {
        // §V-E: "Q9 for instance belongs to C2".
        let c = classes("?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon");
        assert!(c.contains(&C2));
        assert!(!c.contains(&C1));
    }

    #[test]
    fn concatenated_closures_are_c6() {
        let c = classes("?x, ?y <- ?x a1+/a2+/a3+ ?y");
        assert_eq!(c, vec![C6]);
    }

    #[test]
    fn q2_shape() {
        // hasChild/livesIn/isL+/dw+ Japan: C2 (const right), C5 (non-rec
        // before recursion), C6 (two closures).
        let c = classes("?x <- ?x hasChild/livesIn/isL+/dw+ Japan");
        assert_eq!(c, vec![C2, C5, C6]);
    }

    #[test]
    fn conjunction_unions_classes() {
        let c = classes("?a, ?c <- ?a isL+ Japan, ?a isConnectedTo+ ?c");
        assert!(c.contains(&C2));
        assert!(c.contains(&C1));
    }

    #[test]
    fn non_recursive_query_has_no_class() {
        assert!(classes("?x, ?y <- ?x a/b ?y").is_empty());
    }

    #[test]
    fn alternation_inside_closure_is_single_recursion() {
        assert_eq!(classes("?a, ?b <- ?a (isL|dw|isConnectedTo)+ ?b"), vec![C1]);
    }
}
