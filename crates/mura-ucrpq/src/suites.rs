//! The paper's experimental query suites.
//!
//! * [`yago_queries`] — Q1..Q25 (Fig. 5), written against the predicate
//!   names of `mura_datagen::yago_like` (abbreviations from the paper
//!   expanded: `isL` → `isLocatedIn`, `dw` → `dealsWith`, `haa` →
//!   `hasAcademicAdvisor`, `SA` → `Shannon_Airport`, `JLT` →
//!   `John_Lawrence_Toole`, `wce` → `wikicat_Capitals_in_Europe`).
//! * [`uniprot_queries`] — Q26..Q50 (Fig. 6) against
//!   `mura_datagen::uniprot_like` (`int` → `interacts`, `enc` → `encodes`,
//!   `occ` → `occurs`, `hKw` → `hasKeyword`, `ref` → `reference`, `auth` →
//!   `authoredBy`, `pub` → `publishes`; the per-query constant `C` is the
//!   appropriate hub entity).
//! * [`concat_closure_query`] — `a1+/a2+/…/an+` (§V-D b).
//! * [`anbn_term`], [`same_generation_term`], [`reach_term`] — the
//!   non-regular μ-RA terms of §V-D c, built directly in the algebra.

use mura_core::{Database, Result, Sym, Term, Value};

/// A query with its paper identifier.
#[derive(Debug, Clone, Copy)]
pub struct NamedQuery {
    /// Paper identifier, e.g. `Q9`.
    pub id: &'static str,
    /// UCRPQ text, parseable by [`crate::parse_ucrpq`].
    pub text: &'static str,
}

/// Q1..Q25 — the Yago suite (paper Fig. 5).
pub fn yago_queries() -> Vec<NamedQuery> {
    vec![
        NamedQuery {
            id: "Q1",
            text: "?x <- ?x isMarriedTo/livesIn/isLocatedIn+/dealsWith+ Argentina",
        },
        NamedQuery { id: "Q2", text: "?x <- ?x hasChild/livesIn/isLocatedIn+/dealsWith+ Japan" },
        NamedQuery { id: "Q3", text: "?x <- ?x influences/livesIn/isLocatedIn+/dealsWith+ Sweden" },
        NamedQuery { id: "Q4", text: "?x <- ?x livesIn/isLocatedIn+/dealsWith+ United_States" },
        NamedQuery {
            id: "Q5",
            text: "?x <- ?x hasSuccessor/livesIn/isLocatedIn+/dealsWith+ India",
        },
        NamedQuery {
            id: "Q6",
            text: "?x <- ?x hasPredecessor/livesIn/isLocatedIn+/dealsWith+ Germany",
        },
        NamedQuery {
            id: "Q7",
            text: "?x <- ?x hasAcademicAdvisor/livesIn/isLocatedIn+/dealsWith+ Netherlands",
        },
        NamedQuery { id: "Q8", text: "?x <- ?x isLocatedIn+/dealsWith+ United_States" },
        NamedQuery { id: "Q9", text: "?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon" },
        NamedQuery {
            id: "Q10",
            text:
                "?area <- wikicat_Capitals_in_Europe -type/(isLocatedIn+/dealsWith|dealsWith) ?area",
        },
        NamedQuery {
            id: "Q11",
            text: "?person <- ?person (isMarriedTo+/owns/isLocatedIn+|owns/isLocatedIn+) USA",
        },
        NamedQuery { id: "Q12", text: "?a, ?b <- ?a isLocatedIn+/dealsWith ?b" },
        NamedQuery { id: "Q13", text: "?a, ?b <- ?a isLocatedIn+/dealsWith+ ?b" },
        NamedQuery {
            id: "Q14",
            text: "?a, ?b, ?c <- ?a wasBornIn/isLocatedIn+ ?b, ?b isConnectedTo+ ?c",
        },
        NamedQuery {
            id: "Q15",
            text: "?a, ?b, ?c <- ?a (isLocatedIn|isConnectedTo)+ ?b, ?a wasBornIn ?c",
        },
        NamedQuery {
            id: "Q16",
            text: "?a, ?b, ?c <- ?a wasBornIn/isLocatedIn+ Japan, ?b isConnectedTo+ ?c",
        },
        NamedQuery { id: "Q17", text: "?a <- ?a isLocatedIn+/(isConnectedTo|dealsWith)+ Japan" },
        NamedQuery { id: "Q18", text: "?a, ?c <- ?a isLocatedIn+ Japan, ?a isConnectedTo+ ?c" },
        NamedQuery { id: "Q19", text: "?a <- ?a isLocatedIn+/isLocatedIn Japan" },
        NamedQuery { id: "Q20", text: "?a <- ?a isLocatedIn+/isConnectedTo+/dealsWith+ Japan" },
        NamedQuery {
            id: "Q21",
            text: "?a, ?b <- ?a (isLocatedIn|dealsWith|subClassOf|isConnectedTo)+ ?b",
        },
        NamedQuery { id: "Q22", text: "?a <- ?a (isConnectedTo/-isConnectedTo)+ Shannon_Airport" },
        NamedQuery {
            id: "Q23",
            text: "?a <- ?a (wasBornIn/isLocatedIn/-wasBornIn)+ John_Lawrence_Toole",
        },
        NamedQuery { id: "Q24", text: "?x <- Jay_Kappraff (livesIn/isLocatedIn/-livesIn)+ ?x" },
        NamedQuery { id: "Q25", text: "?a, ?b <- ?a (actedIn/-actedIn)+/hasChild+ ?b" },
    ]
}

/// Q26..Q50 — the Uniprot suite (paper Fig. 6). The paper's dataset
/// constant `C` is instantiated with the hub entity of the appropriate kind
/// (`HubProtein`, `HubReference`, `HubJournal`) exported by
/// `mura_datagen::uniprot_like`.
pub fn uniprot_queries() -> Vec<NamedQuery> {
    vec![
        NamedQuery { id: "Q26", text: "?x, ?y <- ?x -hasKeyword/(reference/-reference)+ ?y" },
        NamedQuery { id: "Q27", text: "?x, ?y <- ?x -hasKeyword/(encodes/-encodes)+ ?y" },
        NamedQuery { id: "Q28", text: "?x, ?y <- ?x -hasKeyword/(occurs/-occurs)+ ?y" },
        NamedQuery { id: "Q29", text: "?x, ?y <- ?x interacts/(encodes/-encodes)+ ?y" },
        NamedQuery { id: "Q30", text: "?x, ?y <- ?x interacts/(occurs/-occurs)+ ?y" },
        NamedQuery { id: "Q31", text: "?x, ?y <- ?x interacts+/(occurs/-occurs)+ ?y" },
        NamedQuery { id: "Q32", text: "?x, ?y <- ?x interacts+/(encodes/-encodes)+ ?y" },
        NamedQuery { id: "Q33", text: "?x, ?y <- ?x interacts+/(occurs/-occurs)+/(hasKeyword/-hasKeyword)+ ?y" },
        NamedQuery { id: "Q34", text: "?x, ?y <- ?x -hasKeyword/interacts/reference/(authoredBy/-authoredBy)+ ?y" },
        NamedQuery { id: "Q35", text: "?x, ?y <- ?x (encodes/-encodes)+/hasKeyword ?y" },
        NamedQuery { id: "Q36", text: "?x <- ?x (encodes/-encodes)+ HubProtein" },
        NamedQuery { id: "Q37", text: "?x, ?y, ?z, ?t <- ?x (encodes/-encodes)+ ?y, ?x interacts+ ?z, ?x reference ?t" },
        NamedQuery { id: "Q38", text: "?x, ?y <- ?x (interacts|encodes/-encodes)+ ?y, HubProtein (occurs/-occurs)+ ?y" },
        NamedQuery { id: "Q39", text: "?x <- ?x interacts+/reference ?y, HubReference (authoredBy/-authoredBy)+ ?y" },
        NamedQuery { id: "Q40", text: "?x <- ?x interacts+/reference ?y, HubJournal -publishes/(authoredBy/-authoredBy)+ ?y" },
        NamedQuery { id: "Q41", text: "?x <- HubJournal -publishes/(authoredBy/-authoredBy)+ ?x" },
        NamedQuery { id: "Q42", text: "?x, ?y <- ?x -occurs/interacts+/occurs ?y" },
        NamedQuery { id: "Q43", text: "?x, ?y <- ?x (-reference/reference)+ ?y" },
        NamedQuery { id: "Q44", text: "?x, ?y <- ?x interacts/reference/(-reference/reference)+ ?y" },
        NamedQuery { id: "Q45", text: "?x <- HubProtein (reference/-reference)+ ?x" },
        NamedQuery { id: "Q46", text: "?x, ?y <- ?x (-reference/reference)+/(authoredBy|publishes) ?y" },
        NamedQuery { id: "Q47", text: "?x <- ?x (encodes/-encodes|occurs/-occurs)+ HubProtein" },
        NamedQuery { id: "Q48", text: "?x <- HubProtein interacts/(encodes/-encodes|occurs/-occurs)+ ?x" },
        NamedQuery { id: "Q49", text: "?x <- HubProtein (encodes/-encodes)+ ?x" },
        NamedQuery { id: "Q50", text: "?x <- HubProtein (occurs/-occurs)+ ?x" },
    ]
}

/// Concatenated closure query `?x, ?y <- ?x a1+/a2+/…/an+ ?y` (all in C6).
pub fn concat_closure_query(n: usize) -> String {
    assert!(n >= 1);
    let path: Vec<String> = (1..=n).map(|i| format!("a{i}+")).collect();
    format!("?x, ?y <- ?x {} ?y", path.join("/"))
}

/// The paper's aⁿbⁿ term: pairs of nodes connected by a path of `n` edges
/// labeled `a` followed by `n` edges labeled `b` (not expressible as a
/// UCRPQ).
///
/// ```text
/// μ(X = a∘b ∪ a∘X∘b)
/// ```
pub fn anbn_term(db: &mut Database, label_a: &str, label_b: &str) -> Result<Term> {
    let src = db.intern("src");
    let dst = db.intern("dst");
    let a = Term::var(db.intern(label_a));
    let b = Term::var(db.intern(label_b));
    let x = db.dict_mut().fresh("X");
    let m = db.dict_mut().fresh("m");
    let n = db.dict_mut().fresh("n");
    // Seed: a ∘ b.
    let seed = a.clone().rename(dst, m).join(b.clone().rename(src, m)).antiproject(m);
    // Step: a ∘ X ∘ b  (paper's nested antiprojection form).
    let left = a.rename(dst, m).join(Term::var(x).rename(src, m).rename(dst, n)).antiproject(m);
    let step = left.join(b.rename(src, n)).antiproject(n);
    Ok(seed.union(step).fix(x))
}

/// The paper's *same generation* term over a parent relation `R(src,dst)`
/// (`src` is the parent of `dst`): pairs of nodes at equal depth below a
/// common ancestor.
///
/// ```text
/// SG = μ(X = sibling ∪ R⁻∘X∘R)   — seed: share a parent;
///                                   step: parents are same-generation.
/// ```
pub fn same_generation_term(db: &mut Database, parent_label: &str) -> Result<Term> {
    let src = db.intern("src");
    let dst = db.intern("dst");
    let r = Term::var(db.intern(parent_label));
    let x = db.dict_mut().fresh("X");
    let m = db.dict_mut().fresh("m");
    let n = db.dict_mut().fresh("n");
    let tmp = db.dict_mut().fresh("t");
    // R with columns {m, src}: parent → m, child → src.
    let r_left = r.clone().rename(dst, tmp).rename(src, m).rename(tmp, src);
    // R with columns {m, dst}: parent → m, child → dst.
    let r_right = r.clone().rename(src, m);
    // Seed: siblings (children of the same parent).
    let seed = r_left.clone().join(r_right.clone()).antiproject(m);
    // Step: R(p, x) ∧ X(p, q) ∧ R(q, y).
    // X with columns {m, n}.
    let x_mid = Term::var(x).rename(src, m).rename(dst, n);
    let left = r_left.join(x_mid).antiproject(m); // {src, n}
    let right = r.rename(src, n); // {n, dst}
    let step = left.join(right).antiproject(n);
    Ok(seed.union(step).fix(x))
}

/// The paper's *reach* term: nodes reachable from `source` in `R`.
///
/// ```text
/// π̃_src(μ(X = σ_src=N(R) ∪ π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(R))))
/// ```
pub fn reach_term(db: &mut Database, edge_label: &str, source: Value) -> Result<Term> {
    let src = db.intern("src");
    let dst = db.intern("dst");
    let r = Term::var(db.intern(edge_label));
    let x = db.dict_mut().fresh("X");
    let m = db.dict_mut().fresh("m");
    let seed = r.clone().filter_eq(src, source);
    let step = Term::var(x).rename(dst, m).join(r.rename(src, m)).antiproject(m);
    Ok(seed.union(step).fix(x).antiproject(src))
}

/// Symbol of the canonical `src` column (interning it if needed).
pub fn src_col(db: &mut Database) -> Sym {
    db.intern("src")
}

/// Symbol of the canonical `dst` column (interning it if needed).
pub fn dst_col(db: &mut Database) -> Sym {
    db.intern("dst")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::parser::parse_ucrpq;
    use mura_core::{eval, Relation};

    #[test]
    fn all_suite_queries_parse() {
        for q in yago_queries().iter().chain(uniprot_queries().iter()) {
            parse_ucrpq(q.text).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        }
    }

    #[test]
    fn suite_covers_all_classes() {
        use crate::classify::QueryClass::*;
        let mut seen = std::collections::BTreeSet::new();
        for q in yago_queries().iter().chain(uniprot_queries().iter()) {
            for c in classify(&parse_ucrpq(q.text).unwrap()) {
                seen.insert(c);
            }
        }
        for c in [C1, C2, C3, C4, C5, C6] {
            assert!(seen.contains(&c), "suite misses class {c}");
        }
    }

    #[test]
    fn concat_closure_text() {
        assert_eq!(concat_closure_query(2), "?x, ?y <- ?x a1+/a2+ ?y");
        assert_eq!(concat_closure_query(3), "?x, ?y <- ?x a1+/a2+/a3+ ?y");
    }

    fn chain_db() -> Database {
        // a-chain 0→1→2 and b-chain 2→3→4 (so aabb path 0→4, ab path 1→3).
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
        db.insert_relation("b", Relation::from_pairs(src, dst, [(2, 3), (3, 4)]));
        db
    }

    #[test]
    fn anbn_on_chain() {
        let mut db = chain_db();
        let t = anbn_term(&mut db, "a", "b").unwrap();
        let r = eval(&t, &db).unwrap();
        // n=1: a∘b = (1,3); n=2: aabb = (0,4).
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn same_generation_on_tree() {
        // Tree: 0 -> {1, 2}; 1 -> {3}; 2 -> {4}. Same generation: (1,2),
        // (2,1), (3,4), (4,3) and reflexive pairs of siblings' children…
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("R", Relation::from_pairs(src, dst, [(0, 1), (0, 2), (1, 3), (2, 4)]));
        let t = same_generation_term(&mut db, "R").unwrap();
        let r = eval(&t, &db).unwrap();
        // Siblings of same parent include (x,x); generation-2: 3 with 4.
        // Pairs: (1,1),(1,2),(2,1),(2,2),(3,3),(4,4),(3,4),(4,3).
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn reach_from_source() {
        let mut db = chain_db();
        let t = reach_term(&mut db, "a", Value::node(0)).unwrap();
        let r = eval(&t, &db).unwrap();
        assert_eq!(r.len(), 2); // 1, 2
        assert_eq!(r.schema().arity(), 1);
    }
}
