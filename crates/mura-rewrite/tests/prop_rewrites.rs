//! Randomized tests: the optimizer preserves semantics on randomly
//! generated regular path queries over random labeled graphs, and never
//! increases the estimated cost.

use mura_core::{eval, Database, Relation};
use mura_datagen::SplitMix64;
use mura_rewrite::{optimize, Rewriter};
use mura_ucrpq::{to_mura, Atom, Crpq, Endpoint, Path, Ucrpq};

const CASES: u64 = 48;

fn rand_path(rng: &mut SplitMix64, depth: u32) -> Path {
    let leaf = |rng: &mut SplitMix64| match rng.gen_range(0..3u64) {
        0 => Path::label("a"),
        1 => Path::label("b"),
        _ => Path::label("a").inverse(),
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..6u64) {
        0 | 1 => rand_path(rng, depth - 1).then(rand_path(rng, depth - 1)),
        2 | 3 => rand_path(rng, depth - 1).or(rand_path(rng, depth - 1)),
        4 => rand_path(rng, depth - 1).plus(),
        _ => leaf(rng),
    }
}

fn rand_endpoint(rng: &mut SplitMix64, var: &str) -> Endpoint {
    if rng.gen_range(0..3u64) < 2 {
        Endpoint::Var(var.to_string())
    } else {
        Endpoint::Const(rng.gen_range(0..25u64).to_string())
    }
}

fn rand_edges(rng: &mut SplitMix64, min_len: usize) -> Vec<(u64, u64, bool)> {
    let len = rng.gen_range(min_len..50usize);
    (0..len)
        .map(|_| (rng.gen_range(0..25u64), rng.gen_range(0..25u64), rng.gen_bool(0.5)))
        .collect()
}

fn db_from(edges: &[(u64, u64, bool)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let a: Vec<_> = edges.iter().filter(|e| e.2).map(|&(s, d, _)| (s, d)).collect();
    let b: Vec<_> = edges.iter().filter(|e| !e.2).map(|&(s, d, _)| (s, d)).collect();
    db.insert_relation("a", Relation::from_pairs(src, dst, a));
    db.insert_relation("b", Relation::from_pairs(src, dst, b));
    db
}

#[test]
fn optimize_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0x0b71 ^ case);
        let edges = rand_edges(&mut rng, 1);
        let path = rand_path(&mut rng, 3);
        let left = rand_endpoint(&mut rng, "x");
        let right = rand_endpoint(&mut rng, "y");

        let mut head = Vec::new();
        if let Endpoint::Var(v) = &left {
            head.push(v.clone());
        }
        if let Endpoint::Var(v) = &right {
            if !head.contains(v) {
                head.push(v.clone());
            }
        }
        if head.is_empty() {
            continue;
        }
        let q = Ucrpq { branches: vec![Crpq { head, atoms: vec![Atom { left, path, right }] }] };
        let mut db = db_from(&edges);
        let Ok(term) = to_mura(&q, &mut db) else { continue };
        let expected = eval(&term, &db).expect("naive eval");
        let opt = optimize(&term, &mut db).expect("optimize");
        let got = eval(&opt, &db).expect("optimized eval");
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "case {case}: query {q}");
    }
}

#[test]
fn optimize_never_raises_estimated_cost() {
    for case in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(0xc057 ^ case);
        let edges = rand_edges(&mut rng, 5);
        let path = rand_path(&mut rng, 3);

        let q = Ucrpq {
            branches: vec![Crpq {
                head: vec!["x".into(), "y".into()],
                atoms: vec![Atom {
                    left: Endpoint::Var("x".into()),
                    path,
                    right: Endpoint::Var("y".into()),
                }],
            }],
        };
        let mut db = db_from(&edges);
        let Ok(term) = to_mura(&q, &mut db) else { continue };
        let rw = Rewriter::new(&mut db);
        let opt = rw.optimize(&term, &mut db).expect("optimize");
        let (Ok(c_naive), Ok(c_opt)) = (rw.cost(&term), rw.cost(&opt)) else { continue };
        // Small tolerance: normalization can reshape plans of equal cost.
        assert!(c_opt <= c_naive * 1.05, "case {case}: cost {c_opt} > naive {c_naive}");
    }
}
