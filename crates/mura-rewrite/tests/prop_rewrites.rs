//! Property tests: the optimizer preserves semantics on randomly generated
//! regular path queries over random labeled graphs, and never increases
//! the estimated cost.

use mura_core::{eval, Database, Relation};
use mura_rewrite::{optimize, Rewriter};
use mura_ucrpq::{to_mura, Atom, Crpq, Endpoint, Path, Ucrpq};
use proptest::prelude::*;

fn path_strategy() -> impl Strategy<Value = Path> {
    let leaf = prop_oneof![
        Just(Path::label("a")),
        Just(Path::label("b")),
        Just(Path::label("a").inverse()),
    ];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.then(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            inner.prop_map(|x| x.plus()),
        ]
    })
}

fn endpoint(var: &'static str) -> impl Strategy<Value = Endpoint> {
    prop_oneof![
        2 => Just(Endpoint::Var(var.to_string())),
        1 => (0u64..25).prop_map(|n| Endpoint::Const(n.to_string())),
    ]
}

fn db_from(edges: &[(u64, u64, bool)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let a: Vec<_> = edges.iter().filter(|e| e.2).map(|&(s, d, _)| (s, d)).collect();
    let b: Vec<_> = edges.iter().filter(|e| !e.2).map(|&(s, d, _)| (s, d)).collect();
    db.insert_relation("a", Relation::from_pairs(src, dst, a));
    db.insert_relation("b", Relation::from_pairs(src, dst, b));
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_preserves_semantics(
        edges in prop::collection::vec((0u64..25, 0u64..25, any::<bool>()), 1..50),
        path in path_strategy(),
        left in endpoint("x"),
        right in endpoint("y"),
    ) {
        let mut head = Vec::new();
        if let Endpoint::Var(v) = &left { head.push(v.clone()); }
        if let Endpoint::Var(v) = &right { if !head.contains(v) { head.push(v.clone()); } }
        if head.is_empty() { return Ok(()); }
        let q = Ucrpq {
            branches: vec![Crpq { head, atoms: vec![Atom { left, path, right }] }],
        };
        let mut db = db_from(&edges);
        let Ok(term) = to_mura(&q, &mut db) else { return Ok(()) };
        let expected = eval(&term, &db).expect("naive eval");
        let opt = optimize(&term, &mut db).expect("optimize");
        let got = eval(&opt, &db).expect("optimized eval");
        prop_assert_eq!(got.sorted_rows(), expected.sorted_rows(), "query {}", q);
    }

    #[test]
    fn optimize_never_raises_estimated_cost(
        edges in prop::collection::vec((0u64..25, 0u64..25, any::<bool>()), 5..50),
        path in path_strategy(),
    ) {
        let q = Ucrpq {
            branches: vec![Crpq {
                head: vec!["x".into(), "y".into()],
                atoms: vec![Atom {
                    left: Endpoint::Var("x".into()),
                    path,
                    right: Endpoint::Var("y".into()),
                }],
            }],
        };
        let mut db = db_from(&edges);
        let Ok(term) = to_mura(&q, &mut db) else { return Ok(()) };
        let rw = Rewriter::new(&mut db);
        let opt = rw.optimize(&term, &mut db).expect("optimize");
        let (Ok(c_naive), Ok(c_opt)) = (rw.cost(&term), rw.cost(&opt)) else { return Ok(()) };
        // Small tolerance: normalization can reshape plans of equal cost.
        prop_assert!(c_opt <= c_naive * 1.05, "cost {c_opt} > naive {c_naive}");
    }
}
