//! The rewrite driver: memoized enumeration with a greedy-pipeline floor.
//!
//! Mirrors the paper's architecture (§III): `MuRewriter` explores
//! semantically equivalent plans; the `CostEstimator` selects the best
//! recursive plan. Always-profitable rules (filter / antiprojection /
//! rename / join pushing, §[`crate::rules`]) are applied greedily; plans
//! genuinely diverge only at *closure decisions* — merging two fixpoints,
//! pushing a composition into a fixpoint, or reversing a fixpoint to expose
//! the other side.
//!
//! Two strategies resolve those decisions:
//!
//! * [`Rewriter::optimize_pipeline`] — the original greedy sweep: at each
//!   decision point, pick the locally cheapest alternative and move on.
//! * [`Rewriter::optimize`] / [`Rewriter::optimize_report`] — memoized
//!   enumeration ([`crate::enumerate`]): keep the competing alternatives in
//!   a plan-space memo, cost every surviving candidate, and extract the
//!   globally cheapest plan. The pipeline's plan is part of the space and
//!   acts as a floor, so enumeration never returns a plan costed worse
//!   than the greedy one.
//!
//! With [`Rewriter::with_observations`], fixpoints whose sizes were
//! measured by a previous execution are costed from those observations
//! instead of static estimates (the server's feedback loop).

use crate::closure::{compose, recognize, reversal_alternatives};
use crate::cost::{CostModel, ObservedCards, Stats};
use crate::enumerate::{EnumConfig, EnumReport, Enumerator};
use crate::rules;
use mura_core::analysis::TypeEnv;
use mura_core::{Database, Dictionary, Result, Sym, Term};

/// Maximum normalize+closure sweeps. Each sweep only accepts strictly
/// cheaper plans, so this is a safety bound rather than a tuning knob.
const MAX_PASSES: usize = 5;

/// Required relative improvement to adopt an alternative plan (guards
/// against oscillation between reversible forms of equal cost).
const IMPROVEMENT: f64 = 0.999;

/// Cost-based μ-RA optimizer.
pub struct Rewriter {
    stats: Stats,
    src: Sym,
    dst: Sym,
    observed: Option<ObservedCards>,
    enum_cfg: EnumConfig,
}

impl Rewriter {
    /// Builds a rewriter for a database (collects base statistics).
    pub fn new(db: &mut Database) -> Self {
        let stats = Stats::from_db(db);
        let src = db.intern("src");
        let dst = db.intern("dst");
        Rewriter { stats, src, dst, observed: None, enum_cfg: EnumConfig::default() }
    }

    /// Builds a rewriter over precomputed statistics (skips the full-db
    /// scan; the server maintains its `Stats` incrementally).
    pub fn with_stats(stats: Stats, db: &mut Database) -> Self {
        let src = db.intern("src");
        let dst = db.intern("dst");
        Rewriter { stats, src, dst, observed: None, enum_cfg: EnumConfig::default() }
    }

    /// Supplies observed fixpoint cardinalities (canonical key → measured
    /// rows); fixpoints found in the map are costed from measurement.
    pub fn with_observations(mut self, observed: ObservedCards) -> Self {
        self.observed = Some(observed);
        self
    }

    /// Overrides the enumeration budget.
    pub fn with_enum_config(mut self, cfg: EnumConfig) -> Self {
        self.enum_cfg = cfg;
        self
    }

    /// True when observed cardinalities were supplied (and non-empty).
    pub fn has_observations(&self) -> bool {
        self.observed.as_ref().is_some_and(|o| !o.is_empty())
    }

    pub(crate) fn src(&self) -> Sym {
        self.src
    }

    pub(crate) fn dst(&self) -> Sym {
        self.dst
    }

    /// Optimizes a term: returns a semantically equivalent, estimated-cheaper
    /// plan (memoized enumeration with the greedy pipeline as a floor).
    pub fn optimize(&self, term: &Term, db: &mut Database) -> Result<Term> {
        Ok(self.optimize_report(term, db)?.0)
    }

    /// Like [`Rewriter::optimize`], also returning the enumeration report
    /// (`.explain`, benchmarking).
    pub fn optimize_report(&self, term: &Term, db: &mut Database) -> Result<(Term, EnumReport)> {
        let pipeline = self.optimize_pipeline(term, db)?;
        let pipeline_cost =
            self.cost_with(&pipeline, db.dict()).map(|(c, _)| c).unwrap_or(f64::INFINITY);
        let mut en = Enumerator::new(self, self.enum_cfg.clone());
        let mut env = TypeEnv::from_db(db);
        let gid = en.explore(term, db, &mut env, &mut Vec::new())?;
        Ok(en.finish(gid, db, pipeline, pipeline_cost, IMPROVEMENT))
    }

    /// Every plan the enumerator can extract for `term` (the surviving
    /// members of the root group plus the pipeline plan), cheapest first.
    /// All of them are semantically equivalent to `term` — the property
    /// tests exercise exactly this set.
    pub fn candidates(&self, term: &Term, db: &mut Database) -> Result<Vec<Term>> {
        let mut en = Enumerator::new(self, self.enum_cfg.clone());
        let mut env = TypeEnv::from_db(db);
        let gid = en.explore(term, db, &mut env, &mut Vec::new())?;
        let mut out = en.members(gid);
        out.push(self.optimize_pipeline(term, db)?);
        Ok(out)
    }

    /// The original greedy strategy: repeated closure-decision sweeps with
    /// local cost-based picks, then normalization, until a fixpoint.
    pub fn optimize_pipeline(&self, term: &Term, db: &mut Database) -> Result<Term> {
        // Closure decisions run *before* normalization in each sweep: the
        // frontend emits pristine composition patterns, and normalization
        // (e.g. pushing a rename into a fixpoint's seed) can obscure them.
        let mut t = term.clone();
        for _ in 0..MAX_PASSES {
            let mut env = TypeEnv::from_db(db);
            let t2 = self.closure_pass(&t, db, &mut env, &mut Vec::new())?;
            let t2 = rules::normalize(&t2, &mut env);
            if t2 == t {
                break;
            }
            t = t2;
        }
        Ok(t)
    }

    /// Estimated cost of a plan under static statistics (exposed for
    /// benchmarking/ablation).
    pub fn cost(&self, term: &Term) -> Result<f64> {
        CostModel::new(&self.stats).cost(term)
    }

    /// Cost under the active model (observed cardinalities when supplied);
    /// returns the cost and how many fixpoints were costed from an
    /// observation, or `None` when the plan cannot be costed.
    pub(crate) fn cost_with(&self, term: &Term, dict: &Dictionary) -> Option<(f64, usize)> {
        let cm = match &self.observed {
            Some(cards) => CostModel::with_observed(&self.stats, cards, dict),
            None => CostModel::new(&self.stats),
        };
        cm.cost(term).ok().map(|c| (c, cm.observed_hits()))
    }

    /// One bottom-up sweep taking cost-based decisions at composition
    /// patterns and filtered closures. `bound` tracks enclosing fixpoint
    /// variables: subterms mentioning them are not closed, so no
    /// alternatives are generated (they cannot be costed independently).
    fn closure_pass(
        &self,
        t: &Term,
        db: &mut Database,
        env: &mut TypeEnv,
        bound: &mut Vec<Sym>,
    ) -> Result<Term> {
        let closed = |t: &Term, bound: &[Sym]| !bound.iter().any(|v| t.has_free_var(*v));
        // Composition pattern? Optimize operands first, then compare
        // alternatives.
        if let Some((a, b, _m)) = recognize_compose(t, self.src, self.dst) {
            if closed(&a, bound) && closed(&b, bound) {
                let a = self.closure_pass(&a, db, env, bound)?;
                let b = self.closure_pass(&b, db, env, bound)?;
                let original = compose(a.clone(), b.clone(), self.src, self.dst, db.dict_mut());
                let mut alts = crate::closure::compose_alternatives(
                    &a,
                    &b,
                    self.src,
                    self.dst,
                    env,
                    db.dict_mut(),
                );
                // Normalize alternatives so their costs reflect final shape.
                for alt in &mut alts {
                    *alt = rules::normalize(alt, env);
                }
                return self.pick(original, alts);
            }
        }
        // Filter over a closure: consider reversing it so the filter can be
        // pushed into the seed of the reoriented fixpoint.
        if let Term::Filter(preds, inner) = t {
            if matches!(&**inner, Term::Fix(_, _)) && closed(inner, bound) {
                let inner_opt = self.closure_pass(inner, db, env, bound)?;
                let original = Term::Filter(preds.clone(), Box::new(inner_opt.clone()));
                let mut alts = Vec::new();
                if let Some(form) = recognize(&inner_opt, self.src, self.dst, env) {
                    alts.extend(reversal_alternatives(preds, &form, db.dict_mut()));
                }
                for alt in &mut alts {
                    *alt = rules::normalize(alt, env);
                }
                return self.pick(original, alts);
            }
        }
        // Cross-atom joins: consider pushing one operand into the other's
        // fixpoint through its rename chain (e.g. Q18-style conjunctions,
        // `?a isL+ Japan, ?a isConnectedTo+ ?c`). Cost decides — carrying
        // extra columns through the iteration is not always a win.
        if let Term::Join(a, b) = t {
            if closed(a, bound) && closed(b, bound) {
                let a = self.closure_pass(a, db, env, bound)?;
                let b = self.closure_pass(b, db, env, bound)?;
                let mut alts = Vec::new();
                if let Some(alt) = rules::join_into_fix_through_renames(&a, &b, env) {
                    alts.push(rules::normalize(&alt, env));
                }
                if let Some(alt) = rules::join_into_fix_through_renames(&b, &a, env) {
                    alts.push(rules::normalize(&alt, env));
                }
                return self.pick(a.join(b), alts);
            }
        }
        // Otherwise: rebuild with optimized children.
        Ok(match t {
            Term::Var(_) | Term::Cst(_) => t.clone(),
            Term::Filter(ps, inner) => {
                Term::Filter(ps.clone(), Box::new(self.closure_pass(inner, db, env, bound)?))
            }
            Term::Rename(a, b, inner) => {
                Term::Rename(*a, *b, Box::new(self.closure_pass(inner, db, env, bound)?))
            }
            Term::AntiProject(cs, inner) => {
                Term::AntiProject(cs.clone(), Box::new(self.closure_pass(inner, db, env, bound)?))
            }
            Term::Join(a, b) => Term::Join(
                Box::new(self.closure_pass(a, db, env, bound)?),
                Box::new(self.closure_pass(b, db, env, bound)?),
            ),
            Term::Antijoin(a, b) => Term::Antijoin(
                Box::new(self.closure_pass(a, db, env, bound)?),
                Box::new(self.closure_pass(b, db, env, bound)?),
            ),
            Term::Union(a, b) => Term::Union(
                Box::new(self.closure_pass(a, db, env, bound)?),
                Box::new(self.closure_pass(b, db, env, bound)?),
            ),
            Term::Fix(x, body) => {
                bound.push(*x);
                let body2 = self.closure_pass(body, db, env, bound);
                bound.pop();
                Term::Fix(*x, Box::new(body2?))
            }
        })
    }

    /// Picks the cheapest among the original and the alternatives (with a
    /// strict-improvement margin).
    fn pick(&self, original: Term, alts: Vec<Term>) -> Result<Term> {
        let cm = CostModel::new(&self.stats);
        let mut best = original;
        let mut best_cost = match cm.cost(&best) {
            Ok(c) => c,
            // Un-costable (e.g. constants only known upstream): keep as is.
            Err(_) => return Ok(best),
        };
        for alt in alts {
            // Alternatives whose cost cannot be estimated are skipped.
            if let Ok(c) = cm.cost(&alt) {
                if c < best_cost * IMPROVEMENT {
                    best = alt;
                    best_cost = c;
                }
            }
        }
        Ok(best)
    }
}

/// Matches the composition pattern `π̃_m(ρ_dst→m(A) ⋈ ρ_src→m(B))`,
/// returning `(A, B, m)`.
pub fn recognize_compose(t: &Term, src: Sym, dst: Sym) -> Option<(Term, Term, Sym)> {
    let Term::AntiProject(cols, inner) = t else { return None };
    let [m] = cols.as_slice() else { return None };
    let Term::Join(l, r) = &**inner else { return None };
    for (x, y) in [(l, r), (r, l)] {
        let Term::Rename(fa, ma, a) = &**x else { continue };
        let Term::Rename(fb, mb, b) = &**y else { continue };
        if *fa == dst && *ma == *m && *fb == src && *mb == *m {
            return Some(((**a).clone(), (**b).clone(), *m));
        }
    }
    None
}

/// Optimizes `term` against `db` (convenience wrapper).
pub fn optimize(term: &Term, db: &mut Database) -> Result<Term> {
    Rewriter::new(db).optimize(term, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{eval, Database, Relation};
    use mura_datagen::SplitMix64;
    use mura_datagen::{erdos_renyi, with_random_labels};
    use mura_ucrpq::{parse_ucrpq, to_mura};

    /// Labeled random graph database for end-to-end rewrite tests.
    fn test_db() -> Database {
        let mut rng = SplitMix64::seed_from_u64(11);
        let g = erdos_renyi(300, 0.01, 4);
        let lg = with_random_labels(&g, 3, &mut rng);
        let mut db = lg.to_database();
        db.bind_constant("C", mura_core::Value::node(7));
        db
    }

    fn check(query: &str) -> (Term, Term, Database) {
        let mut db = test_db();
        let q = parse_ucrpq(query).unwrap();
        let naive = to_mura(&q, &mut db).unwrap();
        let opt = optimize(&naive, &mut db).unwrap();
        let a = eval(&naive, &db).unwrap();
        let b = eval(&opt, &db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "optimized plan changed semantics");
        (naive, opt, db)
    }

    #[test]
    fn c1_unchanged_semantics() {
        check("?x, ?y <- ?x a1+ ?y");
    }

    #[test]
    fn c2_filter_right_reverses() {
        let (_, opt, db) = check("?x <- ?x a1+ C");
        // The optimized plan must contain no filter above a fixpoint: the
        // reversal pushed it into a seed.
        fn filter_over_fix(t: &Term) -> bool {
            match t {
                Term::Filter(_, inner) => {
                    matches!(**inner, Term::Fix(_, _)) || filter_over_fix(inner)
                }
                _ => t.children().iter().any(|c| filter_over_fix(c)),
            }
        }
        assert!(!filter_over_fix(&opt), "{}", opt.display(db.dict()));
    }

    #[test]
    fn c3_filter_left_pushes() {
        let (_, opt, db) = check("?x <- C a1+ ?x");
        fn filter_over_fix(t: &Term) -> bool {
            match t {
                Term::Filter(_, inner) => {
                    matches!(**inner, Term::Fix(_, _)) || filter_over_fix(inner)
                }
                _ => t.children().iter().any(|c| filter_over_fix(c)),
            }
        }
        assert!(!filter_over_fix(&opt), "{}", opt.display(db.dict()));
    }

    #[test]
    fn c4_concat_right_optimizes() {
        check("?x, ?y <- ?x a1+/a2 ?y");
    }

    #[test]
    fn c5_concat_left_pushes_join() {
        let (naive, opt, _) = check("?x, ?y <- ?x a2/a1+ ?y");
        // Pushing the join into the fixpoint removes the top-level compose:
        // the optimized term has no more fixpoints than the naive one and
        // the join moved inside.
        assert!(opt.fixpoint_count() <= naive.fixpoint_count());
    }

    #[test]
    fn c6_merge_fixpoints() {
        let (naive, opt, _) = check("?x, ?y <- ?x a1+/a2+ ?y");
        // Naive: two fixpoints joined. Merged: a single two-branch fixpoint.
        assert_eq!(naive.fixpoint_count(), 2);
        assert!(opt.fixpoint_count() <= 1, "expected merged fixpoint");
    }

    #[test]
    fn mixed_classes_still_correct() {
        check("?x <- C a2/a1+ ?x");
        check("?x <- ?x a1+/a2 C");
        check("?x, ?y <- ?x a1/a2+/a3+ ?y");
    }

    #[test]
    fn conjunction_correct() {
        check("?x, ?z <- ?x a1+ ?y, ?y a2+ ?z");
    }

    #[test]
    fn optimized_cost_not_worse() {
        let mut db = test_db();
        let rw = Rewriter::new(&mut db);
        for q in ["?x <- ?x a1+ C", "?x, ?y <- ?x a1+/a2+ ?y", "?x <- C a1+ ?x"] {
            let parsed = parse_ucrpq(q).unwrap();
            let naive = to_mura(&parsed, &mut db).unwrap();
            let opt = rw.optimize(&naive, &mut db).unwrap();
            let cn = rw.cost(&naive).unwrap();
            let co = rw.cost(&opt).unwrap();
            assert!(co <= cn, "{q}: cost went up ({co} > {cn})");
        }
    }

    #[test]
    fn recognize_compose_matches_frontend_output() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1)]));
        db.insert_relation("b", Relation::from_pairs(src, dst, [(1, 2)]));
        let q = parse_ucrpq("?x, ?y <- ?x a/b ?y").unwrap();
        let t = to_mura(&q, &mut db).unwrap();
        // Strip the outer renames (?x, ?y) to reach the compose node.
        fn find_compose(t: &Term, src: Sym, dst: Sym) -> bool {
            if recognize_compose(t, src, dst).is_some() {
                return true;
            }
            t.children().iter().any(|c| find_compose(c, src, dst))
        }
        assert!(find_compose(&t, src, dst));
    }

    #[test]
    fn idempotent_on_nonrecursive() {
        let mut db = test_db();
        let q = parse_ucrpq("?x, ?y <- ?x a1/a2 ?y").unwrap();
        let t = to_mura(&q, &mut db).unwrap();
        let o1 = optimize(&t, &mut db).unwrap();
        let o2 = optimize(&o1, &mut db).unwrap();
        assert_eq!(eval(&o1, &db).unwrap().sorted_rows(), eval(&o2, &db).unwrap().sorted_rows());
    }
}
