//! Memoized transformation-based enumeration of the recursive plan space.
//!
//! Where the greedy pipeline ([`crate::rewriter`]) commits to one
//! alternative at every closure decision, the enumerator keeps the
//! competing rewritings alive in a [`Memo`]: every closed subterm owns a
//! group of semantically equivalent plans, built bottom-up (children are
//! enumerated first, parents combine the children's surviving members) and
//! expanded by the closure rule families until a fixpoint, a rule-mask
//! blocks re-derivation, or the budget trips. Costing every member with the
//! (possibly observation-backed) [`CostModel`] and extracting the group's
//! cheapest member yields the winner; the greedy pipeline's plan is always
//! part of the space (via the rollout family) and is used as a floor, so
//! the enumerated plan is never costed worse than the pipeline's.
//!
//! Budget policy: groups are beam-truncated (`beam`) when sealed, parents
//! combine at most `pair_limit` members per child, expansion stops after
//! `max_rounds` sweeps, and a global `max_members` cap bounds the whole
//! space (reported as `budget_hit`). The defaults keep enumeration in the
//! tens-of-microseconds on the repro query classes.
//!
//! [`CostModel`]: crate::cost::CostModel

use crate::closure::{compose, compose_alternatives, recognize, reversal_alternatives};
use crate::memo::{
    canon_key, GroupId, Memo, RuleMask, RULE_ALL, RULE_COMPOSE, RULE_JOIN_PUSH, RULE_REVERSE,
    RULE_ROLLOUT,
};
use crate::rewriter::{recognize_compose, Rewriter};
use crate::rules;
use mura_core::analysis::TypeEnv;
use mura_core::{Database, Result, Sym, Term};

/// Enumeration budget knobs.
#[derive(Debug, Clone)]
pub struct EnumConfig {
    /// Members kept per group when it is sealed.
    pub beam: usize,
    /// Child members considered per operand when building parent plans.
    pub pair_limit: usize,
    /// Global cap on live members across all groups.
    pub max_members: usize,
    /// Expansion sweeps per group.
    pub max_rounds: usize,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig { beam: 6, pair_limit: 3, max_members: 320, max_rounds: 3 }
    }
}

/// Per-group digest for `.explain`.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Rendering of the group's cheapest member (truncated).
    pub label: String,
    /// Surviving members.
    pub members: usize,
    /// Cost of the cheapest member.
    pub best_cost: f64,
}

/// What the enumeration did, for `.explain` and benchmarking.
#[derive(Debug, Clone, Default)]
pub struct EnumReport {
    /// Equivalence groups in the memo.
    pub groups: usize,
    /// Distinct candidate plans admitted across all groups (before beam
    /// truncation).
    pub candidates: usize,
    /// Cost of the extracted plan.
    pub winner_cost: f64,
    /// Cost of the greedy pipeline's plan under the same model.
    pub pipeline_cost: f64,
    /// True when the enumerated plan beat the pipeline's (strictly, with
    /// the improvement margin).
    pub enumerated_won: bool,
    /// The global member budget tripped (space was truncated).
    pub budget_hit: bool,
    /// Fixpoints of the winner costed from an observed total.
    pub observed_fixpoints: usize,
    /// Observed-cardinality feedback was available to the cost model.
    pub used_observed: bool,
    /// Digest of every group, cheapest member first.
    pub group_summaries: Vec<GroupSummary>,
}

/// One enumeration run over a term.
pub(crate) struct Enumerator<'r> {
    rw: &'r Rewriter,
    cfg: EnumConfig,
    memo: Memo,
    budget_hit: bool,
    candidates: usize,
}

fn closed(t: &Term, bound: &[Sym]) -> bool {
    !bound.iter().any(|v| t.has_free_var(*v))
}

/// True when every symbol of `t` resolves in `dict` (terms planned against
/// a database other than the one they were translated with may carry
/// foreign symbols, which `Term::display` cannot render).
fn displayable(t: &Term, dict: &mura_core::Dictionary) -> bool {
    let ok = |s: Sym| s.index() < dict.len();
    let syms_ok = match t {
        Term::Var(v) => ok(*v),
        Term::Cst(r) => r.schema().columns().iter().all(|c| ok(*c)),
        Term::Filter(ps, _) => ps.iter().all(|p| p.columns().iter().all(|c| ok(*c))),
        Term::Rename(a, b, _) => ok(*a) && ok(*b),
        Term::AntiProject(cs, _) => cs.iter().all(|c| ok(*c)),
        Term::Fix(x, _) => ok(*x),
        Term::Join(..) | Term::Antijoin(..) | Term::Union(..) => true,
    };
    syms_ok && t.children().iter().all(|c| displayable(c, dict))
}

impl<'r> Enumerator<'r> {
    pub(crate) fn new(rw: &'r Rewriter, cfg: EnumConfig) -> Self {
        Enumerator { rw, cfg, memo: Memo::new(), budget_hit: false, candidates: 0 }
    }

    /// Enumerates the plan space of `t` bottom-up. Returns the (sealed)
    /// group holding `t`'s alternatives.
    pub(crate) fn explore(
        &mut self,
        t: &Term,
        db: &mut Database,
        env: &mut TypeEnv,
        bound: &mut Vec<Sym>,
    ) -> Result<GroupId> {
        let key0 = canon_key(t, db.dict(), bound);
        if let Some(gid) = self.memo.lookup(key0) {
            return Ok(gid);
        }
        let gid = self.memo.create(key0);
        let (src, dst) = (self.rw.src(), self.rw.dst());
        // The term itself is always a member.
        self.add(gid, t.clone(), db, env, bound, 0, false);

        // Decision points mirror the greedy pass, but instead of picking one
        // alternative we combine the children's surviving members and keep
        // every derived plan.
        if let Some((a, b, _m)) = recognize_compose(t, src, dst) {
            if closed(&a, bound) && closed(&b, bound) {
                let ga = self.explore(&a, db, env, bound)?;
                let gb = self.explore(&b, db, env, bound)?;
                let tops_a = self.memo.top_terms(ga, self.cfg.pair_limit);
                let tops_b = self.memo.top_terms(gb, self.cfg.pair_limit);
                for (i, ta) in tops_a.iter().enumerate() {
                    for (j, tb) in tops_b.iter().enumerate() {
                        if i > 0 && j > 0 {
                            continue; // vary one operand at a time
                        }
                        let original = compose(ta.clone(), tb.clone(), src, dst, db.dict_mut());
                        self.add(gid, original, db, env, bound, 0, false);
                        for alt in compose_alternatives(ta, tb, src, dst, env, db.dict_mut()) {
                            self.add(gid, alt, db, env, bound, RULE_COMPOSE, true);
                        }
                    }
                }
            }
        } else if let Term::Filter(preds, inner) = t {
            if matches!(&**inner, Term::Fix(_, _)) && closed(inner, bound) {
                let gi = self.explore(inner, db, env, bound)?;
                for it in self.memo.top_terms(gi, self.cfg.pair_limit) {
                    let original = Term::Filter(preds.clone(), Box::new(it.clone()));
                    self.add(gid, original, db, env, bound, 0, false);
                    if let Some(form) = recognize(&it, src, dst, env) {
                        for alt in reversal_alternatives(preds, &form, db.dict_mut()) {
                            self.add(gid, alt, db, env, bound, RULE_REVERSE, true);
                        }
                    }
                }
            } else {
                self.rebuild_unary(gid, t, db, env, bound)?;
            }
        } else if let Term::Join(a, b) = t {
            let ga = self.explore(a, db, env, bound)?;
            let gb = self.explore(b, db, env, bound)?;
            let both_closed = closed(a, bound) && closed(b, bound);
            let tops_a = self.memo.top_terms(ga, self.cfg.pair_limit);
            let tops_b = self.memo.top_terms(gb, self.cfg.pair_limit);
            for (i, ta) in tops_a.iter().enumerate() {
                for (j, tb) in tops_b.iter().enumerate() {
                    if i > 0 && j > 0 {
                        continue;
                    }
                    self.add(gid, ta.clone().join(tb.clone()), db, env, bound, 0, false);
                    if both_closed {
                        if let Some(alt) = rules::join_into_fix_through_renames(ta, tb, env) {
                            self.add(gid, alt, db, env, bound, RULE_JOIN_PUSH, true);
                        }
                        if let Some(alt) = rules::join_into_fix_through_renames(tb, ta, env) {
                            self.add(gid, alt, db, env, bound, RULE_JOIN_PUSH, true);
                        }
                    }
                }
            }
        } else {
            self.rebuild_generic(gid, t, db, env, bound)?;
        }

        self.expand(gid, db, env, bound)?;
        self.memo.seal(gid, self.cfg.beam);
        Ok(gid)
    }

    /// Rebuild for unary operators: wrap each surviving child member.
    fn rebuild_unary(
        &mut self,
        gid: GroupId,
        t: &Term,
        db: &mut Database,
        env: &mut TypeEnv,
        bound: &mut Vec<Sym>,
    ) -> Result<()> {
        let (inner, wrap): (&Term, Box<dyn Fn(Term) -> Term>) = match t {
            Term::Filter(ps, inner) => {
                let ps = ps.clone();
                (inner, Box::new(move |c| Term::Filter(ps.clone(), Box::new(c))))
            }
            Term::Rename(a, b, inner) => {
                let (a, b) = (*a, *b);
                (inner, Box::new(move |c| Term::Rename(a, b, Box::new(c))))
            }
            Term::AntiProject(cs, inner) => {
                let cs = cs.clone();
                (inner, Box::new(move |c| Term::AntiProject(cs.clone(), Box::new(c))))
            }
            _ => return Ok(()),
        };
        let gi = self.explore(inner, db, env, bound)?;
        for it in self.memo.top_terms(gi, self.cfg.pair_limit) {
            self.add(gid, wrap(it), db, env, bound, 0, false);
        }
        Ok(())
    }

    /// Rebuild for the remaining shapes (binary set operators, fixpoints).
    fn rebuild_generic(
        &mut self,
        gid: GroupId,
        t: &Term,
        db: &mut Database,
        env: &mut TypeEnv,
        bound: &mut Vec<Sym>,
    ) -> Result<()> {
        match t {
            Term::Var(_) | Term::Cst(_) => {}
            Term::Filter(..) | Term::Rename(..) | Term::AntiProject(..) => {
                self.rebuild_unary(gid, t, db, env, bound)?;
            }
            Term::Join(..) => {} // handled at the decision point
            Term::Antijoin(a, b) | Term::Union(a, b) => {
                let ga = self.explore(a, db, env, bound)?;
                let gb = self.explore(b, db, env, bound)?;
                let tops_a = self.memo.top_terms(ga, self.cfg.pair_limit);
                let tops_b = self.memo.top_terms(gb, self.cfg.pair_limit);
                for (i, ta) in tops_a.iter().enumerate() {
                    for (j, tb) in tops_b.iter().enumerate() {
                        if i > 0 && j > 0 {
                            continue;
                        }
                        let rebuilt = match t {
                            Term::Antijoin(..) => {
                                Term::Antijoin(Box::new(ta.clone()), Box::new(tb.clone()))
                            }
                            _ => Term::Union(Box::new(ta.clone()), Box::new(tb.clone())),
                        };
                        self.add(gid, rebuilt, db, env, bound, 0, false);
                    }
                }
            }
            Term::Fix(x, body) => {
                bound.push(*x);
                let gb = self.explore(body, db, env, bound);
                bound.pop();
                let gb = gb?;
                for bt in self.memo.top_terms(gb, self.cfg.pair_limit) {
                    self.add(gid, Term::Fix(*x, Box::new(bt)), db, env, bound, 0, false);
                }
            }
        }
        Ok(())
    }

    /// Expansion sweeps: apply the rule families still unset in each
    /// member's mask, including the greedy-pipeline rollout (which both
    /// guarantees the pipeline's plan is in the space and resolves nested
    /// decision points that normalization exposed).
    fn expand(
        &mut self,
        gid: GroupId,
        db: &mut Database,
        env: &mut TypeEnv,
        bound: &[Sym],
    ) -> Result<()> {
        let (src, dst) = (self.rw.src(), self.rw.dst());
        for _ in 0..self.cfg.max_rounds {
            if self.budget_hit {
                break;
            }
            let pending: Vec<(Term, RuleMask)> = self
                .memo
                .group(gid)
                .members
                .iter()
                .filter(|m| m.mask != RULE_ALL)
                .map(|m| (m.term.clone(), m.mask))
                .collect();
            if pending.is_empty() {
                break;
            }
            for m in self.memo.members_mut(gid) {
                m.mask = RULE_ALL;
            }
            let mut added = false;
            for (term, mask) in pending {
                if !closed(&term, bound) {
                    continue;
                }
                if mask & RULE_COMPOSE == 0 {
                    if let Some((a, b, _m)) = recognize_compose(&term, src, dst) {
                        for alt in compose_alternatives(&a, &b, src, dst, env, db.dict_mut()) {
                            added |= self.add(gid, alt, db, env, bound, RULE_COMPOSE, true);
                        }
                    }
                }
                if mask & RULE_REVERSE == 0 {
                    if let Term::Filter(preds, inner) = &term {
                        if let Some(form) = recognize(inner, src, dst, env) {
                            for alt in reversal_alternatives(preds, &form, db.dict_mut()) {
                                added |= self.add(gid, alt, db, env, bound, RULE_REVERSE, true);
                            }
                        }
                    }
                }
                if mask & RULE_JOIN_PUSH == 0 {
                    if let Term::Join(a, b) = &term {
                        if let Some(alt) = rules::join_into_fix_through_renames(a, b, env) {
                            added |= self.add(gid, alt, db, env, bound, RULE_JOIN_PUSH, true);
                        }
                        if let Some(alt) = rules::join_into_fix_through_renames(b, a, env) {
                            added |= self.add(gid, alt, db, env, bound, RULE_JOIN_PUSH, true);
                        }
                    }
                }
                if mask & RULE_ROLLOUT == 0 {
                    if let Ok(rolled) = self.rw.optimize_pipeline(&term, db) {
                        // Rollout output is the greedy pipeline's fixpoint:
                        // fully derived, nothing left to expand from it.
                        added |= self.add(gid, rolled, db, env, bound, RULE_ALL, true);
                    }
                }
            }
            if !added {
                break;
            }
            // Re-focus the next sweep on the cheapest members.
            self.memo.seal(gid, self.cfg.beam);
        }
        Ok(())
    }

    /// Admits a candidate into a group: normalize (closed terms only),
    /// canonicalize, cost, dedup, respect the global budget. Returns
    /// whether the member was new.
    #[allow(clippy::too_many_arguments)]
    fn add(
        &mut self,
        gid: GroupId,
        t: Term,
        db: &mut Database,
        env: &mut TypeEnv,
        bound: &[Sym],
        mask: RuleMask,
        require_cost: bool,
    ) -> bool {
        if self.memo.member_count() >= self.cfg.max_members {
            self.budget_hit = true;
            return false;
        }
        let t = if bound.is_empty() { rules::normalize(&t, env) } else { t };
        let key = canon_key(&t, db.dict(), bound);
        let cost = match self.rw.cost_with(&t, db.dict()) {
            Some((c, _)) => c,
            None if require_cost => return false,
            None => f64::INFINITY,
        };
        let new = self.memo.add(gid, t, cost, key, mask);
        if new {
            self.candidates += 1;
        }
        new
    }

    /// All surviving member terms of a group (cheapest first).
    pub(crate) fn members(&self, gid: GroupId) -> Vec<Term> {
        self.memo.top_terms(gid, usize::MAX)
    }

    /// Extracts the cheapest member and builds the report. `pipeline` /
    /// `pipeline_cost` give the greedy plan as a floor: the enumerated
    /// member is adopted only when strictly cheaper (by `improvement`), so
    /// the result never costs worse than the pipeline's.
    pub(crate) fn finish(
        self,
        gid: GroupId,
        db: &Database,
        pipeline: Term,
        pipeline_cost: f64,
        improvement: f64,
    ) -> (Term, EnumReport) {
        let best = self.memo.group(gid).members.first().cloned();
        let (winner, winner_cost, won) = match best {
            Some(m) if m.cost.is_finite() && m.cost < pipeline_cost * improvement => {
                (m.term, m.cost, true)
            }
            _ => (pipeline, pipeline_cost, false),
        };
        let observed_fixpoints = self.rw.cost_with(&winner, db.dict()).map(|(_, h)| h).unwrap_or(0);
        let mut group_summaries = Vec::with_capacity(self.memo.group_count());
        for g in 0..self.memo.group_count() {
            let group = self.memo.group(g);
            let Some(first) = group.members.first() else { continue };
            let mut label = if displayable(&first.term, db.dict()) {
                format!("{}", first.term.display(db.dict()))
            } else {
                "(foreign symbols)".to_string()
            };
            if label.chars().count() > 72 {
                label = label.chars().take(69).collect::<String>() + "...";
            }
            group_summaries.push(GroupSummary {
                label,
                members: group.members.len(),
                best_cost: first.cost,
            });
        }
        let report = EnumReport {
            groups: self.memo.group_count(),
            candidates: self.candidates,
            winner_cost,
            pipeline_cost,
            enumerated_won: won,
            budget_hit: self.budget_hit,
            observed_fixpoints,
            used_observed: self.rw.has_observations(),
            group_summaries,
        };
        (winner, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::eval;
    use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
    use mura_ucrpq::{parse_ucrpq, to_mura};

    fn test_db() -> Database {
        let mut rng = SplitMix64::seed_from_u64(11);
        let g = erdos_renyi(300, 0.01, 4);
        let lg = with_random_labels(&g, 3, &mut rng);
        let mut db = lg.to_database();
        db.bind_constant("C", mura_core::Value::node(7));
        db
    }

    #[test]
    fn report_is_populated_and_winner_correct() {
        let mut db = test_db();
        let rw = Rewriter::new(&mut db);
        for q in [
            "?x <- ?x a1+ C",
            "?x, ?y <- ?x a1+/a2+ ?y",
            "?x <- ?x a1+/a2+ C",
            "?x, ?z <- ?x a1+ ?y, ?y a2+ ?z",
        ] {
            let parsed = parse_ucrpq(q).unwrap();
            let naive = to_mura(&parsed, &mut db).unwrap();
            let (winner, report) = rw.optimize_report(&naive, &mut db).unwrap();
            assert!(report.groups > 0, "{q}: no groups");
            assert!(report.candidates > 0, "{q}: no candidates");
            assert!(
                report.winner_cost <= report.pipeline_cost,
                "{q}: winner {} worse than pipeline {}",
                report.winner_cost,
                report.pipeline_cost
            );
            let a = eval(&naive, &db).unwrap();
            let b = eval(&winner, &db).unwrap();
            assert_eq!(a.sorted_rows(), b.sorted_rows(), "{q}: semantics changed");
            eprintln!(
                "{q}: groups={} candidates={} pipeline={:.0} winner={:.0} won={}",
                report.groups,
                report.candidates,
                report.pipeline_cost,
                report.winner_cost,
                report.enumerated_won
            );
        }
    }

    #[test]
    fn enumeration_beats_pipeline_on_filtered_merged_closure() {
        // `?x <- ?x a1+/a2+ C`: the greedy sweep merges a1+/a2+ first
        // (locally cheapest) and then cannot push the dst filter — the
        // merged closure has no stable column. The enumerator keeps the
        // unmerged composition alive, where the filter reaches a2+ and a
        // reversal turns it into a small-seed closure.
        let mut db = test_db();
        let rw = Rewriter::new(&mut db);
        let parsed = parse_ucrpq("?x <- ?x a1+/a2+ C").unwrap();
        let naive = to_mura(&parsed, &mut db).unwrap();
        let (winner, report) = rw.optimize_report(&naive, &mut db).unwrap();
        assert!(
            report.enumerated_won,
            "enumeration should beat the pipeline here: winner {} pipeline {}",
            report.winner_cost, report.pipeline_cost
        );
        let a = eval(&naive, &db).unwrap();
        let b = eval(&winner, &db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn all_candidates_semantically_equivalent() {
        let mut db = test_db();
        let rw = Rewriter::new(&mut db);
        for q in ["?x <- ?x a1+ C", "?x, ?y <- ?x a1+/a2+ ?y", "?x <- ?x a1+/a2+ C"] {
            let parsed = parse_ucrpq(q).unwrap();
            let naive = to_mura(&parsed, &mut db).unwrap();
            let expected = eval(&naive, &db).unwrap().sorted_rows();
            let cands = rw.candidates(&naive, &mut db).unwrap();
            assert!(cands.len() >= 2, "{q}: expected several candidates");
            for (i, c) in cands.iter().enumerate() {
                let got = eval(c, &db).unwrap().sorted_rows();
                assert_eq!(got, expected, "{q}: candidate {i} diverges");
            }
        }
    }

    #[test]
    fn observed_cardinalities_steer_costs() {
        let mut db = test_db();
        let parsed = parse_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        let naive = to_mura(&parsed, &mut db).unwrap();
        let rw = Rewriter::new(&mut db);
        let (winner, _) = rw.optimize_report(&naive, &mut db).unwrap();
        // Record an absurdly large observation for the winner's fixpoint.
        let mut cards = crate::cost::ObservedCards::default();
        fn first_fix(t: &Term) -> Option<&Term> {
            if matches!(t, Term::Fix(_, _)) {
                return Some(t);
            }
            t.children().iter().find_map(|c| first_fix(c))
        }
        let fix = first_fix(&winner).expect("winner has a fixpoint");
        cards.insert(canon_key(fix, db.dict(), &[]), 1e9);
        let rw2 = Rewriter::new(&mut db).with_observations(cards);
        let (static_cost, _) = rw.cost_with(&winner, db.dict()).unwrap();
        let (obs_cost, hits) = rw2.cost_with(&winner, db.dict()).unwrap();
        assert!(hits >= 1, "observation must be hit");
        assert!(obs_cost > static_cost * 100.0, "observed {obs_cost} vs static {static_cost}");
    }
}
