//! Greedy normalization rules.
//!
//! These rules are always beneficial (or neutral) and are applied to a
//! fixpoint: classical filter/antiprojection pushdown, plus the μ-RA rules
//! that push operations *into* fixpoints when the stabilizer allows it.
//! Cost-based decisions (orientation, merging) live in
//! [`crate::closure`]/[`crate::rewriter`].

use mura_core::analysis::{decompose_fixpoint, infer_schema, stable_columns, TypeEnv};
use mura_core::{Pred, Sym, Term};

/// Which rule families may fire. Used to model baseline systems: per the
/// paper (§VI), Magic Sets / Demand Transformation — the core of Datalog
/// optimizers like BigDatalog — are equivalent to pushing *selections and
/// projections* into fixpoints, but cannot push joins (and the
/// merge/reverse rules of the cost-based pass are beyond any of them).
#[derive(Debug, Clone, Copy)]
pub struct NormalizeOpts {
    /// Allow σ to move into fixpoint constant parts (stabilizer rule).
    pub push_filters_into_fix: bool,
    /// Allow π̃ to move into fixpoint constant parts.
    pub push_antiprojections_into_fix: bool,
    /// Allow ρ to move into fixpoint constant parts.
    pub push_renames_into_fix: bool,
    /// Allow ⋈ to move into fixpoint constant parts.
    pub push_joins_into_fix: bool,
}

impl Default for NormalizeOpts {
    fn default() -> Self {
        NormalizeOpts {
            push_filters_into_fix: true,
            push_antiprojections_into_fix: true,
            push_renames_into_fix: true,
            push_joins_into_fix: true,
        }
    }
}

impl NormalizeOpts {
    /// BigDatalog's envelope: selections and projections only.
    pub fn magic_sets() -> Self {
        NormalizeOpts {
            push_filters_into_fix: true,
            push_antiprojections_into_fix: true,
            push_renames_into_fix: true,
            push_joins_into_fix: false,
        }
    }

    /// No recursion-aware rewriting at all (the paper's description of
    /// Myria: incremental evaluation but no logical optimization of the
    /// recursive operator).
    pub fn none_into_fix() -> Self {
        NormalizeOpts {
            push_filters_into_fix: false,
            push_antiprojections_into_fix: false,
            push_renames_into_fix: false,
            push_joins_into_fix: false,
        }
    }
}

/// Applies one normalization step anywhere in the term (top-down, first
/// match). Returns `None` when no rule fires.
pub fn step(term: &Term, env: &mut TypeEnv) -> Option<Term> {
    step_with(term, env, &NormalizeOpts::default())
}

/// [`step`] with an explicit rule-family selection.
pub fn step_with(term: &Term, env: &mut TypeEnv, opts: &NormalizeOpts) -> Option<Term> {
    if let Some(t) = step_here(term, env, opts) {
        return Some(t);
    }
    // Recurse into children, rebuilding on the first change.
    match term {
        Term::Var(_) | Term::Cst(_) => None,
        Term::Filter(ps, t) => {
            step_with(t, env, opts).map(|t2| Term::Filter(ps.clone(), Box::new(t2)))
        }
        Term::Rename(a, b, t) => {
            step_with(t, env, opts).map(|t2| Term::Rename(*a, *b, Box::new(t2)))
        }
        Term::AntiProject(cs, t) => {
            step_with(t, env, opts).map(|t2| Term::AntiProject(cs.clone(), Box::new(t2)))
        }
        Term::Join(a, b) => {
            step2(a, b, env, opts).map(|(a2, b2)| Term::Join(Box::new(a2), Box::new(b2)))
        }
        Term::Antijoin(a, b) => {
            step2(a, b, env, opts).map(|(a2, b2)| Term::Antijoin(Box::new(a2), Box::new(b2)))
        }
        Term::Union(a, b) => {
            step2(a, b, env, opts).map(|(a2, b2)| Term::Union(Box::new(a2), Box::new(b2)))
        }
        Term::Fix(x, body) => step_with(body, env, opts).map(|b2| Term::Fix(*x, Box::new(b2))),
    }
}

fn step2(a: &Term, b: &Term, env: &mut TypeEnv, opts: &NormalizeOpts) -> Option<(Term, Term)> {
    if let Some(a2) = step_with(a, env, opts) {
        return Some((a2, b.clone()));
    }
    step_with(b, env, opts).map(|b2| (a.clone(), b2))
}

/// Applies `step` until no rule fires (bounded).
pub fn normalize(term: &Term, env: &mut TypeEnv) -> Term {
    normalize_with(term, env, &NormalizeOpts::default())
}

/// [`normalize`] with an explicit rule-family selection.
pub fn normalize_with(term: &Term, env: &mut TypeEnv, opts: &NormalizeOpts) -> Term {
    let mut t = term.clone();
    for _ in 0..10_000 {
        match step_with(&t, env, opts) {
            Some(t2) => t = t2,
            None => break,
        }
    }
    t
}

fn step_here(term: &Term, env: &mut TypeEnv, opts: &NormalizeOpts) -> Option<Term> {
    match term {
        Term::Filter(preds, inner) => filter_rules(preds, inner, env, opts),
        Term::AntiProject(cols, inner) => antiproject_rules(cols, inner, env, opts),
        Term::Rename(from, to, inner) => {
            if opts.push_renames_into_fix {
                rename_rules(*from, *to, inner, env)
            } else {
                None
            }
        }
        Term::Join(a, b) => {
            if opts.push_joins_into_fix {
                join_rules(a, b, env)
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------- filters

fn filter_rules(
    preds: &[Pred],
    inner: &Term,
    env: &mut TypeEnv,
    opts: &NormalizeOpts,
) -> Option<Term> {
    match inner {
        // σ_p(σ_q(t)) → σ_{p∧q}(t)
        Term::Filter(qs, t) => {
            let mut all = preds.to_vec();
            all.extend(qs.iter().cloned());
            Some(Term::Filter(all, t.clone()))
        }
        // σ_p(a ∪ b) → σ_p(a) ∪ σ_p(b)
        Term::Union(a, b) => Some(
            Term::Filter(preds.to_vec(), a.clone()).union(Term::Filter(preds.to_vec(), b.clone())),
        ),
        // σ_p(ρ_a→b(t)) → ρ_a→b(σ_p'(t)) with b renamed back to a in p.
        Term::Rename(from, to, t) => {
            let renamed: Vec<Pred> =
                preds.iter().map(|p| rename_pred(p, *to, *from)).collect::<Option<_>>()?;
            Some(Term::Rename(*from, *to, Box::new(Term::Filter(renamed, t.clone()))))
        }
        // σ_p(π̃_c(t)) → π̃_c(σ_p(t)) (p cannot mention dropped columns).
        Term::AntiProject(cols, t) => {
            Some(Term::AntiProject(cols.clone(), Box::new(Term::Filter(preds.to_vec(), t.clone()))))
        }
        // σ_p(a ⋈ b): push each predicate into the side(s) whose schema
        // covers its columns; keep the rest on top.
        Term::Join(a, b) => {
            let sa = infer_schema(a, env).ok()?;
            let sb = infer_schema(b, env).ok()?;
            let mut pa = Vec::new();
            let mut pb = Vec::new();
            let mut rest = Vec::new();
            for p in preds {
                let cols = p.columns();
                let in_a = cols.iter().all(|c| sa.contains(*c));
                let in_b = cols.iter().all(|c| sb.contains(*c));
                match (in_a, in_b) {
                    (true, true) => {
                        pa.push(p.clone());
                        pb.push(p.clone());
                    }
                    (true, false) => pa.push(p.clone()),
                    (false, true) => pb.push(p.clone()),
                    (false, false) => rest.push(p.clone()),
                }
            }
            if pa.is_empty() && pb.is_empty() {
                return None;
            }
            let mut ja = (**a).clone();
            if !pa.is_empty() {
                ja = Term::Filter(pa, Box::new(ja));
            }
            let mut jb = (**b).clone();
            if !pb.is_empty() {
                jb = Term::Filter(pb, Box::new(jb));
            }
            let j = ja.join(jb);
            Some(if rest.is_empty() { j } else { Term::Filter(rest, Box::new(j)) })
        }
        // σ_p(a ▷ b) → σ_p(a) ▷ b.
        Term::Antijoin(a, b) => {
            Some(Term::Filter(preds.to_vec(), a.clone()).antijoin((**b).clone()))
        }
        // σ_p(μ(X = R ∪ φ)) → μ(X = σ_p(R) ∪ φ) when p's columns are stable.
        Term::Fix(x, body) => {
            if !opts.push_filters_into_fix {
                return None;
            }
            let stable = stable_columns(*x, body, env).ok()?;
            let pushable = preds.iter().all(|p| p.columns().iter().all(|c| stable.contains(c)));
            if !pushable {
                return None;
            }
            let (consts, recs) = decompose_fixpoint(*x, body).ok()?;
            let mut branches: Vec<Term> = consts
                .into_iter()
                .map(|c| Term::Filter(preds.to_vec(), Box::new(c.clone())))
                .collect();
            branches.extend(recs.into_iter().cloned());
            Some(Term::union_all(branches).fix(*x))
        }
        _ => None,
    }
}

fn rename_pred(p: &Pred, from: Sym, to: Sym) -> Option<Pred> {
    let map = |c: Sym| if c == from { to } else { c };
    Some(match p {
        Pred::Eq(c, v) => Pred::Eq(map(*c), *v),
        Pred::Neq(c, v) => Pred::Neq(map(*c), *v),
        Pred::EqCol(a, b) => Pred::EqCol(map(*a), map(*b)),
    })
}

// ---------------------------------------------------------- antiprojection

fn antiproject_rules(
    cols: &[Sym],
    inner: &Term,
    env: &mut TypeEnv,
    opts: &NormalizeOpts,
) -> Option<Term> {
    if cols.is_empty() {
        return Some(inner.clone());
    }
    match inner {
        // π̃_c(π̃_d(t)) → π̃_{c∪d}(t)
        Term::AntiProject(ds, t) => {
            let mut all = cols.to_vec();
            all.extend(ds.iter().copied());
            Some(Term::AntiProject(all, t.clone()))
        }
        // π̃_c(a ∪ b) → π̃_c(a) ∪ π̃_c(b)
        Term::Union(a, b) => Some(
            Term::AntiProject(cols.to_vec(), a.clone())
                .union(Term::AntiProject(cols.to_vec(), b.clone())),
        ),
        // π̃_c(μ(…)) → μ(π̃_c(R) ∪ φ) when each c is stable and untouched by
        // the recursive branches.
        Term::Fix(x, body) => {
            if !opts.push_antiprojections_into_fix {
                return None;
            }
            let stable = stable_columns(*x, body, env).ok()?;
            if !cols.iter().all(|c| stable.contains(c)) {
                return None;
            }
            let (consts, recs) = decompose_fixpoint(*x, body).ok()?;
            let fix_schema = infer_schema(&Term::Fix(*x, body.clone()), env).ok()?;
            for r in &recs {
                for &c in cols {
                    if column_used_in_branch(r, c, *x, &fix_schema, env)? {
                        return None;
                    }
                }
            }
            let mut branches: Vec<Term> = consts
                .into_iter()
                .map(|c| Term::AntiProject(cols.to_vec(), Box::new(c.clone())))
                .collect();
            branches.extend(recs.into_iter().cloned());
            Some(Term::union_all(branches).fix(*x))
        }
        _ => None,
    }
}

// ------------------------------------------------------------------ rename

fn rename_rules(from: Sym, to: Sym, inner: &Term, env: &mut TypeEnv) -> Option<Term> {
    match inner {
        // ρ(μ(…)) → μ(ρ(R) ∪ φ) when the renamed column is stable and
        // untouched by the recursion, and the new name cannot be captured.
        Term::Fix(x, body) => {
            let stable = stable_columns(*x, body, env).ok()?;
            if !stable.contains(&from) {
                return None;
            }
            let (consts, recs) = decompose_fixpoint(*x, body).ok()?;
            let fix_schema = infer_schema(&Term::Fix(*x, body.clone()), env).ok()?;
            for r in &recs {
                if column_used_in_branch(r, from, *x, &fix_schema, env)? {
                    return None;
                }
                // `to` must not collide with anything inside the branch.
                if column_mentioned(r, to) {
                    return None;
                }
            }
            let mut branches: Vec<Term> =
                consts.into_iter().map(|c| c.clone().rename(from, to)).collect();
            branches.extend(recs.into_iter().cloned());
            Some(Term::union_all(branches).fix(*x))
        }
        _ => None,
    }
}

// -------------------------------------------------------------------- join

fn join_rules(a: &Term, b: &Term, env: &mut TypeEnv) -> Option<Term> {
    // T ⋈ μ(X = R ∪ φ) → μ(X = (T ⋈ R) ∪ φ) when the join columns are all
    // stable and T's extra columns cannot be captured inside φ.
    // Only the *bare* fixpoint case is greedy; pushing through rename
    // chains is a cost-based decision taken by the rewriter
    // ([`join_into_fix_through_renames`]), since carrying extra columns
    // through the iteration is not always a win.
    if let Some(t) = join_into_fix(a, b, env) {
        return Some(t);
    }
    join_into_fix(b, a, env)
}

/// `T ⋈ ρ…ρ(μ(…))`: commutes the join under the rename chain —
/// `T ⋈ ρ_f→t(W) = ρ_f→t(T' ⋈ W)` with `T' = ρ_t→f(T)` — then applies the
/// ordinary join push. Bails whenever a rename's source column exists in
/// `T` (the commuted join would suddenly match on it). Used by the
/// cost-based rewriter pass.
pub fn join_into_fix_through_renames(
    t_other: &Term,
    wrapped: &Term,
    env: &mut TypeEnv,
) -> Option<Term> {
    // Unwrap the rename chain (outermost first).
    let mut chain: Vec<(Sym, Sym)> = Vec::new();
    let mut cur = wrapped;
    while let Term::Rename(f, t, inner) = cur {
        chain.push((*f, *t));
        cur = inner;
    }
    if chain.is_empty() || !matches!(cur, Term::Fix(_, _)) {
        return None;
    }
    // Map T's columns back through the chain.
    let mut other = t_other.clone();
    let mut other_schema = infer_schema(&other, env).ok()?;
    for &(f, t) in &chain {
        if other_schema.contains(t) {
            if other_schema.contains(f) {
                return None; // both names present: commuting is ambiguous
            }
            other = other.rename(t, f);
            other_schema = other_schema.rename(t, f)?;
        } else if other_schema.contains(f) {
            // The original join did not match on f (the fixpoint side had
            // renamed it away); commuting would create a spurious join key.
            return None;
        }
    }
    let pushed = join_into_fix(&other, cur, env)?;
    // Reapply the chain, innermost first.
    let mut result = pushed;
    for &(f, t) in chain.iter().rev() {
        result = result.rename(f, t);
    }
    Some(result)
}

fn join_into_fix(t: &Term, fix: &Term, env: &mut TypeEnv) -> Option<Term> {
    let Term::Fix(x, body) = fix else { return None };
    if t.has_free_var(*x) {
        return None;
    }
    let st = infer_schema(t, env).ok()?;
    let sfix = infer_schema(fix, env).ok()?;
    let common: Vec<Sym> = st.intersection(&sfix);
    if common.is_empty() {
        // Cartesian products are not worth pushing.
        return None;
    }
    let stable = stable_columns(*x, body, env).ok()?;
    if !common.iter().all(|c| stable.contains(c)) {
        return None;
    }
    let extra: Vec<Sym> = st.columns().iter().copied().filter(|c| !sfix.contains(*c)).collect();
    let (consts, recs) = decompose_fixpoint(*x, body).ok()?;
    for r in &recs {
        // Join columns must be untouched (they are pass-through baggage of
        // the recursion), and extra columns must not be captured.
        for &c in &common {
            if column_used_in_branch(r, c, *x, &sfix, env)? {
                return None;
            }
        }
        for &c in &extra {
            if column_mentioned(r, c) || branch_has_schema_col(r, c, *x, &sfix, env) {
                return None;
            }
        }
    }
    let mut branches: Vec<Term> = consts.into_iter().map(|c| t.clone().join(c.clone())).collect();
    branches.extend(recs.into_iter().cloned());
    Some(Term::union_all(branches).fix(*x))
}

// ------------------------------------------------------------- conditions

/// True if column `c` of the recursive variable `x` is *used* by the
/// branch: mentioned by a filter/rename/antiprojection on the `x`-derived
/// dataflow path, or acting as a (anti)join key. Usage of the same column
/// name inside `x`-free subterms is irrelevant — those subterms never see
/// `X`'s tuples (e.g. `ρ_src→m(E)` does not block dropping `src` from `X`).
fn column_used_in_branch(
    branch: &Term,
    c: Sym,
    x: Sym,
    x_schema: &mura_core::Schema,
    env: &mut TypeEnv,
) -> Option<bool> {
    let prev = env.bind(x, x_schema.clone());
    let result = used_rec(branch, c, x, env);
    env.unbind(x, prev);
    result
}

fn used_rec(t: &Term, c: Sym, x: Sym, env: &mut TypeEnv) -> Option<bool> {
    if !t.has_free_var(x) {
        return Some(false);
    }
    match t {
        Term::Var(_) | Term::Cst(_) => Some(false),
        Term::Filter(ps, inner) => {
            if ps.iter().any(|p| p.columns().contains(&c)) {
                return Some(true);
            }
            used_rec(inner, c, x, env)
        }
        Term::Rename(a, b, inner) => {
            if *a == c || *b == c {
                return Some(true);
            }
            used_rec(inner, c, x, env)
        }
        Term::AntiProject(cols, inner) => {
            if cols.contains(&c) {
                return Some(true);
            }
            used_rec(inner, c, x, env)
        }
        Term::Join(a, b) | Term::Antijoin(a, b) => {
            let sa = infer_schema(a, env).ok()?;
            let sb = infer_schema(b, env).ok()?;
            if sa.contains(c) && sb.contains(c) {
                return Some(true);
            }
            Some(used_rec(a, c, x, env)? || used_rec(b, c, x, env)?)
        }
        Term::Union(a, b) => Some(used_rec(a, c, x, env)? || used_rec(b, c, x, env)?),
        Term::Fix(_, body) => used_rec(body, c, x, env),
    }
}

/// True if column `c` appears syntactically anywhere in the term (renames,
/// filters, antiprojections). Leaf schemas are not inspected.
fn column_mentioned(t: &Term, c: Sym) -> bool {
    match t {
        Term::Var(_) | Term::Cst(_) => false,
        Term::Filter(ps, inner) => {
            ps.iter().any(|p| p.columns().contains(&c)) || column_mentioned(inner, c)
        }
        Term::Rename(a, b, inner) => *a == c || *b == c || column_mentioned(inner, c),
        Term::AntiProject(cols, inner) => cols.contains(&c) || column_mentioned(inner, c),
        Term::Join(a, b) | Term::Antijoin(a, b) | Term::Union(a, b) => {
            column_mentioned(a, c) || column_mentioned(b, c)
        }
        Term::Fix(_, body) => column_mentioned(body, c),
    }
}

/// True if any `x`-free subterm of the branch has `c` in its schema
/// (capture hazard for pushed-join extra columns).
fn branch_has_schema_col(
    t: &Term,
    c: Sym,
    x: Sym,
    x_schema: &mura_core::Schema,
    env: &mut TypeEnv,
) -> bool {
    let prev = env.bind(x, x_schema.clone());
    fn go(t: &Term, c: Sym, x: Sym, env: &mut TypeEnv) -> bool {
        if !t.has_free_var(x) {
            return infer_schema(t, env).map(|s| s.contains(c)).unwrap_or(true);
        }
        t.children().iter().any(|child| go(child, c, x, env))
    }
    let r = go(t, c, x, env);
    env.unbind(x, prev);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{eval, Database, Relation};

    struct Fx {
        db: Database,
        src: Sym,
        dst: Sym,
        e: Sym,
        x: Sym,
        m: Sym,
    }

    fn fixture() -> Fx {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let e = db
            .insert_relation("E", Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 3), (5, 6)]));
        let x = db.intern("X");
        let m = db.intern("m");
        Fx { db, src, dst, e, x, m }
    }

    /// Right-linear closure of E.
    fn e_plus(f: &Fx) -> Term {
        let step = Term::var(f.x)
            .rename(f.dst, f.m)
            .join(Term::var(f.e).rename(f.src, f.m))
            .antiproject(f.m);
        Term::var(f.e).union(step).fix(f.x)
    }

    fn check_equiv(before: &Term, after: &Term, db: &Database) {
        let a = eval(before, db).unwrap();
        let b = eval(after, db).unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows(), "rewrite changed semantics");
    }

    #[test]
    fn filter_merges_and_pushes_through_union() {
        let f = fixture();
        let t = Term::var(f.e).union(Term::var(f.e)).filter_eq(f.src, 0i64).filter_eq(f.dst, 1i64);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        // After normalization no filter sits above a union.
        fn no_filter_over_union(t: &Term) -> bool {
            match t {
                Term::Filter(_, inner) => !matches!(**inner, Term::Union(_, _)),
                _ => t.children().iter().all(|c| no_filter_over_union(c)),
            }
        }
        assert!(no_filter_over_union(&n), "{n:?}");
    }

    #[test]
    fn filter_pushes_into_fixpoint_on_stable_column() {
        let f = fixture();
        let t = e_plus(&f).filter_eq(f.src, 0i64);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        // The fixpoint must now be the outermost operator (filter consumed
        // by the seed).
        assert!(matches!(n, Term::Fix(_, _)), "{n:?}");
    }

    #[test]
    fn filter_on_unstable_column_stays() {
        let f = fixture();
        let t = e_plus(&f).filter_eq(f.dst, 3i64);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(matches!(n, Term::Filter(_, _)), "dst filter must not push into RL: {n:?}");
    }

    #[test]
    fn antiprojection_pushes_into_fixpoint() {
        // π̃_src(E+) → closure over {dst} only (the paper's C-example for
        // pushing antiprojections).
        let f = fixture();
        let t = e_plus(&f).antiproject(f.src);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(matches!(n, Term::Fix(_, _)), "{n:?}");
    }

    #[test]
    fn antiprojection_of_dst_does_not_push() {
        let f = fixture();
        let t = e_plus(&f).antiproject(f.dst);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(matches!(n, Term::AntiProject(_, _)), "{n:?}");
    }

    #[test]
    fn rename_pushes_into_fixpoint_on_stable_column() {
        let mut f = fixture();
        let a = f.db.dict_mut().fresh("?a");
        let t = e_plus(&f).rename(f.src, a);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(matches!(n, Term::Fix(_, _)), "{n:?}");
    }

    #[test]
    fn join_pushes_into_fixpoint_on_stable_column() {
        // T(src) ⋈ E+ : join on stable src → seed becomes T ⋈ E.
        let f = fixture();
        let schema_src = mura_core::Schema::new(vec![f.src]);
        let t_rel =
            Relation::from_rows(schema_src, [vec![mura_core::Value::node(0)].into_boxed_slice()]);
        let t = Term::cst(t_rel).join(e_plus(&f));
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(matches!(n, Term::Fix(_, _)), "{n:?}");
    }

    #[test]
    fn join_on_unstable_column_not_pushed() {
        let f = fixture();
        let schema_dst = mura_core::Schema::new(vec![f.dst]);
        let t_rel =
            Relation::from_rows(schema_dst, [vec![mura_core::Value::node(3)].into_boxed_slice()]);
        let t = Term::cst(t_rel).join(e_plus(&f));
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(matches!(n, Term::Join(_, _)), "{n:?}");
    }

    #[test]
    fn filter_splits_across_join() {
        let mut f = fixture();
        let other = f.db.dict_mut().fresh("o");
        let right = Term::var(f.e).rename(f.src, other);
        let t = Term::var(f.e).join(right).filter_eq(f.src, 0i64).filter_eq(other, 1i64);
        let mut env = TypeEnv::from_db(&f.db);
        let n = normalize(&t, &mut env);
        check_equiv(&t, &n, &f.db);
        assert!(!matches!(n, Term::Filter(_, _)), "filters should be inside the join: {n:?}");
    }

    #[test]
    fn normalization_is_idempotent() {
        let f = fixture();
        let t = e_plus(&f).filter_eq(f.src, 0i64).antiproject(f.src);
        let mut env = TypeEnv::from_db(&f.db);
        let n1 = normalize(&t, &mut env);
        let n2 = normalize(&n1, &mut env);
        assert_eq!(n1, n2);
    }
}
