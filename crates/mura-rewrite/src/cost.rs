//! Cardinality estimation and plan costing.
//!
//! A light-weight reimplementation of the estimator the paper relies on
//! ([20], CIKM'20): per-relation row counts and per-column distinct counts
//! are propagated through the operators; fixpoints are estimated from their
//! constant part and the expansion factor of one recursive step, capped by
//! the cross product of column domains. The absolute numbers are rough —
//! what matters is the *ordering* of alternative plans.

use crate::memo::canon_key;
use mura_core::analysis::decompose_fixpoint;
use mura_core::fxhash::FxHashMap;
use mura_core::{Database, Dictionary, MuraError, Pred, Relation, Result, Sym, Term};
use std::cell::Cell;

/// Observed fixpoint totals keyed by [`canon_key`] of the `Fix` subterm
/// (pinned-free): the server's feedback store hands these to
/// [`CostModel::with_observed`] so repeated queries are costed from
/// measured reality.
pub type ObservedCards = FxHashMap<u64, f64>;

/// Per-column statistics of a base relation.
#[derive(Debug, Clone, Default)]
pub struct ColStats {
    /// Estimated number of distinct values.
    pub distinct: f64,
}

/// Statistics of the base relations of a database.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    rels: FxHashMap<Sym, RelStats>,
}

#[derive(Debug, Clone, Default)]
struct RelStats {
    rows: f64,
    cols: FxHashMap<Sym, ColStats>,
}

impl Stats {
    /// Scans every relation of `db`, counting rows and per-column distinct
    /// values exactly.
    pub fn from_db(db: &Database) -> Stats {
        let mut rels = FxHashMap::default();
        for (name, rel) in db.relations() {
            rels.insert(name, Self::scan_rel(rel));
        }
        Stats { rels }
    }

    fn scan_rel(rel: &Relation) -> RelStats {
        let mut cols = FxHashMap::default();
        for (i, &c) in rel.schema().columns().iter().enumerate() {
            let distinct =
                rel.iter().map(|row| row[i]).collect::<mura_core::fxhash::FxHashSet<_>>().len()
                    as f64;
            cols.insert(c, ColStats { distinct });
        }
        RelStats { rows: rel.len() as f64, cols }
    }

    /// Folds one relation's mutation delta into the statistics without
    /// rescanning the database. Row counts stay exact (taken from `after`);
    /// distinct counts are estimated: inserts raise each column's count by
    /// at most the insert count, deletions scale it down uniformly. A
    /// relation not seen before is scanned exactly (it is new and small
    /// relative to a full-db rescan); `after = None` drops the entry.
    pub fn apply_delta(
        &mut self,
        rel: Sym,
        inserted: usize,
        deleted: usize,
        after: Option<&Relation>,
    ) {
        let Some(after) = after else {
            self.rels.remove(&rel);
            return;
        };
        let rows = after.len() as f64;
        match self.rels.get_mut(&rel) {
            Some(rs) => {
                let old_rows = rs.rows.max(1.0);
                for cs in rs.cols.values_mut() {
                    let mut d = cs.distinct;
                    if inserted > 0 {
                        // Upper bound: every inserted row carries a new value.
                        d += inserted as f64;
                    }
                    if deleted > 0 && rows < old_rows {
                        // Uniform-deletion assumption.
                        d *= rows / old_rows;
                    }
                    cs.distinct = d.clamp(1.0_f64.min(rows), rows.max(1.0));
                }
                rs.rows = rows;
            }
            None => {
                self.rels.insert(rel, Self::scan_rel(after));
            }
        }
    }

    /// Row estimate currently held for a base relation.
    pub fn rows(&self, rel: Sym) -> Option<f64> {
        self.rels.get(&rel).map(|r| r.rows)
    }

    /// Distinct-count estimate currently held for a column of a base
    /// relation.
    pub fn distinct(&self, rel: Sym, col: Sym) -> Option<f64> {
        self.rels.get(&rel).and_then(|r| r.cols.get(&col)).map(|c| c.distinct)
    }
}

/// Estimated cardinality of a (sub)term: row count and per-column distinct
/// counts.
#[derive(Debug, Clone, Default)]
pub struct Card {
    /// Estimated rows.
    pub rows: f64,
    /// Estimated distinct count per column.
    pub distinct: FxHashMap<Sym, f64>,
}

impl Card {
    fn clamp(mut self) -> Card {
        self.rows = self.rows.max(0.0);
        for d in self.distinct.values_mut() {
            *d = d.max(1.0).min(self.rows.max(1.0));
        }
        self
    }
}

/// Cost model: estimates cardinalities and sums intermediate result sizes.
pub struct CostModel<'s> {
    stats: &'s Stats,
    /// Observed fixpoint totals (canonical key → measured rows) plus the
    /// dictionary needed to canonicalize `Fix` subterms during costing.
    observed: Option<(&'s ObservedCards, &'s Dictionary)>,
    /// How many fixpoints were costed from an observation during the last
    /// `cost`/`card` call(s).
    observed_hits: Cell<usize>,
}

/// Number of recursive-step expansions assumed when a fixpoint's one-step
/// fanout is ≥ 1 (i.e. the closure keeps growing until the domain cap).
const FIX_EXPANSION_STEPS: f64 = 8.0;

/// Fixed per-step growth rate assumed for non-shrinking closures (see the
/// comment at the use site).
const GROWTH_RATE: f64 = 1.25;

impl<'s> CostModel<'s> {
    /// New cost model over base-relation statistics.
    pub fn new(stats: &'s Stats) -> Self {
        CostModel { stats, observed: None, observed_hits: Cell::new(0) }
    }

    /// Cost model that overrides fixpoint estimates with *observed* totals
    /// from previous executions: a `Fix` subterm whose [`canon_key`] is in
    /// `cards` is costed at its measured size instead of the static
    /// expansion estimate.
    pub fn with_observed(stats: &'s Stats, cards: &'s ObservedCards, dict: &'s Dictionary) -> Self {
        CostModel { stats, observed: Some((cards, dict)), observed_hits: Cell::new(0) }
    }

    /// Number of fixpoints costed from an observation since construction.
    pub fn observed_hits(&self) -> usize {
        self.observed_hits.get()
    }

    /// Total plan cost: the sum of estimated intermediate result sizes over
    /// all operators (fixpoints weighted by their iteration behaviour).
    pub fn cost(&self, term: &Term) -> Result<f64> {
        let mut total = 0.0;
        let mut env: FxHashMap<Sym, Card> = FxHashMap::default();
        self.cost_rec(term, &mut env, &mut total)?;
        Ok(total)
    }

    /// Estimated output cardinality of `term`.
    pub fn card(&self, term: &Term) -> Result<Card> {
        let mut total = 0.0;
        let mut env: FxHashMap<Sym, Card> = FxHashMap::default();
        self.cost_rec(term, &mut env, &mut total)
    }

    fn base(&self, v: Sym) -> Option<Card> {
        self.stats.rels.get(&v).map(|r| Card {
            rows: r.rows,
            distinct: r.cols.iter().map(|(c, s)| (*c, s.distinct)).collect(),
        })
    }

    fn cost_rec(
        &self,
        term: &Term,
        env: &mut FxHashMap<Sym, Card>,
        total: &mut f64,
    ) -> Result<Card> {
        let card = match term {
            Term::Var(v) => {
                if let Some(c) = env.get(v) {
                    c.clone()
                } else {
                    self.base(*v).ok_or(MuraError::UnboundVariable(*v))?
                }
            }
            Term::Cst(r) => {
                let rows = r.len() as f64;
                Card {
                    rows,
                    distinct: r
                        .schema()
                        .columns()
                        .iter()
                        .map(|&c| (c, rows.max(1.0).sqrt().max(1.0).min(rows.max(1.0))))
                        .collect(),
                }
            }
            Term::Filter(preds, t) => {
                let child = self.cost_rec(t, env, total)?;
                let mut sel = 1.0;
                for p in preds {
                    sel *= match p {
                        Pred::Eq(c, _) => {
                            1.0 / child.distinct.get(c).copied().unwrap_or(10.0).max(1.0)
                        }
                        Pred::Neq(_, _) => 0.9,
                        Pred::EqCol(a, b) => {
                            let da = child.distinct.get(a).copied().unwrap_or(10.0);
                            let db = child.distinct.get(b).copied().unwrap_or(10.0);
                            1.0 / da.max(db).max(1.0)
                        }
                    };
                }
                let rows = child.rows * sel;
                let mut distinct = child.distinct.clone();
                for p in preds {
                    if let Pred::Eq(c, _) = p {
                        distinct.insert(*c, 1.0);
                    }
                }
                Card { rows, distinct }.clamp()
            }
            Term::Rename(from, to, t) => {
                let mut child = self.cost_rec(t, env, total)?;
                if let Some(d) = child.distinct.remove(from) {
                    child.distinct.insert(*to, d);
                }
                child
            }
            Term::AntiProject(cols, t) => {
                let child = self.cost_rec(t, env, total)?;
                let mut distinct = child.distinct.clone();
                for c in cols {
                    distinct.remove(c);
                }
                // Dedup after dropping columns: cap by product of remaining
                // domains.
                let cap: f64 = distinct.values().product::<f64>().max(1.0);
                Card { rows: child.rows.min(cap), distinct }.clamp()
            }
            Term::Join(a, b) => {
                let ca = self.cost_rec(a, env, total)?;
                let cb = self.cost_rec(b, env, total)?;
                let common: Vec<Sym> =
                    ca.distinct.keys().filter(|c| cb.distinct.contains_key(*c)).copied().collect();
                let mut rows = ca.rows * cb.rows;
                for c in &common {
                    let da = ca.distinct[c];
                    let db = cb.distinct[c];
                    rows /= da.max(db).max(1.0);
                }
                let mut distinct = ca.distinct.clone();
                for (c, d) in &cb.distinct {
                    let e = distinct.entry(*c).or_insert(*d);
                    *e = e.min(*d);
                }
                Card { rows, distinct }.clamp()
            }
            Term::Antijoin(a, b) => {
                let ca = self.cost_rec(a, env, total)?;
                let _ = self.cost_rec(b, env, total)?;
                Card { rows: ca.rows * 0.5, distinct: ca.distinct }.clamp()
            }
            Term::Union(a, b) => {
                let ca = self.cost_rec(a, env, total)?;
                let cb = self.cost_rec(b, env, total)?;
                let mut distinct = ca.distinct.clone();
                for (c, d) in &cb.distinct {
                    let e = distinct.entry(*c).or_insert(0.0);
                    *e = (*e + d).max(*d);
                }
                Card { rows: ca.rows + cb.rows, distinct }.clamp()
            }
            Term::Fix(x, body) => {
                let (consts, recs) = decompose_fixpoint(*x, body)?;
                let mut seed: Option<Card> = None;
                for c in &consts {
                    let cc = self.cost_rec(c, env, total)?;
                    seed = Some(match seed {
                        None => cc,
                        Some(s) => Card {
                            rows: s.rows + cc.rows,
                            distinct: {
                                let mut d = s.distinct;
                                for (c, v) in cc.distinct {
                                    let e = d.entry(c).or_insert(0.0);
                                    *e = (*e).max(v);
                                }
                                d
                            },
                        },
                    });
                }
                let seed = seed.expect("decompose guarantees a constant part");
                if recs.is_empty() {
                    seed
                } else {
                    // One recursive step from the seed.
                    let prev = env.insert(*x, seed.clone());
                    let mut step_rows = 0.0;
                    let mut step_distinct = seed.distinct.clone();
                    for r in &recs {
                        // Step estimates contribute to cost via recursion
                        // but are accounted once (the semi-naive loop reuses
                        // deltas).
                        let cr = self.cost_rec(r, env, total)?;
                        step_rows += cr.rows;
                        for (c, d) in cr.distinct {
                            let e = step_distinct.entry(c).or_insert(0.0);
                            *e = (*e).max(d);
                        }
                    }
                    match prev {
                        Some(p) => {
                            env.insert(*x, p);
                        }
                        None => {
                            env.remove(x);
                        }
                    }
                    let fanout = step_rows / seed.rows.max(1.0);
                    // Domain cap: at most the cross product of column
                    // domains reachable by the closure.
                    let cap: f64 = step_distinct.values().product::<f64>().max(seed.rows);
                    let mut rows = if fanout >= 0.95 {
                        // Non-shrinking step: the closure grows by roughly
                        // the expected path length. We deliberately use a
                        // *fixed* growth rate rather than the one-step
                        // fanout: plans mainly differ in their *seed* size
                        // (pushed filters/joins, merged seeds), and raw
                        // fanout would double-count multi-branch (merged)
                        // fixpoints whose branches saturate the same
                        // domain.
                        (seed.rows * GROWTH_RATE.powf(FIX_EXPANSION_STEPS)).min(cap)
                    } else {
                        (seed.rows / (1.0 - fanout).max(0.05)).min(cap)
                    };
                    // Observed totals beat any static estimate: a previous
                    // execution measured this exact (canonicalized) fixpoint.
                    if let Some((cards, dict)) = self.observed {
                        if let Some(&obs) = cards.get(&canon_key(term, dict, &[])) {
                            rows = obs.max(1.0);
                            self.observed_hits.set(self.observed_hits.get() + 1);
                        }
                    }
                    let distinct =
                        step_distinct.into_iter().map(|(c, d)| (c, d.min(rows))).collect();
                    // Fixpoints are iterated: weight their output in the
                    // total cost more heavily than a one-shot operator.
                    *total += rows;
                    Card { rows, distinct }.clamp()
                }
            }
        };
        *total += card.rows;
        Ok(card)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{Database, Relation};

    fn db_chain(n: u64) -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("E", Relation::from_pairs(src, dst, (0..n - 1).map(|i| (i, i + 1))));
        db
    }

    #[test]
    fn base_relation_card() {
        let db = db_chain(100);
        let stats = Stats::from_db(&db);
        let cm = CostModel::new(&stats);
        let e = db.dict().lookup("E").unwrap();
        let c = cm.card(&Term::var(e)).unwrap();
        assert_eq!(c.rows, 99.0);
    }

    #[test]
    fn filter_reduces_estimate() {
        let db = db_chain(100);
        let stats = Stats::from_db(&db);
        let cm = CostModel::new(&stats);
        let e = db.dict().lookup("E").unwrap();
        let src = db.dict().lookup("src").unwrap();
        let filtered = Term::var(e).filter_eq(src, 5i64);
        let full = cm.card(&Term::var(e)).unwrap().rows;
        let f = cm.card(&filtered).unwrap().rows;
        assert!(f < full / 10.0, "filtered {f} vs full {full}");
    }

    #[test]
    fn fixpoint_estimate_exceeds_seed() {
        let mut db = db_chain(50);
        let stats = Stats::from_db(&db);
        let e = db.intern("E");
        let src = db.intern("src");
        let dst = db.intern("dst");
        let x = db.intern("X");
        let m = db.intern("m");
        let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
        let fix = Term::var(e).union(step).fix(x);
        let cm = CostModel::new(&stats);
        let seed = cm.card(&Term::var(e)).unwrap().rows;
        let tc = cm.card(&fix).unwrap().rows;
        assert!(tc > seed, "tc {tc} vs seed {seed}");
    }

    #[test]
    fn filtered_fixpoint_cheaper_than_filter_after() {
        // cost(μ starting from σ(E)) must be < cost(σ(μ from E)):
        // this ordering is what makes the push-filter rewrite win.
        let mut db = db_chain(200);
        let stats = Stats::from_db(&db);
        let e = db.intern("E");
        let src = db.intern("src");
        let dst = db.intern("dst");
        let x = db.intern("X");
        let m = db.intern("m");
        let step = |seed: Term, db_e: Term| {
            let s = Term::var(x).rename(dst, m).join(db_e.rename(src, m)).antiproject(m);
            seed.union(s).fix(x)
        };
        let cm = CostModel::new(&stats);
        let pushed = step(Term::var(e).filter_eq(src, 3i64), Term::var(e));
        let unpushed = step(Term::var(e), Term::var(e)).filter_eq(src, 3i64);
        let cp = cm.cost(&pushed).unwrap();
        let cu = cm.cost(&unpushed).unwrap();
        assert!(cp < cu, "pushed {cp} vs unpushed {cu}");
    }

    #[test]
    fn stats_apply_delta_tracks_rows_and_bounds_distincts() {
        let mut db = db_chain(100);
        let mut stats = Stats::from_db(&db);
        let e = db.intern("E");
        let src = db.dict().lookup("src").unwrap();
        let dst = db.dict().lookup("dst").unwrap();
        assert_eq!(stats.rows(e), Some(99.0));
        // Grow the relation; rows come exact from the post-state, distincts
        // stay within [old, rows].
        let grown = Relation::from_pairs(src, dst, (0..149).map(|i| (i, i + 1)));
        stats.apply_delta(e, 50, 0, Some(&grown));
        assert_eq!(stats.rows(e), Some(149.0));
        let d = stats.distinct(e, src).unwrap();
        assert!((99.0..=149.0).contains(&d), "distinct bound after insert: {d}");
        // Shrink: distincts scale down with the uniform-deletion assumption.
        let shrunk = Relation::from_pairs(src, dst, (0..49).map(|i| (i, i + 1)));
        stats.apply_delta(e, 0, 100, Some(&shrunk));
        assert_eq!(stats.rows(e), Some(49.0));
        assert!(stats.distinct(e, src).unwrap() <= 49.0);
        // A relation not seen before is scanned exactly.
        let f = db.intern("F");
        let fresh = Relation::from_pairs(src, dst, [(1, 2), (3, 4)]);
        stats.apply_delta(f, 2, 0, Some(&fresh));
        assert_eq!(stats.rows(f), Some(2.0));
        assert_eq!(stats.distinct(f, src), Some(2.0));
        // Dropping the whole relation removes the entry.
        stats.apply_delta(e, 0, 49, None);
        assert_eq!(stats.rows(e), None);
    }

    #[test]
    fn unbound_var_errors() {
        let db = Database::new();
        let stats = Stats::from_db(&db);
        let cm = CostModel::new(&stats);
        assert!(cm.cost(&Term::var(Sym(777))).is_err());
    }
}
