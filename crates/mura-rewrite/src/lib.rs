//! # mura-rewrite — logical optimization of μ-RA terms (`MuRewriter`)
//!
//! Implements the rewrite rules the paper leverages from the μ-RA work
//! (§III) together with classical relational-algebra rules, and a
//! cardinality-based cost model in the spirit of the CIKM'20 estimator
//! ([20]) used by the paper's `CostEstimator`:
//!
//! * **Pushing filters into fixpoints** — a filter on a *stable* column
//!   commutes with the fixpoint and is applied to the constant part.
//! * **Pushing joins into fixpoints** — a join on stable columns restarts
//!   the fixpoint from the joined constant part (e.g. `?x isMarriedTo/knows+
//!   ?y` starts from `isMarriedTo/knows`).
//! * **Pushing antiprojections into fixpoints** — unused stable columns are
//!   dropped before iterating.
//! * **Merging fixpoints** — `a+/b+` becomes one fixpoint seeded with `a∘b`
//!   that grows `a` to the left or `b` to the right.
//! * **Reversing fixpoints** — a right-linear closure is re-expressed
//!   left-linearly (and vice versa) so filters/joins on the *other* side
//!   become pushable.
//!
//! The rewriter applies cheap normalization rules greedily
//! ([`rules`]) and resolves the decisions where plans genuinely diverge
//! (closure orientation, merging, join pushing — [`closure`], [`rewriter`])
//! by **memoized enumeration** of the plan space: alternatives live in
//! equivalence groups keyed by a canonical term hash ([`memo`]), are
//! expanded under rule masks and a beam budget ([`enumerate`]), and the
//! globally cheapest candidate wins — with the original greedy pipeline
//! kept both as a member of the space and as a cost floor. Observed
//! fixpoint cardinalities from previous executions feed back into the cost
//! model ([`feedback`], [`cost::CostModel::with_observed`]).

pub mod closure;
pub mod cost;
pub mod enumerate;
pub mod feedback;
pub mod memo;
pub mod rewriter;
pub mod rules;

pub use closure::ClosureForm;
pub use cost::{CostModel, ObservedCards, Stats};
pub use enumerate::{EnumConfig, EnumReport, GroupSummary};
pub use feedback::{FeedbackState, FeedbackStore};
pub use memo::canon_key;
pub use rewriter::{optimize, Rewriter};
