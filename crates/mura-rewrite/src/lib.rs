//! # mura-rewrite — logical optimization of μ-RA terms (`MuRewriter`)
//!
//! Implements the rewrite rules the paper leverages from the μ-RA work
//! (§III) together with classical relational-algebra rules, and a
//! cardinality-based cost model in the spirit of the CIKM'20 estimator
//! ([20]) used by the paper's `CostEstimator`:
//!
//! * **Pushing filters into fixpoints** — a filter on a *stable* column
//!   commutes with the fixpoint and is applied to the constant part.
//! * **Pushing joins into fixpoints** — a join on stable columns restarts
//!   the fixpoint from the joined constant part (e.g. `?x isMarriedTo/knows+
//!   ?y` starts from `isMarriedTo/knows`).
//! * **Pushing antiprojections into fixpoints** — unused stable columns are
//!   dropped before iterating.
//! * **Merging fixpoints** — `a+/b+` becomes one fixpoint seeded with `a∘b`
//!   that grows `a` to the left or `b` to the right.
//! * **Reversing fixpoints** — a right-linear closure is re-expressed
//!   left-linearly (and vice versa) so filters/joins on the *other* side
//!   become pushable.
//!
//! The rewriter applies cheap normalization rules greedily
//! ([`rules`]) and takes cost-based decisions where plans genuinely diverge
//! (closure orientation, merging, join pushing — [`closure`], [`rewriter`]),
//! mirroring the paper's MuRewriter + CostEstimator split.

pub mod closure;
pub mod cost;
pub mod rewriter;
pub mod rules;

pub use closure::ClosureForm;
pub use cost::{CostModel, Stats};
pub use rewriter::{optimize, Rewriter};
