//! Closure forms: recognition and emission of path-closure fixpoints.
//!
//! UCRPQ translation produces fixpoints of a canonical shape over the
//! binary path schema `{src, dst}`. We abstract them as
//!
//! ```text
//! ClosureForm { seed: S, left: L?, right: R? }   ≐   L* ∘ S ∘ R*
//! ```
//!
//! * `right`-only (`S ∘ R*`) is the **right-linear** closure `RL(S, R)`:
//!   `μ(X = S ∪ π̃_m(ρ_dst→m(X) ⋈ ρ_src→m(R)))` — appends `R` at `dst`;
//!   its `src` column is stable.
//! * `left`-only (`L* ∘ S`) is the **left-linear** closure `LL(S, L)` —
//!   prepends `L` at `src`; its `dst` column is stable.
//! * both (`L* ∘ S ∘ R*`) is the **merged** form the paper's
//!   *merge fixpoints* rule produces for `a+/b+` (= `BL(a∘b, a, b)`);
//!   no column is stable.
//!
//! On these forms the paper's structural rules become algebra on small
//! records: *reversing* `a+` converts `RL(a,a) ↔ LL(a,a)`; *pushing a join*
//! composes into the seed; *merging* combines an `LL`-able left operand with
//! an `RL`-able right operand.

use mura_core::analysis::{decompose_fixpoint, infer_schema, TypeEnv};
use mura_core::{Dictionary, Pred, Sym, Term};

/// A recognized (or synthesized) closure fixpoint `L* ∘ seed ∘ R*` over the
/// binary path schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosureForm {
    /// Constant part of the fixpoint.
    pub seed: Term,
    /// Step relation prepended at `src` each iteration, if any.
    pub left: Option<Term>,
    /// Step relation appended at `dst` each iteration, if any.
    pub right: Option<Term>,
    /// The closure's source column.
    pub src: Sym,
    /// The closure's destination column.
    pub dst: Sym,
}

impl ClosureForm {
    /// Right-linear closure `seed ∘ step*`.
    pub fn right_linear(seed: Term, step: Term, src: Sym, dst: Sym) -> Self {
        ClosureForm { seed, left: None, right: Some(step), src, dst }
    }

    /// Left-linear closure `step* ∘ seed`.
    pub fn left_linear(seed: Term, step: Term, src: Sym, dst: Sym) -> Self {
        ClosureForm { seed, left: Some(step), right: None, src, dst }
    }

    /// True if this is a *pure* closure `r+` (seed equals the step
    /// relation), which is reversible between left- and right-linear form.
    pub fn is_pure(&self) -> bool {
        match (&self.left, &self.right) {
            (None, Some(r)) => *r == self.seed,
            (Some(l), None) => *l == self.seed,
            _ => false,
        }
    }

    /// Converts to left-linear form if semantically possible:
    /// already left-only, or a pure right-linear closure (`a+`), or no
    /// recursion at all.
    pub fn to_left_linear(&self) -> Option<ClosureForm> {
        match (&self.left, &self.right) {
            (_, None) => Some(self.clone()),
            (None, Some(r)) if self.is_pure() => {
                Some(ClosureForm::left_linear(r.clone(), r.clone(), self.src, self.dst))
            }
            _ => None,
        }
    }

    /// Converts to right-linear form if semantically possible.
    pub fn to_right_linear(&self) -> Option<ClosureForm> {
        match (&self.left, &self.right) {
            (None, _) => Some(self.clone()),
            (Some(l), None) if self.is_pure() => {
                Some(ClosureForm::right_linear(l.clone(), l.clone(), self.src, self.dst))
            }
            _ => None,
        }
    }

    /// Emits the μ-RA fixpoint term for this closure.
    pub fn emit(&self, dict: &mut Dictionary) -> Term {
        if self.left.is_none() && self.right.is_none() {
            return self.seed.clone();
        }
        let x = dict.fresh("X");
        let mut branches = vec![self.seed.clone()];
        if let Some(l) = &self.left {
            let m = dict.fresh("m");
            branches.push(
                l.clone().rename(self.dst, m).join(Term::var(x).rename(self.src, m)).antiproject(m),
            );
        }
        if let Some(r) = &self.right {
            let m = dict.fresh("m");
            branches.push(
                Term::var(x).rename(self.dst, m).join(r.clone().rename(self.src, m)).antiproject(m),
            );
        }
        Term::union_all(branches).fix(x)
    }
}

/// Composition `a ∘ b` over the binary path schema:
/// `π̃_m(ρ_dst→m(a) ⋈ ρ_src→m(b))`.
pub fn compose(a: Term, b: Term, src: Sym, dst: Sym, dict: &mut Dictionary) -> Term {
    let m = dict.fresh("m");
    a.rename(dst, m).join(b.rename(src, m)).antiproject(m)
}

/// Tries to recognize `term` as a closure fixpoint over columns
/// `{src, dst}`. The seed may be any `x`-free term of the right schema; the
/// step branches must have the canonical append/prepend shape the frontend
/// (and [`ClosureForm::emit`]) produce.
pub fn recognize(term: &Term, src: Sym, dst: Sym, env: &mut TypeEnv) -> Option<ClosureForm> {
    let Term::Fix(x, body) = term else { return None };
    let (consts, recs) = decompose_fixpoint(*x, body).ok()?;
    // Closure schema must be exactly {src, dst}.
    let schema = infer_schema(term, env).ok()?;
    if schema.columns() != [src.min(dst), src.max(dst)] {
        return None;
    }
    let mut seed: Option<Term> = None;
    for c in consts {
        seed = Some(match seed {
            None => c.clone(),
            Some(s) => s.union(c.clone()),
        });
    }
    let seed = seed.expect("decompose guarantees a constant part");
    let mut left: Option<Term> = None;
    let mut right: Option<Term> = None;
    for rec in recs {
        let (grow_col, step) = match_step_branch(rec, *x)?;
        // Step relation must itself have schema {src, dst} and be x-free.
        if step.has_free_var(*x) {
            return None;
        }
        let step_schema = infer_schema(&step, env).ok()?;
        if step_schema.columns() != [src.min(dst), src.max(dst)] {
            return None;
        }
        if grow_col == dst {
            // Appends at dst: right step. Two right branches union into one
            // step relation.
            right = Some(match right {
                None => step,
                Some(r) => r.union(step),
            });
        } else if grow_col == src {
            left = Some(match left {
                None => step,
                Some(l) => l.union(step),
            });
        } else {
            return None;
        }
    }
    Some(ClosureForm { seed, left, right, src, dst })
}

/// Matches one recursive branch of a closure:
/// `π̃_m(ρ_g→m(X) ⋈ ρ_h→m(step))` where `g` is the growing column of `X`
/// and `h` is the opposite column of the step relation. Returns
/// `(grow_col, step)`.
fn match_step_branch(branch: &Term, x: Sym) -> Option<(Sym, Term)> {
    let Term::AntiProject(cols, inner) = branch else { return None };
    let [m] = cols.as_slice() else { return None };
    let Term::Join(a, b) = &**inner else { return None };
    for (xa, sb) in [(a, b), (b, a)] {
        let Term::Rename(gx, mx, xv) = &**xa else { continue };
        if mx != m || **xv != Term::Var(x) {
            continue;
        }
        let Term::Rename(hs, ms, step) = &**sb else { continue };
        if ms != m {
            continue;
        }
        // grow col gx of X is joined against column hs of the step; for an
        // append (gx = dst) the step joins at its src (hs = src), i.e. hs
        // must be the opposite column of gx. The caller validates schemas;
        // here we only require gx != hs.
        if gx == hs {
            continue;
        }
        return Some((*gx, (**step).clone()));
    }
    None
}

/// Alternatives for a composition `a ∘ b` (the caller keeps the original as
/// alternative 0). Each alternative is a complete replacement term.
///
/// Generated (when the operands have the required forms):
///
/// 1. **merge / push-join** — left operand convertible to `L* ∘ S_a`, right
///    operand convertible to `S_b ∘ R*`: `L* ∘ (S_a∘S_b) ∘ R*`. With a
///    plain (non-closure) operand this degenerates to the paper's
///    *pushing joins into fixpoints*; with two pure closures it is
///    *merging fixpoints*.
/// 2. **reverse-then-push (right)** — `RL(S,R) ∘ b  →  S ∘ LL(b, R)`:
///    re-orients the closure so it grows from `b`'s side (profitable when
///    `b` is small, e.g. filtered by a constant).
/// 3. **reverse-then-push (left)** — `a ∘ LL(S,L)  →  RL(a, L) ∘ S`.
pub fn compose_alternatives(
    a: &Term,
    b: &Term,
    src: Sym,
    dst: Sym,
    env: &mut TypeEnv,
    dict: &mut Dictionary,
) -> Vec<Term> {
    let mut out = Vec::new();
    let fa = recognize(a, src, dst, env);
    let fb = recognize(b, src, dst, env);
    let plain = |t: &Term| ClosureForm { seed: t.clone(), left: None, right: None, src, dst };
    let ca = fa.clone().unwrap_or_else(|| plain(a));
    let cb = fb.clone().unwrap_or_else(|| plain(b));
    // 1. merge / push-join: combine an LL-able left with an RL-able right.
    // A non-convertible closure operand can still participate *as a plain
    // term* (its emitted fixpoint becomes part of the seed) — this is how
    // chains like (a1+∘a2+)∘a3+ keep merging.
    let left_options: Vec<ClosureForm> = {
        let mut v = Vec::new();
        if let Some(la) = ca.to_left_linear() {
            v.push(la);
        } else {
            v.push(plain(a));
        }
        v
    };
    let right_options: Vec<ClosureForm> = {
        let mut v = Vec::new();
        if let Some(rb) = cb.to_right_linear() {
            v.push(rb);
        } else {
            v.push(plain(b));
        }
        v
    };
    for la in &left_options {
        for rb in &right_options {
            if la.left.is_none() && rb.right.is_none() {
                continue; // no recursion to merge — plain composition
            }
            let seed = compose(la.seed.clone(), rb.seed.clone(), src, dst, dict);
            let merged =
                ClosureForm { seed, left: la.left.clone(), right: rb.right.clone(), src, dst };
            out.push(merged.emit(dict));
        }
    }
    // 2. RL(S,R) ∘ b → S ∘ LL(b, R).
    if let Some(f) = &fa {
        if let (None, Some(r)) = (&f.left, &f.right) {
            if !f.is_pure() {
                let ll = ClosureForm::left_linear(b.clone(), r.clone(), src, dst);
                out.push(compose(f.seed.clone(), ll.emit(dict), src, dst, dict));
            }
        }
    }
    // 3. a ∘ LL(S,L) → RL(a, L) ∘ S.
    if let Some(f) = &fb {
        if let (Some(l), None) = (&f.left, &f.right) {
            if !f.is_pure() {
                let rl = ClosureForm::right_linear(a.clone(), l.clone(), src, dst);
                out.push(compose(rl.emit(dict), f.seed.clone(), src, dst, dict));
            }
        }
    }
    out
}

/// Reversal alternatives for `σ_preds(closure)` when the predicates sit on
/// the closure's non-stable end (the paper's *reversing a fixpoint*,
/// needed by classes C2/C4):
///
/// * pure `RL(r,r)` with a `dst` filter → `LL(σ(r), r)` (and the symmetric
///   case);
/// * impure `RL(S,R)` with a `dst` filter → `σ(S) ∪ S ∘ LL(σ(R), R)`
///   (the filter reaches the seed of the reversed tail closure).
pub fn reversal_alternatives(
    preds: &[Pred],
    form: &ClosureForm,
    dict: &mut Dictionary,
) -> Vec<Term> {
    let mut out = Vec::new();
    let on = |col: Sym| preds.iter().all(|p| p.columns().iter().all(|c| *c == col));
    match (&form.left, &form.right) {
        // Right-linear, filter on dst.
        (None, Some(r)) if on(form.dst) => {
            let filtered_r = Term::Filter(preds.to_vec(), Box::new(r.clone()));
            if form.is_pure() {
                out.push(
                    ClosureForm::left_linear(filtered_r, r.clone(), form.src, form.dst).emit(dict),
                );
            } else {
                let tail =
                    ClosureForm::left_linear(filtered_r, r.clone(), form.src, form.dst).emit(dict);
                let seed_filtered = Term::Filter(preds.to_vec(), Box::new(form.seed.clone()));
                let extended = compose(form.seed.clone(), tail, form.src, form.dst, dict);
                out.push(seed_filtered.union(extended));
            }
        }
        // Left-linear, filter on src.
        (Some(l), None) if on(form.src) => {
            let filtered_l = Term::Filter(preds.to_vec(), Box::new(l.clone()));
            if form.is_pure() {
                out.push(
                    ClosureForm::right_linear(filtered_l, l.clone(), form.src, form.dst).emit(dict),
                );
            } else {
                let head =
                    ClosureForm::right_linear(filtered_l, l.clone(), form.src, form.dst).emit(dict);
                let seed_filtered = Term::Filter(preds.to_vec(), Box::new(form.seed.clone()));
                let extended = compose(head, form.seed.clone(), form.src, form.dst, dict);
                out.push(seed_filtered.union(extended));
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{eval, Database, Relation, Schema};

    struct Fx {
        db: Database,
        src: Sym,
        dst: Sym,
        a: Sym,
        b: Sym,
    }

    fn fixture() -> Fx {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        // a: chain 0→1→2; b: chain 2→3→4.
        let a = db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
        let b = db.insert_relation("b", Relation::from_pairs(src, dst, [(2, 3), (3, 4)]));
        Fx { db, src, dst, a, b }
    }

    fn env(f: &Fx) -> TypeEnv {
        TypeEnv::from_db(&f.db)
    }

    #[test]
    fn emit_then_recognize_round_trips() {
        let mut f = fixture();
        for form in [
            ClosureForm::right_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst),
            ClosureForm::left_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst),
            ClosureForm {
                seed: Term::var(f.a),
                left: Some(Term::var(f.a)),
                right: Some(Term::var(f.b)),
                src: f.src,
                dst: f.dst,
            },
        ] {
            let term = form.emit(f.db.dict_mut());
            let mut e = env(&f);
            let back = recognize(&term, f.src, f.dst, &mut e).expect("recognize");
            assert_eq!(back.seed, form.seed);
            assert_eq!(back.left, form.left);
            assert_eq!(back.right, form.right);
        }
    }

    #[test]
    fn rl_and_ll_compute_same_pure_closure() {
        let mut f = fixture();
        let rl = ClosureForm::right_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst)
            .emit(f.db.dict_mut());
        let ll = ClosureForm::left_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst)
            .emit(f.db.dict_mut());
        let ra = eval(&rl, &f.db).unwrap();
        let rb = eval(&ll, &f.db).unwrap();
        assert_eq!(ra.sorted_rows(), rb.sorted_rows());
        assert_eq!(ra.len(), 3); // (0,1) (1,2) (0,2)
    }

    #[test]
    fn pure_conversion() {
        let f = fixture();
        let rl = ClosureForm::right_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst);
        assert!(rl.is_pure());
        let ll = rl.to_left_linear().unwrap();
        assert_eq!(ll.left, Some(Term::var(f.a)));
        assert_eq!(ll.right, None);
        // Non-pure RL cannot convert.
        let rl2 = ClosureForm::right_linear(Term::var(f.b), Term::var(f.a), f.src, f.dst);
        assert!(rl2.to_left_linear().is_none());
    }

    #[test]
    fn merged_closure_equals_composed_closures() {
        // a+ ∘ b+ (composed) vs merged BL(a∘b, a, b).
        let mut f = fixture();
        let a_plus = ClosureForm::right_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst)
            .emit(f.db.dict_mut());
        let b_plus = ClosureForm::right_linear(Term::var(f.b), Term::var(f.b), f.src, f.dst)
            .emit(f.db.dict_mut());
        let composed = compose(a_plus.clone(), b_plus.clone(), f.src, f.dst, f.db.dict_mut());
        let mut e = env(&f);
        let alts = compose_alternatives(&a_plus, &b_plus, f.src, f.dst, &mut e, f.db.dict_mut());
        assert!(!alts.is_empty(), "merge alternative must be generated");
        let expected = eval(&composed, &f.db).unwrap();
        for alt in &alts {
            let got = eval(alt, &f.db).unwrap();
            assert_eq!(got.sorted_rows(), expected.sorted_rows());
        }
        // The merged fixpoint has both a left and a right branch.
        let merged = &alts[0];
        let mut e2 = env(&f);
        let form = recognize(merged, f.src, f.dst, &mut e2).unwrap();
        assert!(form.left.is_some() && form.right.is_some());
    }

    #[test]
    fn push_join_into_rl() {
        // b ∘ a+ → RL(b∘a, a): same result, seed is the composition.
        let mut f = fixture();
        let a_plus = ClosureForm::right_linear(Term::var(f.a), Term::var(f.a), f.src, f.dst)
            .emit(f.db.dict_mut());
        let composed = compose(Term::var(f.b), a_plus.clone(), f.src, f.dst, f.db.dict_mut());
        let mut e = env(&f);
        let alts =
            compose_alternatives(&Term::var(f.b), &a_plus, f.src, f.dst, &mut e, f.db.dict_mut());
        assert!(!alts.is_empty());
        let expected = eval(&composed, &f.db).unwrap();
        for alt in &alts {
            assert_eq!(eval(alt, &f.db).unwrap().sorted_rows(), expected.sorted_rows());
        }
    }

    #[test]
    fn reverse_push_on_impure_rl() {
        // RL(b, a) ∘ b  →  b ∘ LL(b, a): alternative 2 fires.
        let mut f = fixture();
        let rl = ClosureForm::right_linear(Term::var(f.b), Term::var(f.a), f.src, f.dst)
            .emit(f.db.dict_mut());
        let composed = compose(rl.clone(), Term::var(f.b), f.src, f.dst, f.db.dict_mut());
        let mut e = env(&f);
        let alts =
            compose_alternatives(&rl, &Term::var(f.b), f.src, f.dst, &mut e, f.db.dict_mut());
        assert!(!alts.is_empty());
        let expected = eval(&composed, &f.db).unwrap();
        for alt in &alts {
            assert_eq!(eval(alt, &f.db).unwrap().sorted_rows(), expected.sorted_rows());
        }
    }

    #[test]
    fn recognize_rejects_non_binary_schema() {
        let mut f = fixture();
        let c = f.db.intern("c");
        // Ternary relation fixpoint is not a closure.
        let schema = Schema::new(vec![f.src, f.dst, c]);
        let tern = Relation::new(schema);
        f.db.insert_relation("T", tern);
        let t = f.db.dict().lookup("T").unwrap();
        let x = f.db.dict_mut().fresh("X");
        let term = Term::var(t).union(Term::var(x)).fix(x);
        let mut e = env(&f);
        assert!(recognize(&term, f.src, f.dst, &mut e).is_none());
    }

    #[test]
    fn recognize_rejects_same_generation_shape() {
        // Same-generation's step is not a simple append/prepend.
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("R", Relation::from_pairs(src, dst, [(0, 1), (0, 2)]));
        let t = mura_ucrpq::suites::same_generation_term(&mut db, "R").unwrap();
        let mut e = TypeEnv::from_db(&db);
        assert!(recognize(&t, src, dst, &mut e).is_none());
    }
}
