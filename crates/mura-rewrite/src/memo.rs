//! The plan-space memo: equivalence groups of μ-RA terms keyed by a
//! canonical term hash.
//!
//! The enumerator ([`crate::enumerate`]) explores semantically equivalent
//! rewritings of every closed subterm. Each subterm owns a **group**; the
//! group's **members** are the alternative plans derived for it by the
//! closure/normalization rule families. Two practical problems shape the
//! design:
//!
//! * **Alpha-equivalence.** `ClosureForm::emit` and `compose` mint fresh
//!   symbols (`X#7`, `m#12`) on every call, so two derivations of the same
//!   plan never collide under [`mura_core::term_key`]. The memo therefore
//!   keys groups by [`canon_key`], which numbers *generated* symbols by
//!   first occurrence — structurally equal plans that differ only in fresh
//!   symbol identity hash alike, while user-named relations and columns
//!   keep their identity. Symbols bound by an *enclosing* fixpoint are
//!   pinned (hashed raw): a member mentioning an outer recursion variable
//!   is only interchangeable within that exact scope.
//! * **Re-derivation.** Transformation rules invert each other (reversing a
//!   closure twice is the identity), so naive expansion loops. Every member
//!   carries a [`RuleMask`] of the rule families already applied to it; the
//!   enumerator only expands a member through families still unset, and
//!   the per-group key set drops duplicates arriving through other
//!   derivation paths.
//!
//! Groups are cost-ordered and truncated to a beam width when sealed; the
//! global member budget bounds the whole enumeration (see
//! [`crate::enumerate::EnumConfig`]).

use mura_core::fxhash::{FxHashMap, FxHashSet, FxHasher};
use mura_core::{Dictionary, Sym, Term};
use std::hash::{Hash, Hasher};

/// Bitmask of transformation rule families already applied to a member.
pub type RuleMask = u8;

/// Composition-pattern alternatives (merge fixpoints / push join /
/// reverse-then-push) were generated from this member.
pub const RULE_COMPOSE: RuleMask = 1;
/// Filter-over-closure reversal alternatives were generated.
pub const RULE_REVERSE: RuleMask = 1 << 1;
/// Join-into-fixpoint pushes were generated.
pub const RULE_JOIN_PUSH: RuleMask = 1 << 2;
/// The greedy pipeline rollout was applied to this member.
pub const RULE_ROLLOUT: RuleMask = 1 << 3;
/// All families: nothing left to derive from this member.
pub const RULE_ALL: RuleMask = RULE_COMPOSE | RULE_REVERSE | RULE_JOIN_PUSH | RULE_ROLLOUT;

/// True when `name` looks like a generated symbol (`prefix#N`, the shape
/// [`Dictionary::fresh`] mints). Only such symbols are renamed by
/// [`canon_key`]; user-named relations/columns always hash by identity.
fn is_generated(name: &str) -> bool {
    match name.split_once('#') {
        Some((prefix, digits)) => {
            !prefix.is_empty() && !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit())
        }
        None => false,
    }
}

/// Canonical, generation-insensitive structural hash of a term.
///
/// Identical to [`mura_core::term_key`] except that generated symbols
/// (`X#3`, `m#9`, …) are replaced by their first-occurrence index in the
/// walk, so plans that differ only in which fresh symbols a derivation
/// minted get the same key. Distinct symbols within one term stay distinct
/// (the numbering is injective), so no semantic information is lost.
///
/// `pinned` symbols — recursion variables bound by an *enclosing* fixpoint
/// — hash by raw identity even when generated: a subterm mentioning an
/// outer `X` must not be conflated with an equal-shaped subterm mentioning
/// a different outer variable.
pub fn canon_key(t: &Term, dict: &Dictionary, pinned: &[Sym]) -> u64 {
    struct Ctx<'a> {
        dict: &'a Dictionary,
        pinned: &'a [Sym],
        ids: FxHashMap<Sym, u64>,
    }
    impl Ctx<'_> {
        fn sym(&mut self, s: Sym, h: &mut FxHasher) {
            // Symbols from a foreign dictionary (terms are occasionally
            // planned against a database other than the one they were
            // translated with) cannot be resolved: hash them raw.
            let generated = s.index() < self.dict.len() && is_generated(self.dict.resolve(s));
            if !self.pinned.contains(&s) && generated {
                let next = self.ids.len() as u64;
                let id = *self.ids.entry(s).or_insert(next);
                0xF5u8.hash(h);
                id.hash(h);
            } else {
                0x5Fu8.hash(h);
                s.hash(h);
            }
        }
    }
    fn go(t: &Term, ctx: &mut Ctx<'_>, h: &mut FxHasher) {
        match t {
            Term::Var(v) => {
                0u8.hash(h);
                ctx.sym(*v, h);
            }
            Term::Cst(r) => {
                1u8.hash(h);
                for c in r.schema().columns() {
                    ctx.sym(*c, h);
                }
                for row in r.sorted_rows() {
                    row.hash(h);
                }
            }
            Term::Filter(ps, inner) => {
                2u8.hash(h);
                for p in ps {
                    // Predicates embed column symbols; canonicalize them too.
                    match p {
                        mura_core::Pred::Eq(c, v) => {
                            0u8.hash(h);
                            ctx.sym(*c, h);
                            v.hash(h);
                        }
                        mura_core::Pred::Neq(c, v) => {
                            1u8.hash(h);
                            ctx.sym(*c, h);
                            v.hash(h);
                        }
                        mura_core::Pred::EqCol(a, b) => {
                            2u8.hash(h);
                            ctx.sym(*a, h);
                            ctx.sym(*b, h);
                        }
                    }
                }
                go(inner, ctx, h);
            }
            Term::Rename(a, b, inner) => {
                3u8.hash(h);
                ctx.sym(*a, h);
                ctx.sym(*b, h);
                go(inner, ctx, h);
            }
            Term::AntiProject(cs, inner) => {
                4u8.hash(h);
                for c in cs {
                    ctx.sym(*c, h);
                }
                go(inner, ctx, h);
            }
            Term::Join(a, b) => {
                5u8.hash(h);
                go(a, ctx, h);
                go(b, ctx, h);
            }
            Term::Antijoin(a, b) => {
                6u8.hash(h);
                go(a, ctx, h);
                go(b, ctx, h);
            }
            Term::Union(a, b) => {
                7u8.hash(h);
                go(a, ctx, h);
                go(b, ctx, h);
            }
            Term::Fix(x, body) => {
                8u8.hash(h);
                ctx.sym(*x, h);
                go(body, ctx, h);
            }
        }
    }
    let mut ctx = Ctx { dict, pinned, ids: FxHashMap::default() };
    let mut h = FxHasher::default();
    go(t, &mut ctx, &mut h);
    h.finish()
}

/// Index of a group in the memo.
pub type GroupId = usize;

/// One explored plan in a group.
#[derive(Debug, Clone)]
pub struct Member {
    /// The (normalized) plan.
    pub term: Term,
    /// Estimated cost under the enumeration's cost model; `INFINITY` when
    /// the plan could not be costed (kept only as a last resort).
    pub cost: f64,
    /// Canonical key of `term`.
    pub key: u64,
    /// Rule families already applied to this member.
    pub mask: RuleMask,
}

/// An equivalence class of plans for one subterm.
#[derive(Debug, Default)]
pub struct Group {
    /// Explored members; cost-ordered once the group is sealed.
    pub members: Vec<Member>,
    /// Keys of all members ever added (also the ones beam-truncated away),
    /// so re-derived plans are dropped instead of re-expanded.
    keys: FxHashSet<u64>,
}

/// The plan-space memo: groups indexed by the canonical key of every term
/// that has been explored into them.
#[derive(Debug, Default)]
pub struct Memo {
    groups: Vec<Group>,
    by_key: FxHashMap<u64, GroupId>,
    members_total: usize,
}

impl Memo {
    /// A fresh, empty memo.
    pub fn new() -> Memo {
        Memo::default()
    }

    /// The group already holding a term with this canonical key, if any.
    pub fn lookup(&self, key: u64) -> Option<GroupId> {
        self.by_key.get(&key).copied()
    }

    /// Creates an empty group and indexes `key` into it.
    pub fn create(&mut self, key: u64) -> GroupId {
        let gid = self.groups.len();
        self.groups.push(Group::default());
        self.by_key.insert(key, gid);
        gid
    }

    /// Adds a member plan to `gid` unless an equal plan (by canonical key)
    /// was already derived there. Returns whether the member was new. The
    /// key is also indexed memo-wide so a later exploration of an equal
    /// term reuses this group.
    pub fn add(&mut self, gid: GroupId, term: Term, cost: f64, key: u64, mask: RuleMask) -> bool {
        let group = &mut self.groups[gid];
        if !group.keys.insert(key) {
            return false;
        }
        group.members.push(Member { term, cost, key, mask });
        self.members_total += 1;
        self.by_key.entry(key).or_insert(gid);
        true
    }

    /// Read access to a group.
    pub fn group(&self, gid: GroupId) -> &Group {
        &self.groups[gid]
    }

    /// Mutable access to a group's members (rule-mask updates).
    pub fn members_mut(&mut self, gid: GroupId) -> &mut Vec<Member> {
        &mut self.groups[gid].members
    }

    /// Cost-sorts a group (stable tie-break on key) and truncates it to
    /// `beam` members. Truncated keys stay indexed, so the pruned plans are
    /// not re-derived later.
    pub fn seal(&mut self, gid: GroupId, beam: usize) {
        let group = &mut self.groups[gid];
        group.members.sort_by(|a, b| {
            a.cost.partial_cmp(&b.cost).unwrap_or(std::cmp::Ordering::Equal).then(a.key.cmp(&b.key))
        });
        if group.members.len() > beam {
            self.members_total -= group.members.len() - beam;
            group.members.truncate(beam);
        }
    }

    /// The cheapest `limit` member terms of a sealed group.
    pub fn top_terms(&self, gid: GroupId, limit: usize) -> Vec<Term> {
        self.groups[gid].members.iter().take(limit.max(1)).map(|m| m.term.clone()).collect()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Live members across all groups.
    pub fn member_count(&self) -> usize {
        self.members_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Database;

    #[test]
    fn generated_symbol_detection() {
        assert!(is_generated("X#1"));
        assert!(is_generated("m#42"));
        assert!(!is_generated("src"));
        assert!(!is_generated("#3"));
        assert!(!is_generated("X#"));
        assert!(!is_generated("a#b"));
    }

    #[test]
    fn canon_key_ignores_fresh_identity() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let e = db.intern("E");
        let mk = |db: &mut Database| {
            let x = db.dict_mut().fresh("X");
            let m = db.dict_mut().fresh("m");
            Term::var(e)
                .union(Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m))
                .fix(x)
        };
        let t1 = mk(&mut db);
        let t2 = mk(&mut db);
        assert_ne!(mura_core::term_key(&t1), mura_core::term_key(&t2));
        assert_eq!(canon_key(&t1, db.dict(), &[]), canon_key(&t2, db.dict(), &[]));
    }

    #[test]
    fn canon_key_distinguishes_user_symbols() {
        let mut db = Database::new();
        let a = db.intern("a");
        let b = db.intern("b");
        assert_ne!(
            canon_key(&Term::var(a), db.dict(), &[]),
            canon_key(&Term::var(b), db.dict(), &[])
        );
    }

    #[test]
    fn pinned_vars_hash_raw() {
        let mut db = Database::new();
        let x1 = db.dict_mut().fresh("X");
        let x2 = db.dict_mut().fresh("X");
        // Unpinned: alpha-equivalent.
        assert_eq!(
            canon_key(&Term::var(x1), db.dict(), &[]),
            canon_key(&Term::var(x2), db.dict(), &[])
        );
        // Pinned (bound by an enclosing fixpoint): distinct.
        assert_ne!(
            canon_key(&Term::var(x1), db.dict(), &[x1, x2]),
            canon_key(&Term::var(x2), db.dict(), &[x1, x2])
        );
    }

    #[test]
    fn memo_dedups_and_seals() {
        let mut db = Database::new();
        let a = db.intern("a");
        let mut memo = Memo::new();
        let key = canon_key(&Term::var(a), db.dict(), &[]);
        let gid = memo.create(key);
        assert!(memo.add(gid, Term::var(a), 1.0, key, 0));
        assert!(!memo.add(gid, Term::var(a), 1.0, key, 0), "duplicate key must be dropped");
        let b = db.intern("b");
        let kb = canon_key(&Term::var(b), db.dict(), &[]);
        assert!(memo.add(gid, Term::var(b), 0.5, kb, 0));
        memo.seal(gid, 1);
        assert_eq!(memo.group(gid).members.len(), 1);
        assert_eq!(memo.group(gid).members[0].cost, 0.5);
        // Truncated keys stay known.
        assert!(!memo.add(gid, Term::var(a), 1.0, key, 0));
        assert_eq!(memo.member_count(), 1);
    }
}
