//! Observed-cardinality feedback: measured fixpoint totals keyed by
//! canonical plan hash, with churn-based invalidation.
//!
//! After a query executes, the server folds the executor's per-fixpoint
//! totals into a [`FeedbackStore`]. On the next planning of an equal
//! (sub)term the enumerator costs fixpoints from these *measured* sizes
//! instead of the static expansion estimate ([`CostModel::with_observed`]).
//!
//! Two staleness mechanisms keep the loop honest:
//!
//! * **Churn invalidation.** Every observation remembers which base
//!   relations the fixpoint reads and each relation's cumulative churn
//!   counter at observation time. [`FeedbackStore::note_churn`] (called on
//!   every IVM delta) drops observations whose dependencies have since
//!   churned materially (more than ~10% of the relation's current size,
//!   with a small absolute floor), so feedback never outlives the data it
//!   measured.
//! * **Generation counter.** The store's generation bumps whenever the
//!   observation set changes materially (new fixpoint observed, a measured
//!   total moved by more than 25%, observations invalidated). The server's
//!   plan cache remembers the generation a plan was optimized under and
//!   replans when it moves — that is the whole adaptive loop. The
//!   contrapositive is load-bearing too: observations never change
//!   *without* a generation bump (re-observations within tolerance are
//!   confirmations, not updates), so a plan that is generation-valid was
//!   costed from exactly the store's current contents. Crash recovery
//!   leans on this to rebuild plan caches by re-planning against the
//!   restored store.
//!
//! [`CostModel::with_observed`]: crate::cost::CostModel::with_observed

use crate::cost::ObservedCards;
use crate::memo::canon_key;
use mura_core::fxhash::FxHashMap;
use mura_core::{term_key, Dictionary, Sym, Term};

/// Relative change in an observed total that counts as material (bumps the
/// generation and forces dependent plans to re-optimize).
const MATERIAL_ROWS_CHANGE: f64 = 0.25;

/// Fraction of a relation's size that must churn before observations
/// depending on it are dropped.
const MATERIAL_CHURN_FRACTION: f64 = 0.10;

/// Absolute churn floor: tiny relations invalidate after this many changed
/// rows regardless of the fraction.
const MATERIAL_CHURN_FLOOR: f64 = 8.0;

#[derive(Debug, Clone)]
struct Observation {
    /// Measured total rows of the fixpoint.
    rows: f64,
    /// How many executions have confirmed this observation.
    runs: u64,
    /// Base relations the fixpoint reads, with each relation's cumulative
    /// churn counter at observation time.
    deps: Vec<(Sym, u64)>,
}

/// Per-plan-hash store of observed fixpoint cardinalities.
#[derive(Debug, Default)]
pub struct FeedbackStore {
    entries: FxHashMap<u64, Observation>,
    /// Cumulative changed-row counter per base relation.
    churn: FxHashMap<Sym, u64>,
    /// Last known size per base relation (sets the churn threshold).
    sizes: FxHashMap<Sym, f64>,
    generation: u64,
}

impl FeedbackStore {
    /// An empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Current generation. Plans costed under an older generation should be
    /// re-optimized.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the observations as a `canon_key → rows` map, the shape
    /// [`crate::cost::CostModel::with_observed`] consumes.
    pub fn observations(&self) -> ObservedCards {
        self.entries.iter().map(|(k, o)| (*k, o.rows)).collect()
    }

    /// Folds the executor's measured fixpoint totals (keyed by
    /// [`term_key`] of each executed `Fix` subterm) into the store by
    /// walking `plan` and translating to canonical keys. Returns the number
    /// of fixpoints recorded. Bumps the generation when the observation set
    /// changed materially.
    pub fn record_plan(
        &mut self,
        plan: &Term,
        totals: &FxHashMap<u64, f64>,
        dict: &Dictionary,
    ) -> usize {
        let mut recorded = 0;
        let mut material = false;
        self.record_rec(plan, totals, dict, &mut recorded, &mut material);
        if material {
            self.generation += 1;
        }
        recorded
    }

    fn record_rec(
        &mut self,
        t: &Term,
        totals: &FxHashMap<u64, f64>,
        dict: &Dictionary,
        recorded: &mut usize,
        material: &mut bool,
    ) {
        if let Term::Fix(_, _) = t {
            if let Some(&rows) = totals.get(&term_key(t)) {
                let key = canon_key(t, dict, &[]);
                let deps: Vec<(Sym, u64)> = {
                    let mut rels = Vec::new();
                    free_rels(t, &mut Vec::new(), &mut rels);
                    rels.into_iter()
                        .map(|r| (r, self.churn.get(&r).copied().unwrap_or(0)))
                        .collect()
                };
                *recorded += 1;
                match self.entries.get_mut(&key) {
                    Some(obs) => {
                        // Invariant: observations only change when the
                        // generation bumps. A re-observation within
                        // tolerance *confirms* the stored value instead of
                        // drifting it — the plan cache treats "generation
                        // unchanged" as "costing inputs unchanged", and
                        // crash recovery (which rebuilds plans by
                        // re-planning against the restored store) relies on
                        // the same property to reproduce cached plans.
                        if (rows - obs.rows).abs() > MATERIAL_ROWS_CHANGE * obs.rows.max(1.0) {
                            *material = true;
                            obs.rows = rows;
                            obs.deps = deps;
                        }
                        obs.runs += 1;
                    }
                    None => {
                        *material = true;
                        self.entries.insert(key, Observation { rows, runs: 1, deps });
                    }
                }
            }
        }
        for c in t.children() {
            self.record_rec(c, totals, dict, recorded, material);
        }
    }

    /// Notes that `changed` rows of `rel` (inserts + deletes) were applied
    /// and that the relation now holds `size_now` rows. Drops observations
    /// whose dependency on `rel` has churned materially since they were
    /// taken; returns how many were dropped (generation bumps when > 0).
    pub fn note_churn(&mut self, rel: Sym, changed: usize, size_now: usize) -> usize {
        *self.churn.entry(rel).or_insert(0) += changed as u64;
        self.sizes.insert(rel, size_now as f64);
        let now = self.churn[&rel];
        let threshold = (MATERIAL_CHURN_FRACTION * size_now as f64).max(MATERIAL_CHURN_FLOOR);
        let before = self.entries.len();
        self.entries.retain(|_, obs| {
            !obs.deps.iter().any(|(r, at)| *r == rel && (now - *at) as f64 > threshold)
        });
        let dropped = before - self.entries.len();
        if dropped > 0 {
            self.generation += 1;
        }
        dropped
    }

    /// Drops everything (shape-changing or same-shape reload: the measured
    /// world is gone). The generation is *not* bumped — plans cached before
    /// the clear stay structurally valid; the next recording bumps it.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.churn.clear();
        self.sizes.clear();
    }
}

/// One exported observation: `(canon_key, rows, runs, deps)` where `deps`
/// are `(relation, churn counter at observation time)` pairs.
pub type FeedbackEntry = (u64, f64, u64, Vec<(Sym, u64)>);

/// The serializable projection of a [`FeedbackStore`], used by the
/// durability layer to carry observed cardinalities across a restart. All
/// vectors are sorted so the export of a given store is byte-stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackState {
    /// Store generation at export time.
    pub generation: u64,
    /// Live observations.
    pub entries: Vec<FeedbackEntry>,
    /// Cumulative changed-row counter per base relation.
    pub churn: Vec<(Sym, u64)>,
    /// Last known size per base relation.
    pub sizes: Vec<(Sym, f64)>,
}

impl FeedbackStore {
    /// Exports the full store state (observations, churn counters, sizes,
    /// generation) in a deterministic order.
    pub fn export_state(&self) -> FeedbackState {
        let mut entries: Vec<FeedbackEntry> =
            self.entries.iter().map(|(k, o)| (*k, o.rows, o.runs, o.deps.clone())).collect();
        entries.sort_by_key(|e| e.0);
        let mut churn: Vec<(Sym, u64)> = self.churn.iter().map(|(s, c)| (*s, *c)).collect();
        churn.sort_by_key(|e| e.0);
        let mut sizes: Vec<(Sym, f64)> = self.sizes.iter().map(|(s, z)| (*s, *z)).collect();
        sizes.sort_by_key(|e| e.0);
        FeedbackState { generation: self.generation, entries, churn, sizes }
    }

    /// Rebuilds a store from an exported state. Canonical keys and symbol
    /// ids are only meaningful against the dictionary they were computed
    /// under, so the importer must have restored that dictionary first
    /// (the snapshot layer restores symbols by interning names in their
    /// original order).
    pub fn import_state(state: FeedbackState) -> FeedbackStore {
        let mut fb = FeedbackStore { generation: state.generation, ..Default::default() };
        for (key, rows, runs, deps) in state.entries {
            fb.entries.insert(key, Observation { rows, runs, deps });
        }
        for (rel, c) in state.churn {
            fb.churn.insert(rel, c);
        }
        for (rel, z) in state.sizes {
            fb.sizes.insert(rel, z);
        }
        fb
    }
}

/// Collects the base-relation variables read by `t` (free `Var`s — symbols
/// not bound by an enclosing `Fix` within `t`).
fn free_rels(t: &Term, bound: &mut Vec<Sym>, out: &mut Vec<Sym>) {
    match t {
        Term::Var(v) => {
            if !bound.contains(v) && !out.contains(v) {
                out.push(*v);
            }
        }
        Term::Fix(x, body) => {
            bound.push(*x);
            free_rels(body, bound, out);
            bound.pop();
        }
        _ => {
            for c in t.children() {
                free_rels(c, bound, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Database;

    /// `E+` fixpoint over fresh symbols, plus its term key.
    fn tc_fix(db: &mut Database) -> Term {
        let src = db.intern("src");
        let dst = db.intern("dst");
        let e = db.intern("E");
        let x = db.dict_mut().fresh("X");
        let m = db.dict_mut().fresh("m");
        Term::var(e)
            .union(Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m))
            .fix(x)
    }

    #[test]
    fn record_then_observe_round_trips_across_fresh_symbols() {
        let mut db = Database::new();
        let plan1 = tc_fix(&mut db);
        let plan2 = tc_fix(&mut db); // same plan, different fresh symbols
        let mut fb = FeedbackStore::new();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan1), 123.0);
        assert_eq!(fb.record_plan(&plan1, &totals, db.dict()), 1);
        let obs = fb.observations();
        // The observation is visible under plan2's canonical key too.
        assert_eq!(obs.get(&canon_key(&plan2, db.dict(), &[])), Some(&123.0));
    }

    #[test]
    fn generation_bumps_on_new_and_material_changes_only() {
        let mut db = Database::new();
        let plan = tc_fix(&mut db);
        let mut fb = FeedbackStore::new();
        let g0 = fb.generation();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan), 100.0);
        fb.record_plan(&plan, &totals, db.dict());
        assert!(fb.generation() > g0, "new observation must bump");
        let g1 = fb.generation();
        // Re-observing within tolerance: stable, no bump.
        totals.insert(term_key(&plan), 110.0);
        fb.record_plan(&plan, &totals, db.dict());
        assert_eq!(fb.generation(), g1);
        // Material move: bump.
        totals.insert(term_key(&plan), 300.0);
        fb.record_plan(&plan, &totals, db.dict());
        assert!(fb.generation() > g1);
    }

    #[test]
    fn churn_drops_dependent_observations() {
        let mut db = Database::new();
        let plan = tc_fix(&mut db);
        let e = db.intern("E");
        let other = db.intern("F");
        let mut fb = FeedbackStore::new();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan), 100.0);
        fb.record_plan(&plan, &totals, db.dict());
        // Churn on an unrelated relation: observation survives.
        assert_eq!(fb.note_churn(other, 1000, 1000), 0);
        assert_eq!(fb.len(), 1);
        // Small churn on E: below threshold, survives.
        assert_eq!(fb.note_churn(e, 2, 1000), 0);
        // Material churn on E: dropped, generation bumps.
        let g = fb.generation();
        assert_eq!(fb.note_churn(e, 200, 1000), 1);
        assert!(fb.is_empty());
        assert!(fb.generation() > g);
    }

    #[test]
    fn export_import_round_trips_and_is_deterministic() {
        let mut db = Database::new();
        let plan = tc_fix(&mut db);
        let e = db.intern("E");
        let mut fb = FeedbackStore::new();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan), 100.0);
        fb.record_plan(&plan, &totals, db.dict());
        fb.note_churn(e, 2, 1000);
        let state = fb.export_state();
        assert_eq!(state, fb.export_state(), "export must be byte-stable");
        let back = FeedbackStore::import_state(state);
        assert_eq!(back.generation(), fb.generation());
        assert_eq!(back.observations(), fb.observations());
        // Churn bookkeeping survives: the same material churn that would
        // drop the observation in the original drops it in the copy.
        let mut a = fb;
        let mut b = back;
        assert_eq!(a.note_churn(e, 200, 1000), b.note_churn(e, 200, 1000));
        assert_eq!(a.generation(), b.generation());
    }

    #[test]
    fn clear_keeps_generation() {
        let mut db = Database::new();
        let plan = tc_fix(&mut db);
        let mut fb = FeedbackStore::new();
        let mut totals = FxHashMap::default();
        totals.insert(term_key(&plan), 100.0);
        fb.record_plan(&plan, &totals, db.dict());
        let g = fb.generation();
        fb.clear();
        assert!(fb.is_empty());
        assert_eq!(fb.generation(), g);
    }
}
