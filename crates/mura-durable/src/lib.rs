//! # mura-durable — coordinator durability for the serving tier
//!
//! The paper's coordinator holds all authoritative state in memory: the
//! database catalog, cached materialized views with their fixpoint totals,
//! and the cardinality-feedback store that steers plan enumeration. This
//! crate makes that state survive a coordinator crash:
//!
//! * [`wal`] — a length-delimited, CRC-checksummed write-ahead log. Every
//!   `apply_delta` batch and every schema-changing `load` is stamped with
//!   the version it produces and fsync'd *before* it is applied. Replay is
//!   torn-tail tolerant: a partially written final record (the only kind a
//!   crash can produce, since records are appended sequentially and synced)
//!   is detected by its checksum and dropped, never half-applied.
//! * [`snapshot`] — atomic point-in-time snapshots of database + cached
//!   views + feedback store, written to a temp file and `rename`d into
//!   place so a crash mid-snapshot leaves the previous snapshot intact.
//!   After a successful snapshot the WAL is reset, bounding replay work.
//! * [`codec`] — a self-describing, bounds-checked binary codec for the
//!   engine types (values, relations, μ-RA terms, delta batches, the
//!   catalog, feedback state). No serde: the workspace builds offline.
//! * [`crash`] — deterministic, env-driven crash points
//!   (`MURA_CRASH_POINT=<site>:<n>` aborts the process on the n-th hit of
//!   `site`) used by the crash-recovery chaos harness.
//!
//! Recovery = newest valid snapshot + WAL tail replay. The recovered
//! coordinator reaches the exact version of the last durably logged
//! record; mutations whose WAL append did not complete before the crash
//! were never acknowledged to any client and are correctly absent.

pub mod codec;
pub mod crash;
pub mod snapshot;
pub mod wal;

pub use crash::{crash_armed, crash_point};
pub use snapshot::{
    load_newest_snapshot, prune_older_snapshots, write_snapshot, SnapshotError, SnapshotState,
    ViewSnapshot,
};
pub use wal::{SyncPolicy, Wal, WalError, WalRecord, WalReplay, WalTail};
