//! Bounds-checked binary codec for the engine types.
//!
//! Hand-rolled (the workspace builds offline, no serde): little-endian
//! fixed-width integers, `u32`-length-prefixed sequences, one tag byte per
//! enum variant. Every decode is bounds-checked against the buffer and
//! returns a typed [`CodecError`] — decoding untrusted bytes never panics.
//! Encoding is canonical: maps are emitted in sorted key order and
//! relation rows in sorted row order, so equal states produce equal bytes
//! (checksums and tests can compare encodings directly).

use mura_core::{Database, Pred, Relation, Row, Schema, Sym, Term, Value};
use mura_ivm::{DeltaBatch, RelDelta};
use mura_rewrite::FeedbackState;
use std::sync::Arc;

/// Decoding failure. Carries the buffer offset where decoding stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Offset at which more bytes were needed.
        at: usize,
        /// How many bytes the decoder wanted.
        want: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// Offset of the offending tag byte.
        at: usize,
        /// The tag value read.
        tag: u8,
        /// Which type was being decoded.
        what: &'static str,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8 {
        /// Offset of the string payload.
        at: usize,
    },
    /// A decoded value violated an invariant (row arity, term depth…).
    Invalid {
        /// Offset where the violation was detected.
        at: usize,
        /// Human-readable description.
        what: &'static str,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at, want } => {
                write!(f, "truncated at byte {at}: wanted {want} more bytes")
            }
            CodecError::BadTag { at, tag, what } => {
                write!(f, "bad {what} tag {tag} at byte {at}")
            }
            CodecError::BadUtf8 { at } => write!(f, "invalid utf-8 at byte {at}"),
            CodecError::Invalid { at, what } => write!(f, "invalid {what} at byte {at}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Decoder position over a byte buffer.
pub struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Guards against stack exhaustion when decoding adversarial nesting.
const MAX_TERM_DEPTH: usize = 512;

impl<'a> Cur<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails with [`CodecError::Invalid`] if bytes remain.
    pub fn expect_done(&self) -> Result<(), CodecError> {
        if self.done() {
            Ok(())
        } else {
            Err(CodecError::Invalid { at: self.pos, what: "trailing bytes" })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated { at: self.pos, want: n });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        let at = self.pos;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map(|s| s.to_string()).map_err(|_| CodecError::BadUtf8 { at })
    }

    /// Reads a sequence length, sanity-capped against the bytes remaining
    /// (`min_elem_bytes` is the smallest possible encoded element size) so
    /// a corrupt length cannot trigger a huge allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        let cap = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_bytes.max(1)) > cap {
            return Err(CodecError::Truncated { at: self.pos, want: n * min_elem_bytes.max(1) });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Engine types
// ---------------------------------------------------------------------------

/// Encodes a symbol (its dictionary index).
pub fn put_sym(out: &mut Vec<u8>, s: Sym) {
    put_u32(out, s.0);
}

/// Decodes a symbol.
pub fn get_sym(cur: &mut Cur) -> Result<Sym, CodecError> {
    Ok(Sym(cur.u32()?))
}

/// Encodes a value (tag 0 = `Int`, 1 = `Str`).
pub fn put_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            put_i64(out, i);
        }
        Value::Str(s) => {
            out.push(1);
            put_sym(out, s);
        }
    }
}

/// Decodes a value.
pub fn get_value(cur: &mut Cur) -> Result<Value, CodecError> {
    let at = cur.pos();
    match cur.u8()? {
        0 => Ok(Value::Int(cur.i64()?)),
        1 => Ok(Value::Str(get_sym(cur)?)),
        tag => Err(CodecError::BadTag { at, tag, what: "Value" }),
    }
}

/// Encodes a schema (column symbols; already sorted by construction).
pub fn put_schema(out: &mut Vec<u8>, s: &Schema) {
    put_u32(out, s.arity() as u32);
    for &c in s.columns() {
        put_sym(out, c);
    }
}

/// Decodes a schema.
pub fn get_schema(cur: &mut Cur) -> Result<Schema, CodecError> {
    let at = cur.pos();
    let n = cur.seq_len(4)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        cols.push(get_sym(cur)?);
    }
    let mut sorted = cols.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted != cols {
        return Err(CodecError::Invalid { at, what: "schema columns (unsorted or duplicated)" });
    }
    Ok(Schema::new(cols))
}

/// Encodes a relation: schema, row count, then rows in sorted order so the
/// encoding is canonical.
pub fn put_relation(out: &mut Vec<u8>, r: &Relation) {
    put_schema(out, r.schema());
    put_u64(out, r.len() as u64);
    for row in r.sorted_rows() {
        for &v in row.iter() {
            put_value(out, v);
        }
    }
}

/// Decodes a relation.
pub fn get_relation(cur: &mut Cur) -> Result<Relation, CodecError> {
    let schema = get_schema(cur)?;
    let at = cur.pos();
    let n = cur.u64()? as usize;
    let arity = schema.arity();
    // Each value is at least 5 bytes; an empty-schema relation has at most
    // one (empty) row.
    let min_row = arity * 5;
    if n.saturating_mul(min_row) > cur.buf.len() - cur.pos || (arity == 0 && n > 1) {
        return Err(CodecError::Invalid { at, what: "relation row count" });
    }
    let mut rows: Vec<Row> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            row.push(get_value(cur)?);
        }
        rows.push(row.into_boxed_slice());
    }
    Ok(Relation::from_rows(schema, rows))
}

/// Encodes a filter predicate.
pub fn put_pred(out: &mut Vec<u8>, p: &Pred) {
    match p {
        Pred::Eq(c, v) => {
            out.push(0);
            put_sym(out, *c);
            put_value(out, *v);
        }
        Pred::Neq(c, v) => {
            out.push(1);
            put_sym(out, *c);
            put_value(out, *v);
        }
        Pred::EqCol(a, b) => {
            out.push(2);
            put_sym(out, *a);
            put_sym(out, *b);
        }
    }
}

/// Decodes a filter predicate.
pub fn get_pred(cur: &mut Cur) -> Result<Pred, CodecError> {
    let at = cur.pos();
    match cur.u8()? {
        0 => Ok(Pred::Eq(get_sym(cur)?, get_value(cur)?)),
        1 => Ok(Pred::Neq(get_sym(cur)?, get_value(cur)?)),
        2 => Ok(Pred::EqCol(get_sym(cur)?, get_sym(cur)?)),
        tag => Err(CodecError::BadTag { at, tag, what: "Pred" }),
    }
}

/// Encodes a μ-RA term (one tag byte per constructor, recursive).
pub fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Var(v) => {
            out.push(0);
            put_sym(out, *v);
        }
        Term::Cst(r) => {
            out.push(1);
            put_relation(out, r);
        }
        Term::Filter(ps, inner) => {
            out.push(2);
            put_u32(out, ps.len() as u32);
            for p in ps {
                put_pred(out, p);
            }
            put_term(out, inner);
        }
        Term::Rename(from, to, inner) => {
            out.push(3);
            put_sym(out, *from);
            put_sym(out, *to);
            put_term(out, inner);
        }
        Term::AntiProject(cols, inner) => {
            out.push(4);
            put_u32(out, cols.len() as u32);
            for &c in cols {
                put_sym(out, c);
            }
            put_term(out, inner);
        }
        Term::Join(a, b) => {
            out.push(5);
            put_term(out, a);
            put_term(out, b);
        }
        Term::Antijoin(a, b) => {
            out.push(6);
            put_term(out, a);
            put_term(out, b);
        }
        Term::Union(a, b) => {
            out.push(7);
            put_term(out, a);
            put_term(out, b);
        }
        Term::Fix(v, body) => {
            out.push(8);
            put_sym(out, *v);
            put_term(out, body);
        }
    }
}

/// Decodes a μ-RA term.
pub fn get_term(cur: &mut Cur) -> Result<Term, CodecError> {
    get_term_at(cur, 0)
}

fn get_term_at(cur: &mut Cur, depth: usize) -> Result<Term, CodecError> {
    let at = cur.pos();
    if depth > MAX_TERM_DEPTH {
        return Err(CodecError::Invalid { at, what: "term nesting depth" });
    }
    match cur.u8()? {
        0 => Ok(Term::Var(get_sym(cur)?)),
        1 => Ok(Term::Cst(Arc::new(get_relation(cur)?))),
        2 => {
            let n = cur.seq_len(5)?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(get_pred(cur)?);
            }
            Ok(Term::Filter(ps, Box::new(get_term_at(cur, depth + 1)?)))
        }
        3 => {
            let from = get_sym(cur)?;
            let to = get_sym(cur)?;
            Ok(Term::Rename(from, to, Box::new(get_term_at(cur, depth + 1)?)))
        }
        4 => {
            let n = cur.seq_len(4)?;
            let mut cols = Vec::with_capacity(n);
            for _ in 0..n {
                cols.push(get_sym(cur)?);
            }
            Ok(Term::AntiProject(cols, Box::new(get_term_at(cur, depth + 1)?)))
        }
        5 => Ok(Term::Join(
            Box::new(get_term_at(cur, depth + 1)?),
            Box::new(get_term_at(cur, depth + 1)?),
        )),
        6 => Ok(Term::Antijoin(
            Box::new(get_term_at(cur, depth + 1)?),
            Box::new(get_term_at(cur, depth + 1)?),
        )),
        7 => Ok(Term::Union(
            Box::new(get_term_at(cur, depth + 1)?),
            Box::new(get_term_at(cur, depth + 1)?),
        )),
        8 => {
            let v = get_sym(cur)?;
            Ok(Term::Fix(v, Box::new(get_term_at(cur, depth + 1)?)))
        }
        tag => Err(CodecError::BadTag { at, tag, what: "Term" }),
    }
}

/// Encodes a delta batch. Relations are emitted in sorted symbol order.
pub fn put_delta_batch(out: &mut Vec<u8>, batch: &DeltaBatch) {
    let mut keys: Vec<Sym> = batch.rels.keys().copied().collect();
    keys.sort_unstable();
    put_u32(out, keys.len() as u32);
    for k in keys {
        let d = &batch.rels[&k];
        put_sym(out, k);
        put_relation(out, &d.insert);
        put_relation(out, &d.delete);
    }
}

/// Decodes a delta batch.
pub fn get_delta_batch(cur: &mut Cur) -> Result<DeltaBatch, CodecError> {
    let n = cur.seq_len(4)?;
    let mut batch = DeltaBatch::new();
    for _ in 0..n {
        let k = get_sym(cur)?;
        let insert = get_relation(cur)?;
        let delete = get_relation(cur)?;
        batch.rels.insert(k, RelDelta { insert, delete });
    }
    Ok(batch)
}

/// Encodes a full database: dictionary (names in symbol order plus the
/// fresh-name counter), constants, and relations, both in sorted symbol
/// order.
pub fn put_database(out: &mut Vec<u8>, db: &Database) {
    let dict = db.dict();
    put_u32(out, dict.len() as u32);
    for name in dict.names() {
        put_string(out, name);
    }
    put_u32(out, dict.fresh_counter());

    let mut consts: Vec<(Sym, Value)> = db.constants().collect();
    consts.sort_unstable_by_key(|(s, _)| *s);
    put_u32(out, consts.len() as u32);
    for (s, v) in consts {
        put_sym(out, s);
        put_value(out, v);
    }

    let mut rels: Vec<(Sym, &Relation)> = db.relations().collect();
    rels.sort_unstable_by_key(|(s, _)| *s);
    put_u32(out, rels.len() as u32);
    for (s, r) in rels {
        put_sym(out, s);
        put_relation(out, r);
    }
}

/// Decodes a database. Symbols resolve identically to the encoded one:
/// names are re-interned in symbol order.
pub fn get_database(cur: &mut Cur) -> Result<Database, CodecError> {
    let mut db = Database::new();
    let n_names = cur.seq_len(4)?;
    for _ in 0..n_names {
        let name = cur.string()?;
        db.intern(&name);
    }
    let fresh = cur.u32()?;
    db.dict_mut().set_fresh_counter(fresh);

    let n_consts = cur.seq_len(5)?;
    for _ in 0..n_consts {
        let at = cur.pos();
        let s = get_sym(cur)?;
        let v = get_value(cur)?;
        if s.index() >= db.dict().len() {
            return Err(CodecError::Invalid { at, what: "constant symbol" });
        }
        let name = db.dict().resolve(s).to_string();
        db.bind_constant(&name, v);
    }

    let n_rels = cur.seq_len(5)?;
    for _ in 0..n_rels {
        let at = cur.pos();
        let s = get_sym(cur)?;
        if s.index() >= db.dict().len() {
            return Err(CodecError::Invalid { at, what: "relation symbol" });
        }
        let r = get_relation(cur)?;
        db.insert_relation_sym(s, r);
    }
    Ok(db)
}

/// Encodes feedback-store state (already sorted by
/// [`FeedbackStore::export_state`](mura_rewrite::FeedbackStore::export_state)).
pub fn put_feedback(out: &mut Vec<u8>, fb: &FeedbackState) {
    put_u64(out, fb.generation);
    put_u32(out, fb.entries.len() as u32);
    for (key, rows, runs, deps) in &fb.entries {
        put_u64(out, *key);
        put_f64(out, *rows);
        put_u64(out, *runs);
        put_u32(out, deps.len() as u32);
        for (s, v) in deps {
            put_sym(out, *s);
            put_u64(out, *v);
        }
    }
    put_u32(out, fb.churn.len() as u32);
    for (s, v) in &fb.churn {
        put_sym(out, *s);
        put_u64(out, *v);
    }
    put_u32(out, fb.sizes.len() as u32);
    for (s, v) in &fb.sizes {
        put_sym(out, *s);
        put_f64(out, *v);
    }
}

/// Decodes feedback-store state.
pub fn get_feedback(cur: &mut Cur) -> Result<FeedbackState, CodecError> {
    let generation = cur.u64()?;
    let n = cur.seq_len(28)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = cur.u64()?;
        let rows = cur.f64()?;
        let runs = cur.u64()?;
        let nd = cur.seq_len(12)?;
        let mut deps = Vec::with_capacity(nd);
        for _ in 0..nd {
            deps.push((get_sym(cur)?, cur.u64()?));
        }
        entries.push((key, rows, runs, deps));
    }
    let nc = cur.seq_len(12)?;
    let mut churn = Vec::with_capacity(nc);
    for _ in 0..nc {
        churn.push((get_sym(cur)?, cur.u64()?));
    }
    let ns = cur.seq_len(12)?;
    let mut sizes = Vec::with_capacity(ns);
    for _ in 0..ns {
        sizes.push((get_sym(cur)?, cur.f64()?));
    }
    Ok(FeedbackState { generation, entries, churn, sizes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_rewrite::FeedbackStore;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("edge", Relation::from_pairs(src, dst, [(1, 2), (2, 3), (3, 1)]));
        db.insert_relation("empty", Relation::new(Schema::new(vec![src])));
        db.bind_constant("Japan", Value::node(7));
        db.dict_mut().fresh("X");
        db
    }

    #[test]
    fn value_and_relation_round_trip() {
        let db = sample_db();
        let r = db.relation_by_name("edge").unwrap();
        let mut out = Vec::new();
        put_relation(&mut out, r);
        let mut cur = Cur::new(&out);
        let back = get_relation(&mut cur).unwrap();
        cur.expect_done().unwrap();
        assert_eq!(back.schema(), r.schema());
        assert_eq!(back.sorted_rows(), r.sorted_rows());
    }

    #[test]
    fn term_round_trip() {
        let mut db = sample_db();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let x = db.dict_mut().fresh("fix");
        let t = Term::var(db.intern("edge"))
            .filter(Pred::Eq(src, Value::node(1)))
            .filter(Pred::EqCol(src, dst))
            .join(Term::cst(Relation::from_pairs(src, dst, [(4, 5)])))
            .union(Term::var(x).rename(src, dst).antiproject(dst))
            .antijoin(Term::var(db.intern("edge")))
            .fix(x);
        let mut out = Vec::new();
        put_term(&mut out, &t);
        let mut cur = Cur::new(&out);
        let back = get_term(&mut cur).unwrap();
        cur.expect_done().unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn database_round_trip_preserves_symbols_and_fresh_counter() {
        let db = sample_db();
        let mut out = Vec::new();
        put_database(&mut out, &db);
        let mut cur = Cur::new(&out);
        let back = get_database(&mut cur).unwrap();
        cur.expect_done().unwrap();
        assert_eq!(back.dict().len(), db.dict().len());
        assert_eq!(back.dict().fresh_counter(), db.dict().fresh_counter());
        for (i, name) in db.dict().names().enumerate() {
            assert_eq!(back.dict().resolve(Sym(i as u32)), name);
        }
        assert_eq!(back.constant("Japan"), Some(Value::node(7)));
        assert_eq!(
            back.relation_by_name("edge").unwrap().sorted_rows(),
            db.relation_by_name("edge").unwrap().sorted_rows()
        );
        assert_eq!(back.relation_count(), db.relation_count());
        // Re-encoding is byte-identical (canonical form).
        let mut out2 = Vec::new();
        put_database(&mut out2, &back);
        assert_eq!(out, out2);
    }

    #[test]
    fn delta_batch_round_trip() {
        let db = sample_db();
        let edge = db.dict().lookup("edge").unwrap();
        let src = db.dict().lookup("src").unwrap();
        let dst = db.dict().lookup("dst").unwrap();
        let mut batch = DeltaBatch::new();
        batch
            .push_insert(&db, edge, vec![Value::node(9), Value::node(10)].into_boxed_slice())
            .unwrap();
        batch
            .push_delete(&db, edge, vec![Value::node(1), Value::node(2)].into_boxed_slice())
            .unwrap();
        let _ = (src, dst);
        let mut out = Vec::new();
        put_delta_batch(&mut out, &batch);
        let mut cur = Cur::new(&out);
        let back = get_delta_batch(&mut cur).unwrap();
        cur.expect_done().unwrap();
        assert_eq!(back.rels.len(), 1);
        let d = &back.rels[&edge];
        assert_eq!(d.insert.sorted_rows(), batch.rels[&edge].insert.sorted_rows());
        assert_eq!(d.delete.sorted_rows(), batch.rels[&edge].delete.sorted_rows());
    }

    #[test]
    fn feedback_round_trip() {
        let mut fb = FeedbackStore::new();
        let db = sample_db();
        let edge = db.dict().lookup("edge").unwrap();
        fb.note_churn(edge, 5, 40);
        let state = fb.export_state();
        let mut out = Vec::new();
        put_feedback(&mut out, &state);
        let mut cur = Cur::new(&out);
        let back = get_feedback(&mut cur).unwrap();
        cur.expect_done().unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn truncated_and_garbage_inputs_fail_typed_not_panic() {
        let db = sample_db();
        let mut out = Vec::new();
        put_database(&mut out, &db);
        for cut in 0..out.len() {
            let mut cur = Cur::new(&out[..cut]);
            assert!(get_database(&mut cur).is_err(), "cut at {cut} decoded");
        }
        // Bad value tag.
        let mut cur = Cur::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(get_value(&mut cur), Err(CodecError::BadTag { .. })));
        // Absurd sequence length cannot allocate.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        let mut cur = Cur::new(&huge);
        assert!(get_database(&mut cur).is_err());
    }
}
