//! Deterministic, env-driven crash points for the chaos harness.
//!
//! `MURA_CRASH_POINT=<site>:<n>` aborts the process (via
//! [`std::process::abort`], simulating `kill -9` — no destructors, no
//! flushing) the n-th time [`crash_point`] is reached with that `site`.
//! Sites the durability layer instruments:
//!
//! * `wal_append_mid` — half the WAL record's bytes written, nothing
//!   synced: the classic torn tail.
//! * `wal_append_done` — record fully written and synced, but not yet
//!   applied: recovery must replay it.
//! * `snapshot_mid` — half the snapshot temp file written: the previous
//!   snapshot must stay authoritative.
//! * `maintain_mid` — delta applied and logged, view maintenance half
//!   done: recovery must converge views to the same state anyway.
//!
//! Unset (the normal case) the counter costs one relaxed atomic load.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

struct CrashSpec {
    site: String,
    nth: u64,
}

static SPEC: OnceLock<Option<CrashSpec>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);

fn spec() -> Option<&'static CrashSpec> {
    SPEC.get_or_init(|| {
        let raw = std::env::var("MURA_CRASH_POINT").ok()?;
        let (site, n) = raw.rsplit_once(':')?;
        let nth: u64 = n.trim().parse().ok()?;
        if site.is_empty() || nth == 0 {
            return None;
        }
        Some(CrashSpec { site: site.to_string(), nth })
    })
    .as_ref()
}

/// True when `MURA_CRASH_POINT` names this site. Callers use this to take
/// a slower instrumented path (e.g. splitting a write in two so the crash
/// leaves genuinely partial bytes) only when a crash is actually armed.
pub fn crash_armed(site: &str) -> bool {
    matches!(spec(), Some(s) if s.site == site)
}

/// Aborts the process on the n-th hit of the armed site; no-op otherwise.
pub fn crash_point(site: &str) {
    if let Some(s) = spec() {
        if s.site == site {
            let hit = HITS.fetch_add(1, Ordering::SeqCst) + 1;
            if hit == s.nth {
                eprintln!("CRASH site={site} hit={hit}");
                std::process::abort();
            }
        }
    }
}
