//! Length-delimited, checksummed write-ahead log.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "MURAWAL1"][u32 format version]        — header
//! [u32 len][len bytes body][u32 crc32(body)]           — record, repeated
//! ```
//!
//! A record body is `[u8 kind][u64 version][payload]`: kind 1 is a delta
//! batch (payload = encoded [`DeltaBatch`]), kind 2 a schema-changing load
//! (payload = `u64 epoch` + the full encoded post-load [`Database`]).
//! Records are appended sequentially and (under [`SyncPolicy::Always`])
//! fsync'd before the mutation is applied, so the only damage a crash can
//! produce is a *torn tail*: a final record with too few bytes or a
//! checksum mismatch. Replay detects it, reports it as a [`WalTail`], and
//! drops it — the mutation it would have carried was never acknowledged.
//! Anything else (bad header, undecodable body behind a valid checksum)
//! is real corruption and surfaces as a typed [`WalError`], never a panic
//! and never a partially applied batch.

use crate::codec::{self, Cur};
use crate::crash::{crash_armed, crash_point};
use mura_core::{crc32, Database};
use mura_ivm::DeltaBatch;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 8] = b"MURAWAL1";
/// On-disk format version.
pub const WAL_FORMAT: u32 = 1;
/// WAL file name inside the data directory.
pub const WAL_FILE: &str = "wal.log";
/// Header size: magic + format version.
const HEADER_LEN: u64 = 12;
const KIND_DELTA: u8 = 1;
const KIND_LOAD: u8 = 2;

/// When to fsync after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync every record before acknowledging (the durable default).
    #[default]
    Always,
    /// Never fsync (benchmarks measuring pure logging overhead; a crash
    /// may lose acknowledged mutations).
    Never,
}

/// WAL failure. Torn tails are NOT errors — they are reported in
/// [`WalReplay::torn`] and the clean prefix is still returned.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file exists, is at least header-sized, and does not start with
    /// the WAL magic / a supported format version.
    BadHeader,
    /// A record passed its checksum but did not decode — software bug or
    /// deliberate tampering, not a crash artifact.
    Corrupt {
        /// Byte offset of the record.
        offset: u64,
        /// What failed to decode.
        what: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::BadHeader => write!(f, "wal header is not MURAWAL1 v{WAL_FORMAT}"),
            WalError::Corrupt { offset, what } => {
                write!(f, "wal corrupt at byte {offset}: {what}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One durably logged mutation.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// An `apply_delta` batch producing `version`.
    Delta {
        /// Version the batch produces when applied.
        version: u64,
        /// The normalized batch.
        batch: DeltaBatch,
    },
    /// A schema-changing load producing `version` and `epoch`; carries the
    /// complete post-load database.
    Load {
        /// Version after the load.
        version: u64,
        /// Schema epoch after the load.
        epoch: u64,
        /// Full database state after the load.
        db: Database,
    },
}

impl WalRecord {
    /// Version this record advances the database to.
    pub fn version(&self) -> u64 {
        match self {
            WalRecord::Delta { version, .. } | WalRecord::Load { version, .. } => *version,
        }
    }
}

/// A torn tail dropped during replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTail {
    /// Byte offset of the first unusable byte.
    pub offset: u64,
    /// Why the tail was dropped.
    pub reason: String,
}

/// Result of replaying a WAL file.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Complete records, in append order.
    pub records: Vec<WalRecord>,
    /// Torn tail, if the file ended mid-record.
    pub torn: Option<WalTail>,
    /// Length of the valid prefix (header + complete records).
    pub valid_len: u64,
}

/// Append handle over the WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    sync: SyncPolicy,
    appends: u64,
    bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the WAL in `dir`, replaying any existing
    /// records. A torn tail left by a crash is truncated away so new
    /// appends extend the valid prefix.
    pub fn open(dir: &Path, sync: SyncPolicy) -> Result<(Wal, WalReplay), WalError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut replay = WalReplay::default();
        if path.exists() {
            let buf = std::fs::read(&path)?;
            replay = replay_bytes(&buf)?;
        }
        // Explicitly not `truncate`: the valid prefix is kept (or trimmed
        // via `set_len` below), never discarded wholesale.
        let mut file =
            OpenOptions::new().create(true).truncate(false).read(true).write(true).open(&path)?;
        if replay.valid_len < HEADER_LEN {
            // Fresh file, or a crash mid-`open` left a partial header (no
            // record can follow an unsynced header): start over.
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            file.write_all(&WAL_FORMAT.to_le_bytes())?;
            file.sync_all()?;
            replay.valid_len = HEADER_LEN;
        } else {
            file.set_len(replay.valid_len)?;
            file.seek(SeekFrom::End(0))?;
        }
        let wal =
            Wal { file, path, sync, appends: replay.records.len() as u64, bytes: replay.valid_len };
        Ok((wal, replay))
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended (including replayed ones found at open).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Bytes in the valid prefix (header + records).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Logs a delta batch that will produce `version`. Returns the bytes
    /// written. Must be called (and synced) *before* the batch is applied.
    pub fn append_delta(&mut self, version: u64, batch: &DeltaBatch) -> Result<u64, WalError> {
        let mut body = vec![KIND_DELTA];
        codec::put_u64(&mut body, version);
        codec::put_delta_batch(&mut body, batch);
        self.append_record(body)
    }

    /// Logs a schema-changing load: the complete post-load database plus
    /// the version and epoch it produces.
    pub fn append_load(
        &mut self,
        version: u64,
        epoch: u64,
        db: &Database,
    ) -> Result<u64, WalError> {
        let mut body = vec![KIND_LOAD];
        codec::put_u64(&mut body, version);
        codec::put_u64(&mut body, epoch);
        codec::put_database(&mut body, db);
        self.append_record(body)
    }

    fn append_record(&mut self, body: Vec<u8>) -> Result<u64, WalError> {
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let crc = crc32(&body);
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());
        if crash_armed("wal_append_mid") {
            // Write (and sync!) a genuine partial record before aborting,
            // so replay faces a real torn tail, not an empty file.
            let half = frame.len() / 2;
            self.file.write_all(&frame[..half])?;
            self.file.sync_all()?;
            crash_point("wal_append_mid");
            self.file.write_all(&frame[half..])?;
        } else {
            self.file.write_all(&frame)?;
        }
        if self.sync == SyncPolicy::Always {
            self.file.sync_all()?;
        }
        crash_point("wal_append_done");
        self.appends += 1;
        self.bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Drops the most recently appended record(s) by truncating back to a
    /// byte/append mark taken before the append — used when the in-memory
    /// apply of a just-logged batch fails, so the log never replays a
    /// mutation the server rejected.
    pub fn rollback_to(&mut self, bytes: u64, appends: u64) -> Result<(), WalError> {
        self.file.set_len(bytes)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.bytes = bytes;
        self.appends = appends;
        Ok(())
    }

    /// Truncates the log back to a bare header — called after a successful
    /// snapshot has made the logged records redundant. A crash mid-reset
    /// leaves an empty or partial-header file, which [`Wal::open`] treats
    /// as empty: the snapshot already holds everything.
    pub fn reset(&mut self) -> Result<(), WalError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        self.file.write_all(&WAL_FORMAT.to_le_bytes())?;
        self.file.sync_all()?;
        self.bytes = HEADER_LEN;
        Ok(())
    }
}

/// Replays a WAL file from disk without opening an append handle.
pub fn replay_file(path: &Path) -> Result<WalReplay, WalError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    replay_bytes(&buf)
}

/// Replays WAL bytes: validates the header, decodes complete records, and
/// reports (does not error on) a torn tail.
pub fn replay_bytes(buf: &[u8]) -> Result<WalReplay, WalError> {
    let mut out = WalReplay::default();
    if buf.is_empty() {
        return Ok(out);
    }
    if buf.len() < HEADER_LEN as usize {
        // Crash during `open` before the header sync: provably no records.
        out.torn = Some(WalTail { offset: 0, reason: "partial header".into() });
        return Ok(out);
    }
    if &buf[..8] != WAL_MAGIC || buf[8..12] != WAL_FORMAT.to_le_bytes() {
        return Err(WalError::BadHeader);
    }
    let mut pos = HEADER_LEN as usize;
    loop {
        let rest = buf.len() - pos;
        if rest == 0 {
            break;
        }
        if rest < 4 {
            out.torn = Some(WalTail { offset: pos as u64, reason: "partial length prefix".into() });
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let need = 4 + len + 4;
        if rest < need {
            out.torn = Some(WalTail {
                offset: pos as u64,
                reason: format!("partial record ({rest} of {need} bytes)"),
            });
            break;
        }
        let body = &buf[pos + 4..pos + 4 + len];
        let stored = u32::from_le_bytes(buf[pos + 4 + len..pos + need].try_into().unwrap());
        if crc32(body) != stored {
            out.torn =
                Some(WalTail { offset: pos as u64, reason: "record checksum mismatch".into() });
            break;
        }
        out.records.push(decode_record(body, pos as u64)?);
        pos += need;
    }
    out.valid_len = pos as u64;
    Ok(out)
}

fn decode_record(body: &[u8], offset: u64) -> Result<WalRecord, WalError> {
    let corrupt = |e: codec::CodecError| WalError::Corrupt { offset, what: e.to_string() };
    let mut cur = Cur::new(body);
    let kind = cur.u8().map_err(corrupt)?;
    let record = match kind {
        KIND_DELTA => {
            let version = cur.u64().map_err(corrupt)?;
            let batch = codec::get_delta_batch(&mut cur).map_err(corrupt)?;
            WalRecord::Delta { version, batch }
        }
        KIND_LOAD => {
            let version = cur.u64().map_err(corrupt)?;
            let epoch = cur.u64().map_err(corrupt)?;
            let db = codec::get_database(&mut cur).map_err(corrupt)?;
            WalRecord::Load { version, epoch, db }
        }
        k => {
            return Err(WalError::Corrupt { offset, what: format!("unknown record kind {k}") });
        }
    };
    cur.expect_done().map_err(corrupt)?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{Relation, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mura-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("edge", Relation::from_pairs(src, dst, [(1, 2), (2, 3)]));
        db
    }

    fn sample_batch(db: &Database, a: u64, b: u64) -> DeltaBatch {
        let edge = db.dict().lookup("edge").unwrap();
        let mut batch = DeltaBatch::new();
        batch
            .push_insert(db, edge, vec![Value::node(a), Value::node(b)].into_boxed_slice())
            .unwrap();
        batch
    }

    fn rows_of(batch: &DeltaBatch, db: &Database) -> Vec<mura_core::Row> {
        let edge = db.dict().lookup("edge").unwrap();
        batch.rels[&edge].insert.sorted_rows()
    }

    #[test]
    fn append_replay_round_trip_and_reopen() {
        let dir = tmpdir("rt");
        let db = sample_db();
        {
            let (mut wal, replay) = Wal::open(&dir, SyncPolicy::Always).unwrap();
            assert!(replay.records.is_empty());
            wal.append_delta(1, &sample_batch(&db, 5, 6)).unwrap();
            wal.append_load(2, 1, &db).unwrap();
            wal.append_delta(3, &sample_batch(&db, 7, 8)).unwrap();
            assert_eq!(wal.appends(), 3);
        }
        let (mut wal, replay) = Wal::open(&dir, SyncPolicy::Always).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.len(), 3);
        assert_eq!(
            replay.records.iter().map(WalRecord::version).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        match &replay.records[0] {
            WalRecord::Delta { batch, .. } => {
                assert_eq!(rows_of(batch, &db), rows_of(&sample_batch(&db, 5, 6), &db));
            }
            other => panic!("expected delta, got {other:?}"),
        }
        match &replay.records[1] {
            WalRecord::Load { epoch, db: loaded, .. } => {
                assert_eq!(*epoch, 1);
                assert_eq!(loaded.total_rows(), db.total_rows());
            }
            other => panic!("expected load, got {other:?}"),
        }
        // Appends after reopen extend the log.
        wal.append_delta(4, &sample_batch(&db, 9, 10)).unwrap();
        let replay = replay_file(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(replay.records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_truncates_to_header() {
        let dir = tmpdir("reset");
        let db = sample_db();
        let (mut wal, _) = Wal::open(&dir, SyncPolicy::Never).unwrap();
        wal.append_delta(1, &sample_batch(&db, 5, 6)).unwrap();
        wal.reset().unwrap();
        wal.append_delta(2, &sample_batch(&db, 7, 8)).unwrap();
        let replay = replay_file(&dir.join(WAL_FILE)).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].version(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_a_typed_error() {
        assert!(matches!(replay_bytes(b"NOTAWAL!\x01\x00\x00\x00"), Err(WalError::BadHeader)));
        let wrong_ver = [&WAL_MAGIC[..], &99u32.to_le_bytes()[..]].concat();
        assert!(matches!(replay_bytes(&wrong_ver), Err(WalError::BadHeader)));
    }

    /// Satellite: truncating a valid WAL at EVERY byte offset either
    /// replays a clean prefix (with the tail reported) or fails with a
    /// typed error — never panics, never yields a partial record.
    #[test]
    fn truncation_at_every_offset_is_safe() {
        let dir = tmpdir("trunc");
        let db = sample_db();
        let mut boundaries = vec![HEADER_LEN];
        {
            let (mut wal, _) = Wal::open(&dir, SyncPolicy::Never).unwrap();
            for v in 1..=4u64 {
                wal.append_delta(v, &sample_batch(&db, v, v + 1)).unwrap();
                boundaries.push(wal.bytes());
            }
            let mut big = DeltaBatch::new();
            let edge = db.dict().lookup("edge").unwrap();
            for i in 0..50u64 {
                big.push_insert(
                    &db,
                    edge,
                    vec![Value::node(100 + i), Value::node(200 + i)].into_boxed_slice(),
                )
                .unwrap();
            }
            wal.append_load(5, 1, &db).unwrap();
            boundaries.push(wal.bytes());
            wal.append_delta(6, &big).unwrap();
            boundaries.push(wal.bytes());
        }
        let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(*boundaries.last().unwrap(), full.len() as u64);
        let reference = replay_bytes(&full).unwrap();
        assert_eq!(reference.records.len(), 6);
        for cut in 0..=full.len() {
            let replay = match replay_bytes(&full[..cut]) {
                Ok(r) => r,
                // Truncation inside the header region may surface as a
                // typed BadHeader; that is an allowed outcome.
                Err(WalError::BadHeader) => {
                    assert!(cut < HEADER_LEN as usize + 1, "BadHeader at cut {cut}");
                    continue;
                }
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            };
            // Number of complete records the prefix can possibly hold.
            let expect = boundaries.iter().filter(|&&b| b <= cut as u64).count().saturating_sub(1);
            assert_eq!(replay.records.len(), expect, "cut at {cut}");
            for (got, want) in replay.records.iter().zip(&reference.records) {
                assert_eq!(got.version(), want.version(), "cut at {cut}");
            }
            let clean = boundaries.contains(&(cut as u64)) || cut == 0;
            assert_eq!(replay.torn.is_none(), clean, "cut at {cut}: torn={:?}", replay.torn);
            assert!(replay.valid_len <= cut as u64);
        }
        // A torn tail found at open is truncated away and appending resumes.
        let cut = (*boundaries.last().unwrap() - 3) as usize;
        std::fs::write(dir.join(WAL_FILE), &full[..cut]).unwrap();
        let (mut wal, replay) = Wal::open(&dir, SyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 5);
        assert!(replay.torn.is_some());
        wal.append_delta(7, &sample_batch(&db, 20, 21)).unwrap();
        let replay = replay_file(&dir.join(WAL_FILE)).unwrap();
        assert!(replay.torn.is_none());
        assert_eq!(replay.records.last().unwrap().version(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_is_caught_by_record_checksum() {
        let dir = tmpdir("flip");
        let db = sample_db();
        {
            let (mut wal, _) = Wal::open(&dir, SyncPolicy::Never).unwrap();
            wal.append_delta(1, &sample_batch(&db, 5, 6)).unwrap();
            wal.append_delta(2, &sample_batch(&db, 7, 8)).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Flip a byte inside the LAST record's body; replay keeps record 1
        // and reports the damaged tail.
        let mut bent = full.clone();
        let idx = bent.len() - 6;
        bent[idx] ^= 0x10;
        let replay = replay_bytes(&bent).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.torn.as_ref().unwrap().reason, "record checksum mismatch");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
