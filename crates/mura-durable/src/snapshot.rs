//! Atomic point-in-time snapshots of coordinator state.
//!
//! File layout: `[8-byte magic "MURASNP1"][u32 format version][payload]
//! [u32 crc32(payload)]`, named `snapshot-{version:020}.snap` so
//! lexicographic order is version order. A snapshot is written to a
//! `.tmp` file, fsync'd, and `rename`d into place — a crash mid-write
//! leaves at worst a stray temp file and the previous snapshot stays
//! authoritative. [`load_newest_snapshot`] walks candidates newest-first
//! and skips any that fail validation, so a damaged file degrades to the
//! older snapshot plus a longer WAL replay, never to wrong answers.

use crate::codec::{self, Cur};
use crate::crash::{crash_armed, crash_point};
use mura_core::{crc32, Database, Relation, Term};
use mura_rewrite::FeedbackState;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot file magic.
pub const SNAP_MAGIC: &[u8; 8] = b"MURASNP1";
/// On-disk format version.
pub const SNAP_FORMAT: u32 = 1;

/// Snapshot failure. Unlike WAL torn tails, there is no partial-snapshot
/// recovery: a file either validates end-to-end or is skipped.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A snapshot file failed validation (bad magic, checksum, decode).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed.
        what: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
            SnapshotError::Corrupt { path, what } => {
                write!(f, "snapshot {} corrupt: {what}", path.display())
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One cached materialized view: its plan, result relation, and the
/// captured per-fixpoint totals incremental maintenance needs.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    /// The optimized plan the view was computed from (also its cache key
    /// via `term_key`).
    pub plan: Term,
    /// The materialized result.
    pub relation: Relation,
    /// Captured fixpoint totals, keyed by fixpoint subterm key.
    pub fix_totals: Vec<(u64, Relation)>,
}

/// Complete durable coordinator state at one version.
#[derive(Debug, Clone)]
pub struct SnapshotState {
    /// Database version the snapshot captures.
    pub version: u64,
    /// Schema epoch at that version.
    pub epoch: u64,
    /// Full database: dictionary, constants, relations.
    pub db: Database,
    /// Cached materialized views with their fixpoint totals.
    pub views: Vec<ViewSnapshot>,
    /// Cardinality-feedback store state.
    pub feedback: FeedbackState,
    /// Cached query plans: `(query text, optimized plan, feedback
    /// generation the plan was costed under)`. Plans must be carried, not
    /// re-derived: planning costs against *live* relation cardinalities,
    /// so a post-restore replan of a query planned at an earlier version
    /// could pick a different (equally correct) plan — which would orphan
    /// the restored view cached under the original plan's key.
    pub plans: Vec<(String, Term, u64)>,
}

fn encode_state(state: &SnapshotState) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u64(&mut out, state.version);
    codec::put_u64(&mut out, state.epoch);
    codec::put_database(&mut out, &state.db);
    codec::put_u32(&mut out, state.views.len() as u32);
    for v in &state.views {
        codec::put_term(&mut out, &v.plan);
        codec::put_relation(&mut out, &v.relation);
        codec::put_u32(&mut out, v.fix_totals.len() as u32);
        for (k, r) in &v.fix_totals {
            codec::put_u64(&mut out, *k);
            codec::put_relation(&mut out, r);
        }
    }
    codec::put_feedback(&mut out, &state.feedback);
    codec::put_u32(&mut out, state.plans.len() as u32);
    for (query, plan, feedback_gen) in &state.plans {
        codec::put_string(&mut out, query);
        codec::put_term(&mut out, plan);
        codec::put_u64(&mut out, *feedback_gen);
    }
    out
}

fn decode_state(payload: &[u8]) -> Result<SnapshotState, codec::CodecError> {
    let mut cur = Cur::new(payload);
    let version = cur.u64()?;
    let epoch = cur.u64()?;
    let db = codec::get_database(&mut cur)?;
    let n_views = cur.seq_len(1)?;
    let mut views = Vec::with_capacity(n_views);
    for _ in 0..n_views {
        let plan = codec::get_term(&mut cur)?;
        let relation = codec::get_relation(&mut cur)?;
        let nt = cur.seq_len(8)?;
        let mut fix_totals = Vec::with_capacity(nt);
        for _ in 0..nt {
            let k = cur.u64()?;
            fix_totals.push((k, codec::get_relation(&mut cur)?));
        }
        views.push(ViewSnapshot { plan, relation, fix_totals });
    }
    let feedback = codec::get_feedback(&mut cur)?;
    let n_plans = cur.seq_len(13)?;
    let mut plans = Vec::with_capacity(n_plans);
    for _ in 0..n_plans {
        let query = cur.string()?;
        let plan = codec::get_term(&mut cur)?;
        let feedback_gen = cur.u64()?;
        plans.push((query, plan, feedback_gen));
    }
    cur.expect_done()?;
    Ok(SnapshotState { version, epoch, db, views, feedback, plans })
}

/// Name of the snapshot file for `version`.
pub fn snapshot_file_name(version: u64) -> String {
    format!("snapshot-{version:020}.snap")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Writes `state` atomically into `dir`, returning the final path.
/// Temp-file-then-rename: readers never observe a partial snapshot.
pub fn write_snapshot(dir: &Path, state: &SnapshotState) -> Result<PathBuf, SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let payload = encode_state(state);
    let crc = crc32(&payload);
    let final_path = dir.join(snapshot_file_name(state.version));
    let tmp_path = final_path.with_extension("tmp");
    {
        let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp_path)?;
        f.write_all(SNAP_MAGIC)?;
        f.write_all(&SNAP_FORMAT.to_le_bytes())?;
        if crash_armed("snapshot_mid") {
            // Leave a genuinely half-written temp file behind.
            let half = payload.len() / 2;
            f.write_all(&payload[..half])?;
            f.sync_all()?;
            crash_point("snapshot_mid");
            f.write_all(&payload[half..])?;
        } else {
            f.write_all(&payload)?;
        }
        f.write_all(&crc.to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    // fsync the directory so the rename itself is durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

fn read_snapshot(path: &Path) -> Result<SnapshotState, SnapshotError> {
    let buf = std::fs::read(path)?;
    let corrupt = |what: String| SnapshotError::Corrupt { path: path.to_path_buf(), what };
    if buf.len() < 16 {
        return Err(corrupt(format!("{} bytes is too short", buf.len())));
    }
    if &buf[..8] != SNAP_MAGIC || buf[8..12] != SNAP_FORMAT.to_le_bytes() {
        return Err(corrupt("bad magic or format version".into()));
    }
    let payload = &buf[12..buf.len() - 4];
    let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    let got = crc32(payload);
    if got != stored {
        return Err(corrupt(format!("checksum mismatch: stored {stored:08x}, got {got:08x}")));
    }
    decode_state(payload).map_err(|e| corrupt(e.to_string()))
}

/// Loads the newest snapshot in `dir` that validates end-to-end, skipping
/// damaged candidates. Returns the state plus the paths of files that were
/// skipped as corrupt (for logging).
pub fn load_newest_snapshot(
    dir: &Path,
) -> Result<(Option<SnapshotState>, Vec<PathBuf>), SnapshotError> {
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, Vec::new())),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(v) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            candidates.push((v, entry.path()));
        }
    }
    candidates.sort_unstable_by_key(|(v, _)| std::cmp::Reverse(*v));
    let mut skipped = Vec::new();
    for (_, path) in candidates {
        match read_snapshot(&path) {
            Ok(state) => return Ok((Some(state), skipped)),
            Err(SnapshotError::Corrupt { path, .. }) => skipped.push(path),
            Err(e) => return Err(e),
        }
    }
    Ok((None, skipped))
}

/// Deletes snapshot files older than `keep_version` and stray `.tmp`
/// files, returning how many were removed. Called after a successful
/// [`write_snapshot`] so exactly one snapshot remains.
pub fn prune_older_snapshots(dir: &Path, keep_version: u64) -> std::io::Result<usize> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = match parse_snapshot_name(name) {
            Some(v) => v < keep_version,
            None => name.starts_with("snapshot-") && name.ends_with(".tmp"),
        };
        if stale && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Value;
    use mura_rewrite::FeedbackStore;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mura-snap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_state(version: u64) -> SnapshotState {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let edge = db.insert_relation("edge", Relation::from_pairs(src, dst, [(1, 2), (2, 3)]));
        db.bind_constant("Japan", Value::node(7));
        let fix = db.dict_mut().fresh("fix");
        let plan = Term::var(edge).union(Term::var(fix)).fix(fix);
        let rel = Relation::from_pairs(src, dst, [(1, 2), (1, 3), (2, 3)]);
        let totals = vec![(42u64, rel.clone())];
        let mut fb = FeedbackStore::new();
        fb.note_churn(edge, 4, 20);
        SnapshotState {
            version,
            epoch: 1,
            db,
            views: vec![ViewSnapshot { plan: plan.clone(), relation: rel, fix_totals: totals }],
            feedback: fb.export_state(),
            plans: vec![("?x, ?y <- ?x edge+ ?y".to_string(), plan, 3)],
        }
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmpdir("rt");
        let state = sample_state(17);
        let path = write_snapshot(&dir, &state).unwrap();
        assert_eq!(path.file_name().unwrap().to_str().unwrap(), snapshot_file_name(17));
        let (loaded, skipped) = load_newest_snapshot(&dir).unwrap();
        assert!(skipped.is_empty());
        let loaded = loaded.unwrap();
        assert_eq!(loaded.version, 17);
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.db.total_rows(), state.db.total_rows());
        assert_eq!(loaded.db.dict().fresh_counter(), state.db.dict().fresh_counter());
        assert_eq!(loaded.views.len(), 1);
        assert_eq!(loaded.views[0].plan, state.views[0].plan);
        assert_eq!(loaded.views[0].relation.sorted_rows(), state.views[0].relation.sorted_rows());
        assert_eq!(loaded.views[0].fix_totals[0].0, 42);
        assert_eq!(loaded.feedback, state.feedback);
        assert_eq!(loaded.plans.len(), 1);
        assert_eq!(loaded.plans[0].0, state.plans[0].0);
        assert_eq!(loaded.plans[0].1, state.plans[0].1);
        assert_eq!(loaded.plans[0].2, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_wins_and_corrupt_falls_back() {
        let dir = tmpdir("fallback");
        write_snapshot(&dir, &sample_state(3)).unwrap();
        let newest = write_snapshot(&dir, &sample_state(9)).unwrap();
        let (loaded, _) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(loaded.unwrap().version, 9);
        // Damage the newest: loader falls back to version 3.
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let (loaded, skipped) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(loaded.unwrap().version, 3);
        assert_eq!(skipped, vec![newest.clone()]);
        // Truncated file is also skipped, not fatal.
        std::fs::write(&newest, &bytes[..7]).unwrap();
        let (loaded, _) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(loaded.unwrap().version, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_older_and_stray_tmp() {
        let dir = tmpdir("prune");
        write_snapshot(&dir, &sample_state(1)).unwrap();
        write_snapshot(&dir, &sample_state(2)).unwrap();
        write_snapshot(&dir, &sample_state(5)).unwrap();
        std::fs::write(dir.join("snapshot-00000000000000000004.tmp"), b"half").unwrap();
        let removed = prune_older_snapshots(&dir, 5).unwrap();
        assert_eq!(removed, 3);
        let (loaded, _) = load_newest_snapshot(&dir).unwrap();
        assert_eq!(loaded.unwrap().version, 5);
        let left: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(left.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_and_missing_dir_load_as_none() {
        let dir = tmpdir("empty");
        let (loaded, _) = load_newest_snapshot(&dir).unwrap();
        assert!(loaded.is_none());
        let (loaded, _) = load_newest_snapshot(&dir.join("missing")).unwrap();
        assert!(loaded.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
