//! The two Datalog baseline engines.
//!
//! Both run the same pipeline — UCRPQ → left-to-right Datalog program →
//! μ-RA term → distributed execution on the `mura-dist` substrate — but
//! with the capability envelopes the paper ascribes to each system (§VI):
//!
//! * **BigDatalog**: magic-sets-equivalent logical optimization
//!   (selections/projections pushed in the written direction only; no
//!   fixpoint merging, no reversal) and GPS-style decomposable physical
//!   plans — when the recursion preserves its partitioning argument (our
//!   stable column), the fixpoint runs as parallel local SetRDD loops,
//!   exactly the paper's `P_plw`-equivalent that Dist-μ-RA borrows back.
//! * **Myria**: incremental (semi-naive) evaluation, but no logical
//!   optimization of the recursive plan and no decomposable execution:
//!   every iteration synchronizes through the driver (`P_gld`-style).

use crate::compile::compile_program;
use crate::translate::ucrpq_to_program;
use mura_core::analysis::TypeEnv;
use mura_core::{Database, Result, Term};
use mura_dist::exec::{DistEvaluator, ExecConfig, FixpointPlan};
use mura_dist::QueryOutput;
use mura_rewrite::rules::{normalize_with, NormalizeOpts};
use mura_ucrpq::parse_ucrpq;
use std::time::Instant;

/// Which baseline system to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatalogStyle {
    /// BigDatalog (SIGMOD'16): Datalog on Spark with GPS decomposition.
    BigDatalog,
    /// Myria (VLDB'15): shared-nothing Datalog, synchronous iterations.
    Myria,
}

/// A distributed Datalog engine baseline.
pub struct DatalogEngine {
    db: Database,
    style: DatalogStyle,
    config: ExecConfig,
}

impl DatalogEngine {
    /// New engine over a database.
    pub fn new(db: Database, style: DatalogStyle) -> Self {
        let plan = match style {
            DatalogStyle::BigDatalog => FixpointPlan::Auto, // GPS decomposition
            DatalogStyle::Myria => FixpointPlan::ForceGld,
        };
        let config = ExecConfig { plan, ..Default::default() };
        DatalogEngine { db, style, config }
    }

    /// Overrides the execution configuration (keeps the style's plan
    /// policy unless explicitly changed by the caller).
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// The database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The emulated system.
    pub fn style(&self) -> DatalogStyle {
        self.style
    }

    /// Runs a UCRPQ through the Datalog pipeline.
    pub fn run_ucrpq(&mut self, query: &str) -> Result<QueryOutput> {
        let q = parse_ucrpq(query)?;
        let program = ucrpq_to_program(&q, &self.db)?;
        self.run_program_term(&program)
    }

    /// Runs an explicit Datalog program.
    pub fn run_program_term(&mut self, program: &crate::ast::Program) -> Result<QueryOutput> {
        let start = Instant::now();
        let term = compile_program(program, &mut self.db)?;
        let plan = self.logical_optimize(&term);
        let planning = start.elapsed();
        let exec_start = Instant::now();
        let mut ev = DistEvaluator::new(&self.db, self.config.clone());
        let before = ev.cluster().metrics().snapshot();
        let relation = ev.eval_collect(&plan)?;
        let comm = ev.cluster().metrics().snapshot().since(&before);
        Ok(QueryOutput {
            relation,
            planning,
            execution: exec_start.elapsed(),
            stats: ev.stats().clone(),
            comm,
            plan,
        })
    }

    /// The style's logical optimization envelope.
    fn logical_optimize(&self, term: &Term) -> Term {
        let opts = match self.style {
            DatalogStyle::BigDatalog => NormalizeOpts::magic_sets(),
            DatalogStyle::Myria => NormalizeOpts::none_into_fix(),
        };
        let mut env = TypeEnv::from_db(&self.db);
        normalize_with(term, &mut env, &opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{eval, Relation, Term, Value};
    use mura_datagen::SplitMix64;
    use mura_datagen::{erdos_renyi, with_random_labels};

    fn db() -> Database {
        let mut rng = SplitMix64::seed_from_u64(21);
        let g = erdos_renyi(150, 0.015, 9);
        let lg = with_random_labels(&g, 2, &mut rng);
        let mut db = lg.to_database();
        db.bind_constant("C", Value::node(5));
        db
    }

    fn reference(q: &str, db: &Database) -> Relation {
        let mut d = db.clone();
        let parsed = mura_ucrpq::parse_ucrpq(q).unwrap();
        let t = mura_ucrpq::to_mura(&parsed, &mut d).unwrap();
        eval(&t, &d).unwrap()
    }

    #[test]
    fn bigdatalog_answers_match() {
        let d = db();
        let mut e = DatalogEngine::new(d.clone(), DatalogStyle::BigDatalog);
        for q in
            ["?x, ?y <- ?x a1+ ?y", "?x <- ?x a1+ C", "?y <- C a1+ ?y", "?x, ?y <- ?x a1+/a2+ ?y"]
        {
            let out = e.run_ucrpq(q).unwrap();
            let expected = reference(q, &d);
            assert_eq!(out.relation.len(), expected.len(), "query {q}");
        }
    }

    #[test]
    fn myria_answers_match() {
        let d = db();
        let mut e = DatalogEngine::new(d.clone(), DatalogStyle::Myria);
        let q = "?x, ?y <- ?x a1+ ?y";
        let out = e.run_ucrpq(q).unwrap();
        assert_eq!(out.relation.len(), reference(q, &d).len());
    }

    #[test]
    fn bigdatalog_uses_decomposable_plan_on_tc() {
        let mut e = DatalogEngine::new(db(), DatalogStyle::BigDatalog);
        let out = e.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        assert!(out.stats.plw_fixpoints >= 1, "GPS decomposition expected");
    }

    #[test]
    fn myria_never_decomposes() {
        let mut e = DatalogEngine::new(db(), DatalogStyle::Myria);
        let out = e.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap();
        assert_eq!(out.stats.plw_fixpoints, 0);
        assert!(out.stats.gld_fixpoints >= 1);
    }

    #[test]
    fn bigdatalog_pushes_left_constant_but_not_right() {
        let mut e = DatalogEngine::new(db(), DatalogStyle::BigDatalog);
        // Left constant: seed specialization (magic sets) — the plan's
        // fixpoint seed carries the filter, so no filter sits above a Fix.
        let out_left = e.run_ucrpq("?y <- C a1+ ?y").unwrap();
        fn filter_over_fix(t: &Term) -> bool {
            match t {
                Term::Filter(_, inner) => {
                    matches!(**inner, Term::Fix(_, _)) || filter_over_fix(inner)
                }
                _ => t.children().iter().any(|c| filter_over_fix(c)),
            }
        }
        assert!(!filter_over_fix(&out_left.plan), "left constant must be pushed");
        // Right constant: the closure is computed in full, the filter stays
        // outside (no fixpoint reversal in Datalog engines).
        let out_right = e.run_ucrpq("?x <- ?x a1+ C").unwrap();
        assert!(filter_over_fix(&out_right.plan), "right constant must NOT be pushed");
    }

    #[test]
    fn bigdatalog_never_merges_closures() {
        let mut e = DatalogEngine::new(db(), DatalogStyle::BigDatalog);
        let out = e.run_ucrpq("?x, ?y <- ?x a1+/a2+ ?y").unwrap();
        // Two separate fixpoints joined — no merged two-branch fixpoint.
        assert_eq!(out.plan.fixpoint_count(), 2);
    }
}
