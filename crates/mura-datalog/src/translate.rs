//! UCRPQ → Datalog translation, **written left to right**.
//!
//! This mirrors how the paper feeds regular path queries to BigDatalog:
//! a closure `p+` becomes
//!
//! ```text
//! plusK(X, Y) :- p(X, Y).
//! plusK(X, Y) :- plusK(X, Z), p(Z, Y).
//! ```
//!
//! Constants at the *left* endpoint become bound first arguments that the
//! magic-sets-equivalent optimization can exploit (specializing the seed);
//! constants at the *right* endpoint end up as plain filters applied after
//! the full closure is computed — the asymmetry the paper attributes to
//! Datalog engines that cannot reverse fixpoints (§VI).

use crate::ast::{DlAtom, DlTerm, Program, Rule};
use mura_core::{Database, MuraError, Result, Value};
use mura_ucrpq::translate::normalize;
use mura_ucrpq::{Endpoint, Path, Ucrpq};

struct Ctx<'a> {
    rules: Vec<Rule>,
    fresh_pred: u32,
    fresh_var: u32,
    db: &'a Database,
}

impl Ctx<'_> {
    fn fresh_pred(&mut self, hint: &str) -> String {
        self.fresh_pred += 1;
        format!("{hint}_{}", self.fresh_pred)
    }

    fn fresh_var(&mut self) -> String {
        self.fresh_var += 1;
        // '$' cannot occur in parsed query variables, so no collisions.
        format!("mid${}", self.fresh_var)
    }

    /// Emits body atoms traversing `path` from variable `from` to `to`.
    fn path_atoms(&mut self, path: &Path, from: &str, to: &str) -> Result<Vec<DlAtom>> {
        Ok(match path {
            Path::Label(l) => {
                if self.db.relation_by_name(l).is_none() {
                    return Err(MuraError::Frontend(format!("unknown edge label '{l}'")));
                }
                vec![DlAtom::new(l, &[from, to])]
            }
            Path::Inverse(inner) => {
                let Path::Label(l) = &**inner else {
                    return Err(MuraError::Frontend(
                        "inverse of a compound path must be normalized away".into(),
                    ));
                };
                if self.db.relation_by_name(l).is_none() {
                    return Err(MuraError::Frontend(format!("unknown edge label '{l}'")));
                }
                vec![DlAtom::new(l, &[to, from])]
            }
            Path::Concat(a, b) => {
                let mid = self.fresh_var();
                let mut atoms = self.path_atoms(a, from, &mid)?;
                atoms.extend(self.path_atoms(b, &mid, to)?);
                atoms
            }
            Path::Alt(_, _) => {
                // A fresh predicate with one rule per branch.
                let pred = self.fresh_pred("alt");
                for branch in mura_ucrpq::translate::alt_list(path) {
                    let body = self.path_atoms(branch, "x", "y")?;
                    let head = DlAtom::new(&pred, &["x", "y"]);
                    self.rules.push(Rule { head, body });
                }
                vec![DlAtom::new(&pred, &[from, to])]
            }
            Path::Plus(inner) => {
                let pred = self.fresh_pred("plus");
                // Base: plus(X,Y) :- inner(X,Y).
                let base_body = self.path_atoms(inner, "x", "y")?;
                self.rules.push(Rule { head: DlAtom::new(&pred, &["x", "y"]), body: base_body });
                // Left-to-right recursion: plus(X,Y) :- plus(X,Z), inner(Z,Y).
                let mut rec_body = vec![DlAtom::new(&pred, &["x", "z"])];
                rec_body.extend(self.path_atoms(inner, "z", "y")?);
                self.rules.push(Rule { head: DlAtom::new(&pred, &["x", "y"]), body: rec_body });
                vec![DlAtom::new(&pred, &[from, to])]
            }
            Path::Star(_) | Path::Optional(_) => {
                return Err(MuraError::Frontend("'*' must be normalized away".into()))
            }
        })
    }
}

fn resolve_const(name: &str, db: &Database) -> Result<Value> {
    if let Some(v) = db.constant(name) {
        return Ok(v);
    }
    name.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| MuraError::Frontend(format!("unknown constant '{name}'")))
}

/// Translates a UCRPQ into a left-to-right Datalog program whose goal
/// predicate is `goal/|head|`.
pub fn ucrpq_to_program(q: &Ucrpq, db: &Database) -> Result<Program> {
    let mut ctx = Ctx { rules: Vec::new(), fresh_pred: 0, fresh_var: 0, db };
    let head_vars: Vec<&str> = q.head().iter().map(|s| s.as_str()).collect();
    for branch in &q.branches {
        let mut body = Vec::new();
        for atom in &branch.atoms {
            let (core, eps) = normalize(&atom.path);
            if eps {
                return Err(MuraError::Frontend(format!(
                    "path '{}' can match the empty word",
                    atom.path
                )));
            }
            let core = core.ok_or_else(|| {
                MuraError::Frontend(format!("path '{}' denotes only the empty word", atom.path))
            })?;
            // Endpoints: variables stay variables; constants become fresh
            // variables bound by equality — inlined directly as constant
            // arguments on the produced atoms.
            let (from, from_const) = match &atom.left {
                Endpoint::Var(v) => (v.clone(), None),
                Endpoint::Const(c) => (ctx.fresh_var(), Some(resolve_const(c, db)?)),
            };
            let (to, to_const) = match &atom.right {
                Endpoint::Var(v) => (v.clone(), None),
                Endpoint::Const(c) => (ctx.fresh_var(), Some(resolve_const(c, db)?)),
            };
            let mut atoms = ctx.path_atoms(&core, &from, &to)?;
            // Substitute constant endpoints into the atoms.
            for a in &mut atoms {
                for t in &mut a.args {
                    let DlTerm::Var(v) = t else { continue };
                    if let Some(c) = from_const.filter(|_| *v == from) {
                        *t = DlTerm::Cst(c);
                    } else if let Some(c) = to_const.filter(|_| *v == to) {
                        *t = DlTerm::Cst(c);
                    }
                }
            }
            body.extend(atoms);
        }
        ctx.rules.push(Rule {
            head: DlAtom {
                pred: "goal".to_string(),
                args: head_vars.iter().map(|v| DlTerm::Var(v.to_string())).collect(),
            },
            body,
        });
    }
    let program = Program {
        rules: ctx.rules,
        query: DlAtom {
            pred: "goal".to_string(),
            args: head_vars.iter().map(|v| DlTerm::Var(v.to_string())).collect(),
        },
    };
    program.validate()?;
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::Relation;
    use mura_ucrpq::parse_ucrpq;

    fn db() -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
        db.insert_relation("b", Relation::from_pairs(src, dst, [(2, 3)]));
        db.bind_constant("C", Value::node(3));
        db
    }

    #[test]
    fn closure_becomes_left_to_right_rules() {
        let q = parse_ucrpq("?x, ?y <- ?x a+ ?y").unwrap();
        let p = ucrpq_to_program(&q, &db()).unwrap();
        let text = p.to_string();
        // The recursive rule must extend on the right.
        assert!(text.contains("plus_1(X, Y) :- plus_1(X, Z), a(Z, Y)."), "{text}");
        assert!(text.contains("goal(X, Y) :- plus_1(X, Y)."), "{text}");
    }

    #[test]
    fn left_constant_is_inlined() {
        let q = parse_ucrpq("?y <- C a+ ?y").unwrap();
        let p = ucrpq_to_program(&q, &db()).unwrap();
        let text = p.to_string();
        assert!(text.contains("goal(Y) :- plus_1(3, Y)."), "{text}");
    }

    #[test]
    fn inverse_swaps_arguments() {
        let q = parse_ucrpq("?x, ?y <- ?x -a ?y").unwrap();
        let p = ucrpq_to_program(&q, &db()).unwrap();
        assert!(p.to_string().contains("goal(X, Y) :- a(Y, X)."), "{p}");
    }

    #[test]
    fn alternation_gets_multiple_rules() {
        let q = parse_ucrpq("?x, ?y <- ?x (a|b) ?y").unwrap();
        let p = ucrpq_to_program(&q, &db()).unwrap();
        let n_alt_rules = p.rules.iter().filter(|r| r.head.pred.starts_with("alt")).count();
        assert_eq!(n_alt_rules, 2);
    }

    #[test]
    fn conjunction_in_one_rule() {
        let q = parse_ucrpq("?x, ?z <- ?x a ?y, ?y b ?z").unwrap();
        let p = ucrpq_to_program(&q, &db()).unwrap();
        let goal = p.rules.iter().find(|r| r.head.pred == "goal").unwrap();
        assert_eq!(goal.body.len(), 2);
    }

    #[test]
    fn produced_programs_validate() {
        for q in [
            "?x <- ?x a+/b C",
            "?x, ?y <- ?x (a/-a)+ ?y",
            "?x <- C (a|b)+ ?x",
            "?x, ?y <- ?x a+ ?y ; ?x, ?y <- ?x b ?y",
        ] {
            let parsed = parse_ucrpq(q).unwrap();
            ucrpq_to_program(&parsed, &db()).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn unknown_label_rejected() {
        let q = parse_ucrpq("?x, ?y <- ?x nope ?y").unwrap();
        assert!(ucrpq_to_program(&q, &db()).is_err());
    }
}
