//! Datalog abstract syntax with the restrictions the paper's systems rely
//! on: positive programs (no negation), *linear* recursion, and safety
//! (every head variable occurs in the body).

use mura_core::{MuraError, Result, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A term in an atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlTerm {
    Var(String),
    Cst(Value),
}

impl fmt::Display for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlTerm::Var(v) => write!(f, "{}", v.to_uppercase()),
            DlTerm::Cst(c) => write!(f, "{c}"),
        }
    }
}

/// A predicate applied to terms, e.g. `tc(X, Y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlAtom {
    pub pred: String,
    pub args: Vec<DlTerm>,
}

impl DlAtom {
    /// Convenience constructor with variable arguments.
    pub fn new(pred: &str, vars: &[&str]) -> Self {
        DlAtom {
            pred: pred.to_string(),
            args: vars.iter().map(|v| DlTerm::Var(v.to_string())).collect(),
        }
    }

    /// Variables occurring in the atom.
    pub fn vars(&self) -> Vec<&str> {
        self.args
            .iter()
            .filter_map(|t| match t {
                DlTerm::Var(v) => Some(v.as_str()),
                DlTerm::Cst(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for DlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A Horn rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub head: DlAtom,
    pub body: Vec<DlAtom>,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A Datalog program with a goal atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub rules: Vec<Rule>,
    /// The answer predicate (all-variable atom).
    pub query: DlAtom,
}

impl Program {
    /// Names of intensional predicates (those with rules).
    pub fn idb_preds(&self) -> BTreeSet<&str> {
        self.rules.iter().map(|r| r.head.pred.as_str()).collect()
    }

    /// Names of extensional predicates (referenced but never derived).
    pub fn edb_preds(&self) -> BTreeSet<&str> {
        let idb = self.idb_preds();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|a| a.pred.as_str())
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// Checks the paper-level restrictions: safety (head variables bound in
    /// the body, no constants in heads), consistent arities, **linear**
    /// recursion (at most one occurrence of the head's own predicate per
    /// body), no mutual recursion between predicates, and a defined query
    /// predicate.
    pub fn validate(&self) -> Result<()> {
        let err = |m: String| Err(MuraError::Frontend(m));
        // Arities.
        let mut arity: std::collections::BTreeMap<String, usize> = Default::default();
        let mut check_arity = |a: &DlAtom| -> Result<()> {
            match arity.get(&a.pred) {
                Some(&k) if k != a.args.len() => Err(MuraError::Frontend(format!(
                    "predicate {} used with arities {} and {}",
                    a.pred,
                    k,
                    a.args.len()
                ))),
                _ => {
                    arity.insert(a.pred.clone(), a.args.len());
                    Ok(())
                }
            }
        };
        for r in &self.rules {
            check_arity(&r.head)?;
            for a in &r.body {
                check_arity(a)?;
            }
        }
        check_arity(&self.query)?;
        for r in &self.rules {
            if r.body.is_empty() {
                return err(format!("rule {} has an empty body", r));
            }
            let body_vars: BTreeSet<&str> = r.body.iter().flat_map(|a| a.vars()).collect();
            for t in &r.head.args {
                match t {
                    DlTerm::Var(v) => {
                        if !body_vars.contains(v.as_str()) {
                            return err(format!("unsafe rule (head var {v} unbound): {r}"));
                        }
                    }
                    DlTerm::Cst(_) => {
                        return err(format!("constants in rule heads are unsupported: {r}"))
                    }
                }
            }
            // Head vars must be distinct.
            let hv: Vec<&str> = r.head.vars();
            let hset: BTreeSet<&str> = hv.iter().copied().collect();
            if hv.len() != hset.len() {
                return err(format!("repeated head variable: {r}"));
            }
            // Linearity.
            let self_atoms = r.body.iter().filter(|a| a.pred == r.head.pred).count();
            if self_atoms > 1 {
                return err(format!("non-linear recursion: {r}"));
            }
        }
        // No mutual recursion: the predicate dependency graph, restricted
        // to IDB→IDB edges excluding self-loops, must be acyclic.
        let idb: Vec<&str> = self.idb_preds().into_iter().collect();
        let index = |p: &str| idb.iter().position(|q| *q == p);
        let n = idb.len();
        let mut adj = vec![Vec::new(); n];
        for r in &self.rules {
            let h = index(&r.head.pred).expect("head is idb");
            for a in &r.body {
                if let Some(b) = index(&a.pred) {
                    if b != h {
                        adj[h].push(b);
                    }
                }
            }
        }
        // Cycle detection (3-color DFS).
        let mut color = vec![0u8; n];
        fn dfs(v: usize, adj: &[Vec<usize>], color: &mut [u8]) -> bool {
            color[v] = 1;
            for &w in &adj[v] {
                if color[w] == 1 || (color[w] == 0 && dfs(w, adj, color)) {
                    return true;
                }
            }
            color[v] = 2;
            false
        }
        for v in 0..n {
            if color[v] == 0 && dfs(v, &adj, &mut color) {
                return err("mutual recursion between predicates is unsupported".into());
            }
        }
        if !self.idb_preds().contains(self.query.pred.as_str()) {
            return err(format!("query predicate {} has no rules", self.query.pred));
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        write!(f, "?- {}.", self.query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// tc(X,Y) :- edge(X,Y). tc(X,Y) :- tc(X,Z), edge(Z,Y).
    fn tc_program() -> Program {
        Program {
            rules: vec![
                Rule {
                    head: DlAtom::new("tc", &["x", "y"]),
                    body: vec![DlAtom::new("edge", &["x", "y"])],
                },
                Rule {
                    head: DlAtom::new("tc", &["x", "y"]),
                    body: vec![DlAtom::new("tc", &["x", "z"]), DlAtom::new("edge", &["z", "y"])],
                },
            ],
            query: DlAtom::new("tc", &["x", "y"]),
        }
    }

    #[test]
    fn tc_program_validates() {
        tc_program().validate().unwrap();
    }

    #[test]
    fn idb_edb_partition() {
        let p = tc_program();
        assert_eq!(p.idb_preds().into_iter().collect::<Vec<_>>(), vec!["tc"]);
        assert_eq!(p.edb_preds().into_iter().collect::<Vec<_>>(), vec!["edge"]);
    }

    #[test]
    fn display_is_datalog_syntax() {
        let p = tc_program();
        let s = p.to_string();
        assert!(s.contains("tc(X, Y) :- edge(X, Y)."), "{s}");
        assert!(s.contains("?- tc(X, Y)."), "{s}");
    }

    #[test]
    fn rejects_unsafe_rule() {
        let mut p = tc_program();
        p.rules[0].head.args.push(DlTerm::Var("w".into()));
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_nonlinear() {
        let p = Program {
            rules: vec![
                Rule {
                    head: DlAtom::new("p", &["x", "y"]),
                    body: vec![DlAtom::new("e", &["x", "y"])],
                },
                Rule {
                    head: DlAtom::new("p", &["x", "y"]),
                    body: vec![DlAtom::new("p", &["x", "z"]), DlAtom::new("p", &["z", "y"])],
                },
            ],
            query: DlAtom::new("p", &["x", "y"]),
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_mutual_recursion() {
        let p = Program {
            rules: vec![
                Rule {
                    head: DlAtom::new("p", &["x", "y"]),
                    body: vec![DlAtom::new("q", &["x", "y"])],
                },
                Rule {
                    head: DlAtom::new("q", &["x", "y"]),
                    body: vec![DlAtom::new("p", &["x", "y"])],
                },
            ],
            query: DlAtom::new("p", &["x", "y"]),
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_arity_mismatch_and_missing_query() {
        let mut p = tc_program();
        p.rules[1].body[1] = DlAtom::new("edge", &["z"]);
        assert!(p.validate().is_err());
        let mut p2 = tc_program();
        p2.query = DlAtom::new("nope", &["x"]);
        assert!(p2.validate().is_err());
    }
}
