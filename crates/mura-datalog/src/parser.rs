//! A parser for textual Datalog programs.
//!
//! Accepts the classic notation used throughout the literature (and this
//! workspace's `Display` output round-trips through it):
//!
//! ```text
//! tc(X, Y) :- edge(X, Y).
//! tc(X, Y) :- tc(X, Z), edge(Z, Y).
//! ?- tc(X, Y).
//! ```
//!
//! Uppercase-initial identifiers are variables; integers are node
//! constants; lowercase identifiers in argument position are named
//! constants resolved by the engine at compile time (kept symbolic here).

use crate::ast::{DlAtom, DlTerm, Program, Rule};
use mura_core::{MuraError, Result, Value};

/// Parses a Datalog program (rules plus exactly one `?- goal(...)` query).
pub fn parse_program(input: &str) -> Result<Program> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    let mut rules = Vec::new();
    let mut query = None;
    loop {
        p.skip_ws_and_comments();
        if p.pos >= p.input.len() {
            break;
        }
        if p.peek_str("?-") {
            p.pos += 2;
            let atom = p.atom()?;
            p.expect(b'.')?;
            if query.replace(atom).is_some() {
                return Err(MuraError::Frontend("multiple queries".into()));
            }
            continue;
        }
        let head = p.atom()?;
        p.skip_ws_and_comments();
        if p.peek_str(":-") {
            p.pos += 2;
            let mut body = vec![p.atom()?];
            while p.eat(b',') {
                body.push(p.atom()?);
            }
            p.expect(b'.')?;
            rules.push(Rule { head, body });
        } else {
            return Err(p.err("facts are not supported; load data as relations"));
        }
    }
    let query = query.ok_or_else(|| MuraError::Frontend("missing '?- goal(...)' query".into()))?;
    let program = Program { rules, query };
    program.validate()?;
    Ok(program)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> MuraError {
        let around: String = String::from_utf8_lossy(
            &self.input[self.pos.min(self.input.len())..(self.pos + 24).min(self.input.len())],
        )
        .into_owned();
        MuraError::Frontend(format!(
            "datalog parse error at byte {}: {msg} (near '{around}')",
            self.pos
        ))
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.input.len() && self.input[self.pos] == b'%' {
                while self.pos < self.input.len() && self.input[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn peek_str(&mut self, s: &str) -> bool {
        self.skip_ws_and_comments();
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws_and_comments();
        if self.input.get(self.pos) == Some(&c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws_and_comments();
        let start = self.pos;
        while self.pos < self.input.len() {
            let c = self.input[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn atom(&mut self) -> Result<DlAtom> {
        let pred = self.ident()?;
        if pred.starts_with(|c: char| c.is_ascii_uppercase()) {
            return Err(self.err("predicate names must start lowercase"));
        }
        self.expect(b'(')?;
        let mut args = vec![self.term()?];
        while self.eat(b',') {
            args.push(self.term()?);
        }
        self.expect(b')')?;
        Ok(DlAtom { pred, args })
    }

    fn term(&mut self) -> Result<DlTerm> {
        self.skip_ws_and_comments();
        let c = *self.input.get(self.pos).ok_or_else(|| self.err("unexpected end"))?;
        if c.is_ascii_digit() || c == b'-' {
            let start = self.pos;
            if c == b'-' {
                self.pos += 1;
            }
            while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
            let n: i64 = text.parse().map_err(|_| self.err("invalid integer"))?;
            return Ok(DlTerm::Cst(Value::Int(n)));
        }
        let id = self.ident()?;
        if id.starts_with(|ch: char| ch.is_ascii_uppercase()) || id.starts_with('_') {
            // Prolog-style variable: normalize to lowercase for the AST.
            Ok(DlTerm::Var(id.to_lowercase()))
        } else {
            Err(self.err("named constants in arguments are not supported; use node ids"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{eval_naive_fixpoints, Database, Relation};

    const TC: &str = "
        % transitive closure
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- tc(X, Z), edge(Z, Y).
        ?- tc(X, Y).
    ";

    #[test]
    fn parses_tc() {
        let p = parse_program(TC).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.query.pred, "tc");
    }

    #[test]
    fn round_trips_with_display() {
        let p = parse_program(TC).unwrap();
        let text = p.to_string();
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn parses_constants() {
        let p = parse_program(
            "reach(Y) :- edge(0, Y).\nreach(Y) :- reach(X), edge(X, Y).\n?- reach(Y).",
        )
        .unwrap();
        assert_eq!(p.rules[0].body[0].args[0], DlTerm::Cst(Value::Int(0)));
    }

    #[test]
    fn parse_then_compile_then_eval() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("edge", Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 3)]));
        let p = parse_program(TC).unwrap();
        let term = crate::compile::compile_program(&p, &mut db).unwrap();
        let rel = eval_naive_fixpoints(&term, &db).unwrap();
        assert_eq!(rel.len(), 6);
    }

    #[test]
    fn error_cases() {
        assert!(parse_program("tc(X) :-").is_err());
        assert!(parse_program("tc(X, Y).").is_err(), "facts rejected");
        assert!(parse_program("tc(X, Y) :- edge(X, Y).").is_err(), "missing query");
        assert!(parse_program("Tc(X) :- e(X, X). ?- Tc(X).").is_err(), "uppercase pred");
        assert!(parse_program("tc(X, Y) :- e(X, Y). ?- tc(X, Y). ?- tc(X, Y).").is_err());
    }
}
