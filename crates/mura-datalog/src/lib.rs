//! # mura-datalog — Datalog engine baselines
//!
//! The paper compares Dist-μ-RA against two distributed Datalog systems:
//! **BigDatalog** (SIGMOD'16, Datalog on Spark) and **Myria** (VLDB'15).
//! This crate rebuilds that comparison axis as a real linear-Datalog
//! pipeline on the same substrate:
//!
//! 1. a Datalog [`ast`] with validation (safety, linear recursion);
//! 2. a UCRPQ → Datalog [`translate`]r that writes programs **left to
//!    right** — exactly how the paper feeds regular path queries to
//!    BigDatalog, and the root of its optimization asymmetry;
//! 3. a Datalog → μ-RA [`compile`]r (rules become joins; self-recursive
//!    predicates become fixpoints);
//! 4. an [`engine`] with two styles:
//!    * [`DatalogStyle::BigDatalog`] — magic-sets-equivalent rewrites only
//!      (selections/projections pushed in the written direction; **no**
//!      fixpoint merging or reversal, §VI), GPS-style decomposable plans
//!      (the `P_plw`-like SetRDD execution when the first argument is
//!      preserved);
//!    * [`DatalogStyle::Myria`] — incremental (semi-naive) evaluation but
//!      no recursion-aware logical optimization and no `P_plw` equivalent:
//!      every iteration synchronizes globally.

pub mod ast;
pub mod compile;
pub mod engine;
pub mod parser;
pub mod translate;

pub use ast::{DlAtom, DlTerm, Program, Rule};
pub use compile::compile_program;
pub use engine::{DatalogEngine, DatalogStyle};
pub use parser::parse_program;
pub use translate::ucrpq_to_program;
