//! Datalog → μ-RA compilation.
//!
//! Each rule body is a conjunctive query (joins on shared variables,
//! filters for constant arguments); a self-recursive predicate becomes a
//! fixpoint whose constant part is the union of its non-recursive rules.
//! IDB predicates use positional columns `#0..#k`; extensional predicates
//! are the database's binary graph relations over `src`/`dst`.

use crate::ast::{DlAtom, DlTerm, Program, Rule};
use mura_core::{Database, MuraError, Pred, Result, Sym, Term};
use std::collections::BTreeMap;

/// Positional column symbol `#i`.
fn pos_col(i: usize, db: &mut Database) -> Sym {
    db.intern(&format!("#{i}"))
}

/// Column symbol for a Datalog variable.
fn var_col(v: &str, db: &mut Database) -> Sym {
    db.intern(&format!("?{v}"))
}

/// Positional columns of a body atom's base relation: `src`/`dst` for
/// binary EDB relations, `#i` for IDB predicates.
fn base_cols(pred_is_edb: bool, arity: usize, db: &mut Database) -> Result<Vec<Sym>> {
    if pred_is_edb {
        if arity != 2 {
            return Err(MuraError::Frontend(format!(
                "extensional predicates must be binary graph relations (got arity {arity})"
            )));
        }
        Ok(vec![db.intern("src"), db.intern("dst")])
    } else {
        Ok((0..arity).map(|i| pos_col(i, db)).collect())
    }
}

struct Compiler<'a> {
    db: &'a mut Database,
    compiled: BTreeMap<String, Term>,
}

impl Compiler<'_> {
    /// Compiles one body atom into a term whose columns are the variable
    /// columns `?v` of its arguments (constants filtered out).
    fn compile_atom(&mut self, atom: &DlAtom, self_var: Option<(&str, Sym)>) -> Result<Term> {
        let is_self = self_var.is_some_and(|(p, _)| p == atom.pred);
        let is_edb = !is_self && !self.compiled.contains_key(&atom.pred);
        let mut term = if is_self {
            Term::var(self_var.expect("checked").1)
        } else if is_edb {
            if self.db.relation_by_name(&atom.pred).is_none() {
                return Err(MuraError::Frontend(format!(
                    "unknown extensional predicate '{}'",
                    atom.pred
                )));
            }
            Term::var(self.db.intern(&atom.pred))
        } else {
            self.compiled[&atom.pred].clone()
        };
        let cols = base_cols(is_edb, atom.args.len(), self.db)?;
        // First pass: constants become filters (dropped afterwards).
        let mut drop_cols = Vec::new();
        for (i, arg) in atom.args.iter().enumerate() {
            if let DlTerm::Cst(v) = arg {
                term = term.filter(Pred::Eq(cols[i], *v));
                drop_cols.push(cols[i]);
            }
        }
        // Second pass: variables. A repeated variable within the atom adds
        // an equality filter on an auxiliary column.
        let mut assigned: BTreeMap<&str, Sym> = BTreeMap::new();
        for (i, arg) in atom.args.iter().enumerate() {
            let DlTerm::Var(v) = arg else { continue };
            match assigned.get(v.as_str()) {
                None => {
                    let target = var_col(v, self.db);
                    if cols[i] != target {
                        term = term.rename(cols[i], target);
                    }
                    assigned.insert(v, target);
                }
                Some(&first) => {
                    let aux = self.db.dict_mut().fresh("dup");
                    term = term.rename(cols[i], aux).filter(Pred::EqCol(first, aux));
                    drop_cols.push(aux);
                }
            }
        }
        if !drop_cols.is_empty() {
            term = term.antiproject_all(drop_cols);
        }
        Ok(term)
    }

    /// Compiles one rule into a term with the head's positional columns.
    fn compile_rule(&mut self, rule: &Rule, self_var: Option<(&str, Sym)>) -> Result<Term> {
        let mut atoms = rule.body.iter();
        let mut term =
            self.compile_atom(atoms.next().expect("validated: nonempty body"), self_var)?;
        for a in atoms {
            term = term.join(self.compile_atom(a, self_var)?);
        }
        // Project to head variables, then rename to positional columns.
        let head_vars: Vec<&str> = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                DlTerm::Var(v) => v.as_str(),
                DlTerm::Cst(_) => unreachable!("validated: no constants in heads"),
            })
            .collect();
        let mut body_vars: Vec<&str> = Vec::new();
        for a in &rule.body {
            for v in a.vars() {
                if !body_vars.contains(&v) {
                    body_vars.push(v);
                }
            }
        }
        let drop: Vec<Sym> = body_vars
            .iter()
            .filter(|v| !head_vars.contains(*v))
            .map(|v| var_col(v, self.db))
            .collect();
        if !drop.is_empty() {
            term = term.antiproject_all(drop);
        }
        for (i, v) in head_vars.iter().enumerate() {
            let from = var_col(v, self.db);
            let to = pos_col(i, self.db);
            if from != to {
                term = term.rename(from, to);
            }
        }
        Ok(term)
    }

    /// Compiles one predicate (its rules are given) to a term over `#i`
    /// columns.
    fn compile_pred(&mut self, pred: &str, rules: &[&Rule]) -> Result<Term> {
        let recursive = rules.iter().any(|r| r.body.iter().any(|a| a.pred == pred));
        if !recursive {
            let terms =
                rules.iter().map(|r| self.compile_rule(r, None)).collect::<Result<Vec<_>>>()?;
            return Ok(Term::union_all(terms));
        }
        let x = self.db.dict_mut().fresh(&format!("DL_{pred}"));
        let mut branches = Vec::new();
        // Constant part first (decomposition-friendly ordering).
        for r in rules.iter().filter(|r| !r.body.iter().any(|a| a.pred == pred)) {
            branches.push(self.compile_rule(r, None)?);
        }
        for r in rules.iter().filter(|r| r.body.iter().any(|a| a.pred == pred)) {
            branches.push(self.compile_rule(r, Some((pred, x)))?);
        }
        Ok(Term::union_all(branches).fix(x))
    }
}

/// Compiles a validated program into a μ-RA term for its query predicate.
/// The output schema uses positional columns `#0..`; callers typically
/// rename them to the query's variable names.
pub fn compile_program(program: &Program, db: &mut Database) -> Result<Term> {
    program.validate()?;
    let mut rules_by_pred: BTreeMap<&str, Vec<&Rule>> = BTreeMap::new();
    for r in &program.rules {
        rules_by_pred.entry(&r.head.pred).or_default().push(r);
    }
    // Topological compilation order over IDB dependencies (self-loops
    // excluded; validate() guarantees acyclicity).
    let mut compiler = Compiler { db, compiled: BTreeMap::new() };
    let mut remaining: Vec<&str> = rules_by_pred.keys().copied().collect();
    while !remaining.is_empty() {
        let ready = remaining
            .iter()
            .position(|p| {
                rules_by_pred[p].iter().all(|r| {
                    r.body.iter().all(|a| {
                        a.pred == *p
                            || !rules_by_pred.contains_key(a.pred.as_str())
                            || compiler.compiled.contains_key(&a.pred)
                    })
                })
            })
            .expect("validated: acyclic dependency graph");
        let pred = remaining.remove(ready);
        let term = compiler.compile_pred(pred, &rules_by_pred[pred])?;
        compiler.compiled.insert(pred.to_string(), term);
    }
    Ok(compiler.compiled[&program.query.pred].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, DlTerm};
    use crate::translate::ucrpq_to_program;
    use mura_core::{eval, Relation, Value};
    use mura_ucrpq::{parse_ucrpq, to_mura};

    fn db() -> Database {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 0), (3, 4)]));
        db.insert_relation("b", Relation::from_pairs(src, dst, [(2, 3), (4, 5)]));
        db.bind_constant("C", Value::node(2));
        db
    }

    /// End-to-end: the Datalog route must agree with the μ-RA route.
    #[test]
    fn datalog_route_matches_mura_route() {
        for q in [
            "?x, ?y <- ?x a+ ?y",
            "?x <- ?x a+ C",
            "?y <- C a+ ?y",
            "?x, ?y <- ?x a+/b ?y",
            "?x, ?y <- ?x (a|b)+ ?y",
            "?x, ?z <- ?x a ?y, ?y b ?z",
            "?x, ?y <- ?x (a/-a)+ ?y",
        ] {
            let mut d = db();
            let parsed = parse_ucrpq(q).unwrap();
            let program = ucrpq_to_program(&parsed, &d).unwrap();
            let dl_term = compile_program(&program, &mut d).unwrap();
            let dl_res = eval(&dl_term, &d).unwrap();
            let mura_term = to_mura(&parsed, &mut d).unwrap();
            let mura_res = eval(&mura_term, &d).unwrap();
            // Schemas differ (#i vs ?v) but cardinalities and value sets
            // must match; compare sorted row multisets.
            let mut a: Vec<_> = dl_res.sorted_rows();
            let mut b: Vec<_> = mura_res.sorted_rows();
            a.sort();
            b.sort();
            assert_eq!(a, b, "query {q} diverged");
        }
    }

    #[test]
    fn repeated_variable_in_atom() {
        // goal(X) :- a(X, X): self loops. None in `a` except… none: add one.
        let mut d = db();
        let src = d.dict().lookup("src").unwrap();
        let dst = d.dict().lookup("dst").unwrap();
        d.insert_relation("loops", Relation::from_pairs(src, dst, [(7, 7), (1, 2)]));
        let program = Program {
            rules: vec![Rule {
                head: DlAtom::new("goal", &["x"]),
                body: vec![DlAtom::new("loops", &["x", "x"])],
            }],
            query: DlAtom::new("goal", &["x"]),
        };
        let t = compile_program(&program, &mut d).unwrap();
        let r = eval(&t, &d).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::node(7)]));
    }

    #[test]
    fn constants_in_body() {
        let mut d = db();
        let program = Program {
            rules: vec![Rule {
                head: DlAtom::new("goal", &["y"]),
                body: vec![DlAtom {
                    pred: "a".into(),
                    args: vec![DlTerm::Cst(Value::node(1)), DlTerm::Var("y".into())],
                }],
            }],
            query: DlAtom::new("goal", &["y"]),
        };
        let t = compile_program(&program, &mut d).unwrap();
        let r = eval(&t, &d).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value::node(2)]));
    }

    #[test]
    fn non_recursive_multi_pred_program() {
        // path2(X,Z) :- a(X,Y), b(Y,Z). goal(X,Z) :- path2(X,Z).
        let mut d = db();
        let program = Program {
            rules: vec![
                Rule {
                    head: DlAtom::new("path2", &["x", "z"]),
                    body: vec![DlAtom::new("a", &["x", "y"]), DlAtom::new("b", &["y", "z"])],
                },
                Rule {
                    head: DlAtom::new("goal", &["x", "z"]),
                    body: vec![DlAtom::new("path2", &["x", "z"])],
                },
            ],
            query: DlAtom::new("goal", &["x", "z"]),
        };
        let t = compile_program(&program, &mut d).unwrap();
        let r = eval(&t, &d).unwrap();
        // a∘b: (1,3) via 2, (3,5) via 4.
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn unknown_edb_rejected() {
        let mut d = db();
        let program = Program {
            rules: vec![Rule {
                head: DlAtom::new("goal", &["x", "y"]),
                body: vec![DlAtom::new("ghost", &["x", "y"])],
            }],
            query: DlAtom::new("goal", &["x", "y"]),
        };
        assert!(compile_program(&program, &mut d).is_err());
    }

    #[test]
    fn same_generation_program() {
        // sg(X,Y) :- parent(P,X), parent(P,Y).
        // sg(X,Y) :- parent(P,X), sg(P,Q), parent(Q,Y).
        let mut d = Database::new();
        let src = d.intern("src");
        let dst = d.intern("dst");
        d.insert_relation(
            "parent",
            Relation::from_pairs(src, dst, [(0, 1), (0, 2), (1, 3), (2, 4)]),
        );
        let program = Program {
            rules: vec![
                Rule {
                    head: DlAtom::new("sg", &["x", "y"]),
                    body: vec![
                        DlAtom::new("parent", &["p", "x"]),
                        DlAtom::new("parent", &["p", "y"]),
                    ],
                },
                Rule {
                    head: DlAtom::new("sg", &["x", "y"]),
                    body: vec![
                        DlAtom::new("parent", &["p", "x"]),
                        DlAtom::new("sg", &["p", "q"]),
                        DlAtom::new("parent", &["q", "y"]),
                    ],
                },
            ],
            query: DlAtom::new("sg", &["x", "y"]),
        };
        let t = compile_program(&program, &mut d).unwrap();
        let r = eval(&t, &d).unwrap();
        // Same pairs as the μ-RA same-generation term.
        let sg = mura_ucrpq::suites::same_generation_term(&mut d, "parent").unwrap();
        let expected = eval(&sg, &d).unwrap();
        assert_eq!(r.len(), expected.len());
    }
}
