//! Result and plan caching.
//!
//! The result cache is keyed by the **canonical key of the optimized
//! logical plan** plus the **database epoch** (see [`crate::Server`]): two
//! textually different queries that rewrite to the same plan share one
//! cache entry, and every database mutation bumps the epoch so stale
//! results are never served. `Term` deliberately does not implement `Hash`
//! (constant relations embed `Arc<Relation>`), so the key is computed by a
//! structural walk that hashes constant relations through their sorted
//! rows — order-insensitive, like relation equality.

use mura_core::fxhash::FxHashMap;
use mura_core::Term;
use std::hash::Hash;

/// Canonical 64-bit key of an optimized plan.
///
/// Structural over the whole term; constant relations contribute their
/// schema and sorted rows, so plans differing only in constant contents get
/// different keys while row insertion order is irrelevant. This is
/// [`mura_core::term_key`]: the incremental view maintenance layer uses the
/// same key to match captured fixpoint totals to `Fix` subterms, so the
/// serving cache and the maintenance machinery can never disagree about
/// plan identity.
pub fn plan_key(plan: &Term) -> u64 {
    mura_core::term_key(plan)
}

/// A small LRU cache.
///
/// Recency is tracked with a monotonically increasing tick per access;
/// eviction scans for the minimum tick. That is O(capacity) per eviction,
/// which is fine at serving-cache sizes (hundreds of entries) and keeps the
/// structure a single flat map. Capacity 0 disables the cache entirely.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: FxHashMap<K, (V, u64)>,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding up to `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, tick: 0, map: FxHashMap::default(), evictions: 0 }
    }

    /// Looks up `key`, marking it most-recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, last)| {
            *last = tick;
            v.clone()
        })
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry when
    /// at capacity. A no-op when the cache is disabled.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(victim) =
                self.map.iter().min_by_key(|(_, (_, last))| *last).map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Removes `key`, returning its value. Not counted as an eviction —
    /// evictions measure capacity pressure, not explicit invalidation.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.map.remove(key).map(|(v, _)| v)
    }

    /// A point-in-time snapshot of every entry (arbitrary order, recency
    /// untouched). The maintenance path iterates this outside the cache
    /// lock so queries keep hitting while views are brought up to date.
    pub fn entries(&self) -> Vec<(K, V)> {
        self.map.iter().map(|(k, (v, _))| (k.clone(), v.clone())).collect()
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::{Relation, Sym, Term};

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // touch a: b is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b was least recently used");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&"a"), Some(10));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn plan_key_is_structural() {
        let e = Sym(1);
        let x = Sym(2);
        let t1 = Term::var(e).union(Term::var(x).join(Term::var(e))).fix(x);
        let t2 = Term::var(e).union(Term::var(x).join(Term::var(e))).fix(x);
        assert_eq!(plan_key(&t1), plan_key(&t2));
        let t3 = Term::var(e).union(Term::var(e).join(Term::var(x))).fix(x);
        assert_ne!(plan_key(&t1), plan_key(&t3), "join order must matter");
    }

    #[test]
    fn plan_key_sees_constant_rows_order_insensitively() {
        let (a, b) = (Sym(3), Sym(4));
        let r1 = Relation::from_pairs(a, b, [(1, 2), (3, 4)]);
        let r2 = Relation::from_pairs(a, b, [(3, 4), (1, 2)]);
        let r3 = Relation::from_pairs(a, b, [(1, 2), (3, 5)]);
        assert_eq!(plan_key(&Term::cst(r1)), plan_key(&Term::cst(r2)));
        assert_ne!(
            plan_key(&Term::cst(Relation::from_pairs(a, b, [(1, 2)]))),
            plan_key(&Term::cst(r3))
        );
    }
}
