//! Serving-layer errors.
//!
//! The serving layer distinguishes *admission* failures (the server refused
//! to even start the query) from *engine* failures (the query ran and
//! failed). Admission failures are cheap and immediate by design — a loaded
//! server answers `Busy` in microseconds instead of queueing unboundedly.

use mura_core::MuraError;
use std::fmt;

/// Result alias for serving operations.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Why overload protection shed a query (see [`ServeError::Overloaded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// Admitting the query would push estimated memory past the
    /// configured watermark (live gauge + cost-model estimate).
    Memory,
    /// The circuit breaker for this query's canonical plan is open after
    /// repeated memory/worker failures.
    CircuitOpen,
}

impl fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverloadReason::Memory => write!(f, "memory pressure"),
            OverloadReason::CircuitOpen => write!(f, "circuit breaker open"),
        }
    }
}

/// Errors surfaced by [`crate::Server`] and [`crate::Client`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full. The query was **not** enqueued; the
    /// client should back off for `retry_after_ms` and retry.
    /// `queue_depth` is the configured bound that was hit.
    Busy { queue_depth: usize, retry_after_ms: u64 },
    /// Overload protection shed the query before execution: the memory
    /// watermark would be breached, or the plan's circuit breaker is
    /// open. The query was **not** executed; retry after `retry_after_ms`.
    Overloaded { reason: OverloadReason, retry_after_ms: u64 },
    /// The server has shut down (or shut down while the query was queued).
    Closed,
    /// The engine rejected or aborted the query. Cancellation, deadlines
    /// and resource limits arrive here as [`MuraError::Cancelled`],
    /// [`MuraError::DeadlineExceeded`], [`MuraError::ResourceExhausted`],
    /// [`MuraError::MemoryExceeded`] and [`MuraError::Timeout`].
    Engine(MuraError),
    /// The durability layer failed: a WAL append, snapshot write, or
    /// crash recovery could not complete. A mutation reported with this
    /// error was **not** durably recorded (and, for WAL appends, was not
    /// applied); the serving process should be treated as unhealthy.
    Durability(String),
}

impl ServeError {
    /// True if this is a per-request deadline expiry.
    pub fn is_deadline(&self) -> bool {
        matches!(self, ServeError::Engine(MuraError::DeadlineExceeded { .. }))
    }

    /// True if the query was cancelled through its token.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ServeError::Engine(MuraError::Cancelled))
    }

    /// True if the server refused admission.
    pub fn is_busy(&self) -> bool {
        matches!(self, ServeError::Busy { .. })
    }

    /// True if overload protection shed the query.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }

    /// The retry-after hint carried by [`ServeError::Busy`] and
    /// [`ServeError::Overloaded`]; `None` for terminal errors.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            ServeError::Busy { retry_after_ms, .. }
            | ServeError::Overloaded { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // `retry-after-ms=<n>` is a machine-parseable token: protocol
            // clients (murash --connect) grep for it to schedule a retry.
            ServeError::Busy { queue_depth, retry_after_ms } => {
                write!(
                    f,
                    "server busy (admission queue of {queue_depth} is full) \
                     retry-after-ms={retry_after_ms}"
                )
            }
            ServeError::Overloaded { reason, retry_after_ms } => {
                write!(f, "server overloaded ({reason}) retry-after-ms={retry_after_ms}")
            }
            ServeError::Closed => write!(f, "server closed"),
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::Durability(what) => write!(f, "durability failure: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MuraError> for ServeError {
    fn from(e: MuraError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(ServeError::Busy { queue_depth: 4, retry_after_ms: 100 }.is_busy());
        assert!(ServeError::Engine(MuraError::Cancelled).is_cancelled());
        assert!(ServeError::Engine(MuraError::DeadlineExceeded { millis: 5 }).is_deadline());
        assert!(!ServeError::Closed.is_busy());
        let shed = ServeError::Overloaded { reason: OverloadReason::Memory, retry_after_ms: 50 };
        assert!(shed.is_overloaded());
        assert!(!shed.is_busy());
    }

    #[test]
    fn display_mentions_queue_depth() {
        let s = ServeError::Busy { queue_depth: 7, retry_after_ms: 100 }.to_string();
        assert!(s.contains('7'), "{s}");
    }

    #[test]
    fn retry_after_is_machine_parseable() {
        for e in [
            ServeError::Busy { queue_depth: 4, retry_after_ms: 120 },
            ServeError::Overloaded { reason: OverloadReason::CircuitOpen, retry_after_ms: 120 },
        ] {
            assert_eq!(e.retry_after_ms(), Some(120));
            let s = e.to_string();
            let token = s
                .split_whitespace()
                .find_map(|t| t.strip_prefix("retry-after-ms="))
                .expect("display carries a retry-after-ms token");
            assert_eq!(token.parse::<u64>().unwrap(), 120, "{s}");
        }
        assert_eq!(ServeError::Closed.retry_after_ms(), None);
        assert_eq!(ServeError::Engine(MuraError::Cancelled).retry_after_ms(), None);
    }
}
