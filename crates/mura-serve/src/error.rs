//! Serving-layer errors.
//!
//! The serving layer distinguishes *admission* failures (the server refused
//! to even start the query) from *engine* failures (the query ran and
//! failed). Admission failures are cheap and immediate by design — a loaded
//! server answers `Busy` in microseconds instead of queueing unboundedly.

use mura_core::MuraError;
use std::fmt;

/// Result alias for serving operations.
pub type ServeResult<T> = std::result::Result<T, ServeError>;

/// Errors surfaced by [`crate::Server`] and [`crate::Client`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full. The query was **not** enqueued; the
    /// client should back off and retry. `queue_depth` is the configured
    /// bound that was hit.
    Busy { queue_depth: usize },
    /// The server has shut down (or shut down while the query was queued).
    Closed,
    /// The engine rejected or aborted the query. Cancellation, deadlines
    /// and resource limits arrive here as [`MuraError::Cancelled`],
    /// [`MuraError::DeadlineExceeded`], [`MuraError::ResourceExhausted`]
    /// and [`MuraError::Timeout`].
    Engine(MuraError),
}

impl ServeError {
    /// True if this is a per-request deadline expiry.
    pub fn is_deadline(&self) -> bool {
        matches!(self, ServeError::Engine(MuraError::DeadlineExceeded { .. }))
    }

    /// True if the query was cancelled through its token.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ServeError::Engine(MuraError::Cancelled))
    }

    /// True if the server refused admission.
    pub fn is_busy(&self) -> bool {
        matches!(self, ServeError::Busy { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { queue_depth } => {
                write!(f, "server busy (admission queue of {queue_depth} is full)")
            }
            ServeError::Closed => write!(f, "server closed"),
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MuraError> for ServeError {
    fn from(e: MuraError) -> Self {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(ServeError::Busy { queue_depth: 4 }.is_busy());
        assert!(ServeError::Engine(MuraError::Cancelled).is_cancelled());
        assert!(ServeError::Engine(MuraError::DeadlineExceeded { millis: 5 }).is_deadline());
        assert!(!ServeError::Closed.is_busy());
    }

    #[test]
    fn display_mentions_queue_depth() {
        let s = ServeError::Busy { queue_depth: 7 }.to_string();
        assert!(s.contains('7'), "{s}");
    }
}
