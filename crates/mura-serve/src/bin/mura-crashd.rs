//! Crash-recovery chaos driver for the durable serving tier.
//!
//! `mura-crashd` runs a *deterministic* serving session against a durable
//! data directory: a seeded random graph, a fixed schedule of delta
//! batches (plus one mid-stream reload), a warm query before every
//! mutation. The whole schedule is a pure function of the seed — never of
//! server state — so two invocations over the same directory compose: a
//! run that crashes partway (via `MURA_CRASH_POINT`, see
//! `mura_durable::crash`) is continued by the next invocation, which
//! recovers the directory and picks the schedule up from the recovered
//! version.
//!
//! The harness (`tests/crash_recovery.rs`) compares the machine-parseable
//! stdout lines of a crashed+recovered pair against an uninterrupted
//! reference run of the same seed:
//!
//! ```text
//! RECOVERED v=<version> replayed=<wal records> snapshots=<written>
//! DELTA v=<version> ins=<n> del=<n> maintained=<n> unaffected=<n> \
//!       recomputed=<n> rederived=<n>
//! LOAD v=<version>
//! FINAL v=<version> epoch=<epoch> rows=<count> hash=<fxhash>
//! ```
//!
//! A `DELTA` line is printed only after `apply_delta` returned — i.e.
//! after the batch was durably logged — so every printed version is a
//! promise recovery must keep.

use std::path::PathBuf;

use mura_core::fxhash::FxHasher;
use mura_core::{Database, Relation, Value};
use mura_datagen::{erdos_renyi, SplitMix64};
use mura_dist::exec::{ExecConfig, FixpointPlan};
use mura_dist::QueryEngine;
use mura_serve::{ClusterMode, DeltaBatch, ServeConfig, Server};
use std::hash::{Hash, Hasher};

const TC: &str = "?x, ?y <- ?x edge+ ?y";
const NODES: u64 = 40;

/// One version-consuming step of the deterministic schedule.
enum Step {
    /// Insert/delete batch against `edge`.
    Delta { ins: Vec<(u64, u64)>, del: Vec<(u64, u64)> },
    /// Same-shape reload of `edge` from the mirror (exercises the WAL's
    /// full-database record kind).
    Load,
}

struct Args {
    data_dir: PathBuf,
    seed: u64,
    rounds: u64,
    plan: FixpointPlan,
    cluster: ClusterMode,
    worker_bin: Option<PathBuf>,
    snapshot_every: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        data_dir: PathBuf::new(),
        seed: 1,
        rounds: 6,
        plan: FixpointPlan::Auto,
        cluster: ClusterMode::InProcess,
        worker_bin: None,
        snapshot_every: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--data-dir" => args.data_dir = PathBuf::from(val()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| die("bad --seed")),
            "--rounds" => args.rounds = val().parse().unwrap_or_else(|_| die("bad --rounds")),
            "--snapshot-every" => {
                args.snapshot_every = val().parse().unwrap_or_else(|_| die("bad --snapshot-every"))
            }
            "--plan" => {
                args.plan = match val().as_str() {
                    "gld" => FixpointPlan::ForceGld,
                    "plw" => FixpointPlan::ForcePlw,
                    "async" => FixpointPlan::ForceAsync,
                    "auto" => FixpointPlan::Auto,
                    other => die(&format!("unknown --plan {other}")),
                }
            }
            "--cluster" => {
                args.cluster = match val().as_str() {
                    "sim" => ClusterMode::InProcess,
                    "proc" => ClusterMode::Processes { workers: 2 },
                    other => die(&format!("unknown --cluster {other}")),
                }
            }
            "--worker-bin" => args.worker_bin = Some(PathBuf::from(val())),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.data_dir.as_os_str().is_empty() {
        die("--data-dir is required");
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("mura-crashd: {msg}");
    std::process::exit(2);
}

/// The full mutation schedule for a seed: the initial edge set and one
/// step per version 1..=rounds+1 (the extra step is the mid-stream
/// reload). Pure in the seed so interrupted and reference runs agree.
fn schedule(seed: u64, rounds: u64) -> (Vec<(u64, u64)>, Vec<Step>) {
    let g = erdos_renyi(NODES, 0.05, seed);
    let mut edges: Vec<(u64, u64)> = g.edges.iter().map(|&(s, _, d)| (s, d)).collect();
    edges.sort_unstable();
    edges.dedup();
    let initial = edges.clone();

    let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) | 1);
    let mut steps = Vec::new();
    let mut mirror = edges;
    for round in 0..rounds {
        let (n_ins, n_del) = if round % 4 == 3 { (1, 5) } else { (3, 1) };
        let mut ins: Vec<(u64, u64)> = Vec::new();
        while ins.len() < n_ins {
            let e = (rng.gen_range(0..NODES), rng.gen_range(0..NODES));
            if !mirror.contains(&e) && !ins.contains(&e) {
                ins.push(e);
            }
        }
        let mut del: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n_del {
            if let Some(&e) = rng.choose(&mirror) {
                if !del.contains(&e) {
                    del.push(e);
                }
            }
        }
        mirror.retain(|e| !del.contains(e));
        mirror.extend(ins.iter().copied());
        mirror.sort_unstable();
        mirror.dedup();
        steps.push(Step::Delta { ins, del });
        if round + 1 == rounds / 2 {
            steps.push(Step::Load);
        }
    }
    (initial, steps)
}

fn db_from_edges(edges: &[(u64, u64)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("edge", Relation::from_pairs(src, dst, edges.iter().copied()));
    db
}

fn apply_to_mirror(mirror: &mut Vec<(u64, u64)>, step: &Step) {
    if let Step::Delta { ins, del } = step {
        mirror.retain(|e| !del.contains(e));
        mirror.extend(ins.iter().copied());
        mirror.sort_unstable();
        mirror.dedup();
    }
}

fn main() {
    let args = parse_args();
    let (initial, steps) = schedule(args.seed, args.rounds);

    let exec = ExecConfig { plan: args.plan, ..Default::default() };
    let config = ServeConfig {
        cluster: args.cluster,
        worker_bin: args.worker_bin.clone(),
        data_dir: Some(args.data_dir.clone()),
        snapshot_every: args.snapshot_every,
        ..Default::default()
    };
    let server = Server::recover(QueryEngine::with_config(db_from_edges(&initial), exec), config)
        .unwrap_or_else(|e| die(&format!("recover: {e}")));
    let client = server.client();

    let recovered = server.version();
    let stats = server.stats();
    println!(
        "RECOVERED v={recovered} replayed={} snapshots={}",
        stats.recovery_replayed_batches, stats.snapshots_written
    );

    // Fast-forward the mirror over steps a previous process made durable.
    let mut mirror = initial;
    for step in steps.iter().take(recovered as usize) {
        apply_to_mirror(&mut mirror, step);
    }

    for (i, step) in steps.iter().enumerate().skip(recovered as usize) {
        // Warm the cached view at the current version: maintenance (and
        // its summary) is only interesting when there is a view to keep.
        client.query(TC).unwrap_or_else(|e| die(&format!("warm query: {e}")));
        if std::env::var_os("MURA_CRASHD_DEBUG").is_some() {
            let st = server.stats();
            eprintln!(
                "DBG step={i} v={} gen={} fixpoints={} plan_miss={} plan_hit={} res_hit={} res_miss={}",
                server.version(),
                st.feedback_generation,
                st.feedback_fixpoints,
                st.plan_misses,
                st.plan_hits,
                st.result_hits,
                st.result_misses,
            );
        }
        match step {
            Step::Delta { ins, del } => {
                let batch = server.with_db(|db| {
                    let rel = db.dict().lookup("edge").expect("edge relation");
                    let mut b = DeltaBatch::new();
                    for &(x, y) in ins {
                        let row = vec![Value::node(x), Value::node(y)].into_boxed_slice();
                        b.push_insert(db, rel, row).expect("push insert");
                    }
                    for &(x, y) in del {
                        let row = vec![Value::node(x), Value::node(y)].into_boxed_slice();
                        b.push_delete(db, rel, row).expect("push delete");
                    }
                    b
                });
                let s = server
                    .apply_delta(batch)
                    .unwrap_or_else(|e| die(&format!("apply_delta step {i}: {e}")));
                println!(
                    "DELTA v={} ins={} del={} maintained={} unaffected={} \
                     recomputed={} rederived={}",
                    s.version,
                    s.inserted,
                    s.deleted,
                    s.maintained,
                    s.unaffected,
                    s.recomputed,
                    s.rederived
                );
            }
            Step::Load => {
                apply_to_mirror(&mut mirror, step);
                let edges = mirror.clone();
                server
                    .try_load(move |db| {
                        let src = db.intern("src");
                        let dst = db.intern("dst");
                        db.insert_relation(
                            "edge",
                            Relation::from_pairs(src, dst, edges.iter().copied()),
                        );
                    })
                    .unwrap_or_else(|e| die(&format!("load step {i}: {e}")));
                println!("LOAD v={}", server.version());
                continue;
            }
        }
        apply_to_mirror(&mut mirror, step);
    }

    let out = client.query(TC).unwrap_or_else(|e| die(&format!("final query: {e}")));
    let rows = out.relation.sorted_rows();
    let mut h = FxHasher::default();
    rows.hash(&mut h);
    println!(
        "FINAL v={} epoch={} rows={} hash={:016x}",
        server.version(),
        server.epoch(),
        rows.len(),
        h.finish()
    );
    server.shutdown();
}
