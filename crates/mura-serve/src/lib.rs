//! mura-serve: concurrent query serving over the Dist-μ-RA engine.
//!
//! The engine crates answer *one query at a time for one caller*. This
//! crate turns an engine into a long-lived, shared **query service**:
//!
//! * [`Server`] owns a [`QueryEngine`](mura_dist::QueryEngine) behind a
//!   read/write lock and a pool of executor threads. Planning (which
//!   interns symbols) takes the write lock; executions share read locks
//!   and run concurrently.
//! * **Admission control** — a bounded queue in front of the pool. When
//!   full, [`Client::submit`] fails *immediately* with
//!   [`ServeError::Busy`] instead of queueing without bound.
//! * **Overload protection** — a degradation ladder past the queue:
//!   cost-aware memory shedding (live [`mura_core::mem_gauge`] plus a
//!   cost-model byte estimate against a watermark), a per-plan circuit
//!   breaker that opens after repeated `MemoryExceeded`/`WorkerFailed`
//!   and half-opens on a cooldown, and graceful drain
//!   ([`Server::drain`], the `.drain` verb). Shed queries get a
//!   structured [`ServeError::Overloaded`] with a machine-parseable
//!   `retry-after-ms` hint; every admitted query terminates in exactly
//!   one of answer or typed error.
//! * **Caching** — an LRU result cache keyed by the canonical key of the
//!   *optimized plan* plus the database *epoch* (bumped by
//!   [`Server::load`] calls that change the catalog's shape), and an LRU
//!   plan cache keyed by query text plus epoch. Cached answers also carry
//!   the database *version* — bumped by every mutation — and only hit
//!   while current.
//! * **Incremental view maintenance** — [`Server::apply_delta`] (the
//!   `.insert`/`.delete` verbs) applies an edge-level [`DeltaBatch`]
//!   without a reload and brings cached fixpoint answers forward in
//!   place: insertions resume the drivers' semi-naive delta loop from the
//!   captured totals, deletions run DRed (over-delete, rederive). Views
//!   the maintenance planner cannot or should not maintain fall back to
//!   recompute-on-next-use — see [`mura_ivm`] and [`DeltaSummary`].
//! * **Cancellation & deadlines** — every query carries a
//!   [`CancellationToken`](mura_core::CancellationToken) checked at each
//!   fixpoint superstep; deadlines start at submission.
//! * **Telemetry** — log-spaced latency histograms (wall, queue wait,
//!   execution, planning) and communication totals feed `.stats`
//!   quantile lines and a `.metrics` Prometheus text-exposition page;
//!   [`Client::profile`] (the `.profile` verb) runs a query with
//!   per-superstep tracing and returns its timeline.
//! * A line-oriented **TCP protocol** ([`protocol`]) compatible with the
//!   `murash` shell's verbs, for out-of-process clients.
//!
//! ```
//! use mura_core::{Database, Relation};
//! use mura_dist::QueryEngine;
//! use mura_serve::{ServeConfig, Server};
//!
//! let mut db = Database::new();
//! let src = db.intern("src");
//! let dst = db.intern("dst");
//! db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
//!
//! let server = Server::start(QueryEngine::new(db), ServeConfig::default());
//! let client = server.client();
//! let out = client.query("?x, ?y <- ?x a+ ?y").unwrap();
//! assert_eq!(out.relation.len(), 3);
//! // Early runs feed observed cardinalities back into the planner and
//! // may replan; once converged, repeats hit the result cache.
//! client.query("?x, ?y <- ?x a+ ?y").unwrap();
//! client.query("?x, ?y <- ?x a+ ?y").unwrap();
//! assert!(server.stats().result_hits >= 1);
//! server.shutdown();
//! ```

pub mod cache;
pub mod error;
pub mod protocol;
pub mod server;

pub use cache::{plan_key, LruCache};
pub use error::{OverloadReason, ServeError, ServeResult};
pub use mura_durable::SyncPolicy;
pub use mura_ivm::{DeltaBatch, RelDelta};
pub use protocol::{read_response, serve_tcp, FrameError, TcpServeHandle, MAX_LINE};
pub use server::{Client, ClusterMode, DeltaSummary, Pending, ServeConfig, ServeStats, Server};
