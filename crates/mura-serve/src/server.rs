//! The concurrent query server.
//!
//! Architecture (one process, many clients):
//!
//! ```text
//!  Client ──try_send──▶ bounded queue ──▶ worker pool ──▶ QueryEngine
//!     │       │                               │               │
//!     │       └─ full → ServeError::Busy      │          RwLock<engine>
//!     │                                       │   write: planning (interns
//!     └── CancellationToken ──────────────────┘          symbols)
//!                                                  read: execution (many
//!                                                        at once)
//! ```
//!
//! * **Admission control**: queries enter through a `sync_channel` bounded
//!   at `queue_depth`. A full queue rejects immediately with
//!   [`ServeError::Busy`] — the server never builds unbounded backlog.
//! * **Caching**: a plan cache (query text → optimized plan) and a result
//!   cache (canonical plan key → answer) both keyed additionally by the
//!   **database epoch**, a counter bumped on every mutation through
//!   [`Server::load`]. Old-epoch entries become unreachable and age out of
//!   the LRU.
//! * **Cancellation & deadlines**: every admitted query carries a
//!   [`CancellationToken`]; deadlines start at submission, so time spent
//!   queued counts against the budget. The evaluator checks the token at
//!   every fixpoint superstep.

use crate::cache::{plan_key, LruCache};
use crate::error::{ServeError, ServeResult};
use mura_core::{CancellationToken, Database, Term};
use mura_dist::exec::ResourceLimits;
use mura_dist::{PlannedQuery, QueryEngine, QueryOutput, TraceLevel};
use mura_obs::histogram::fmt_us;
use mura_obs::{Histogram, PromText};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor pool size: how many queries run concurrently.
    pub workers: usize,
    /// Admission queue bound: how many admitted queries may wait for a
    /// worker. Beyond this, submissions fail fast with [`ServeError::Busy`].
    pub queue_depth: usize,
    /// Result cache capacity in entries (0 disables result caching).
    pub result_cache: usize,
    /// Plan cache capacity in entries (0 disables plan caching).
    pub plan_cache: usize,
    /// Deadline applied to queries submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Per-query resource limits enforced during execution.
    pub limits: ResourceLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            result_cache: 128,
            plan_cache: 128,
            default_deadline: None,
            limits: ResourceLimits::default(),
        }
    }
}

/// Point-in-time serving counters (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries rejected with [`ServeError::Busy`].
    pub rejected: u64,
    /// Queries that finished with an answer.
    pub completed: u64,
    /// Queries that finished with an error (incl. cancelled / deadline).
    pub failed: u64,
    /// Plan-cache hits / misses.
    pub plan_hits: u64,
    pub plan_misses: u64,
    /// Result-cache hits / misses.
    pub result_hits: u64,
    pub result_misses: u64,
    /// Evictions from the result / plan caches.
    pub result_evictions: u64,
    pub plan_evictions: u64,
    /// Current database epoch.
    pub epoch: u64,
    /// Evaluation-kernel counters (process-wide, see
    /// [`mura_core::kernel`]): build-side join/antijoin indexes built,
    /// rows probed against them, output rows materialized, and constant
    /// subtrees folded at prepare time.
    pub kernel_index_builds: u64,
    pub kernel_join_probes: u64,
    pub kernel_antijoin_probes: u64,
    pub kernel_rows_allocated: u64,
    pub kernel_const_folds: u64,
    /// Queries that completed correctly but hit injected or real faults
    /// along the way (the answer is still exact; see
    /// `QueryOutput::health_note` (mura_dist::QueryOutput)).
    pub degraded: u64,
    /// Fault/recovery totals accumulated across all executed queries:
    /// injected faults, task retries, checkpoint restores, full restarts.
    pub faults_injected: u64,
    pub fault_retries: u64,
    pub fault_restores: u64,
    pub fault_restarts: u64,
    /// Latency quantiles in microseconds, derived from the server's
    /// log-spaced histograms (0 when no samples yet). `wall` covers
    /// submission to answer (queue time included), `queue` the wait for a
    /// worker, `exec` fresh (non-cached) executions only.
    pub wall_p50_us: u64,
    pub wall_p95_us: u64,
    pub wall_p99_us: u64,
    pub queue_p50_us: u64,
    pub queue_p95_us: u64,
    pub queue_p99_us: u64,
    pub exec_p50_us: u64,
    pub exec_p95_us: u64,
    pub exec_p99_us: u64,
    /// Communication totals accumulated across fresh executions (cache
    /// hits replay an answer, not its communication). Derived per query
    /// via `snapshot().since(before)` deltas, never by resetting the
    /// shared cluster counters.
    pub comm_shuffles: u64,
    pub comm_rows_shuffled: u64,
    pub comm_broadcasts: u64,
    pub comm_rows_broadcast: u64,
}

impl ServeStats {
    /// Result-cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.result_hits + self.result_misses;
        if total == 0 {
            0.0
        } else {
            self.result_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "submitted  {}", self.submitted)?;
        writeln!(f, "rejected   {}", self.rejected)?;
        writeln!(f, "completed  {}", self.completed)?;
        writeln!(f, "failed     {}", self.failed)?;
        writeln!(
            f,
            "plan cache   {} hits / {} misses ({} evictions)",
            self.plan_hits, self.plan_misses, self.plan_evictions
        )?;
        writeln!(
            f,
            "result cache {} hits / {} misses ({} evictions), hit rate {:.0}%",
            self.result_hits,
            self.result_misses,
            self.result_evictions,
            self.hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "kernel       {} index builds, {} join probes / {} antijoin probes, {} rows allocated, {} const folds",
            self.kernel_index_builds,
            self.kernel_join_probes,
            self.kernel_antijoin_probes,
            self.kernel_rows_allocated,
            self.kernel_const_folds
        )?;
        writeln!(
            f,
            "faults       {} degraded queries, {} injected, {} retries / {} restores / {} restarts",
            self.degraded,
            self.faults_injected,
            self.fault_retries,
            self.fault_restores,
            self.fault_restarts
        )?;
        writeln!(
            f,
            "latency      p50 {} / p95 {} / p99 {} (wall, incl. queue)",
            fmt_us(self.wall_p50_us),
            fmt_us(self.wall_p95_us),
            fmt_us(self.wall_p99_us)
        )?;
        writeln!(
            f,
            "queue wait   p50 {} / p95 {} / p99 {}",
            fmt_us(self.queue_p50_us),
            fmt_us(self.queue_p95_us),
            fmt_us(self.queue_p99_us)
        )?;
        writeln!(
            f,
            "execution    p50 {} / p95 {} / p99 {} (fresh runs)",
            fmt_us(self.exec_p50_us),
            fmt_us(self.exec_p95_us),
            fmt_us(self.exec_p99_us)
        )?;
        writeln!(
            f,
            "comm         {} shuffles / {} rows shuffled, {} broadcasts / {} rows broadcast",
            self.comm_shuffles,
            self.comm_rows_shuffled,
            self.comm_broadcasts,
            self.comm_rows_broadcast
        )?;
        write!(f, "epoch      {}", self.epoch)
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    degraded: AtomicU64,
    faults_injected: AtomicU64,
    fault_retries: AtomicU64,
    fault_restores: AtomicU64,
    fault_restarts: AtomicU64,
}

/// Latency histograms and communication totals accumulated over the
/// server's lifetime. Histograms are log-spaced (power-of-two microsecond
/// buckets, see [`mura_obs::histogram`]) so p50/p95/p99 and a Prometheus
/// exposition both derive from the same counters.
#[derive(Default)]
struct Telemetry {
    /// Submission → answer, queue time included. Every finished query.
    wall: Histogram,
    /// Submission → a worker picking the job up.
    queue: Histogram,
    /// Evaluator time of fresh (non-cached) executions.
    execution: Histogram,
    /// Planning time of plan-cache misses.
    planning: Histogram,
    /// Communication of fresh executions (per-query `since()` deltas).
    shuffles: AtomicU64,
    rows_shuffled: AtomicU64,
    broadcasts: AtomicU64,
    rows_broadcast: AtomicU64,
}

impl Telemetry {
    fn record_comm(&self, comm: &mura_dist::CommSnapshot) {
        self.shuffles.fetch_add(comm.shuffles, Ordering::Relaxed);
        self.rows_shuffled.fetch_add(comm.rows_shuffled, Ordering::Relaxed);
        self.broadcasts.fetch_add(comm.broadcasts, Ordering::Relaxed);
        self.rows_broadcast.fetch_add(comm.rows_broadcast, Ordering::Relaxed);
    }
}

struct QueryJob {
    query: String,
    token: CancellationToken,
    /// Tracing level for this execution. Anything above `Off` also bypasses
    /// the result cache: a cached answer has no trace to return, and a
    /// traced answer must not be replayed to clients that never asked for
    /// the tracing overhead.
    trace: TraceLevel,
    /// When the job was admitted; queue wait and wall latency both start here.
    submitted: Instant,
    reply: std::sync::mpsc::Sender<ServeResult<Arc<QueryOutput>>>,
}

enum Job {
    Query(QueryJob),
    /// Shutdown pill: one per worker, sent by [`Server::shutdown`].
    Poison,
}

struct ServerInner {
    engine: RwLock<QueryEngine>,
    /// Bumped (under the engine write lock) on every [`Server::load`].
    epoch: AtomicU64,
    results: Mutex<LruCache<(u64, u64), Arc<QueryOutput>>>,
    plans: Mutex<LruCache<(String, u64), Term>>,
    counters: Counters,
    telemetry: Telemetry,
    closing: AtomicBool,
    config: ServeConfig,
}

/// Poison-tolerant lock helpers: a worker that panicked mid-query must not
/// take the whole server down with `PoisonError`s.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ServerInner {
    fn read_engine(&self) -> std::sync::RwLockReadGuard<'_, QueryEngine> {
        self.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine(&self) -> std::sync::RwLockWriteGuard<'_, QueryEngine> {
        self.engine.write().unwrap_or_else(|e| e.into_inner())
    }

    fn process(&self, job: &QueryJob) -> ServeResult<Arc<QueryOutput>> {
        // A query may have spent its whole deadline waiting in the queue.
        job.token.check()?;

        // Plan: cache on (query text, epoch); misses take the engine write
        // lock because UCRPQ translation interns symbols.
        let mut epoch = self.epoch.load(Ordering::Acquire);
        let plan_cache_key = (job.query.clone(), epoch);
        let cached = lock(&self.plans).get(&plan_cache_key);
        let planned = match cached {
            Some(plan) => {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                PlannedQuery { plan, planning: Duration::ZERO }
            }
            None => {
                self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
                let mut engine = self.write_engine();
                // Re-read under the lock: loads bump the epoch while holding
                // it, so this pins the epoch the plan was made against.
                epoch = self.epoch.load(Ordering::Acquire);
                let planned = engine.plan_ucrpq(&job.query)?;
                lock(&self.plans).insert((job.query.clone(), epoch), planned.plan.clone());
                self.telemetry.planning.record(planned.planning);
                planned
            }
        };

        // Result cache: canonical plan key + epoch. Traced jobs bypass it —
        // see `QueryJob::trace`.
        let traced = job.trace > TraceLevel::Off;
        let result_key = (plan_key(&planned.plan), epoch);
        if !traced {
            if let Some(hit) = lock(&self.results).get(&result_key) {
                self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            self.counters.result_misses.fetch_add(1, Ordering::Relaxed);
        }

        // Execute under the read lock: many executions run concurrently;
        // only planning and loads serialize.
        let engine = self.read_engine();
        let mut config = engine.config().clone();
        config.limits = self.config.limits;
        config.cancel = Some(job.token.clone());
        config.trace = job.trace;
        let out = Arc::new(engine.execute_plan_with(&planned, config)?);
        self.telemetry.execution.record(out.execution);
        self.telemetry.record_comm(&out.comm);
        // Accumulate fault/recovery accounting for fresh executions only —
        // cache hits replay an old answer, not its faults.
        let fault = &out.stats.fault;
        if fault.injected() > 0 || fault.recovered() {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            self.counters.faults_injected.fetch_add(fault.injected(), Ordering::Relaxed);
            self.counters.fault_retries.fetch_add(fault.task_retries, Ordering::Relaxed);
            self.counters.fault_restores.fetch_add(fault.checkpoint_restores, Ordering::Relaxed);
            self.counters.fault_restarts.fetch_add(fault.full_restarts, Ordering::Relaxed);
        }
        // A load may have slipped in between planning and taking the read
        // lock. The answer is then computed against the newer data — still
        // correct to return, but not safe to file under the old epoch.
        if !traced && self.epoch.load(Ordering::Acquire) == epoch {
            lock(&self.results).insert(result_key, out.clone());
        }
        Ok(out)
    }
}

/// A running query server. Dropping (or [`Server::shutdown`]) stops the
/// worker pool after draining queued queries.
pub struct Server {
    inner: Arc<ServerInner>,
    tx: SyncSender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over an engine. The engine's `ExecConfig`
    /// (worker count, plan policy, local engine) is used for every query;
    /// `config.limits` and the per-query cancellation token override the
    /// corresponding fields per execution.
    pub fn start(engine: QueryEngine, config: ServeConfig) -> Server {
        let workers = config.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let inner = Arc::new(ServerInner {
            engine: RwLock::new(engine),
            epoch: AtomicU64::new(0),
            results: Mutex::new(LruCache::new(config.result_cache)),
            plans: Mutex::new(LruCache::new(config.plan_cache)),
            counters: Counters::default(),
            telemetry: Telemetry::default(),
            closing: AtomicBool::new(false),
            config,
        });
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mura-serve-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Server { inner, tx, workers: handles }
    }

    /// A cheap, cloneable client handle. Clients stay valid for the
    /// server's lifetime; after shutdown they get [`ServeError::Closed`].
    pub fn client(&self) -> Client {
        Client { inner: Arc::clone(&self.inner), tx: self.tx.clone() }
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.inner)
    }

    /// The full telemetry as a Prometheus text-exposition page.
    pub fn metrics(&self) -> String {
        metrics_of(&self.inner)
    }

    /// Current database epoch (bumped by every [`Server::load`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Mutates the database (load relations, bind constants) and bumps the
    /// epoch so cached plans and results for the old contents are never
    /// served again. Blocks until in-flight executions finish.
    pub fn load(&self, f: impl FnOnce(&mut Database)) {
        let mut engine = self.inner.write_engine();
        f(engine.db_mut());
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Read access to the database (e.g. to resolve symbols in answers).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(self.inner.read_engine().db())
    }

    /// Stops accepting queries, drains the queue and joins the workers.
    pub fn shutdown(mut self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            // Blocking send: queued real work drains ahead of the pills.
            let _ = self.tx.send(Job::Poison);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // already shut down explicitly
        }
        self.inner.closing.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Job::Poison);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &ServerInner, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = match lock(rx).recv() {
            Ok(Job::Query(j)) => j,
            Ok(Job::Poison) | Err(_) => return,
        };
        inner.telemetry.queue.record(job.submitted.elapsed());
        let result = inner.process(&job);
        inner.telemetry.wall.record(job.submitted.elapsed());
        match &result {
            Ok(_) => inner.counters.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => inner.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        // The submitter may have given up waiting; that's fine.
        let _ = job.reply.send(result);
    }
}

fn stats_of(inner: &ServerInner) -> ServeStats {
    let c = &inner.counters;
    let t = &inner.telemetry;
    let k = mura_core::kernel::kernel_stats().snapshot();
    let wall = t.wall.snapshot();
    let queue = t.queue.snapshot();
    let exec = t.execution.snapshot();
    let q = |s: &mura_obs::HistogramSnapshot, p: f64| s.quantile_us(p).unwrap_or(0);
    ServeStats {
        submitted: c.submitted.load(Ordering::Relaxed),
        rejected: c.rejected.load(Ordering::Relaxed),
        completed: c.completed.load(Ordering::Relaxed),
        failed: c.failed.load(Ordering::Relaxed),
        plan_hits: c.plan_hits.load(Ordering::Relaxed),
        plan_misses: c.plan_misses.load(Ordering::Relaxed),
        result_hits: c.result_hits.load(Ordering::Relaxed),
        result_misses: c.result_misses.load(Ordering::Relaxed),
        result_evictions: lock(&inner.results).evictions(),
        plan_evictions: lock(&inner.plans).evictions(),
        epoch: inner.epoch.load(Ordering::Acquire),
        kernel_index_builds: k.index_builds + k.key_index_builds,
        kernel_join_probes: k.join_probes,
        kernel_antijoin_probes: k.antijoin_probes,
        kernel_rows_allocated: k.rows_allocated,
        kernel_const_folds: k.const_folds,
        degraded: c.degraded.load(Ordering::Relaxed),
        faults_injected: c.faults_injected.load(Ordering::Relaxed),
        fault_retries: c.fault_retries.load(Ordering::Relaxed),
        fault_restores: c.fault_restores.load(Ordering::Relaxed),
        fault_restarts: c.fault_restarts.load(Ordering::Relaxed),
        wall_p50_us: q(&wall, 0.50),
        wall_p95_us: q(&wall, 0.95),
        wall_p99_us: q(&wall, 0.99),
        queue_p50_us: q(&queue, 0.50),
        queue_p95_us: q(&queue, 0.95),
        queue_p99_us: q(&queue, 0.99),
        exec_p50_us: q(&exec, 0.50),
        exec_p95_us: q(&exec, 0.95),
        exec_p99_us: q(&exec, 0.99),
        comm_shuffles: t.shuffles.load(Ordering::Relaxed),
        comm_rows_shuffled: t.rows_shuffled.load(Ordering::Relaxed),
        comm_broadcasts: t.broadcasts.load(Ordering::Relaxed),
        comm_rows_broadcast: t.rows_broadcast.load(Ordering::Relaxed),
    }
}

/// Renders the full telemetry of a server as a Prometheus text-exposition
/// page (format 0.0.4): query outcome / cache / kernel / fault counters,
/// communication totals, the latency histograms and the database epoch.
fn metrics_of(inner: &ServerInner) -> String {
    let s = stats_of(inner);
    let t = &inner.telemetry;
    let mut p = PromText::new();
    p.family("mura_queries_total", "counter", "Queries by final outcome.");
    p.sample("mura_queries_total", &[("outcome", "completed")], s.completed as f64);
    p.sample("mura_queries_total", &[("outcome", "failed")], s.failed as f64);
    p.sample("mura_queries_total", &[("outcome", "rejected")], s.rejected as f64);
    p.counter("mura_queries_submitted_total", "Queries admitted into the queue.", s.submitted);
    p.family("mura_cache_events_total", "counter", "Plan/result cache hits, misses, evictions.");
    for (cache, hits, misses, evictions) in [
        ("plan", s.plan_hits, s.plan_misses, s.plan_evictions),
        ("result", s.result_hits, s.result_misses, s.result_evictions),
    ] {
        p.sample("mura_cache_events_total", &[("cache", cache), ("event", "hit")], hits as f64);
        p.sample("mura_cache_events_total", &[("cache", cache), ("event", "miss")], misses as f64);
        p.sample(
            "mura_cache_events_total",
            &[("cache", cache), ("event", "eviction")],
            evictions as f64,
        );
    }
    p.counter("mura_comm_shuffles_total", "Shuffle operations across executions.", s.comm_shuffles);
    p.counter("mura_comm_rows_shuffled_total", "Rows moved by shuffles.", s.comm_rows_shuffled);
    p.counter("mura_comm_broadcasts_total", "Broadcast operations.", s.comm_broadcasts);
    p.counter(
        "mura_comm_rows_broadcast_total",
        "Rows replicated by broadcasts.",
        s.comm_rows_broadcast,
    );
    p.counter("mura_faults_injected_total", "Faults injected into executions.", s.faults_injected);
    p.family("mura_fault_recoveries_total", "counter", "Recovery actions by kind.");
    p.sample("mura_fault_recoveries_total", &[("action", "retry")], s.fault_retries as f64);
    p.sample("mura_fault_recoveries_total", &[("action", "restore")], s.fault_restores as f64);
    p.sample("mura_fault_recoveries_total", &[("action", "restart")], s.fault_restarts as f64);
    p.counter("mura_degraded_queries_total", "Queries that recovered from faults.", s.degraded);
    p.family("mura_kernel_events_total", "counter", "Evaluation-kernel counters (process-wide).");
    for (event, v) in [
        ("index_build", s.kernel_index_builds),
        ("join_probe", s.kernel_join_probes),
        ("antijoin_probe", s.kernel_antijoin_probes),
        ("rows_allocated", s.kernel_rows_allocated),
        ("const_fold", s.kernel_const_folds),
    ] {
        p.sample("mura_kernel_events_total", &[("event", event)], v as f64);
    }
    p.histogram(
        "mura_query_wall_seconds",
        "Submission-to-answer latency, queue time included.",
        &t.wall.snapshot(),
    );
    p.histogram("mura_query_queue_seconds", "Wait for a worker.", &t.queue.snapshot());
    p.histogram(
        "mura_query_execution_seconds",
        "Evaluator time of fresh executions.",
        &t.execution.snapshot(),
    );
    p.histogram(
        "mura_query_planning_seconds",
        "Planning time of plan-cache misses.",
        &t.planning.snapshot(),
    );
    p.gauge("mura_db_epoch", "Current database epoch.", s.epoch as f64);
    p.finish()
}

/// A handle for submitting queries to a [`Server`]. Cloneable and
/// sendable across threads.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ServerInner>,
    tx: SyncSender<Job>,
}

impl Client {
    /// Submits a query and blocks for the answer, under the server's
    /// default deadline (if any).
    pub fn query(&self, query: &str) -> ServeResult<Arc<QueryOutput>> {
        self.submit(query, self.inner.config.default_deadline)?.wait()
    }

    /// Submits a query and blocks for the answer under an explicit
    /// deadline. The deadline clock starts now — queue time counts.
    pub fn query_with_deadline(
        &self,
        query: &str,
        deadline: Duration,
    ) -> ServeResult<Arc<QueryOutput>> {
        self.submit(query, Some(deadline))?.wait()
    }

    /// Runs a query with per-superstep tracing forced on, bypassing the
    /// result cache, and blocks for the answer. The output's
    /// `stats.trace` then carries the full [`mura_dist::QueryTrace`]
    /// (superstep timeline, communication per iteration) — see the
    /// `.profile` protocol command.
    pub fn profile(&self, query: &str) -> ServeResult<Arc<QueryOutput>> {
        self.submit_traced(query, self.inner.config.default_deadline, TraceLevel::Superstep)?.wait()
    }

    /// Non-blocking submission. Returns a [`Pending`] on admission, or
    /// [`ServeError::Busy`] immediately when the queue is full.
    pub fn submit(&self, query: &str, deadline: Option<Duration>) -> ServeResult<Pending> {
        self.submit_traced(query, deadline, TraceLevel::Off)
    }

    fn submit_traced(
        &self,
        query: &str,
        deadline: Option<Duration>,
        trace: TraceLevel,
    ) -> ServeResult<Pending> {
        if self.inner.closing.load(Ordering::SeqCst) {
            return Err(ServeError::Closed);
        }
        let token = match deadline {
            Some(d) => CancellationToken::with_timeout(d),
            None => CancellationToken::new(),
        };
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let job = QueryJob {
            query: query.to_string(),
            token: token.clone(),
            trace,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        match self.tx.try_send(Job::Query(job)) {
            Ok(()) => {
                self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Pending { rx: reply_rx, token })
            }
            Err(TrySendError::Full(_)) => {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Busy { queue_depth: self.inner.config.queue_depth.max(1) })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
        }
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.inner)
    }

    /// The full telemetry as a Prometheus text-exposition page.
    pub fn metrics(&self) -> String {
        metrics_of(&self.inner)
    }

    /// Read access to the database (resolve symbols, list relations).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(self.inner.read_engine().db())
    }
}

/// An admitted, in-flight query.
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<ServeResult<Arc<QueryOutput>>>,
    token: CancellationToken,
}

impl Pending {
    /// Requests cancellation; the evaluator stops at its next superstep
    /// and the query resolves to [`MuraError::Cancelled`]
    /// (mura_core::MuraError::Cancelled).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The query's cancellation token (cloneable; share it to let others
    /// cancel).
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Blocks until the query resolves.
    pub fn wait(self) -> ServeResult<Arc<QueryOutput>> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll; `None` while still running.
    pub fn try_wait(&self) -> Option<ServeResult<Arc<QueryOutput>>> {
        self.rx.try_recv().ok()
    }
}
