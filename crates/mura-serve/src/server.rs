//! The concurrent query server.
//!
//! Architecture (one process, many clients):
//!
//! ```text
//!  Client ──try_send──▶ bounded queue ──▶ worker pool ──▶ QueryEngine
//!     │       │                               │               │
//!     │       └─ full → ServeError::Busy      │          RwLock<engine>
//!     │                                       │   write: planning (interns
//!     └── CancellationToken ──────────────────┘          symbols)
//!                                                  read: execution (many
//!                                                        at once)
//! ```
//!
//! * **Admission control**: queries enter through a `sync_channel` bounded
//!   at `queue_depth`. A full queue rejects immediately with
//!   [`ServeError::Busy`] — the server never builds unbounded backlog.
//! * **Caching**: a plan cache (query text → optimized plan) and a result
//!   cache (canonical plan key → answer), both keyed additionally by the
//!   **database epoch** (bumped when a [`Server::load`] changes the
//!   catalog's shape). Cached answers also carry the **database version**
//!   — a counter bumped by *every* mutation — and only hit while their
//!   version is current.
//! * **Incremental view maintenance**: [`Server::apply_delta`] applies an
//!   edge-level [`DeltaBatch`] without a reload. Cached fixpoint answers
//!   are *maintained* instead of discarded: insertions seed the drivers'
//!   semi-naive delta loop from the old total, deletions run DRed
//!   (over-delete, rederive) — see `mura_ivm`. Views the maintenance
//!   planner cannot or should not maintain (non-monotone change, nested
//!   fixpoints, cold totals, or frontier larger than a recompute under
//!   the `rel_bytes` cost model) are dropped and recomputed on next use.
//! * **Cancellation & deadlines**: every admitted query carries a
//!   [`CancellationToken`]; deadlines start at submission, so time spent
//!   queued counts against the budget. The evaluator checks the token at
//!   every fixpoint superstep.

use crate::cache::{plan_key, LruCache};
use crate::error::{OverloadReason, ServeError, ServeResult};
use mura_core::fxhash::{FxHashMap, FxHasher};
use mura_core::{mem_gauge, rel_bytes, CancellationToken, Database, Term};
use mura_dist::exec::ResourceLimits;
use mura_dist::explain_plan;
use mura_dist::{
    ClusterHealth, CommBackend, CommSnapshot, ExecStats, FixResume, PlannedQuery, ProcCluster,
    ProcClusterConfig, QueryEngine, QueryOutput, TraceLevel,
};
use mura_durable::{
    crash_point, load_newest_snapshot, prune_older_snapshots, write_snapshot, SnapshotState,
    SyncPolicy, ViewSnapshot, Wal, WalRecord,
};
use mura_ivm::{plan_maintenance, DeltaBatch, FallbackReason, IvmOutcome};
use mura_obs::histogram::fmt_us;
use mura_obs::{Histogram, PromText};
use mura_rewrite::cost::{CostModel, Stats};
use mura_rewrite::FeedbackStore;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where query executions exchange partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterMode {
    /// The in-process cluster simulator (threads in this process,
    /// simulated communication accounting). The default.
    #[default]
    InProcess,
    /// A real [`ProcCluster`]: `workers` separate OS worker processes
    /// exchanging partitions over TCP, supervised with heartbeats and
    /// respawned on death. Wire bytes show up in the `mura_wire_bytes_total`
    /// metrics and the cluster gauges. The process cluster's worker count
    /// overrides the engine's `ExecConfig::workers` for every execution.
    Processes { workers: usize },
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Executor pool size: how many queries run concurrently.
    pub workers: usize,
    /// Admission queue bound: how many admitted queries may wait for a
    /// worker. Beyond this, submissions fail fast with [`ServeError::Busy`].
    pub queue_depth: usize,
    /// Result cache capacity in entries (0 disables result caching).
    pub result_cache: usize,
    /// Plan cache capacity in entries (0 disables plan caching).
    pub plan_cache: usize,
    /// Deadline applied to queries submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Per-query resource limits enforced during execution.
    pub limits: ResourceLimits,
    /// Process-wide memory watermark for admission. A submission is shed
    /// with [`ServeError::Overloaded`] when the live gauge
    /// ([`mura_core::mem_gauge`]) plus this query's cost-model byte
    /// estimate (available once its plan is cached) would exceed it.
    /// `None` disables the gate.
    pub memory_watermark_bytes: Option<u64>,
    /// Retry hint returned on [`ServeError::Busy`] and memory sheds.
    pub retry_after: Duration,
    /// Consecutive breaker-class failures (`MemoryExceeded`,
    /// `WorkerFailed`) on one canonical plan before its circuit breaker
    /// opens. 0 disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before letting one probe through
    /// (half-open).
    pub breaker_cooldown: Duration,
    /// Grace window for [`Server::drain`]: in-flight and queued queries
    /// that outlive it are cancelled (their replies still delivered).
    pub drain_grace: Duration,
    /// Communication substrate for executions (see [`ClusterMode`]).
    pub cluster: ClusterMode,
    /// Explicit `mura-worker` binary path for [`ClusterMode::Processes`].
    /// `None` resolves via the `MURA_WORKER_BIN` environment variable,
    /// then a sibling of the current executable.
    pub worker_bin: Option<PathBuf>,
    /// Durable-state directory. `Some(dir)` turns on the write-ahead log
    /// and snapshots: every mutation is logged (and fsync'd, per
    /// [`ServeConfig::wal_sync`]) before it is applied, and startup
    /// recovers the newest valid snapshot plus the WAL tail (see
    /// [`Server::recover`]). `None` (the default) serves purely in
    /// memory, as before.
    pub data_dir: Option<PathBuf>,
    /// Snapshot cadence when durability is on: after this many WAL
    /// appends since the last snapshot, the next mutation also writes a
    /// fresh snapshot and resets the WAL. 0 disables periodic snapshots
    /// (the bootstrap snapshot is still written).
    pub snapshot_every: u64,
    /// When WAL appends fsync (see [`SyncPolicy`]). `Always` is the
    /// durable default; `Never` is for benchmarks isolating logging
    /// overhead from fsync latency.
    pub wal_sync: SyncPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 8,
            result_cache: 128,
            plan_cache: 128,
            default_deadline: None,
            limits: ResourceLimits::default(),
            memory_watermark_bytes: None,
            retry_after: Duration::from_millis(100),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            drain_grace: Duration::from_secs(5),
            cluster: ClusterMode::InProcess,
            worker_bin: None,
            data_dir: None,
            snapshot_every: 64,
            wal_sync: SyncPolicy::Always,
        }
    }
}

/// Point-in-time serving counters (see [`Server::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries rejected with [`ServeError::Busy`].
    pub rejected: u64,
    /// Queries shed with [`ServeError::Overloaded`] (memory watermark or
    /// open circuit breaker), whether at submission or after admission.
    pub shed: u64,
    /// The subset of [`shed`](Self::shed) that was already admitted when
    /// the worker-side gates shed it. Admitted queries terminate as
    /// exactly one of completed / failed / shed_admitted.
    pub shed_admitted: u64,
    /// Circuit-breaker open transitions over the server's lifetime.
    pub breaker_opened: u64,
    /// Breakers currently open / half-open (instantaneous gauges).
    pub breaker_open: u64,
    pub breaker_half_open: u64,
    /// Live estimated relation bytes (process-wide gauge) and its
    /// high-water mark.
    pub mem_current_bytes: u64,
    pub mem_high_water_bytes: u64,
    /// Drain progress: 0 serving, 1 draining, 2 drained.
    pub drain_phase: u64,
    /// Queries that finished with an answer.
    pub completed: u64,
    /// Queries that executed and finished with an error (incl. cancelled
    /// / deadline). Worker-side sheds count under
    /// [`shed_admitted`](Self::shed_admitted), not here — matching
    /// submit-side sheds, which hit neither counter.
    pub failed: u64,
    /// Plan-cache hits / misses.
    pub plan_hits: u64,
    pub plan_misses: u64,
    /// Fixpoint cardinalities currently observed by the planner's feedback
    /// store, and the store's generation (bumped whenever the observation
    /// set changes materially — cached plans from older generations
    /// re-plan).
    pub feedback_fixpoints: u64,
    pub feedback_generation: u64,
    /// Result-cache hits / misses.
    pub result_hits: u64,
    pub result_misses: u64,
    /// Evictions from the result / plan caches.
    pub result_evictions: u64,
    pub plan_evictions: u64,
    /// Current database epoch.
    pub epoch: u64,
    /// Current database version (bumped by every mutation and load).
    pub version: u64,
    /// Mutation batches applied through [`Server::apply_delta`] and the
    /// base rows they inserted / deleted (after no-op normalization).
    pub deltas_applied: u64,
    pub delta_rows_inserted: u64,
    pub delta_rows_deleted: u64,
    /// Cached views brought to the current version: maintained
    /// incrementally (resumed fixpoint loops) vs revalidated untouched
    /// (the batch read none of their relations).
    pub ivm_maintained: u64,
    pub ivm_unaffected: u64,
    /// Cached views dropped for recompute-on-next-use (all fallback
    /// reasons; `.metrics` breaks this down per reason).
    pub ivm_fallbacks: u64,
    /// Rows DRed over-deleted and then rederived across maintained views.
    pub ivm_rederived_rows: u64,
    /// Per-view maintenance latency quantiles in microseconds.
    pub maint_p50_us: u64,
    pub maint_p95_us: u64,
    pub maint_p99_us: u64,
    /// Evaluation-kernel counters (process-wide, see
    /// [`mura_core::kernel`]): build-side join/antijoin indexes built,
    /// rows probed against them, output rows materialized, and constant
    /// subtrees folded at prepare time.
    pub kernel_index_builds: u64,
    pub kernel_join_probes: u64,
    pub kernel_antijoin_probes: u64,
    pub kernel_rows_allocated: u64,
    pub kernel_const_folds: u64,
    /// Queries that completed correctly but hit injected or real faults
    /// along the way (the answer is still exact; see
    /// `QueryOutput::health_note` (mura_dist::QueryOutput)).
    pub degraded: u64,
    /// Fault/recovery totals accumulated across all executed queries:
    /// injected faults, task retries, checkpoint restores, full restarts.
    pub faults_injected: u64,
    pub fault_retries: u64,
    pub fault_restores: u64,
    pub fault_restarts: u64,
    /// Latency quantiles in microseconds, derived from the server's
    /// log-spaced histograms (0 when no samples yet). `wall` covers
    /// submission to answer (queue time included), `queue` the wait for a
    /// worker, `exec` fresh (non-cached) executions only.
    pub wall_p50_us: u64,
    pub wall_p95_us: u64,
    pub wall_p99_us: u64,
    pub queue_p50_us: u64,
    pub queue_p95_us: u64,
    pub queue_p99_us: u64,
    pub exec_p50_us: u64,
    pub exec_p95_us: u64,
    pub exec_p99_us: u64,
    /// Communication totals accumulated across fresh executions (cache
    /// hits replay an answer, not its communication). Derived per query
    /// via `snapshot().since(before)` deltas, never by resetting the
    /// shared cluster counters.
    pub comm_shuffles: u64,
    pub comm_rows_shuffled: u64,
    pub comm_broadcasts: u64,
    pub comm_rows_broadcast: u64,
    /// Process-cluster supervision gauges/counters: configured workers,
    /// workers currently answering heartbeats, worker processes respawned
    /// and control connections re-established since startup. All zero
    /// under [`ClusterMode::InProcess`].
    pub cluster_workers: u64,
    pub cluster_workers_live: u64,
    pub cluster_respawns: u64,
    pub cluster_reconnects: u64,
    /// Heartbeat deadlines a worker missed before the supervisor stepped
    /// in, and worker-side trace spans dropped to the bounded sink.
    pub cluster_liveness_misses: u64,
    pub cluster_trace_dropped: u64,
    /// Worst per-fixpoint `max/median` worker-time ratio of the most
    /// recent traced execution, in thousandths (0 until one is observed).
    pub skew_ratio_milli: u64,
    /// Measured bytes on worker sockets across fresh executions (frames
    /// included), and the data-plane payload subset (exchange buckets and
    /// broadcast relations). Zero under [`ClusterMode::InProcess`].
    pub wire_tx_bytes: u64,
    pub wire_rx_bytes: u64,
    pub wire_exchange_bytes: u64,
    /// Durability counters (all zero when [`ServeConfig::data_dir`] is
    /// unset): WAL records appended and their on-disk bytes (framing
    /// included), snapshots written, seconds since the last snapshot, and
    /// WAL records replayed by this process's startup recovery.
    pub wal_appends: u64,
    pub wal_bytes: u64,
    pub snapshots_written: u64,
    pub snapshot_age_seconds: u64,
    pub recovery_replayed_batches: u64,
}

impl ServeStats {
    /// Result-cache hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.result_hits + self.result_misses;
        if total == 0 {
            0.0
        } else {
            self.result_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "submitted  {}", self.submitted)?;
        writeln!(f, "rejected   {}", self.rejected)?;
        writeln!(f, "shed       {} ({} after admission)", self.shed, self.shed_admitted)?;
        writeln!(f, "completed  {}", self.completed)?;
        writeln!(f, "failed     {}", self.failed)?;
        writeln!(
            f,
            "breakers     {} opens, {} open / {} half-open now",
            self.breaker_opened, self.breaker_open, self.breaker_half_open
        )?;
        writeln!(
            f,
            "memory       {} bytes live, {} high water",
            self.mem_current_bytes, self.mem_high_water_bytes
        )?;
        writeln!(
            f,
            "drain        {}",
            match self.drain_phase {
                0 => "serving",
                1 => "draining",
                _ => "drained",
            }
        )?;
        writeln!(
            f,
            "plan cache   {} hits / {} misses ({} evictions)",
            self.plan_hits, self.plan_misses, self.plan_evictions
        )?;
        writeln!(
            f,
            "feedback     {} observed fixpoints, generation {}",
            self.feedback_fixpoints, self.feedback_generation
        )?;
        writeln!(
            f,
            "result cache {} hits / {} misses ({} evictions), hit rate {:.0}%",
            self.result_hits,
            self.result_misses,
            self.result_evictions,
            self.hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "kernel       {} index builds, {} join probes / {} antijoin probes, {} rows allocated, {} const folds",
            self.kernel_index_builds,
            self.kernel_join_probes,
            self.kernel_antijoin_probes,
            self.kernel_rows_allocated,
            self.kernel_const_folds
        )?;
        writeln!(
            f,
            "faults       {} degraded queries, {} injected, {} retries / {} restores / {} restarts",
            self.degraded,
            self.faults_injected,
            self.fault_retries,
            self.fault_restores,
            self.fault_restarts
        )?;
        writeln!(
            f,
            "latency      p50 {} / p95 {} / p99 {} (wall, incl. queue)",
            fmt_us(self.wall_p50_us),
            fmt_us(self.wall_p95_us),
            fmt_us(self.wall_p99_us)
        )?;
        writeln!(
            f,
            "queue wait   p50 {} / p95 {} / p99 {}",
            fmt_us(self.queue_p50_us),
            fmt_us(self.queue_p95_us),
            fmt_us(self.queue_p99_us)
        )?;
        writeln!(
            f,
            "execution    p50 {} / p95 {} / p99 {} (fresh runs)",
            fmt_us(self.exec_p50_us),
            fmt_us(self.exec_p95_us),
            fmt_us(self.exec_p99_us)
        )?;
        writeln!(
            f,
            "comm         {} shuffles / {} rows shuffled, {} broadcasts / {} rows broadcast",
            self.comm_shuffles,
            self.comm_rows_shuffled,
            self.comm_broadcasts,
            self.comm_rows_broadcast
        )?;
        writeln!(
            f,
            "cluster      {}/{} workers live, {} respawns / {} reconnects / {} liveness misses",
            self.cluster_workers_live,
            self.cluster_workers,
            self.cluster_respawns,
            self.cluster_reconnects,
            self.cluster_liveness_misses
        )?;
        writeln!(
            f,
            "skew         ratio {:.3} (last traced run), {} worker spans dropped",
            self.skew_ratio_milli as f64 / 1000.0,
            self.cluster_trace_dropped
        )?;
        writeln!(
            f,
            "wire         {} bytes tx / {} bytes rx ({} payload)",
            self.wire_tx_bytes, self.wire_rx_bytes, self.wire_exchange_bytes
        )?;
        writeln!(
            f,
            "ivm          {} deltas (+{} -{} rows), {} maintained / {} untouched / {} recomputed, {} rows rederived",
            self.deltas_applied,
            self.delta_rows_inserted,
            self.delta_rows_deleted,
            self.ivm_maintained,
            self.ivm_unaffected,
            self.ivm_fallbacks,
            self.ivm_rederived_rows
        )?;
        writeln!(
            f,
            "maintenance  p50 {} / p95 {} / p99 {} (per maintained view)",
            fmt_us(self.maint_p50_us),
            fmt_us(self.maint_p95_us),
            fmt_us(self.maint_p99_us)
        )?;
        writeln!(
            f,
            "durability   {} wal appends ({} bytes), {} snapshots (age {}s), {} replayed at recovery",
            self.wal_appends,
            self.wal_bytes,
            self.snapshots_written,
            self.snapshot_age_seconds,
            self.recovery_replayed_batches
        )?;
        writeln!(f, "version    {}", self.version)?;
        write!(f, "epoch      {}", self.epoch)
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    shed_admitted: AtomicU64,
    breaker_opened: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    degraded: AtomicU64,
    faults_injected: AtomicU64,
    fault_retries: AtomicU64,
    fault_restores: AtomicU64,
    fault_restarts: AtomicU64,
    deltas_applied: AtomicU64,
    delta_rows_inserted: AtomicU64,
    delta_rows_deleted: AtomicU64,
    ivm_maintained: AtomicU64,
    ivm_unaffected: AtomicU64,
    ivm_rederived_rows: AtomicU64,
    /// Fallback-to-recompute decisions, per [`FallbackReason`] plus the
    /// planner/executor-error and stale-entry buckets.
    ivm_fallback_non_monotone: AtomicU64,
    ivm_fallback_nested_fixpoint: AtomicU64,
    ivm_fallback_cache_cold: AtomicU64,
    ivm_fallback_cost: AtomicU64,
    ivm_fallback_other: AtomicU64,
    /// Durability: WAL records appended / their on-disk bytes, snapshots
    /// written, and WAL records replayed by startup recovery.
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    recovery_replayed: AtomicU64,
}

impl Counters {
    fn fallback_counter(&self, reason: Option<FallbackReason>) -> &AtomicU64 {
        match reason {
            Some(FallbackReason::NonMonotone) => &self.ivm_fallback_non_monotone,
            Some(FallbackReason::NestedFixpoint) => &self.ivm_fallback_nested_fixpoint,
            Some(FallbackReason::CacheCold) => &self.ivm_fallback_cache_cold,
            Some(FallbackReason::Cost) => &self.ivm_fallback_cost,
            None => &self.ivm_fallback_other,
        }
    }

    fn ivm_fallbacks(&self) -> u64 {
        self.ivm_fallback_non_monotone.load(Ordering::Relaxed)
            + self.ivm_fallback_nested_fixpoint.load(Ordering::Relaxed)
            + self.ivm_fallback_cache_cold.load(Ordering::Relaxed)
            + self.ivm_fallback_cost.load(Ordering::Relaxed)
            + self.ivm_fallback_other.load(Ordering::Relaxed)
    }
}

/// Latency histograms and communication totals accumulated over the
/// server's lifetime. Histograms are log-spaced (power-of-two microsecond
/// buckets, see [`mura_obs::histogram`]) so p50/p95/p99 and a Prometheus
/// exposition both derive from the same counters.
#[derive(Default)]
struct Telemetry {
    /// Submission → answer, queue time included. Every finished query.
    wall: Histogram,
    /// Submission → a worker picking the job up.
    queue: Histogram,
    /// Evaluator time of fresh (non-cached) executions.
    execution: Histogram,
    /// Planning time of plan-cache misses.
    planning: Histogram,
    /// Per-view incremental maintenance latency (planning the resume
    /// state + the resumed execution), maintained and untouched views.
    maintenance: Histogram,
    /// Communication of fresh executions (per-query `since()` deltas).
    shuffles: AtomicU64,
    rows_shuffled: AtomicU64,
    broadcasts: AtomicU64,
    rows_broadcast: AtomicU64,
    /// Measured socket bytes of fresh executions ([`ClusterMode::Processes`]
    /// only; the in-process simulator moves no bytes).
    wire_tx_bytes: AtomicU64,
    wire_rx_bytes: AtomicU64,
    wire_exchange_bytes: AtomicU64,
    /// Per-worker per-superstep durations of traced executions, across
    /// every worker lane of the merged trace (both cluster modes).
    worker_superstep: Histogram,
    /// Worst per-fixpoint `max/median` worker-time ratio observed by the
    /// most recent traced execution, in thousandths (gauge; 0 = no traced
    /// multi-worker fixpoint seen yet).
    skew_ratio_milli: AtomicU64,
}

impl Telemetry {
    fn record_comm(&self, comm: &mura_dist::CommSnapshot) {
        self.shuffles.fetch_add(comm.shuffles, Ordering::Relaxed);
        self.rows_shuffled.fetch_add(comm.rows_shuffled, Ordering::Relaxed);
        self.broadcasts.fetch_add(comm.broadcasts, Ordering::Relaxed);
        self.rows_broadcast.fetch_add(comm.rows_broadcast, Ordering::Relaxed);
        self.wire_tx_bytes.fetch_add(comm.wire_tx_bytes, Ordering::Relaxed);
        self.wire_rx_bytes.fetch_add(comm.wire_rx_bytes, Ordering::Relaxed);
        self.wire_exchange_bytes.fetch_add(comm.wire_exchange_bytes, Ordering::Relaxed);
    }

    /// Folds a merged per-query trace into the server-wide skew telemetry:
    /// every worker-lane superstep duration feeds the histogram, and the
    /// worst per-fixpoint `max/median` ratio updates the gauge.
    fn record_trace(&self, trace: &mura_obs::QueryTrace) {
        for ev in &trace.events {
            if ev.kind == mura_obs::EventKind::Superstep && ev.worker >= 0 {
                self.worker_superstep.record_us(ev.dur_us);
            }
        }
        let worst = trace.skew_by_fixpoint().iter().map(|s| (s.skew_ratio * 1000.0) as u64).max();
        if let Some(m) = worst {
            self.skew_ratio_milli.store(m, Ordering::Relaxed);
        }
    }
}

/// Circuit-breaker lifecycle for one canonical plan key:
/// `Closed` → (threshold consecutive breaker-class failures) → `Open` →
/// (cooldown elapses; one probe admitted) → `HalfOpen` → success closes,
/// failure re-opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct Breaker {
    state: BreakerState,
    /// Consecutive breaker-class failures since the last success.
    consecutive: u32,
    opened_at: Instant,
}

struct QueryJob {
    id: u64,
    query: String,
    token: CancellationToken,
    /// Tracing level for this execution. Anything above `Off` also bypasses
    /// the result cache: a cached answer has no trace to return, and a
    /// traced answer must not be replayed to clients that never asked for
    /// the tracing overhead.
    trace: TraceLevel,
    /// When the job was admitted; queue wait and wall latency both start here.
    submitted: Instant,
    reply: std::sync::mpsc::Sender<ServeResult<Arc<QueryOutput>>>,
}

enum Job {
    Query(QueryJob),
    /// Shutdown pill: one per worker, sent by [`Server::shutdown`].
    Poison,
}

/// One result-cache slot: the answer (with its captured fixpoint totals
/// inside `output.stats.fix_totals`) and the database version it is exact
/// at. A lookup only hits while the stored version is current; mutations
/// bring entries forward through incremental maintenance.
#[derive(Clone)]
struct CachedResult {
    version: u64,
    output: Arc<QueryOutput>,
}

/// What one [`Server::apply_delta`] call did: the new database version,
/// the base-row churn, and the fate of every cached view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Database version after the batch (unchanged for a no-op batch).
    pub version: u64,
    /// Base rows actually inserted / deleted (no-op rows normalized away).
    pub inserted: u64,
    pub deleted: u64,
    /// Cached views maintained incrementally (resumed fixpoint loops).
    pub maintained: u64,
    /// Cached views untouched by the batch, revalidated as-is.
    pub unaffected: u64,
    /// Cached views dropped; the next query recomputes them.
    pub recomputed: u64,
    /// Rows DRed over-deleted and rederived across maintained views.
    pub rederived: u64,
}

/// One plan-cache entry: the optimized plan plus the feedback-store
/// generation it was costed under. A hit requires the generation to still
/// be current — new observations (or material churn) bump the generation,
/// forcing the next run to re-plan from measured cardinalities.
#[derive(Clone)]
struct CachedPlan {
    plan: Term,
    feedback_gen: u64,
}

/// Durable-storage handle: the open WAL plus snapshot bookkeeping. Lives
/// behind a mutex taken *after* the engine lock (never the other way
/// around) and only on mutation / telemetry paths — queries never touch it.
struct DurableState {
    wal: Wal,
    dir: PathBuf,
    /// WAL appends since the last snapshot; reaching
    /// [`ServeConfig::snapshot_every`] triggers the next snapshot.
    appends_since_snapshot: u64,
    last_snapshot_at: Instant,
}

struct ServerInner {
    engine: RwLock<QueryEngine>,
    /// Bumped (under the engine write lock) by [`Server::load`] calls
    /// that change the catalog's *shape* (relations, columns, constants):
    /// plans interned against the old catalog are then unreachable.
    epoch: AtomicU64,
    /// Bumped (under the engine write lock) by **every** mutation —
    /// [`Server::apply_delta`] and [`Server::load`] alike. Cached results
    /// are valid at exactly one version; see [`CachedResult`].
    version: AtomicU64,
    /// Serializes mutations: a delta's normalize → apply → maintain
    /// sequence is one version transition, and maintenance needs the
    /// pre-batch relation values of exactly that one step.
    mutation: Mutex<()>,
    results: Mutex<LruCache<(u64, u64), CachedResult>>,
    plans: Mutex<LruCache<(String, u64), CachedPlan>>,
    counters: Counters,
    telemetry: Telemetry,
    closing: AtomicBool,
    /// 0 serving, 1 draining, 2 drained (see [`Client::request_drain`]).
    drain_phase: AtomicU64,
    /// Per-canonical-plan circuit breakers (see [`Breaker`]).
    breakers: Mutex<FxHashMap<u64, Breaker>>,
    /// Cancellation tokens of every admitted, unresolved query, so a
    /// drain can deadline stragglers. Keyed by [`QueryJob::id`].
    inflight: Mutex<FxHashMap<u64, CancellationToken>>,
    next_job: AtomicU64,
    /// Database statistics for admission cost estimates, built at startup
    /// and on every [`Server::load`] (`Stats::from_db` scans every
    /// relation once). The admission gates only read this slot.
    cost_stats: Mutex<Option<(u64, Arc<Stats>)>>,
    /// Observed fixpoint cardinalities from completed executions, keyed by
    /// the planner's canonical term hash. Read on every plan-cache miss so
    /// repeated queries are re-costed from measured reality; churned or
    /// reloaded data drops the affected observations (see `apply_delta`
    /// and [`Server::load`]).
    feedback: Mutex<FeedbackStore>,
    /// The process cluster backing every execution under
    /// [`ClusterMode::Processes`]: one supervised worker fleet shared by
    /// all concurrent queries (exchange buffers are isolated per exchange
    /// id on the wire). `None` under [`ClusterMode::InProcess`].
    proc: Option<Arc<ProcCluster>>,
    /// Durable storage (WAL + snapshots) when [`ServeConfig::data_dir`]
    /// is set; `None` serves purely in memory.
    durable: Option<Mutex<DurableState>>,
    config: ServeConfig,
}

impl ServerInner {
    /// Routes an execution through the process cluster when one is
    /// configured: the backend carries its own worker count, which must
    /// override the engine's in-process worker count so partitioning
    /// matches the fleet.
    fn plug_backend(&self, config: &mut mura_dist::ExecConfig) {
        if let Some(proc) = &self.proc {
            if let Some(n) = proc.worker_count() {
                config.workers = n;
            }
            config.backend = Some(Arc::clone(proc) as Arc<dyn CommBackend>);
        }
    }
}

/// Poison-tolerant lock helpers: a worker that panicked mid-query must not
/// take the whole server down with `PoisonError`s.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ServerInner {
    fn read_engine(&self) -> std::sync::RwLockReadGuard<'_, QueryEngine> {
        self.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine(&self) -> std::sync::RwLockWriteGuard<'_, QueryEngine> {
        self.engine.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Gate on the plan's circuit breaker. An open breaker rejects with
    /// [`ServeError::Overloaded`] until the cooldown elapses, then lets
    /// exactly one probe through (half-open); further callers keep being
    /// rejected until [`ServerInner::breaker_record`] settles the probe.
    /// Never blocks, so a cancelled caller can never be parked here.
    ///
    /// Only the worker-side call passes `transition = true`: it owns the
    /// Open → HalfOpen move. The submit-side check is a read-only peek,
    /// so a query admitted there is not re-rejected by its own probe
    /// state when the worker gates it again.
    fn breaker_check(&self, key: u64, transition: bool) -> ServeResult<()> {
        if self.config.breaker_threshold == 0 {
            return Ok(());
        }
        let mut breakers = lock(&self.breakers);
        let Some(b) = breakers.get_mut(&key) else { return Ok(()) };
        let retry_after_ms = |d: Duration| (d.as_millis() as u64).max(1);
        match b.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let elapsed = b.opened_at.elapsed();
                if elapsed >= self.config.breaker_cooldown {
                    if transition {
                        b.state = BreakerState::HalfOpen; // this caller probes
                    }
                    Ok(())
                } else {
                    Err(ServeError::Overloaded {
                        reason: OverloadReason::CircuitOpen,
                        retry_after_ms: retry_after_ms(self.config.breaker_cooldown - elapsed),
                    })
                }
            }
            // The probe passed this gate when it performed the
            // transition; anyone who finds HalfOpen waits for its verdict.
            BreakerState::HalfOpen => Err(ServeError::Overloaded {
                reason: OverloadReason::CircuitOpen,
                retry_after_ms: retry_after_ms(self.config.retry_after),
            }),
        }
    }

    /// Settle a finished execution against the plan's breaker: a success
    /// closes it; a breaker-class failure (`MemoryExceeded`,
    /// `WorkerFailed` — deterministic re-offenders, not transient noise)
    /// counts toward opening, and any half-open probe failure re-opens.
    /// A neutral outcome (cancelled, timeout, transient fault) proves
    /// nothing either way; a half-open probe that ends neutrally returns
    /// to `Open` with a fresh cooldown — it must never strand the breaker
    /// in `HalfOpen`, which rejects everyone until the next settle.
    fn breaker_record<T>(&self, key: u64, result: &ServeResult<T>) {
        let threshold = self.config.breaker_threshold;
        if threshold == 0 {
            return;
        }
        use mura_core::MuraError as E;
        let breaker_failure = matches!(
            result,
            Err(ServeError::Engine(E::MemoryExceeded { .. } | E::WorkerFailed { .. }))
        );
        let mut breakers = lock(&self.breakers);
        if !breaker_failure {
            if result.is_ok() {
                breakers.remove(&key);
            } else if let Some(b) = breakers.get_mut(&key) {
                if b.state == BreakerState::HalfOpen {
                    // Inconclusive probe: re-open and let a later probe
                    // retry after the cooldown. Not counted in
                    // `breaker_opened` — the plan wasn't convicted again.
                    b.state = BreakerState::Open;
                    b.opened_at = Instant::now();
                }
            }
            return;
        }
        let b = breakers.entry(key).or_insert(Breaker {
            state: BreakerState::Closed,
            consecutive: 0,
            opened_at: Instant::now(),
        });
        b.consecutive = b.consecutive.saturating_add(1);
        if (b.consecutive >= threshold || b.state == BreakerState::HalfOpen)
            && b.state != BreakerState::Open
        {
            b.state = BreakerState::Open;
            b.opened_at = Instant::now();
            self.counters.breaker_opened.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rebuilds the per-epoch database statistics that back admission
    /// cost estimates. Runs off the hot paths only — at startup and from
    /// [`Server::load`] while the engine lock is already held — so the
    /// gates never pay for a relation scan.
    fn rebuild_cost_stats(&self, epoch: u64, db: &Database) {
        if self.config.memory_watermark_bytes.is_none() {
            return;
        }
        *lock(&self.cost_stats) = Some((epoch, Arc::new(Stats::from_db(db))));
    }

    /// Incremental counterpart of [`ServerInner::rebuild_cost_stats`] for
    /// the delta path: folds a batch's per-relation churn into the existing
    /// statistics (exact row counts, bounded distinct estimates) so a
    /// mutation storm never pays a full-database rescan per batch.
    fn update_cost_stats(&self, batch: &DeltaBatch, epoch: u64, db: &Database) {
        if self.config.memory_watermark_bytes.is_none() {
            return;
        }
        let mut slot = lock(&self.cost_stats);
        match &mut *slot {
            Some((e, stats)) if *e == epoch => {
                let stats = Arc::make_mut(stats);
                for (rel, d) in &batch.rels {
                    stats.apply_delta(*rel, d.insert.len(), d.delete.len(), db.relation(*rel));
                }
            }
            // No current snapshot to patch (the epoch moved without a
            // rebuild, or startup raced): fall back to one full scan.
            _ => *slot = Some((epoch, Arc::new(Stats::from_db(db)))),
        }
    }

    /// Cost-model byte estimate for a plan: output cardinality × arity ×
    /// value size, from per-epoch database statistics. `None` when the
    /// model can't price the plan — the gate then falls back to the live
    /// gauge alone. Read-only and non-blocking: stats are prebuilt by
    /// [`ServerInner::rebuild_cost_stats`], never scanned here, and a
    /// contended lock or stale epoch just falls through to the gauge.
    fn estimated_bytes(&self, plan: &Term, epoch: u64) -> Option<u64> {
        let stats = {
            let slot = self.cost_stats.try_lock().ok()?;
            match &*slot {
                Some((e, s)) if *e == epoch => Arc::clone(s),
                _ => return None,
            }
        };
        let card = CostModel::new(&stats).card(plan).ok()?;
        // `as` saturates the f64 (NaN → 0), and `rel_bytes` saturates the
        // multiplication, so an astronomical join estimate clamps to
        // u64::MAX and is always shed instead of wrapping past the gate.
        Some(rel_bytes(card.rows as u64, card.distinct.len().max(1)))
    }

    /// The memory-watermark admission gate: shed when the live gauge plus
    /// this query's estimate would pass the watermark.
    fn memory_gate(&self, estimate: u64) -> ServeResult<()> {
        let Some(watermark) = self.config.memory_watermark_bytes else { return Ok(()) };
        if mem_gauge().current_bytes().saturating_add(estimate) > watermark {
            return Err(ServeError::Overloaded {
                reason: OverloadReason::Memory,
                retry_after_ms: (self.config.retry_after.as_millis() as u64).max(1),
            });
        }
        Ok(())
    }

    fn shed(&self, e: ServeError) -> ServeError {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        e
    }

    fn process(&self, job: &QueryJob) -> ServeResult<Arc<QueryOutput>> {
        // A query may have spent its whole deadline waiting in the queue.
        job.token.check()?;

        // Plan: cache on (query text, epoch); misses take the engine write
        // lock because UCRPQ translation interns symbols.
        let mut epoch = self.epoch.load(Ordering::Acquire);
        let plan_cache_key = (job.query.clone(), epoch);
        // A cached plan is reusable only while the feedback store is at the
        // generation it was costed under: newer observations may well pick
        // a different plan, so a stale generation replans below.
        let feedback_gen = lock(&self.feedback).generation();
        let cached =
            lock(&self.plans).get(&plan_cache_key).filter(|c| c.feedback_gen == feedback_gen);
        let planned = match cached {
            Some(c) => {
                self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                PlannedQuery { plan: c.plan, planning: Duration::ZERO }
            }
            None => {
                self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
                let mut engine = self.write_engine();
                // Re-read under the lock: loads bump the epoch while holding
                // it, so this pins the epoch the plan was made against. The
                // feedback generation is re-read too, so the cached entry is
                // tagged with exactly the observations it was costed under.
                epoch = self.epoch.load(Ordering::Acquire);
                let (observations, feedback_gen) = {
                    let fb = lock(&self.feedback);
                    (fb.observations(), fb.generation())
                };
                let obs = (!observations.is_empty()).then_some(&observations);
                let superseded =
                    lock(&self.plans).get(&(job.query.clone(), epoch)).map(|c| plan_key(&c.plan));
                let (planned, _report) = engine.plan_ucrpq_report(&job.query, obs)?;
                // A replan that lands on a different plan orphans the
                // result entry cached under the old plan's key: no lookup
                // reaches it anymore, yet maintenance would keep paying to
                // bring it forward on every delta. Drop it now.
                if let Some(old_key) = superseded {
                    if old_key != plan_key(&planned.plan) {
                        lock(&self.results).remove(&(old_key, epoch));
                    }
                }
                lock(&self.plans).insert(
                    (job.query.clone(), epoch),
                    CachedPlan { plan: planned.plan.clone(), feedback_gen },
                );
                self.telemetry.planning.record(planned.planning);
                planned
            }
        };

        // Result cache: canonical plan key + epoch. Traced jobs bypass it —
        // see `QueryJob::trace`.
        let traced = job.trace > TraceLevel::Off;
        let key = plan_key(&planned.plan);
        let result_key = (key, epoch);
        if !traced {
            // A hit requires the stored version to be current: an entry a
            // mutation has not (yet) maintained is stale data, not an
            // answer. Stale entries stay in place — maintenance or the
            // recompute below overwrites them.
            let version = self.version.load(Ordering::Acquire);
            let hit = lock(&self.results)
                .get(&result_key)
                .filter(|c| c.version == version)
                .map(|c| c.output);
            if let Some(out) = hit {
                self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(out);
            }
            self.counters.result_misses.fetch_add(1, Ordering::Relaxed);
        }

        // Overload gates, now that the canonical plan is known (the
        // submit-side copies of these gates only fire on plan-cache hits).
        // Cache hits above skip them: replaying an answer costs nothing.
        // The memory gate runs first: the breaker check may transition
        // Open → HalfOpen for a probe, and a probe shed by a later gate
        // would leave HalfOpen with nobody left to settle it.
        if self.config.memory_watermark_bytes.is_some() {
            let estimate = self.estimated_bytes(&planned.plan, epoch).unwrap_or(0);
            self.memory_gate(estimate).map_err(|e| self.shed(e))?;
        }
        self.breaker_check(key, true).map_err(|e| self.shed(e))?;

        // Execute under the read lock: many executions run concurrently;
        // only planning and loads serialize.
        let engine = self.read_engine();
        // Mutations bump the version under the engine *write* lock, so this
        // read pins a (data, version) pair consistent for the whole run.
        let version = self.version.load(Ordering::Acquire);
        let mut config = engine.config().clone();
        config.limits = self.config.limits;
        config.cancel = Some(job.token.clone());
        config.trace = job.trace;
        // The job id rides in the wire-level trace context so worker-side
        // spans can be attributed to this query in the merged timeline.
        config.query_id = job.id;
        // Capture fixpoint totals alongside the answer: they are what lets
        // `apply_delta` maintain cached entries instead of discarding them,
        // and what feeds observed cardinalities back into the planner.
        config.capture_fixpoints = !traced;
        self.plug_backend(&mut config);
        let out = engine.execute_plan_with(&planned, config).map(Arc::new).map_err(Into::into);
        self.breaker_record(key, &out);
        let out = out?;
        self.telemetry.execution.record(out.execution);
        self.telemetry.record_comm(&out.comm);
        if let Some(trace) = &out.stats.trace {
            self.telemetry.record_trace(trace);
        }
        // Accumulate fault/recovery accounting for fresh executions only —
        // cache hits replay an old answer, not its faults.
        let fault = &out.stats.fault;
        if fault.injected() > 0 || fault.recovered() {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            self.counters.faults_injected.fetch_add(fault.injected(), Ordering::Relaxed);
            self.counters.fault_retries.fetch_add(fault.task_retries, Ordering::Relaxed);
            self.counters.fault_restores.fetch_add(fault.checkpoint_restores, Ordering::Relaxed);
            self.counters.fault_restarts.fetch_add(fault.full_restarts, Ordering::Relaxed);
        }
        // Fold measured fixpoint cardinalities back into the planner: the
        // next plan-cache miss (for any query sharing a recursive subterm)
        // re-costs from observed reality instead of static estimates.
        if self.epoch.load(Ordering::Acquire) == epoch {
            if let Some(totals) = out.stats.fix_totals.as_ref().filter(|t| !t.is_empty()) {
                let observed: FxHashMap<u64, f64> =
                    totals.iter().map(|(k, r)| (*k, r.len() as f64)).collect();
                lock(&self.feedback).record_plan(&planned.plan, &observed, engine.db().dict());
            }
        }
        // A load may have slipped in between planning and taking the read
        // lock. The answer is then computed against the newer data — still
        // correct to return, but not safe to file under the old epoch.
        if !traced && self.epoch.load(Ordering::Acquire) == epoch {
            lock(&self.results).insert(result_key, CachedResult { version, output: out.clone() });
        }
        Ok(out)
    }

    /// Applies an edge-level delta batch as one atomic version transition:
    /// normalize → apply to base relations → bump the version → maintain
    /// every cached view (see the module docs). Returns what happened to
    /// each view; the batch itself is all-or-nothing.
    fn apply_delta(&self, batch: DeltaBatch) -> ServeResult<DeltaSummary> {
        if self.closing.load(Ordering::Acquire) || self.drain_phase.load(Ordering::Acquire) > 0 {
            return Err(ServeError::Closed);
        }
        self.apply_batch(batch, true)
    }

    /// The delta machinery behind [`ServerInner::apply_delta`]. `live`
    /// distinguishes client mutations (memory-gated, WAL-logged before they
    /// apply, snapshot-triggering) from startup recovery replaying
    /// already-logged records — replay must not re-log records, and must
    /// not snapshot mid-replay (a snapshot resets the WAL, which would
    /// discard records not yet replayed if recovery itself crashed).
    fn apply_batch(&self, mut batch: DeltaBatch, live: bool) -> ServeResult<DeltaSummary> {
        // One mutation at a time: maintenance needs the pre-batch relation
        // values of exactly one version step, so normalize → apply →
        // maintain must not interleave with another batch.
        let _mutation = lock(&self.mutation);

        // Memory gate: a mutation storm obeys the same resource ladder as
        // queries. The churn estimate prices the batch's own rows; the
        // maintenance loop's frontier cost is gated per view below. Replay
        // is exempt — recovery must converge to the pre-crash state
        // regardless of the memory gauge's warm-up transient.
        if live {
            let rows: usize = batch.rels.values().map(|d| d.insert.len() + d.delete.len()).sum();
            let arity = batch.rels.values().map(|d| d.insert.schema().arity()).max().unwrap_or(2);
            self.memory_gate(rel_bytes(rows as u64, arity)).map_err(|e| self.shed(e))?;
        }

        let mut summary = DeltaSummary::default();
        let (old_rels, version, epoch, snapshot) = {
            let mut engine = self.write_engine();
            batch.normalize(engine.db())?;
            if batch.is_empty() {
                summary.version = self.version.load(Ordering::Acquire);
                return Ok(summary);
            }
            // Durability: log and fsync the normalized batch *before* it is
            // applied, stamped with the version it will produce. A crash
            // after the append replays the batch at recovery; a crash
            // before it recovers to the pre-batch state — either way the
            // client's ack (which only happens after the append) never lies.
            let mut wal_mark = None;
            if live {
                if let Some(durable) = &self.durable {
                    let next = self.version.load(Ordering::Acquire) + 1;
                    let mut d = lock(durable);
                    let mark = (d.wal.bytes(), d.wal.appends());
                    let bytes = d
                        .wal
                        .append_delta(next, &batch)
                        .map_err(|e| ServeError::Durability(format!("wal append: {e}")))?;
                    self.counters.wal_appends.fetch_add(1, Ordering::Relaxed);
                    self.counters.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
                    d.appends_since_snapshot += 1;
                    wal_mark = Some(mark);
                }
            }
            let (inserted, deleted, old_rels) = match batch.apply(engine.db_mut()) {
                Ok(applied) => applied,
                Err(e) => {
                    // Apply failed after the batch was logged: truncate the
                    // record so recovery never replays a mutation the
                    // server rejected.
                    if let (Some((bytes, appends)), Some(durable)) = (wal_mark, &self.durable) {
                        let mut d = lock(durable);
                        let _ = d.wal.rollback_to(bytes, appends);
                        d.appends_since_snapshot = d.appends_since_snapshot.saturating_sub(1);
                    }
                    return Err(e.into());
                }
            };
            let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
            let epoch = self.epoch.load(Ordering::Acquire);
            self.counters.deltas_applied.fetch_add(1, Ordering::Relaxed);
            self.counters.delta_rows_inserted.fetch_add(inserted, Ordering::Relaxed);
            self.counters.delta_rows_deleted.fetch_add(deleted, Ordering::Relaxed);
            summary.version = version;
            summary.inserted = inserted;
            summary.deleted = deleted;
            // Admission cost estimates must price the mutated data — fold
            // the batch into the per-epoch statistics in place instead of
            // rescanning every relation per batch.
            self.update_cost_stats(&batch, epoch, engine.db());
            // Tell the planner's feedback store how much each relation
            // churned: materially churned observations are dropped and the
            // dependent queries re-plan on their next cache miss.
            {
                let mut fb = lock(&self.feedback);
                for (rel, d) in &batch.rels {
                    let size_now = engine.db().relation(*rel).map_or(0, |r| r.len());
                    fb.note_churn(*rel, d.insert.len() + d.delete.len(), size_now);
                }
            }
            // Snapshot the cache while still holding the write lock: result
            // inserts happen under the engine *read* lock, so nothing can
            // slip in between the version bump and this snapshot.
            (old_rels, version, epoch, lock(&self.results).entries())
        };

        // Maintain under the *read* lock: queries keep flowing — they
        // simply miss (stale version) until their view is brought forward.
        let engine = self.read_engine();
        let empty = FxHashMap::default();
        for (key, cached) in snapshot {
            // Chaos hook: a crash here leaves the batch durably logged and
            // applied but the view maintenance half-done. Recovery replays
            // the batch from the WAL over the last snapshot, which re-runs
            // maintenance from a consistent pre-batch state.
            crash_point("maintain_mid");
            if key.1 != epoch || cached.version >= version {
                continue; // other-epoch leftovers / already-current entries
            }
            if cached.version + 1 != version {
                // More than one version behind: this batch's pre-state is
                // not the entry's post-state, so the bridge is gone.
                lock(&self.results).remove(&key);
                self.record_fallback(None, &mut summary);
                continue;
            }
            if self.closing.load(Ordering::Acquire) || self.drain_phase.load(Ordering::Acquire) > 0
            {
                // Drain arrived mid-maintenance: stop doing optional work,
                // drop the stale entry, still return a full response.
                lock(&self.results).remove(&key);
                self.record_fallback(None, &mut summary);
                continue;
            }
            let start = Instant::now();
            let totals = cached.output.stats.fix_totals.as_ref().unwrap_or(&empty);
            match plan_maintenance(&cached.output.plan, engine.db(), &old_rels, &batch, totals) {
                Ok(IvmOutcome::Unaffected) => {
                    lock(&self.results)
                        .insert(key, CachedResult { version, output: cached.output.clone() });
                    self.counters.ivm_unaffected.fetch_add(1, Ordering::Relaxed);
                    summary.unaffected += 1;
                    self.telemetry.maintenance.record(start.elapsed());
                }
                Ok(IvmOutcome::Maintain(m)) => {
                    // Cost gate: maintenance wins when the churn it must
                    // push through the loop is smaller than the state a
                    // recompute would rebuild, byte-priced at equal arity.
                    let total_rows: u64 = totals.values().map(|r| r.len() as u64).sum();
                    let churn = m.frontier_rows + m.overdeleted_rows;
                    if rel_bytes(churn, 2) > rel_bytes(total_rows.max(1), 2) {
                        lock(&self.results).remove(&key);
                        self.record_fallback(Some(FallbackReason::Cost), &mut summary);
                        continue;
                    }
                    let resume: FxHashMap<u64, FixResume> = m
                        .resume
                        .into_iter()
                        .map(|(k, p)| (k, FixResume { acc: p.acc, delta: p.delta }))
                        .collect();
                    let mut config = engine.config().clone();
                    config.limits = self.config.limits;
                    config.capture_fixpoints = true;
                    config.resume = Some(Arc::new(resume));
                    self.plug_backend(&mut config);
                    let planned =
                        PlannedQuery { plan: cached.output.plan.clone(), planning: Duration::ZERO };
                    match engine.execute_plan_with(&planned, config) {
                        Ok(out) => {
                            // The resumed run measured the post-delta
                            // fixpoint totals — fold them back into the
                            // planner so an observation dropped for churn
                            // above is immediately replaced by the fresh
                            // one instead of waiting for a cold execution.
                            if let Some(t) = out.stats.fix_totals.as_ref().filter(|t| !t.is_empty())
                            {
                                let observed: FxHashMap<u64, f64> =
                                    t.iter().map(|(k, r)| (*k, r.len() as f64)).collect();
                                lock(&self.feedback).record_plan(
                                    &planned.plan,
                                    &observed,
                                    engine.db().dict(),
                                );
                            }
                            lock(&self.results)
                                .insert(key, CachedResult { version, output: Arc::new(out) });
                            self.counters.ivm_maintained.fetch_add(1, Ordering::Relaxed);
                            self.counters
                                .ivm_rederived_rows
                                .fetch_add(m.overdeleted_rows, Ordering::Relaxed);
                            summary.maintained += 1;
                            summary.rederived += m.overdeleted_rows;
                            self.telemetry.maintenance.record(start.elapsed());
                        }
                        Err(_) => {
                            lock(&self.results).remove(&key);
                            self.record_fallback(None, &mut summary);
                        }
                    }
                }
                Ok(IvmOutcome::Fallback(reason)) => {
                    lock(&self.results).remove(&key);
                    self.record_fallback(Some(reason), &mut summary);
                }
                Err(_) => {
                    lock(&self.results).remove(&key);
                    self.record_fallback(None, &mut summary);
                }
            }
        }
        if live {
            self.maybe_snapshot(engine.db())?;
        }
        Ok(summary)
    }

    /// Writes a snapshot if the WAL has accumulated `snapshot_every`
    /// appends since the last one. Called with the engine read lock held
    /// (mutations are serialized by the mutation mutex, so the database
    /// cannot change underneath the snapshot).
    fn maybe_snapshot(&self, db: &Database) -> ServeResult<()> {
        let due = match &self.durable {
            Some(durable) if self.config.snapshot_every > 0 => {
                lock(durable).appends_since_snapshot >= self.config.snapshot_every
            }
            _ => false,
        };
        if due {
            self.snapshot_now(db)?;
        }
        Ok(())
    }

    /// Writes an atomic snapshot of the current database, cached views and
    /// planner feedback, prunes older snapshots, and resets the WAL. The
    /// caller must hold an engine lock (read or write) so the state is
    /// frozen; mutations are additionally serialized by the mutation mutex.
    fn snapshot_now(&self, db: &Database) -> ServeResult<()> {
        let Some(durable) = &self.durable else { return Ok(()) };
        let version = self.version.load(Ordering::Acquire);
        let epoch = self.epoch.load(Ordering::Acquire);
        // Persist only views that are exactly current: stale entries would
        // be dropped by maintenance anyway, and other-epoch leftovers are
        // unreachable after a load.
        let mut views: Vec<ViewSnapshot> = lock(&self.results)
            .entries()
            .into_iter()
            .filter(|(key, cached)| key.1 == epoch && cached.version == version)
            .map(|(_, cached)| ViewSnapshot {
                plan: cached.output.plan.clone(),
                relation: cached.output.relation.clone(),
                fix_totals: cached
                    .output
                    .stats
                    .fix_totals
                    .as_ref()
                    .map(|m| m.iter().map(|(k, r)| (*k, r.clone())).collect())
                    .unwrap_or_default(),
            })
            .collect();
        // Stable bytes: equal server states must snapshot identically.
        views.sort_by_key(|v| plan_key(&v.plan));
        // Plans ride along rather than being re-derived at recovery: the
        // planner costs against live cardinalities, so a replan after
        // restore could legally pick a different plan than the one the
        // persisted view is keyed under, orphaning the view.
        let mut plans: Vec<(String, Term, u64)> = lock(&self.plans)
            .entries()
            .into_iter()
            .filter(|(key, _)| key.1 == epoch)
            .map(|(key, cached)| (key.0, cached.plan, cached.feedback_gen))
            .collect();
        plans.sort_by(|a, b| a.0.cmp(&b.0));
        let state = SnapshotState {
            version,
            epoch,
            db: db.clone(),
            views,
            feedback: lock(&self.feedback).export_state(),
            plans,
        };
        let mut d = lock(durable);
        write_snapshot(&d.dir, &state)
            .map_err(|e| ServeError::Durability(format!("snapshot write: {e}")))?;
        let _ = prune_older_snapshots(&d.dir, version);
        // The snapshot now covers everything in the WAL — reset it so
        // recovery replay is bounded by one snapshot interval.
        d.wal.reset().map_err(|e| ServeError::Durability(format!("wal reset: {e}")))?;
        d.appends_since_snapshot = 0;
        d.last_snapshot_at = Instant::now();
        self.counters.snapshots_written.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Installs a restored snapshot as the server's live state: database,
    /// version/epoch, planner feedback, and cached views (re-inserted with
    /// zeroed timings — they answer queries and maintain incrementally, but
    /// carry no execution telemetry from the previous process).
    fn restore_snapshot(&self, snap: SnapshotState) {
        {
            let mut engine = self.write_engine();
            *engine.db_mut() = snap.db;
        }
        self.version.store(snap.version, Ordering::Release);
        self.epoch.store(snap.epoch, Ordering::Release);
        *lock(&self.feedback) = FeedbackStore::import_state(snap.feedback);
        {
            let mut plans = lock(&self.plans);
            for (query, plan, feedback_gen) in snap.plans {
                plans.insert((query, snap.epoch), CachedPlan { plan, feedback_gen });
            }
        }
        let mut results = lock(&self.results);
        for view in snap.views {
            let key = (plan_key(&view.plan), snap.epoch);
            let stats = ExecStats {
                fix_totals: Some(view.fix_totals.into_iter().collect()),
                ..Default::default()
            };
            let output = QueryOutput {
                relation: view.relation,
                planning: Duration::ZERO,
                execution: Duration::ZERO,
                stats,
                comm: CommSnapshot::default(),
                plan: view.plan,
            };
            results.insert(key, CachedResult { version: snap.version, output: Arc::new(output) });
        }
    }

    /// Replays WAL records on top of the restored snapshot. Records at or
    /// below the restored version are skipped (covers a crash between the
    /// snapshot rename and the WAL reset). Returns how many records were
    /// applied.
    fn replay_wal(&self, records: Vec<WalRecord>) -> ServeResult<u64> {
        let mut replayed = 0u64;
        for record in records {
            if record.version() <= self.version.load(Ordering::Acquire) {
                continue;
            }
            match record {
                WalRecord::Delta { version, batch } => {
                    match self.apply_batch(batch, false) {
                        Ok(summary) => {
                            if summary.version != version {
                                return Err(ServeError::Durability(format!(
                                    "replay version drift: wal says {version}, \
                                     apply produced {}",
                                    summary.version
                                )));
                            }
                        }
                        // A batch the engine rejects now was rejected (and
                        // rolled back) before the crash too — skip it.
                        // Failed applies never bumped the version, so the
                        // stamps of later records still line up.
                        Err(ServeError::Engine(_)) => continue,
                        Err(e) => return Err(e),
                    }
                }
                WalRecord::Load { version, epoch, db } => {
                    let _mutation = lock(&self.mutation);
                    let mut engine = self.write_engine();
                    *engine.db_mut() = db;
                    self.version.store(version, Ordering::Release);
                    if self.epoch.load(Ordering::Acquire) != epoch {
                        self.epoch.store(epoch, Ordering::Release);
                        lock(&self.breakers).clear();
                    }
                    self.rebuild_cost_stats(epoch, engine.db());
                    lock(&self.feedback).clear();
                }
            }
            replayed += 1;
        }
        self.counters.recovery_replayed.fetch_add(replayed, Ordering::Relaxed);
        Ok(replayed)
    }

    fn record_fallback(&self, reason: Option<FallbackReason>, summary: &mut DeltaSummary) {
        self.counters.fallback_counter(reason).fetch_add(1, Ordering::Relaxed);
        summary.recomputed += 1;
    }
}

/// Order-insensitive hash of the catalog's *shape*: relation names with
/// their column names, plus constant bindings. Two databases with the same
/// fingerprint intern the same plans, so a [`Server::load`] that keeps the
/// fingerprint keeps plan caches, admission history and breaker verdicts.
fn schema_fingerprint(db: &Database) -> u64 {
    let mut parts: Vec<u64> = Vec::new();
    for (name, rel) in db.relations() {
        let mut h = FxHasher::default();
        0u8.hash(&mut h);
        db.dict().resolve(name).hash(&mut h);
        for col in rel.schema().columns() {
            db.dict().resolve(*col).hash(&mut h);
        }
        parts.push(h.finish());
    }
    for (name, value) in db.constants() {
        let mut h = FxHasher::default();
        1u8.hash(&mut h);
        db.dict().resolve(name).hash(&mut h);
        value.hash(&mut h);
        parts.push(h.finish());
    }
    parts.sort_unstable();
    let mut h = FxHasher::default();
    parts.hash(&mut h);
    h.finish()
}

/// A running query server. Dropping (or [`Server::shutdown`]) stops the
/// worker pool after draining queued queries.
pub struct Server {
    inner: Arc<ServerInner>,
    tx: SyncSender<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over an engine. The engine's `ExecConfig`
    /// (worker count, plan policy, local engine) is used for every query;
    /// `config.limits` and the per-query cancellation token override the
    /// corresponding fields per execution.
    ///
    /// Panics when [`ClusterMode::Processes`] is configured and the worker
    /// fleet cannot be spawned — use [`Server::try_start`] to handle that
    /// failure gracefully.
    pub fn start(engine: QueryEngine, config: ServeConfig) -> Server {
        Server::try_start(engine, config).expect("spawn process cluster")
    }

    /// Like [`Server::start`], surfacing process-cluster spawn failures
    /// (missing `mura-worker` binary, exhausted ports) as an error instead
    /// of panicking. [`ClusterMode::InProcess`] cannot fail.
    pub fn try_start(engine: QueryEngine, config: ServeConfig) -> ServeResult<Server> {
        let proc = match config.cluster {
            ClusterMode::InProcess => None,
            ClusterMode::Processes { workers } => {
                let proc_cfg = ProcClusterConfig {
                    workers: workers.max(1),
                    worker_bin: config.worker_bin.clone(),
                    ..ProcClusterConfig::default()
                };
                Some(ProcCluster::spawn_with(proc_cfg)?)
            }
        };
        // Durability: open the data directory before serving starts. The
        // newest valid snapshot plus the WAL tail reconstruct the exact
        // pre-crash state; both are installed below, before worker threads
        // can observe (or mutate) anything.
        let mut restored = None;
        let mut tail = Vec::new();
        let durable = match &config.data_dir {
            Some(dir) => {
                let (snap, _skipped_corrupt) = load_newest_snapshot(dir)
                    .map_err(|e| ServeError::Durability(format!("snapshot load: {e}")))?;
                restored = snap;
                let (wal, replay) = Wal::open(dir, config.wal_sync)
                    .map_err(|e| ServeError::Durability(format!("wal open: {e}")))?;
                tail = replay.records;
                Some(Mutex::new(DurableState {
                    wal,
                    dir: dir.clone(),
                    appends_since_snapshot: 0,
                    last_snapshot_at: Instant::now(),
                }))
            }
            None => None,
        };
        let workers = config.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(config.queue_depth.max(1));
        let inner = Arc::new(ServerInner {
            engine: RwLock::new(engine),
            epoch: AtomicU64::new(0),
            version: AtomicU64::new(0),
            mutation: Mutex::new(()),
            results: Mutex::new(LruCache::new(config.result_cache)),
            plans: Mutex::new(LruCache::new(config.plan_cache)),
            counters: Counters::default(),
            telemetry: Telemetry::default(),
            closing: AtomicBool::new(false),
            drain_phase: AtomicU64::new(0),
            breakers: Mutex::new(FxHashMap::default()),
            inflight: Mutex::new(FxHashMap::default()),
            next_job: AtomicU64::new(0),
            cost_stats: Mutex::new(None),
            feedback: Mutex::new(FeedbackStore::new()),
            durable,
            proc,
            config,
        });
        let had_snapshot = restored.is_some();
        let had_tail = !tail.is_empty();
        if let Some(snap) = restored {
            inner.restore_snapshot(snap);
        }
        if had_tail {
            inner.replay_wal(tail)?;
        }
        {
            let engine = inner.read_engine();
            // Cost stats are rebuilt, not restored: they are derived state
            // and the recovered database is the source of truth.
            inner.rebuild_cost_stats(inner.epoch.load(Ordering::Acquire), engine.db());
            // Bound the next recovery: a fresh directory gets a bootstrap
            // snapshot at version 0, a replayed one folds its WAL tail in.
            if inner.durable.is_some() && (!had_snapshot || had_tail) {
                inner.snapshot_now(engine.db())?;
            }
        }
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("mura-serve-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Server { inner, tx, workers: handles })
    }

    /// Starts a server against a durable data directory, recovering any
    /// state a previous process left there: the newest valid snapshot is
    /// restored and the WAL tail replayed to the exact pre-crash version
    /// (database, cached views, planner feedback). Equivalent to
    /// [`Server::try_start`] except that it *requires*
    /// [`ServeConfig::data_dir`] to be set — call it when restart-safety is
    /// the point, so a misconfigured caller fails loudly instead of
    /// silently serving volatile state.
    pub fn recover(engine: QueryEngine, config: ServeConfig) -> ServeResult<Server> {
        if config.data_dir.is_none() {
            return Err(ServeError::Durability(
                "Server::recover requires ServeConfig::data_dir".into(),
            ));
        }
        Server::try_start(engine, config)
    }

    /// Supervisor health of the process cluster, if one is configured
    /// ([`ClusterMode::Processes`]); `None` for the in-process simulator.
    pub fn cluster_health(&self) -> Option<ClusterHealth> {
        self.inner.proc.as_ref().map(|p| p.health_snapshot())
    }

    /// A cheap, cloneable client handle. Clients stay valid for the
    /// server's lifetime; after shutdown they get [`ServeError::Closed`].
    pub fn client(&self) -> Client {
        Client { inner: Arc::clone(&self.inner), tx: self.tx.clone() }
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.inner)
    }

    /// The full telemetry as a Prometheus text-exposition page.
    pub fn metrics(&self) -> String {
        metrics_of(&self.inner)
    }

    /// Plans `query` without executing it and renders the planner's
    /// decision procedure (see the `.explain` protocol verb).
    pub fn explain(&self, query: &str) -> ServeResult<String> {
        explain_of(&self.inner, query)
    }

    /// Current database epoch (bumped by [`Server::load`] calls that
    /// change the catalog's shape).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Current database version (bumped by every mutation and load).
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Applies an edge-level [`DeltaBatch`] without a reload, maintaining
    /// cached fixpoint views incrementally (see the module docs).
    pub fn apply_delta(&self, batch: DeltaBatch) -> ServeResult<DeltaSummary> {
        self.inner.apply_delta(batch)
    }

    /// Mutates the database (load relations, bind constants) and bumps the
    /// version so cached results for the old contents are never served
    /// again. Blocks until in-flight executions finish.
    ///
    /// Invalidation is scoped to what the load can actually have broken: a
    /// load that changes the catalog's *shape* (relations, columns,
    /// constants — see `schema_fingerprint`) also bumps the epoch, which
    /// orphans cached plans and resets breaker verdicts and admission
    /// statistics. A same-shape load (data refresh) keeps plans, breakers
    /// and cost history — only the data-dependent result cache goes stale,
    /// via the version bump.
    pub fn load(&self, f: impl FnOnce(&mut Database)) {
        self.try_load(f).expect("durable load");
    }

    /// Like [`Server::load`], surfacing durability failures (the WAL
    /// append of the post-load database) instead of panicking. Without a
    /// [`ServeConfig::data_dir`] this cannot fail.
    pub fn try_load(&self, f: impl FnOnce(&mut Database)) -> ServeResult<()> {
        let _mutation = lock(&self.inner.mutation);
        let mut engine = self.inner.write_engine();
        let before = schema_fingerprint(engine.db());
        f(engine.db_mut());
        let version = self.inner.version.fetch_add(1, Ordering::AcqRel) + 1;
        let epoch = if schema_fingerprint(engine.db()) != before {
            // Shape changed: plans interned against the old catalog are
            // unreachable, and verdicts / statistics from the old contents
            // don't carry over — a breaker opened against the previous
            // schema must not keep shedding a plan that may now succeed.
            lock(&self.inner.breakers).clear();
            self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1
        } else {
            self.inner.epoch.load(Ordering::Acquire)
        };
        // The admission cost model must price against what was loaded.
        self.inner.rebuild_cost_stats(epoch, engine.db());
        // Loaded data invalidates everything the planner has measured —
        // drop the observations outright. `clear` keeps the generation, so
        // same-shape refreshes keep their cached plans until fresh
        // observations arrive and bump it.
        lock(&self.inner.feedback).clear();
        // Durability: a load's mutator is an opaque closure, so the WAL
        // records its *outcome* — the complete post-load database — rather
        // than the operation. Logged before this call returns, so a caller
        // that saw `Ok` can rely on the load surviving a crash.
        if let Some(durable) = &self.inner.durable {
            {
                let mut d = lock(durable);
                let bytes = d
                    .wal
                    .append_load(version, epoch, engine.db())
                    .map_err(|e| ServeError::Durability(format!("wal append (load): {e}")))?;
                self.inner.counters.wal_appends.fetch_add(1, Ordering::Relaxed);
                self.inner.counters.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
                d.appends_since_snapshot += 1;
            }
            self.inner.maybe_snapshot(engine.db())?;
        }
        Ok(())
    }

    /// Read access to the database (e.g. to resolve symbols in answers).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(self.inner.read_engine().db())
    }

    /// Stops accepting queries, drains the queue and joins the workers.
    pub fn shutdown(mut self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            // Blocking send: queued real work drains ahead of the pills.
            let _ = self.tx.send(Job::Poison);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Only after every in-flight execution has finished: the fleet is
        // shared, and an exchange against dead workers would be a spurious
        // failure instead of a served answer.
        if let Some(proc) = &self.inner.proc {
            proc.shutdown();
        }
    }

    /// Graceful shutdown: stop accepting, let queued and in-flight
    /// queries finish within `config.drain_grace` (stragglers are
    /// cancelled, their replies still delivered — no response is ever
    /// dropped), join the workers and return the final counters.
    pub fn drain(mut self) -> ServeStats {
        let stats = self.client().request_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(proc) = &self.inner.proc {
            proc.shutdown();
        }
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            // Already shut down explicitly; `shutdown`/`drain` also tore
            // down the process fleet (ProcCluster::shutdown is idempotent).
            if let Some(proc) = &self.inner.proc {
                proc.shutdown();
            }
            return;
        }
        self.inner.closing.store(true, Ordering::SeqCst);
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Job::Poison);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(proc) = &self.inner.proc {
            proc.shutdown();
        }
    }
}

fn worker_loop(inner: &ServerInner, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = match lock(rx).recv() {
            Ok(Job::Query(j)) => j,
            Ok(Job::Poison) | Err(_) => return,
        };
        inner.telemetry.queue.record(job.submitted.elapsed());
        let result = inner.process(&job);
        inner.telemetry.wall.record(job.submitted.elapsed());
        match &result {
            Ok(_) => inner.counters.completed.fetch_add(1, Ordering::Relaxed),
            // A worker-side shed is already in `shed`; `failed` means
            // "executed and errored", so it lands in `shed_admitted`
            // instead — submit-side sheds hit neither.
            Err(ServeError::Overloaded { .. }) => {
                inner.counters.shed_admitted.fetch_add(1, Ordering::Relaxed)
            }
            Err(_) => inner.counters.failed.fetch_add(1, Ordering::Relaxed),
        };
        // The submitter may have given up waiting; that's fine.
        let _ = job.reply.send(result);
        lock(&inner.inflight).remove(&job.id);
    }
}

/// Plans a query without executing it and renders the planner's decision
/// procedure: enumeration breadth, per-group best costs, the chosen plan
/// and whether costing ran from observed cardinalities or static
/// statistics. Takes the engine write lock (UCRPQ translation interns
/// symbols) but does not populate the plan cache — an explain is a
/// diagnostic, not an admission.
fn explain_of(inner: &ServerInner, query: &str) -> ServeResult<String> {
    use std::fmt::Write as _;
    let (observations, generation) = {
        let fb = lock(&inner.feedback);
        (fb.observations(), fb.generation())
    };
    let obs = (!observations.is_empty()).then_some(&observations);
    let mut engine = inner.write_engine();
    let (planned, report) = engine.plan_ucrpq_report(query, obs)?;
    let mut out = String::new();
    match report {
        Some(r) => {
            let budget = if r.budget_hit { ", budget hit" } else { "" };
            let _ = writeln!(out, "planner      memoized enumeration");
            let _ =
                writeln!(out, "candidates   {} terms in {} groups{budget}", r.candidates, r.groups);
            let _ = writeln!(out, "pipeline     cost {:.0}", r.pipeline_cost);
            let _ = writeln!(
                out,
                "chosen       cost {:.0} ({})",
                r.winner_cost,
                if r.enumerated_won { "enumerated" } else { "greedy pipeline" }
            );
            let costing = if r.used_observed {
                format!(
                    "observed cardinalities ({} fixpoints measured, feedback generation {})",
                    r.observed_fixpoints, generation
                )
            } else {
                "static statistics".to_string()
            };
            let _ = writeln!(out, "costing      {costing}");
            for g in &r.group_summaries {
                let _ =
                    writeln!(out, "  group [{:>12.0}] x{:<3} {}", g.best_cost, g.members, g.label);
            }
        }
        None => {
            let _ = writeln!(out, "planner      off (raw translation)");
        }
    }
    let _ = writeln!(out, "planning     {}", fmt_us(planned.planning.as_micros() as u64));
    let _ = write!(out, "plan:\n{}", explain_plan(&planned.plan, engine.db()));
    Ok(out)
}

fn stats_of(inner: &ServerInner) -> ServeStats {
    let c = &inner.counters;
    let t = &inner.telemetry;
    let k = mura_core::kernel::kernel_stats().snapshot();
    let wall = t.wall.snapshot();
    let queue = t.queue.snapshot();
    let exec = t.execution.snapshot();
    let maint = t.maintenance.snapshot();
    let q = |s: &mura_obs::HistogramSnapshot, p: f64| s.quantile_us(p).unwrap_or(0);
    let (breaker_open, breaker_half_open) = {
        let breakers = lock(&inner.breakers);
        let count = |s: BreakerState| breakers.values().filter(|b| b.state == s).count() as u64;
        (count(BreakerState::Open), count(BreakerState::HalfOpen))
    };
    // One lock for both feedback fields: guard temporaries inside the
    // struct literal would live to the end of the whole expression, and a
    // second `lock` on the same mutex there self-deadlocks.
    let (feedback_fixpoints, feedback_generation) = {
        let fb = lock(&inner.feedback);
        (fb.len() as u64, fb.generation())
    };
    // All-zero under the in-process simulator: there is no fleet.
    let health = inner.proc.as_ref().map(|p| p.health_snapshot()).unwrap_or_default();
    ServeStats {
        submitted: c.submitted.load(Ordering::Relaxed),
        rejected: c.rejected.load(Ordering::Relaxed),
        shed: c.shed.load(Ordering::Relaxed),
        shed_admitted: c.shed_admitted.load(Ordering::Relaxed),
        breaker_opened: c.breaker_opened.load(Ordering::Relaxed),
        breaker_open,
        breaker_half_open,
        mem_current_bytes: mem_gauge().current_bytes(),
        mem_high_water_bytes: mem_gauge().high_water_bytes(),
        drain_phase: inner.drain_phase.load(Ordering::SeqCst),
        completed: c.completed.load(Ordering::Relaxed),
        failed: c.failed.load(Ordering::Relaxed),
        plan_hits: c.plan_hits.load(Ordering::Relaxed),
        plan_misses: c.plan_misses.load(Ordering::Relaxed),
        feedback_fixpoints,
        feedback_generation,
        result_hits: c.result_hits.load(Ordering::Relaxed),
        result_misses: c.result_misses.load(Ordering::Relaxed),
        result_evictions: lock(&inner.results).evictions(),
        plan_evictions: lock(&inner.plans).evictions(),
        epoch: inner.epoch.load(Ordering::Acquire),
        version: inner.version.load(Ordering::Acquire),
        deltas_applied: c.deltas_applied.load(Ordering::Relaxed),
        delta_rows_inserted: c.delta_rows_inserted.load(Ordering::Relaxed),
        delta_rows_deleted: c.delta_rows_deleted.load(Ordering::Relaxed),
        ivm_maintained: c.ivm_maintained.load(Ordering::Relaxed),
        ivm_unaffected: c.ivm_unaffected.load(Ordering::Relaxed),
        ivm_fallbacks: c.ivm_fallbacks(),
        ivm_rederived_rows: c.ivm_rederived_rows.load(Ordering::Relaxed),
        maint_p50_us: q(&maint, 0.50),
        maint_p95_us: q(&maint, 0.95),
        maint_p99_us: q(&maint, 0.99),
        kernel_index_builds: k.index_builds + k.key_index_builds,
        kernel_join_probes: k.join_probes,
        kernel_antijoin_probes: k.antijoin_probes,
        kernel_rows_allocated: k.rows_allocated,
        kernel_const_folds: k.const_folds,
        degraded: c.degraded.load(Ordering::Relaxed),
        faults_injected: c.faults_injected.load(Ordering::Relaxed),
        fault_retries: c.fault_retries.load(Ordering::Relaxed),
        fault_restores: c.fault_restores.load(Ordering::Relaxed),
        fault_restarts: c.fault_restarts.load(Ordering::Relaxed),
        wall_p50_us: q(&wall, 0.50),
        wall_p95_us: q(&wall, 0.95),
        wall_p99_us: q(&wall, 0.99),
        queue_p50_us: q(&queue, 0.50),
        queue_p95_us: q(&queue, 0.95),
        queue_p99_us: q(&queue, 0.99),
        exec_p50_us: q(&exec, 0.50),
        exec_p95_us: q(&exec, 0.95),
        exec_p99_us: q(&exec, 0.99),
        comm_shuffles: t.shuffles.load(Ordering::Relaxed),
        comm_rows_shuffled: t.rows_shuffled.load(Ordering::Relaxed),
        comm_broadcasts: t.broadcasts.load(Ordering::Relaxed),
        comm_rows_broadcast: t.rows_broadcast.load(Ordering::Relaxed),
        cluster_workers: health.workers,
        cluster_workers_live: health.live,
        cluster_respawns: health.respawns,
        cluster_reconnects: health.reconnects,
        cluster_liveness_misses: health.liveness_misses,
        cluster_trace_dropped: health.trace_dropped,
        skew_ratio_milli: t.skew_ratio_milli.load(Ordering::Relaxed),
        wire_tx_bytes: t.wire_tx_bytes.load(Ordering::Relaxed),
        wire_rx_bytes: t.wire_rx_bytes.load(Ordering::Relaxed),
        wire_exchange_bytes: t.wire_exchange_bytes.load(Ordering::Relaxed),
        wal_appends: c.wal_appends.load(Ordering::Relaxed),
        wal_bytes: c.wal_bytes.load(Ordering::Relaxed),
        snapshots_written: c.snapshots_written.load(Ordering::Relaxed),
        snapshot_age_seconds: inner
            .durable
            .as_ref()
            .map(|d| lock(d).last_snapshot_at.elapsed().as_secs())
            .unwrap_or(0),
        recovery_replayed_batches: c.recovery_replayed.load(Ordering::Relaxed),
    }
}

/// Renders the full telemetry of a server as a Prometheus text-exposition
/// page (format 0.0.4): query outcome / cache / kernel / fault counters,
/// communication totals, the latency histograms and the database epoch.
fn metrics_of(inner: &ServerInner) -> String {
    let s = stats_of(inner);
    let t = &inner.telemetry;
    let mut p = PromText::new();
    p.family("mura_queries_total", "counter", "Queries by final outcome.");
    p.sample("mura_queries_total", &[("outcome", "completed")], s.completed as f64);
    p.sample("mura_queries_total", &[("outcome", "failed")], s.failed as f64);
    p.sample("mura_queries_total", &[("outcome", "rejected")], s.rejected as f64);
    p.sample("mura_queries_total", &[("outcome", "shed")], s.shed_admitted as f64);
    p.counter("mura_queries_submitted_total", "Queries admitted into the queue.", s.submitted);
    p.counter(
        "mura_shed_total",
        "Queries shed by overload protection (memory watermark or open breaker).",
        s.shed,
    );
    p.family("mura_breaker_state", "gauge", "Circuit breakers currently in each state.");
    p.sample("mura_breaker_state", &[("state", "open")], s.breaker_open as f64);
    p.sample("mura_breaker_state", &[("state", "half_open")], s.breaker_half_open as f64);
    p.counter("mura_breaker_opened_total", "Circuit-breaker open transitions.", s.breaker_opened);
    p.gauge(
        "mura_mem_current_bytes",
        "Live estimated relation bytes (process-wide).",
        s.mem_current_bytes as f64,
    );
    p.gauge(
        "mura_mem_high_water_bytes",
        "High-water mark of estimated relation bytes.",
        s.mem_high_water_bytes as f64,
    );
    p.gauge("mura_drain_phase", "0 serving, 1 draining, 2 drained.", s.drain_phase as f64);
    p.family("mura_cache_events_total", "counter", "Plan/result cache hits, misses, evictions.");
    for (cache, hits, misses, evictions) in [
        ("plan", s.plan_hits, s.plan_misses, s.plan_evictions),
        ("result", s.result_hits, s.result_misses, s.result_evictions),
    ] {
        p.sample("mura_cache_events_total", &[("cache", cache), ("event", "hit")], hits as f64);
        p.sample("mura_cache_events_total", &[("cache", cache), ("event", "miss")], misses as f64);
        p.sample(
            "mura_cache_events_total",
            &[("cache", cache), ("event", "eviction")],
            evictions as f64,
        );
    }
    p.gauge(
        "mura_feedback_observations",
        "Fixpoint cardinalities currently held by the planner's feedback store.",
        s.feedback_fixpoints as f64,
    );
    p.gauge(
        "mura_feedback_generation",
        "Feedback-store generation; cached plans from older generations re-plan.",
        s.feedback_generation as f64,
    );
    p.counter("mura_comm_shuffles_total", "Shuffle operations across executions.", s.comm_shuffles);
    p.counter("mura_comm_rows_shuffled_total", "Rows moved by shuffles.", s.comm_rows_shuffled);
    p.counter("mura_comm_broadcasts_total", "Broadcast operations.", s.comm_broadcasts);
    p.counter(
        "mura_comm_rows_broadcast_total",
        "Rows replicated by broadcasts.",
        s.comm_rows_broadcast,
    );
    // Process-cluster families are emitted unconditionally (all-zero in
    // in-process mode) so dashboards and the obs_smoke validator see a
    // stable exposition regardless of the configured ClusterMode.
    p.gauge(
        "mura_cluster_workers",
        "Configured process-cluster worker count (0 in in-process mode).",
        s.cluster_workers as f64,
    );
    p.gauge(
        "mura_cluster_workers_live",
        "Process-cluster workers currently answering heartbeats.",
        s.cluster_workers_live as f64,
    );
    p.counter(
        "mura_cluster_respawns_total",
        "Worker processes respawned after death or SIGKILL.",
        s.cluster_respawns,
    );
    p.counter(
        "mura_cluster_reconnects_total",
        "Worker control connections re-established after drops.",
        s.cluster_reconnects,
    );
    p.family(
        "mura_supervisor_events_total",
        "counter",
        "Supervisor journal events by kind (process cluster only).",
    );
    for (kind, v) in [
        ("respawn", s.cluster_respawns),
        ("reconnect", s.cluster_reconnects),
        ("liveness_miss", s.cluster_liveness_misses),
    ] {
        p.sample("mura_supervisor_events_total", &[("kind", kind)], v as f64);
    }
    p.gauge(
        "mura_cluster_skew_ratio",
        "Worst per-fixpoint max/median worker-time ratio of the last traced run.",
        s.skew_ratio_milli as f64 / 1000.0,
    );
    p.counter(
        "mura_trace_dropped_spans_total",
        "Worker-side trace spans dropped to the bounded per-worker sink.",
        s.cluster_trace_dropped,
    );
    p.histogram(
        "mura_worker_superstep_seconds",
        "Per-worker superstep durations across traced executions.",
        &t.worker_superstep.snapshot(),
    );
    let rtt = inner.proc.as_ref().map(|p| p.rtt_snapshot()).unwrap_or_default();
    p.histogram(
        "mura_heartbeat_rtt_seconds",
        "Supervisor heartbeat round-trip times (process cluster only).",
        &rtt,
    );
    p.family(
        "mura_wire_bytes_total",
        "counter",
        "Measured bytes on worker sockets across fresh executions, frames included.",
    );
    p.sample("mura_wire_bytes_total", &[("dir", "tx")], s.wire_tx_bytes as f64);
    p.sample("mura_wire_bytes_total", &[("dir", "rx")], s.wire_rx_bytes as f64);
    p.counter(
        "mura_wire_exchange_bytes_total",
        "Data-plane payload bytes that crossed worker sockets (the measured P_plw claim).",
        s.wire_exchange_bytes,
    );
    p.counter("mura_faults_injected_total", "Faults injected into executions.", s.faults_injected);
    p.family("mura_fault_recoveries_total", "counter", "Recovery actions by kind.");
    p.sample("mura_fault_recoveries_total", &[("action", "retry")], s.fault_retries as f64);
    p.sample("mura_fault_recoveries_total", &[("action", "restore")], s.fault_restores as f64);
    p.sample("mura_fault_recoveries_total", &[("action", "restart")], s.fault_restarts as f64);
    p.counter("mura_degraded_queries_total", "Queries that recovered from faults.", s.degraded);
    p.family("mura_kernel_events_total", "counter", "Evaluation-kernel counters (process-wide).");
    for (event, v) in [
        ("index_build", s.kernel_index_builds),
        ("join_probe", s.kernel_join_probes),
        ("antijoin_probe", s.kernel_antijoin_probes),
        ("rows_allocated", s.kernel_rows_allocated),
        ("const_fold", s.kernel_const_folds),
    ] {
        p.sample("mura_kernel_events_total", &[("event", event)], v as f64);
    }
    p.histogram(
        "mura_query_wall_seconds",
        "Submission-to-answer latency, queue time included.",
        &t.wall.snapshot(),
    );
    p.histogram("mura_query_queue_seconds", "Wait for a worker.", &t.queue.snapshot());
    p.histogram(
        "mura_query_execution_seconds",
        "Evaluator time of fresh executions.",
        &t.execution.snapshot(),
    );
    p.histogram(
        "mura_query_planning_seconds",
        "Planning time of plan-cache misses.",
        &t.planning.snapshot(),
    );
    p.family(
        "mura_ivm_applied_total",
        "counter",
        "Cached views brought to the current version per mode.",
    );
    p.sample("mura_ivm_applied_total", &[("mode", "maintained")], s.ivm_maintained as f64);
    p.sample("mura_ivm_applied_total", &[("mode", "unaffected")], s.ivm_unaffected as f64);
    p.family(
        "mura_ivm_fallback_total",
        "counter",
        "Cached views dropped for recompute-on-next-use, per reason.",
    );
    let c = &inner.counters;
    for (reason, v) in [
        ("non-monotone", c.ivm_fallback_non_monotone.load(Ordering::Relaxed)),
        ("nested-fixpoint", c.ivm_fallback_nested_fixpoint.load(Ordering::Relaxed)),
        ("cache-cold", c.ivm_fallback_cache_cold.load(Ordering::Relaxed)),
        ("cost", c.ivm_fallback_cost.load(Ordering::Relaxed)),
        ("other", c.ivm_fallback_other.load(Ordering::Relaxed)),
    ] {
        p.sample("mura_ivm_fallback_total", &[("reason", reason)], v as f64);
    }
    p.counter(
        "mura_ivm_rederived_rows",
        "Rows DRed over-deleted and rederived across maintained views.",
        s.ivm_rederived_rows,
    );
    p.family("mura_db_delta_rows_total", "counter", "Base rows mutated through deltas.");
    p.sample("mura_db_delta_rows_total", &[("op", "insert")], s.delta_rows_inserted as f64);
    p.sample("mura_db_delta_rows_total", &[("op", "delete")], s.delta_rows_deleted as f64);
    p.histogram(
        "mura_ivm_maintenance_seconds",
        "Per-view incremental maintenance latency.",
        &t.maintenance.snapshot(),
    );
    p.counter(
        "mura_wal_appends_total",
        "Write-ahead-log records appended (delta batches and loads).",
        s.wal_appends,
    );
    p.counter("mura_wal_bytes_total", "Bytes appended to the write-ahead log.", s.wal_bytes);
    p.counter(
        "mura_snapshots_total",
        "Durable snapshots written (periodic, bootstrap and post-recovery).",
        s.snapshots_written,
    );
    p.gauge(
        "mura_snapshot_age_seconds",
        "Seconds since the last durable snapshot (0 when durability is off).",
        s.snapshot_age_seconds as f64,
    );
    p.counter(
        "mura_recovery_replayed_batches",
        "WAL records replayed during the last crash recovery.",
        s.recovery_replayed_batches,
    );
    p.gauge("mura_db_epoch", "Current database epoch.", s.epoch as f64);
    p.gauge("mura_db_version", "Current database version.", s.version as f64);
    p.finish()
}

/// A handle for submitting queries to a [`Server`]. Cloneable and
/// sendable across threads.
#[derive(Clone)]
pub struct Client {
    inner: Arc<ServerInner>,
    tx: SyncSender<Job>,
}

impl Client {
    /// Submits a query and blocks for the answer, under the server's
    /// default deadline (if any).
    pub fn query(&self, query: &str) -> ServeResult<Arc<QueryOutput>> {
        self.submit(query, self.inner.config.default_deadline)?.wait()
    }

    /// Submits a query and blocks for the answer under an explicit
    /// deadline. The deadline clock starts now — queue time counts.
    pub fn query_with_deadline(
        &self,
        query: &str,
        deadline: Duration,
    ) -> ServeResult<Arc<QueryOutput>> {
        self.submit(query, Some(deadline))?.wait()
    }

    /// Runs a query with per-superstep tracing forced on, bypassing the
    /// result cache, and blocks for the answer. The output's
    /// `stats.trace` then carries the full [`mura_dist::QueryTrace`]
    /// (superstep timeline, communication per iteration) — see the
    /// `.profile` protocol command.
    pub fn profile(&self, query: &str) -> ServeResult<Arc<QueryOutput>> {
        self.submit_traced(query, self.inner.config.default_deadline, TraceLevel::Superstep)?.wait()
    }

    /// Plans `query` without executing it and renders the planner's
    /// decision procedure — candidate counts, per-group best costs, the
    /// chosen plan, and whether costing used observed cardinalities. The
    /// `.explain` protocol verb lands here.
    pub fn explain(&self, query: &str) -> ServeResult<String> {
        explain_of(&self.inner, query)
    }

    /// Non-blocking submission. Returns a [`Pending`] on admission, or
    /// [`ServeError::Busy`] immediately when the queue is full.
    pub fn submit(&self, query: &str, deadline: Option<Duration>) -> ServeResult<Pending> {
        self.submit_traced(query, deadline, TraceLevel::Off)
    }

    fn submit_traced(
        &self,
        query: &str,
        deadline: Option<Duration>,
        trace: TraceLevel,
    ) -> ServeResult<Pending> {
        if self.inner.closing.load(Ordering::SeqCst) {
            return Err(ServeError::Closed);
        }
        // Overload gates, best effort before queueing: a cached plan gives
        // this query's canonical key (breaker) and byte estimate; a cold
        // query is gated on the live gauge alone and re-checked
        // authoritatively in `process` once planned. Gates never block, so
        // a caller with an expired deadline is never parked here.
        let epoch = self.inner.epoch.load(Ordering::Acquire);
        let cached_plan = lock(&self.inner.plans).get(&(query.to_string(), epoch));
        if let Some(c) = &cached_plan {
            self.inner.breaker_check(plan_key(&c.plan), false).map_err(|e| self.inner.shed(e))?;
        }
        if self.inner.config.memory_watermark_bytes.is_some() {
            let estimate = cached_plan
                .as_ref()
                .and_then(|c| self.inner.estimated_bytes(&c.plan, epoch))
                .unwrap_or(0);
            self.inner.memory_gate(estimate).map_err(|e| self.inner.shed(e))?;
        }
        let token = match deadline {
            Some(d) => CancellationToken::with_timeout(d),
            None => CancellationToken::new(),
        };
        let id = self.inner.next_job.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let job = QueryJob {
            id,
            query: query.to_string(),
            token: token.clone(),
            trace,
            submitted: Instant::now(),
            reply: reply_tx,
        };
        // Register before enqueueing: a worker may finish (and deregister)
        // the job before try_send even returns.
        lock(&self.inner.inflight).insert(id, token.clone());
        match self.tx.try_send(Job::Query(job)) {
            Ok(()) => {
                self.inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(Pending { rx: reply_rx, token })
            }
            Err(send_err) => {
                lock(&self.inner.inflight).remove(&id);
                match send_err {
                    TrySendError::Full(_) => {
                        self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Busy {
                            queue_depth: self.inner.config.queue_depth.max(1),
                            retry_after_ms: (self.inner.config.retry_after.as_millis() as u64)
                                .max(1),
                        })
                    }
                    TrySendError::Disconnected(_) => Err(ServeError::Closed),
                }
            }
        }
    }

    /// Initiates and completes a graceful drain from any client handle
    /// (the `.drain` protocol verb lands here): stop admissions, let
    /// queued and in-flight queries finish within the configured grace,
    /// cancel stragglers (their replies are still delivered), and stop
    /// the workers. Worker threads stay joinable by the [`Server`] owner.
    /// Returns the final counters; concurrent callers return immediately
    /// with the current counters.
    pub fn request_drain(&self) -> ServeStats {
        let first = self
            .inner
            .drain_phase
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if first {
            self.inner.closing.store(true, Ordering::SeqCst);
            let grace = self.inner.config.drain_grace;
            // Watchdog: if the grace window passes before the queue
            // drains, cancel everything still registered — queued jobs
            // then resolve to `Cancelled` the moment a worker picks them
            // up, and running ones stop at their next superstep.
            let inner = Arc::clone(&self.inner);
            let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
            let watchdog = std::thread::Builder::new()
                .name("mura-serve-drain".into())
                .spawn(move || {
                    if done_rx.recv_timeout(grace).is_err() {
                        for token in lock(&inner.inflight).values() {
                            token.cancel();
                        }
                    }
                })
                .expect("spawn drain watchdog");
            // Blocking sends: every queued query drains ahead of the pills.
            for _ in 0..self.inner.config.workers.max(1) {
                let _ = self.tx.send(Job::Poison);
            }
            // Workers have consumed the whole queue; give executions still
            // in flight (at most one per worker) a bounded settle window.
            let settle = Instant::now();
            while !lock(&self.inner.inflight).is_empty() && settle.elapsed() < grace {
                std::thread::sleep(Duration::from_millis(2));
            }
            let _ = done_tx.send(());
            let _ = watchdog.join();
            self.inner.drain_phase.store(2, Ordering::SeqCst);
        }
        stats_of(&self.inner)
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServeStats {
        stats_of(&self.inner)
    }

    /// The full telemetry as a Prometheus text-exposition page.
    pub fn metrics(&self) -> String {
        metrics_of(&self.inner)
    }

    /// Read access to the database (resolve symbols, list relations).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(self.inner.read_engine().db())
    }

    /// Current database version (bumped by every mutation and load).
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Applies an edge-level [`DeltaBatch`], maintaining cached views
    /// incrementally — see [`Server::apply_delta`]. The `.insert` and
    /// `.delete` protocol verbs land here.
    pub fn apply_delta(&self, batch: DeltaBatch) -> ServeResult<DeltaSummary> {
        self.inner.apply_delta(batch)
    }
}

/// An admitted, in-flight query.
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<ServeResult<Arc<QueryOutput>>>,
    token: CancellationToken,
}

impl Pending {
    /// Requests cancellation; the evaluator stops at its next superstep
    /// and the query resolves to [`MuraError::Cancelled`]
    /// (mura_core::MuraError::Cancelled).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The query's cancellation token (cloneable; share it to let others
    /// cancel).
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    /// Blocks until the query resolves.
    pub fn wait(self) -> ServeResult<Arc<QueryOutput>> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll; `None` while still running.
    pub fn try_wait(&self) -> Option<ServeResult<Arc<QueryOutput>>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::MuraError;

    /// A server whose breaker trips on the first breaker-class failure and
    /// cools down quickly, for driving the state machine directly.
    fn breaker_server() -> Server {
        Server::start(
            QueryEngine::new(Database::new()),
            ServeConfig {
                breaker_threshold: 1,
                breaker_cooldown: Duration::from_millis(20),
                ..Default::default()
            },
        )
    }

    fn mem_exceeded() -> ServeResult<()> {
        Err(ServeError::Engine(MuraError::MemoryExceeded { used: 2, limit: 1 }))
    }

    fn cancelled() -> ServeResult<()> {
        Err(ServeError::Engine(MuraError::Cancelled))
    }

    fn state_of(server: &Server, key: u64) -> Option<BreakerState> {
        lock(&server.inner.breakers).get(&key).map(|b| b.state)
    }

    /// Regression: a half-open probe that resolves to a neutral outcome
    /// (cancelled / timeout / transient — neither success nor a
    /// breaker-class failure) must settle the breaker back to `Open` with
    /// a fresh cooldown. Before the fix it stayed `HalfOpen`, whose check
    /// arm rejects unconditionally, shedding the plan forever.
    #[test]
    fn neutral_probe_outcome_reopens_instead_of_stranding_half_open() {
        let server = breaker_server();
        let inner = &server.inner;
        let key = 42;

        inner.breaker_record(key, &mem_exceeded());
        assert_eq!(state_of(&server, key), Some(BreakerState::Open));
        assert!(inner.breaker_check(key, true).is_err(), "open breaker rejects");

        std::thread::sleep(Duration::from_millis(40));
        assert!(inner.breaker_check(key, true).is_ok(), "cooldown elapsed: probe admitted");
        assert_eq!(state_of(&server, key), Some(BreakerState::HalfOpen));

        // The probe is cancelled mid-flight: inconclusive, so the breaker
        // re-opens (cooldown restarted) instead of stranding half-open.
        inner.breaker_record(key, &cancelled());
        assert_eq!(state_of(&server, key), Some(BreakerState::Open));
        assert!(inner.breaker_check(key, true).is_err(), "cooldown restarted");

        std::thread::sleep(Duration::from_millis(40));
        assert!(inner.breaker_check(key, true).is_ok(), "a later probe is admitted again");
        inner.breaker_record(key, &Ok(()));
        assert_eq!(state_of(&server, key), None, "successful probe closes the breaker");
        server.shutdown();
    }

    /// A neutral failure with no breaker history (closed state) stays
    /// invisible to the breaker: no entry is created, nothing trips.
    #[test]
    fn neutral_failure_without_history_leaves_no_breaker() {
        let server = breaker_server();
        server.inner.breaker_record(7, &cancelled());
        assert_eq!(state_of(&server, 7), None);
        assert!(server.inner.breaker_check(7, true).is_ok());
        server.shutdown();
    }

    /// A load that changes the catalog's shape clears old-epoch breakers —
    /// a plan convicted against the previous contents gets a clean slate.
    #[test]
    fn schema_changing_load_clears_breakers() {
        let server = breaker_server();
        server.inner.breaker_record(42, &mem_exceeded());
        assert_eq!(state_of(&server, 42), Some(BreakerState::Open));
        let before = server.version();
        server.load(|db| {
            let (a, b) = (db.intern("src"), db.intern("dst"));
            let rel = mura_core::Relation::from_pairs(a, b, [(1, 2)]);
            db.insert_relation(&format!("extra_{before}"), rel);
        });
        assert_eq!(state_of(&server, 42), None, "epoch bump must reset breakers");
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.version(), before + 1);
        server.shutdown();
    }

    /// A same-shape load (data refresh) keeps breaker verdicts and the
    /// epoch: only the data-dependent result cache is invalidated, via the
    /// version bump.
    #[test]
    fn same_schema_load_keeps_breakers_and_epoch() {
        let server = breaker_server();
        server.inner.breaker_record(42, &mem_exceeded());
        assert_eq!(state_of(&server, 42), Some(BreakerState::Open));
        let before = server.version();
        server.load(|_| {});
        assert_eq!(
            state_of(&server, 42),
            Some(BreakerState::Open),
            "same-shape load keeps breaker history"
        );
        assert_eq!(server.epoch(), 0, "epoch only moves when the shape changes");
        assert_eq!(server.version(), before + 1, "every load is still a new version");
        server.shutdown();
    }
}
