//! A line-oriented TCP front end over [`Server`].
//!
//! The protocol mirrors the `murash` shell: any plain line is parsed as a
//! UCRPQ query; dot-commands cover introspection. Every response is one
//! status line (`OK …` or `ERR …`), zero or more body lines, and a final
//! line containing a single `.` — so clients read until the terminator.
//!
//! ```text
//! → ?x, ?y <- ?x a1+ ?y
//! ← OK 42 rows planning=0.1ms execution=3.2ms
//! ← (0, 3)
//! ← …
//! ← .
//! → .deadline 500        set a per-connection deadline (0 clears)
//! → .stats               serving counters incl. latency quantiles
//! → .metrics             Prometheus text-exposition page
//! → .profile <query>     run traced, print the superstep timeline
//! → .explain <query>     plan only: enumeration digest + chosen plan
//! → .rels                relations and row counts
//! → .insert [rel] v …    add a base row; cached views are maintained
//! → .delete [rel] v …    remove a base row (DRed maintenance)
//! → .drain               graceful shutdown: finish in-flight, stop workers
//! → .quit
//! ```
//!
//! Mutations reply with one status line carrying the new database version
//! and the fate of every cached view:
//!
//! ```text
//! → .insert e 7 8
//! ← OK v=3 +1 -0 maintained=1 unaffected=0 recomputed=0
//! ← .
//! ```
//!
//! The relation name may be omitted when the database holds exactly one
//! relation; values are node ids (integers) or bound constant names.
//!
//! Overloaded and busy rejections reply `ERR … retry-after-ms=<n>`; the
//! token is machine-parseable so clients can schedule a retry.

use crate::error::ServeResult;
use crate::server::{Client, Server};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Response terminator line.
pub const TERMINATOR: &str = ".";

/// A running TCP acceptor; stop it with [`TcpServeHandle::stop`].
pub struct TcpServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    /// Already-open connections finish on their own threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:7687"`, port 0 for ephemeral) and serves
/// connections against `server` on a background acceptor thread.
pub fn serve_tcp(server: &Server, addr: &str) -> io::Result<TcpServeHandle> {
    let listener = TcpListener::bind(addr)?;
    // Non-blocking accept so the acceptor can observe the stop flag.
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let client = server.client();
    let thread = std::thread::Builder::new().name("mura-serve-tcp".into()).spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let client = client.clone();
                    let _ = std::thread::Builder::new().name("mura-serve-conn".into()).spawn(
                        move || {
                            let _ = handle_connection(stream, &client);
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    })?;
    Ok(TcpServeHandle { addr: local, stop, thread: Some(thread) })
}

fn handle_connection(stream: TcpStream, client: &Client) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut deadline: Option<Duration> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => {
                write_block(&mut out, "OK bye", &[])?;
                return Ok(());
            }
            ".stats" => {
                let stats = client.stats().to_string();
                let body: Vec<String> = stats.lines().map(str::to_string).collect();
                write_block(&mut out, "OK stats", &body)?;
            }
            ".metrics" => {
                let page = client.metrics();
                let body: Vec<String> = page.lines().map(str::to_string).collect();
                write_block(&mut out, "OK metrics", &body)?;
            }
            ".drain" => {
                // Blocks until queued/in-flight queries resolve (bounded
                // by the server's drain grace), then reports the final
                // counters. Subsequent queries get "server closed".
                let stats = client.request_drain();
                let body: Vec<String> = stats.to_string().lines().map(str::to_string).collect();
                write_block(&mut out, "OK drained", &body)?;
            }
            _ if line.starts_with(".explain") => {
                let query = line[".explain".len()..].trim();
                if query.is_empty() {
                    write_block(&mut out, "ERR usage: .explain <query>", &[])?;
                } else {
                    match client.explain(query) {
                        Ok(text) => {
                            let body: Vec<String> = text.lines().map(str::to_string).collect();
                            write_block(&mut out, "OK explain", &body)?;
                        }
                        Err(e) => write_block(&mut out, &format!("ERR {e}"), &[])?,
                    }
                }
            }
            _ if line.starts_with(".profile") => {
                let query = line[".profile".len()..].trim();
                if query.is_empty() {
                    write_block(&mut out, "ERR usage: .profile <query>", &[])?;
                } else {
                    match run_profile(client, query) {
                        Ok((header, body)) => write_block(&mut out, &header, &body)?,
                        Err(e) => write_block(&mut out, &format!("ERR {e}"), &[])?,
                    }
                }
            }
            ".rels" => {
                let mut body = client.with_db(|db| {
                    db.relations()
                        .map(|(s, r)| format!("{} {} rows", db.dict().resolve(s), r.len()))
                        .collect::<Vec<_>>()
                });
                body.sort();
                write_block(&mut out, "OK rels", &body)?;
            }
            _ if line.starts_with(".deadline") => {
                let arg = line[".deadline".len()..].trim();
                match arg.parse::<u64>() {
                    Ok(0) => {
                        deadline = None;
                        write_block(&mut out, "OK deadline off", &[])?;
                    }
                    Ok(ms) => {
                        deadline = Some(Duration::from_millis(ms));
                        write_block(&mut out, &format!("OK deadline {ms} ms"), &[])?;
                    }
                    Err(_) => write_block(&mut out, "ERR usage: .deadline <millis>", &[])?,
                }
            }
            _ if line == ".insert" || line.starts_with(".insert ") => {
                let (status, body) = run_mutation(client, line[".insert".len()..].trim(), true);
                write_block(&mut out, &status, &body)?;
            }
            _ if line == ".delete" || line.starts_with(".delete ") => {
                let (status, body) = run_mutation(client, line[".delete".len()..].trim(), false);
                write_block(&mut out, &status, &body)?;
            }
            _ if line.starts_with('.') => {
                write_block(&mut out, &format!("ERR unknown command '{line}'"), &[])?;
            }
            query => {
                let result = run_query(client, query, deadline);
                match result {
                    Ok((header, rows)) => write_block(&mut out, &header, &rows)?,
                    Err(e) => write_block(&mut out, &format!("ERR {e}"), &[])?,
                }
            }
        }
    }
}

type QueryBlock = (String, Vec<String>);

/// Parses a mutation line (`[rel] value value …`) into a one-row
/// [`DeltaBatch`] and applies it. Replies with a single status line so
/// batch drivers (`murash --mutate`) get one line per mutation.
fn run_mutation(client: &Client, args: &str, insert: bool) -> QueryBlock {
    let verb = if insert { ".insert" } else { ".delete" };
    let batch = client.with_db(|db| parse_mutation(db, args, insert));
    let batch = match batch {
        Ok(b) => b,
        Err(e) => return (format!("ERR {verb}: {e}"), Vec::new()),
    };
    match client.apply_delta(batch) {
        Ok(s) => (
            format!(
                "OK v={} +{} -{} maintained={} unaffected={} recomputed={}",
                s.version, s.inserted, s.deleted, s.maintained, s.unaffected, s.recomputed
            ),
            Vec::new(),
        ),
        Err(e) => (format!("ERR {e}"), Vec::new()),
    }
}

fn parse_mutation(
    db: &mura_core::Database,
    args: &str,
    insert: bool,
) -> Result<mura_ivm::DeltaBatch, String> {
    use mura_core::Value;
    let mut tokens: Vec<&str> = args.split_whitespace().collect();
    if tokens.is_empty() {
        return Err("usage: [relation] <value> <value> …".into());
    }
    // An explicit leading relation name wins; otherwise the database must
    // hold exactly one relation (the common single-graph case).
    let rel = match db.dict().lookup(tokens[0]).filter(|s| db.relation(*s).is_some()) {
        Some(sym) => {
            tokens.remove(0);
            sym
        }
        None => {
            let mut rels = db.relations().map(|(s, _)| s);
            match (rels.next(), rels.next()) {
                (Some(only), None) => only,
                _ => {
                    return Err(format!(
                        "'{}' is not a relation and the database holds more than one",
                        tokens[0]
                    ))
                }
            }
        }
    };
    let arity = db.relation(rel).ok_or_else(|| "relation vanished".to_string())?.schema().arity();
    if tokens.len() != arity {
        return Err(format!(
            "relation '{}' has arity {arity}, got {} value(s)",
            db.dict().resolve(rel),
            tokens.len()
        ));
    }
    let row: Box<[Value]> = tokens
        .iter()
        .map(|tok| match tok.parse::<u64>() {
            Ok(id) => Ok(Value::node(id)),
            Err(_) => db
                .constant(tok)
                .ok_or_else(|| format!("'{tok}' is neither a node id nor a bound constant")),
        })
        .collect::<Result<_, _>>()?;
    let mut batch = mura_ivm::DeltaBatch::new();
    let push =
        if insert { mura_ivm::DeltaBatch::push_insert } else { mura_ivm::DeltaBatch::push_delete };
    push(&mut batch, db, rel, row).map_err(|e| e.to_string())?;
    Ok(batch)
}

/// Runs a query with per-superstep tracing and renders its timeline:
/// one aligned row per trace event (fixpoint, plan, worker, iteration,
/// delta size, rows shuffled/broadcast, probes, wall time).
fn run_profile(client: &Client, query: &str) -> ServeResult<QueryBlock> {
    let out = client.profile(query)?;
    let header = format!(
        "OK profile {} rows planning={:.1?} execution={:.1?}",
        out.relation.len(),
        out.planning,
        out.execution,
    );
    let body = match out.trace() {
        Some(trace) => trace.render_timeline().lines().map(str::to_string).collect(),
        None => vec!["(no trace recorded)".to_string()],
    };
    Ok((header, body))
}

fn run_query(client: &Client, query: &str, deadline: Option<Duration>) -> ServeResult<QueryBlock> {
    let out = client.submit(query, deadline)?.wait()?;
    // A query that hit faults but recovered still answers with `OK` — the
    // result is exact — plus a typed degradation note, instead of dropping
    // the connection or failing the query.
    let mut header = format!(
        "OK {} rows planning={:.1?} execution={:.1?}",
        out.relation.len(),
        out.planning,
        out.execution,
    );
    if let Some(note) = out.health_note() {
        header.push_str(&format!(" [{note}]"));
    }
    let rows = out
        .relation
        .sorted_rows()
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    Ok((header, rows))
}

fn write_block(out: &mut TcpStream, status: &str, body: &[String]) -> io::Result<()> {
    let mut buf =
        String::with_capacity(status.len() + 2 + body.iter().map(|l| l.len() + 1).sum::<usize>());
    buf.push_str(status);
    buf.push('\n');
    for l in body {
        buf.push_str(l);
        buf.push('\n');
    }
    buf.push_str(TERMINATOR);
    buf.push('\n');
    out.write_all(buf.as_bytes())?;
    out.flush()
}

/// Client-side helper: reads one protocol response (status line + body up
/// to the `.` terminator). Returns `(status, body)`.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<(String, Vec<String>)> {
    let mut status = String::new();
    if reader.read_line(&mut status)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
    }
    let status = status.trim_end().to_string();
    let mut body = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "missing terminator"));
        }
        let line = line.trim_end();
        if line == TERMINATOR {
            return Ok((status, body));
        }
        body.push(line.to_string());
    }
}
