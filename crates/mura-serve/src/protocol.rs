//! A line-oriented TCP front end over [`Server`].
//!
//! The protocol mirrors the `murash` shell: any plain line is parsed as a
//! UCRPQ query; dot-commands cover introspection. Every response is one
//! status line (`OK …` or `ERR …`), zero or more body lines, and a final
//! line containing a single `.` — so clients read until the terminator.
//!
//! ```text
//! → ?x, ?y <- ?x a1+ ?y
//! ← OK 42 rows planning=0.1ms execution=3.2ms
//! ← (0, 3)
//! ← …
//! ← .
//! → .deadline 500        set a per-connection deadline (0 clears)
//! → .stats               serving counters incl. latency quantiles
//! → .metrics             Prometheus text-exposition page
//! → .profile <query>     run traced, print the superstep timeline
//! → .explain <query>     plan only: enumeration digest + chosen plan
//! → .rels                relations and row counts
//! → .insert [rel] v …    add a base row; cached views are maintained
//! → .delete [rel] v …    remove a base row (DRed maintenance)
//! → .drain               graceful shutdown: finish in-flight, stop workers
//! → .quit
//! ```
//!
//! Mutations reply with one status line carrying the new database version
//! and the fate of every cached view:
//!
//! ```text
//! → .insert e 7 8
//! ← OK v=3 +1 -0 maintained=1 unaffected=0 recomputed=0
//! ← .
//! ```
//!
//! The relation name may be omitted when the database holds exactly one
//! relation; values are node ids (integers) or bound constant names.
//!
//! Overloaded and busy rejections reply `ERR … retry-after-ms=<n>`; the
//! token is machine-parseable so clients can schedule a retry.

use crate::error::ServeResult;
use crate::server::{Client, Server};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Response terminator line.
pub const TERMINATOR: &str = ".";

/// Maximum accepted protocol line, in bytes. Lines are this protocol's
/// frames: without a cap, a peer streaming an unterminated (or simply
/// enormous) "line" — garbage bytes, a runaway generator — grows the
/// read buffer without bound before the parser ever sees a newline.
/// Legitimate traffic (query text, `.metrics` pages rendered line by
/// line) stays far below a mebibyte.
pub const MAX_LINE: usize = 1 << 20;

/// Typed framing violations, carried as the payload of
/// [`io::ErrorKind::InvalidData`] errors from the capped line reader.
/// After either violation the stream cannot be resynchronized (the rest
/// of the bad line is indistinguishable from new frames), so the
/// connection must be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// A line exceeded [`MAX_LINE`] bytes before its newline arrived.
    TooLong { limit: usize },
    /// A line's bytes were not valid UTF-8 (binary garbage on the port).
    InvalidUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLong { limit } => {
                write!(f, "protocol line exceeds {limit} bytes before newline")
            }
            FrameError::InvalidUtf8 => write!(f, "protocol line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one `\n`-terminated line into `line` (cleared first), enforcing
/// [`MAX_LINE`]. Returns the byte count read (0 at EOF, like
/// `read_line`); violations surface as [`io::ErrorKind::InvalidData`]
/// with a [`FrameError`] payload. Both the server loop and
/// [`read_response`] frame through here, so neither side trusts the
/// other's framing.
fn read_line_capped(reader: &mut impl BufRead, line: &mut String) -> io::Result<usize> {
    line.clear();
    let mut raw: Vec<u8> = Vec::new();
    loop {
        let (consumed, done, overflow) = {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                (0, true, false) // EOF: return what arrived so far
            } else {
                let (chunk, done) = match buf.iter().position(|&b| b == b'\n') {
                    Some(i) => (&buf[..=i], true),
                    None => (buf, false),
                };
                if raw.len() + chunk.len() > MAX_LINE {
                    (chunk.len(), done, true)
                } else {
                    raw.extend_from_slice(chunk);
                    (chunk.len(), done, false)
                }
            }
        };
        reader.consume(consumed);
        if overflow {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                FrameError::TooLong { limit: MAX_LINE },
            ));
        }
        if done {
            break;
        }
    }
    match std::str::from_utf8(&raw) {
        Ok(s) => {
            line.push_str(s);
            Ok(raw.len())
        }
        Err(_) => Err(io::Error::new(io::ErrorKind::InvalidData, FrameError::InvalidUtf8)),
    }
}

/// A running TCP acceptor; stop it with [`TcpServeHandle::stop`].
pub struct TcpServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    /// Already-open connections finish on their own threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:7687"`, port 0 for ephemeral) and serves
/// connections against `server` on a background acceptor thread.
pub fn serve_tcp(server: &Server, addr: &str) -> io::Result<TcpServeHandle> {
    let listener = TcpListener::bind(addr)?;
    // Non-blocking accept so the acceptor can observe the stop flag.
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let client = server.client();
    let thread = std::thread::Builder::new().name("mura-serve-tcp".into()).spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let client = client.clone();
                    let _ = std::thread::Builder::new().name("mura-serve-conn".into()).spawn(
                        move || {
                            let _ = handle_connection(stream, &client);
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    })?;
    Ok(TcpServeHandle { addr: local, stop, thread: Some(thread) })
}

fn handle_connection(stream: TcpStream, client: &Client) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut deadline: Option<Duration> = None;
    let mut line = String::new();
    loop {
        match read_line_capped(&mut reader, &mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Framing violation (oversized or binary line): answer
                // once with a typed error, then drop the connection — the
                // rest of the bad line cannot be told apart from frames.
                let _ = write_block(&mut out, &format!("ERR {e}"), &[]);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => {
                write_block(&mut out, "OK bye", &[])?;
                return Ok(());
            }
            ".stats" => {
                let stats = client.stats().to_string();
                let body: Vec<String> = stats.lines().map(str::to_string).collect();
                write_block(&mut out, "OK stats", &body)?;
            }
            ".metrics" => {
                let page = client.metrics();
                let body: Vec<String> = page.lines().map(str::to_string).collect();
                write_block(&mut out, "OK metrics", &body)?;
            }
            ".drain" => {
                // Blocks until queued/in-flight queries resolve (bounded
                // by the server's drain grace), then reports the final
                // counters. Subsequent queries get "server closed".
                let stats = client.request_drain();
                let body: Vec<String> = stats.to_string().lines().map(str::to_string).collect();
                write_block(&mut out, "OK drained", &body)?;
            }
            _ if line.starts_with(".explain") => {
                let query = line[".explain".len()..].trim();
                if query.is_empty() {
                    write_block(&mut out, "ERR usage: .explain <query>", &[])?;
                } else {
                    match client.explain(query) {
                        Ok(text) => {
                            let body: Vec<String> = text.lines().map(str::to_string).collect();
                            write_block(&mut out, "OK explain", &body)?;
                        }
                        Err(e) => write_block(&mut out, &format!("ERR {e}"), &[])?,
                    }
                }
            }
            _ if line.starts_with(".profile") => {
                let query = line[".profile".len()..].trim();
                if query.is_empty() {
                    write_block(&mut out, "ERR usage: .profile <query>", &[])?;
                } else {
                    match run_profile(client, query) {
                        Ok((header, body)) => write_block(&mut out, &header, &body)?,
                        Err(e) => write_block(&mut out, &format!("ERR {e}"), &[])?,
                    }
                }
            }
            ".rels" => {
                let mut body = client.with_db(|db| {
                    db.relations()
                        .map(|(s, r)| format!("{} {} rows", db.dict().resolve(s), r.len()))
                        .collect::<Vec<_>>()
                });
                body.sort();
                write_block(&mut out, "OK rels", &body)?;
            }
            _ if line.starts_with(".deadline") => {
                let arg = line[".deadline".len()..].trim();
                match arg.parse::<u64>() {
                    Ok(0) => {
                        deadline = None;
                        write_block(&mut out, "OK deadline off", &[])?;
                    }
                    Ok(ms) => {
                        deadline = Some(Duration::from_millis(ms));
                        write_block(&mut out, &format!("OK deadline {ms} ms"), &[])?;
                    }
                    Err(_) => write_block(&mut out, "ERR usage: .deadline <millis>", &[])?,
                }
            }
            _ if line == ".insert" || line.starts_with(".insert ") => {
                let (status, body) = run_mutation(client, line[".insert".len()..].trim(), true);
                write_block(&mut out, &status, &body)?;
            }
            _ if line == ".delete" || line.starts_with(".delete ") => {
                let (status, body) = run_mutation(client, line[".delete".len()..].trim(), false);
                write_block(&mut out, &status, &body)?;
            }
            _ if line.starts_with('.') => {
                write_block(&mut out, &format!("ERR unknown command '{line}'"), &[])?;
            }
            query => {
                let result = run_query(client, query, deadline);
                match result {
                    Ok((header, rows)) => write_block(&mut out, &header, &rows)?,
                    Err(e) => write_block(&mut out, &format!("ERR {e}"), &[])?,
                }
            }
        }
    }
}

type QueryBlock = (String, Vec<String>);

/// Parses a mutation line (`[rel] value value …`) into a one-row
/// [`DeltaBatch`] and applies it. Replies with a single status line so
/// batch drivers (`murash --mutate`) get one line per mutation.
fn run_mutation(client: &Client, args: &str, insert: bool) -> QueryBlock {
    let verb = if insert { ".insert" } else { ".delete" };
    let batch = client.with_db(|db| parse_mutation(db, args, insert));
    let batch = match batch {
        Ok(b) => b,
        Err(e) => return (format!("ERR {verb}: {e}"), Vec::new()),
    };
    match client.apply_delta(batch) {
        Ok(s) => (
            format!(
                "OK v={} +{} -{} maintained={} unaffected={} recomputed={}",
                s.version, s.inserted, s.deleted, s.maintained, s.unaffected, s.recomputed
            ),
            Vec::new(),
        ),
        Err(e) => (format!("ERR {e}"), Vec::new()),
    }
}

fn parse_mutation(
    db: &mura_core::Database,
    args: &str,
    insert: bool,
) -> Result<mura_ivm::DeltaBatch, String> {
    use mura_core::Value;
    let mut tokens: Vec<&str> = args.split_whitespace().collect();
    if tokens.is_empty() {
        return Err("usage: [relation] <value> <value> …".into());
    }
    // An explicit leading relation name wins; otherwise the database must
    // hold exactly one relation (the common single-graph case).
    let rel = match db.dict().lookup(tokens[0]).filter(|s| db.relation(*s).is_some()) {
        Some(sym) => {
            tokens.remove(0);
            sym
        }
        None => {
            let mut rels = db.relations().map(|(s, _)| s);
            match (rels.next(), rels.next()) {
                (Some(only), None) => only,
                _ => {
                    return Err(format!(
                        "'{}' is not a relation and the database holds more than one",
                        tokens[0]
                    ))
                }
            }
        }
    };
    let arity = db.relation(rel).ok_or_else(|| "relation vanished".to_string())?.schema().arity();
    if tokens.len() != arity {
        return Err(format!(
            "relation '{}' has arity {arity}, got {} value(s)",
            db.dict().resolve(rel),
            tokens.len()
        ));
    }
    let row: Box<[Value]> = tokens
        .iter()
        .map(|tok| match tok.parse::<u64>() {
            Ok(id) => Ok(Value::node(id)),
            Err(_) => db
                .constant(tok)
                .ok_or_else(|| format!("'{tok}' is neither a node id nor a bound constant")),
        })
        .collect::<Result<_, _>>()?;
    let mut batch = mura_ivm::DeltaBatch::new();
    let push =
        if insert { mura_ivm::DeltaBatch::push_insert } else { mura_ivm::DeltaBatch::push_delete };
    push(&mut batch, db, rel, row).map_err(|e| e.to_string())?;
    Ok(batch)
}

/// Runs a query with per-superstep tracing and renders its timeline:
/// one aligned row per trace event (fixpoint, plan, worker, iteration,
/// delta size, rows shuffled/broadcast, probes, wall time).
fn run_profile(client: &Client, query: &str) -> ServeResult<QueryBlock> {
    let out = client.profile(query)?;
    let header = format!(
        "OK profile {} rows planning={:.1?} execution={:.1?}",
        out.relation.len(),
        out.planning,
        out.execution,
    );
    let body = match out.trace() {
        Some(trace) => {
            let mut lines: Vec<String> =
                trace.render_timeline().lines().map(str::to_string).collect();
            // Cluster-aware addendum: per-fixpoint worker skew, derived
            // from the merged worker lanes (empty for single-lane traces).
            let skew = trace.render_skew();
            if !skew.is_empty() {
                lines.push(String::new());
                lines.extend(skew.lines().map(str::to_string));
            }
            lines
        }
        None => vec!["(no trace recorded)".to_string()],
    };
    Ok((header, body))
}

fn run_query(client: &Client, query: &str, deadline: Option<Duration>) -> ServeResult<QueryBlock> {
    let out = client.submit(query, deadline)?.wait()?;
    // A query that hit faults but recovered still answers with `OK` — the
    // result is exact — plus a typed degradation note, instead of dropping
    // the connection or failing the query.
    let mut header = format!(
        "OK {} rows planning={:.1?} execution={:.1?}",
        out.relation.len(),
        out.planning,
        out.execution,
    );
    if let Some(note) = out.health_note() {
        header.push_str(&format!(" [{note}]"));
    }
    let rows = out
        .relation
        .sorted_rows()
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    Ok((header, rows))
}

fn write_block(out: &mut TcpStream, status: &str, body: &[String]) -> io::Result<()> {
    let mut buf =
        String::with_capacity(status.len() + 2 + body.iter().map(|l| l.len() + 1).sum::<usize>());
    buf.push_str(status);
    buf.push('\n');
    for l in body {
        buf.push_str(l);
        buf.push('\n');
    }
    buf.push_str(TERMINATOR);
    buf.push('\n');
    out.write_all(buf.as_bytes())?;
    out.flush()
}

/// Client-side helper: reads one protocol response (status line + body up
/// to the `.` terminator). Returns `(status, body)`. Lines are read
/// through the same [`MAX_LINE`]-capped reader as the server loop, so a
/// malicious or corrupted server cannot balloon the client either; a
/// response truncated before its terminator is an
/// [`io::ErrorKind::UnexpectedEof`] error, never a silent partial answer.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<(String, Vec<String>)> {
    let mut status = String::new();
    if read_line_capped(reader, &mut status)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
    }
    let status = status.trim_end().to_string();
    let mut body = Vec::new();
    let mut line = String::new();
    loop {
        if read_line_capped(reader, &mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "missing terminator"));
        }
        let line = line.trim_end();
        if line == TERMINATOR {
            return Ok((status, body));
        }
        body.push(line.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn capped_reader_round_trips_normal_lines() {
        let mut r = Cursor::new(b"hello\nworld\n".to_vec());
        let mut line = String::new();
        assert_eq!(read_line_capped(&mut r, &mut line).unwrap(), 6);
        assert_eq!(line.trim_end(), "hello");
        assert_eq!(read_line_capped(&mut r, &mut line).unwrap(), 6);
        assert_eq!(line.trim_end(), "world");
        assert_eq!(read_line_capped(&mut r, &mut line).unwrap(), 0); // EOF
    }

    #[test]
    fn oversized_line_is_a_typed_error_not_an_allocation() {
        // An unterminated 2 MiB blast must fail at the cap, not buffer on.
        let mut r = Cursor::new(vec![b'x'; 2 * MAX_LINE]);
        let mut line = String::new();
        let e = read_line_capped(&mut r, &mut line).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let frame = e.get_ref().and_then(|s| s.downcast_ref::<FrameError>());
        assert_eq!(frame, Some(&FrameError::TooLong { limit: MAX_LINE }));
    }

    #[test]
    fn binary_garbage_is_a_typed_error() {
        let mut r = Cursor::new(vec![0xff, 0xfe, 0x80, b'\n']);
        let mut line = String::new();
        let e = read_line_capped(&mut r, &mut line).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let frame = e.get_ref().and_then(|s| s.downcast_ref::<FrameError>());
        assert_eq!(frame, Some(&FrameError::InvalidUtf8));
    }

    #[test]
    fn truncated_response_is_unexpected_eof() {
        // Status line arrives, body is cut off before the terminator.
        let mut r = Cursor::new(b"OK 1 rows\n(0, 1)\n".to_vec());
        let e = read_response(&mut r).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }
}
