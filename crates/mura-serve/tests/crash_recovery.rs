//! Coordinator-crash chaos: kill the serving process at seeded points in
//! the durability pipeline (mid-WAL-append, post-append/pre-apply,
//! mid-snapshot, mid-maintenance), restart against the same data
//! directory, and require the recovered session to be indistinguishable
//! from an uninterrupted same-seed run — same per-version `DeltaSummary`
//! lines, same final version and answer.
//!
//! The driver is the `mura-crashd` binary (see `src/bin/mura-crashd.rs`):
//! its mutation schedule is a pure function of the seed, so a crashed run
//! and its recovery compose into exactly the reference timeline.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Crash sites × hit counts chosen to land in distinct rounds of the
/// 6-round schedule (hit 1 of `snapshot_mid` would be the bootstrap
/// snapshot at version 0 — also legal, but hit 2 exercises the more
/// interesting periodic snapshot mid-stream).
const CRASH_POINTS: [&str; 4] =
    ["wal_append_mid:4", "wal_append_done:2", "snapshot_mid:2", "maintain_mid:5"];

fn seed() -> u64 {
    std::env::var("MURA_CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(5)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mura-crash-{}-{}-{tag}", std::process::id(), seed()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_crashd(dir: &Path, plan: &str, cluster: &str, crash: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mura-crashd"));
    cmd.args(["--data-dir", dir.to_str().unwrap(), "--plan", plan, "--cluster", cluster]);
    cmd.args(["--seed", &seed().to_string(), "--rounds", "6"]);
    if cluster == "proc" {
        cmd.args(["--worker-bin", ensure_worker_bin().to_str().unwrap()]);
    }
    match crash {
        Some(point) => cmd.env("MURA_CRASH_POINT", point),
        None => cmd.env_remove("MURA_CRASH_POINT"),
    };
    cmd.output().expect("spawn mura-crashd")
}

/// Locates the `mura-worker` binary next to the test executable, building
/// it first when the test runs in isolation.
fn ensure_worker_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("mura-worker");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = Command::new(cargo);
        cmd.args(["build", "-p", "mura-dist", "--bin", "mura-worker"]);
        if dir.ends_with("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("run cargo build for mura-worker");
        assert!(status.success(), "building mura-worker failed");
    }
    bin
}

/// Parsed machine-readable crashd output.
#[derive(Debug, Default)]
struct Transcript {
    /// `RECOVERED v=…` — version the process started serving from.
    recovered_version: u64,
    /// WAL records replayed at startup.
    replayed: u64,
    /// `DELTA v=…` / `LOAD v=…` lines keyed by version.
    steps: BTreeMap<u64, String>,
    /// The `FINAL …` line, if the run got that far.
    final_line: Option<String>,
}

fn parse(stdout: &[u8]) -> Transcript {
    let text = String::from_utf8_lossy(stdout);
    let mut t = Transcript::default();
    let field = |line: &str, key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .unwrap_or_else(|| panic!("missing {key} in {line:?}"))
            .parse()
            .unwrap_or_else(|_| panic!("bad {key} in {line:?}"))
    };
    for line in text.lines() {
        if line.starts_with("RECOVERED ") {
            t.recovered_version = field(line, "v=");
            t.replayed = field(line, "replayed=");
        } else if line.starts_with("DELTA ") || line.starts_with("LOAD ") {
            t.steps.insert(field(line, "v="), line.to_string());
        } else if line.starts_with("FINAL ") {
            t.final_line = Some(line.to_string());
        }
    }
    t
}

/// Runs the reference (uninterrupted), the crashed run, and the recovery,
/// then checks the recovery composes with the crash into exactly the
/// reference timeline.
fn check_crash_point(plan: &str, cluster: &str, point: &str) {
    let ref_dir = scratch_dir(&format!("ref-{plan}-{cluster}"));
    let reference = parse(&{
        let out = run_crashd(&ref_dir, plan, cluster, None);
        assert!(out.status.success(), "reference run failed: {out:?}");
        out.stdout
    });
    let ref_final = reference.final_line.clone().expect("reference FINAL line");

    let dir = scratch_dir(&format!("{plan}-{cluster}-{}", point.replace(':', "-")));
    let crashed = run_crashd(&dir, plan, cluster, Some(point));
    let crashed_t = parse(&crashed.stdout);
    if crashed.status.success() {
        // The crash point never fired (site not reached for this plan):
        // the run must then simply equal the reference.
        assert_eq!(crashed_t.final_line.as_deref(), Some(ref_final.as_str()), "{plan} {point}");
        return;
    }

    // Every acked mutation in the crashed run matches the reference.
    for (v, line) in &crashed_t.steps {
        assert_eq!(
            Some(line),
            reference.steps.get(v),
            "crashed run diverged from reference before the crash \
             (plan {plan}, {point}, version {v})"
        );
    }
    let acked = crashed_t.steps.keys().max().copied().unwrap_or(0);

    let recovery = run_crashd(&dir, plan, cluster, None);
    assert!(recovery.status.success(), "recovery failed ({plan} {point}): {recovery:?}");
    let rec = parse(&recovery.stdout);

    // Acked mutations must survive; at most the one in-flight, un-acked
    // mutation may additionally have become durable.
    assert!(
        rec.recovered_version >= acked,
        "recovery lost an acked mutation: acked v={acked}, recovered \
         v={} (plan {plan}, {point})",
        rec.recovered_version
    );
    assert!(
        rec.recovered_version <= acked + 1,
        "recovery invented a mutation: acked v={acked}, recovered v={} \
         (plan {plan}, {point})",
        rec.recovered_version
    );

    // The recovered continuation replays the reference timeline exactly:
    // same steps for every remaining version, same final answer.
    let expected: BTreeMap<u64, String> = reference
        .steps
        .iter()
        .filter(|(v, _)| **v > rec.recovered_version)
        .map(|(v, l)| (*v, l.clone()))
        .collect();
    assert_eq!(rec.steps, expected, "post-recovery summaries (plan {plan}, {point})");
    assert_eq!(
        rec.final_line.as_deref(),
        Some(ref_final.as_str()),
        "final answer after recovery (plan {plan}, {point})"
    );

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_matrix_gld() {
    for point in CRASH_POINTS {
        check_crash_point("gld", "sim", point);
    }
}

#[test]
fn crash_recovery_matrix_plw() {
    for point in CRASH_POINTS {
        check_crash_point("plw", "sim", point);
    }
}

#[test]
fn crash_recovery_matrix_async() {
    for point in CRASH_POINTS {
        check_crash_point("async", "sim", point);
    }
}

/// The durable tier composes with the real multi-process cluster backend:
/// crash the *coordinator* mid-append while workers are live subprocesses,
/// then recover against the same directory.
#[test]
fn crash_recovery_over_process_cluster() {
    check_crash_point("auto", "proc", "wal_append_done:2");
}
