//! Serving over the real multi-process cluster: exact answers with
//! measured wire bytes, zero lost responses through a concurrent drain,
//! and protocol framing hardened against garbage on the port.

use mura_core::{Database, Value};
use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
use mura_dist::QueryEngine;
use mura_serve::{ClusterMode, ServeConfig, ServeError, Server};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A labelled random graph with a bound constant, as in the engine tests.
fn test_db() -> Database {
    let mut rng = SplitMix64::seed_from_u64(17);
    let g = erdos_renyi(80, 0.03, 7);
    let lg = with_random_labels(&g, 2, &mut rng);
    let mut db = lg.to_database();
    db.bind_constant("C", Value::node(5));
    db
}

const QUERIES: [&str; 4] = [
    "?x, ?y <- ?x a1+ ?y",
    "?x <- ?x a1+ C",
    "?x, ?y <- ?x a1+/a2+ ?y",
    "?x, ?y <- ?x (a1|a2)+ ?y",
];

/// Locates the `mura-worker` binary next to the test executable, building
/// it first when the test runs in isolation (`cargo test -p mura-serve`
/// does not build another crate's binaries on its own).
fn ensure_worker_bin() -> PathBuf {
    let mut dir = std::env::current_exe().expect("current_exe");
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let bin = dir.join("mura-worker");
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = std::process::Command::new(cargo);
        cmd.args(["build", "-p", "mura-dist", "--bin", "mura-worker"]);
        if dir.ends_with("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("run cargo build for mura-worker");
        assert!(status.success(), "building mura-worker failed");
    }
    bin
}

fn proc_server(workers: usize, config: ServeConfig) -> Server {
    let config = ServeConfig {
        cluster: ClusterMode::Processes { workers },
        worker_bin: Some(ensure_worker_bin()),
        ..config
    };
    Server::try_start(QueryEngine::new(test_db()), config).expect("spawn process cluster")
}

#[test]
fn proc_backend_answers_match_in_process_with_real_wire_bytes() {
    let mut reference = QueryEngine::new(test_db());
    let expected: Vec<_> =
        QUERIES.iter().map(|q| reference.run_ucrpq(q).unwrap().relation.sorted_rows()).collect();

    let server = proc_server(3, ServeConfig::default());
    let client = server.client();
    for (q, want) in QUERIES.iter().zip(&expected) {
        let out = client.query(q).unwrap();
        assert_eq!(&out.relation.sorted_rows(), want, "{q}");
    }

    let health = server.cluster_health().expect("process mode has health");
    assert_eq!(health.workers, 3);
    assert_eq!(health.live, 3, "{health:?}");

    let stats = server.stats();
    assert_eq!(stats.cluster_workers, 3, "{stats:?}");
    assert_eq!(stats.cluster_workers_live, 3, "{stats:?}");
    assert!(stats.wire_tx_bytes > 0, "payloads must cross real sockets: {stats:?}");
    assert!(stats.wire_rx_bytes > 0, "{stats:?}");
    assert!(stats.wire_exchange_bytes > 0, "{stats:?}");

    let page = server.metrics();
    for family in [
        "mura_cluster_workers",
        "mura_cluster_workers_live",
        "mura_cluster_respawns_total",
        "mura_cluster_reconnects_total",
        "mura_wire_bytes_total",
    ] {
        assert!(page.contains(&format!("# TYPE {family} ")), "missing family {family}:\n{page}");
    }
    assert!(page.contains("mura_cluster_workers_live 3"), "{page}");
    assert!(page.contains("mura_wire_bytes_total{dir=\"tx\"}"), "{page}");
    assert!(page.contains("mura_wire_bytes_total{dir=\"rx\"}"), "{page}");
    server.shutdown();
}

#[test]
fn concurrent_drain_over_proc_backend_loses_no_responses() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 6;

    let server = proc_server(
        2,
        ServeConfig {
            workers: 2,
            queue_depth: 4,
            result_cache: 0, // every query executes against the fleet
            drain_grace: Duration::from_secs(2),
            ..Default::default()
        },
    );

    #[derive(Default)]
    struct Outcomes {
        ok: AtomicU64,
        engine_err: AtomicU64,
        busy: AtomicU64,
        overloaded: AtomicU64,
        closed: AtomicU64,
    }
    let outcomes = Arc::new(Outcomes::default());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let client = server.client();
            let outcomes = Arc::clone(&outcomes);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let q = QUERIES[(t + i) % QUERIES.len()];
                    match client.query(q) {
                        Ok(out) => {
                            assert!(!out.relation.is_empty(), "{q}");
                            outcomes.ok.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(ServeError::Busy { .. }) => {
                            outcomes.busy.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            outcomes.overloaded.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(ServeError::Closed) => outcomes.closed.fetch_add(1, Ordering::Relaxed),
                        Err(ServeError::Engine(_)) => {
                            outcomes.engine_err.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(ServeError::Durability(e)) => panic!("durability off: {e}"),
                    };
                }
            })
        })
        .collect();

    // Drain mid-storm: in-flight fleet exchanges must finish (or cancel
    // cleanly), and every submission must still resolve exactly once.
    std::thread::sleep(Duration::from_millis(30));
    let probe = server.client();
    let drain_stats = server.drain();
    assert_eq!(drain_stats.drain_phase, 2, "{drain_stats:?}");
    for h in handles {
        h.join().unwrap();
    }

    let o = &outcomes;
    let total = o.ok.load(Ordering::Relaxed)
        + o.engine_err.load(Ordering::Relaxed)
        + o.busy.load(Ordering::Relaxed)
        + o.overloaded.load(Ordering::Relaxed)
        + o.closed.load(Ordering::Relaxed);
    assert_eq!(total as usize, THREADS * PER_THREAD, "every submission resolves exactly once");
    assert!(o.ok.load(Ordering::Relaxed) > 0, "some queries must complete over the fleet");

    let stats = probe.stats();
    assert_eq!(
        stats.completed + stats.failed + stats.shed_admitted,
        stats.submitted,
        "admitted queries must all terminate: {stats:?}"
    );
}

#[test]
fn garbage_bytes_on_the_port_answer_typed_errors_and_spare_the_server() {
    use std::io::{BufReader, Read, Write};

    let server = Server::start(QueryEngine::new(test_db()), ServeConfig::default());
    let handle = mura_serve::serve_tcp(&server, "127.0.0.1:0").unwrap();

    // Binary garbage: one typed ERR reply, then the connection closes.
    {
        let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
        s.write_all(&[0xff, 0xfe, 0x80, 0x00, b'\n']).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let (status, _) = mura_serve::read_response(&mut reader).unwrap();
        assert!(status.starts_with("ERR"), "{status}");
        assert!(status.contains("UTF-8"), "{status}");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection must close after a framing violation");
    }

    // An unterminated oversized line: rejected at the cap, not buffered.
    {
        let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
        let blast = vec![b'x'; mura_serve::MAX_LINE + 1024];
        s.write_all(&blast).unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let (status, _) = mura_serve::read_response(&mut reader).unwrap();
        assert!(status.starts_with("ERR"), "{status}");
        assert!(status.contains("exceeds"), "{status}");
    }

    // The server survives both: a fresh connection still answers queries.
    {
        let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"?x, ?y <- ?x a1+ ?y\n").unwrap();
        let mut reader = BufReader::new(s.try_clone().unwrap());
        let (status, rows) = mura_serve::read_response(&mut reader).unwrap();
        assert!(status.starts_with("OK"), "{status}");
        assert!(!rows.is_empty());
    }

    handle.stop();
    server.shutdown();
}
