//! Acceptance tests for overload protection and graceful degradation:
//! typed memory-budget failures, cost-aware shedding, the per-plan
//! circuit breaker, cancellation of queued queries, and drain.
//!
//! The `overload` CI job runs this suite with `MURA_OVERLOAD_MAX_BYTES`
//! set to an artificially small per-query byte budget, driving the
//! stress test through the `MemoryExceeded` path as well.

use mura_core::{Database, MuraError, Relation};
use mura_dist::exec::{ExecConfig, FixpointPlan, ResourceLimits};
use mura_dist::QueryEngine;
use mura_serve::{OverloadReason, ServeConfig, ServeError, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A directed cycle: its transitive closure has n² rows after n `P_gld`
/// driver iterations — slow, memory-hungry, and rich in preemption points.
fn cycle_db(n: u64) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("e", Relation::from_pairs(src, dst, (0..n).map(|i| (i, (i + 1) % n))));
    db
}

fn slow_engine(n: u64) -> QueryEngine {
    let config = ExecConfig { plan: FixpointPlan::ForceGld, ..Default::default() };
    QueryEngine::with_config(cycle_db(n), config)
}

const TC: &str = "?x, ?y <- ?x e+ ?y";

fn tight_limits(max_bytes: u64) -> ResourceLimits {
    ResourceLimits { max_rows: None, max_bytes: Some(max_bytes), timeout: None }
}

#[test]
fn memory_exceeded_surfaces_typed_through_server() {
    let server = Server::start(
        slow_engine(200),
        ServeConfig { limits: tight_limits(32 << 10), breaker_threshold: 0, ..Default::default() },
    );
    let err = server.client().query(TC).unwrap_err();
    match err {
        ServeError::Engine(MuraError::MemoryExceeded { used, limit }) => {
            assert_eq!(limit, 32 << 10);
            assert!(used > limit, "reported usage {used} must exceed the limit {limit}");
        }
        other => panic!("expected Engine(MemoryExceeded), got {other}"),
    }
    let stats = server.stats();
    assert_eq!(stats.failed, 1);
    assert!(stats.mem_high_water_bytes > 0, "the gauge must have seen the allocations");
    server.shutdown();
}

#[test]
fn breaker_opens_after_repeated_memory_exceeded() {
    let server = Server::start(
        slow_engine(200),
        ServeConfig {
            limits: tight_limits(32 << 10),
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(3600), // stays open for the test
            ..Default::default()
        },
    );
    let client = server.client();
    for i in 0..2 {
        let err = client.query(TC).unwrap_err();
        assert!(
            matches!(err, ServeError::Engine(MuraError::MemoryExceeded { .. })),
            "failure {i} must execute and fail typed, got {err}"
        );
    }
    // Third attempt: the breaker is open, the query is shed unexecuted.
    let err = client.query(TC).unwrap_err();
    assert!(err.is_overloaded(), "expected Overloaded after breaker opened, got {err}");
    assert!(
        matches!(err, ServeError::Overloaded { reason: OverloadReason::CircuitOpen, .. }),
        "{err}"
    );
    assert!(err.retry_after_ms().unwrap() > 0, "an open breaker must hint a retry");
    let stats = server.stats();
    assert_eq!(stats.breaker_opened, 1, "{stats:?}");
    assert_eq!(stats.breaker_open, 1, "{stats:?}");
    assert!(stats.shed >= 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn breaker_half_opens_after_cooldown_and_reopens_on_probe_failure() {
    let server = Server::start(
        slow_engine(200),
        ServeConfig {
            limits: tight_limits(32 << 10),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(50),
            ..Default::default()
        },
    );
    let client = server.client();
    let err = client.query(TC).unwrap_err();
    assert!(matches!(err, ServeError::Engine(MuraError::MemoryExceeded { .. })), "{err}");
    assert_eq!(server.stats().breaker_opened, 1);

    std::thread::sleep(Duration::from_millis(100));
    // Cooldown elapsed: the next call is admitted as a half-open probe —
    // it executes (typed engine failure, not a shed) and re-opens.
    let err = client.query(TC).unwrap_err();
    assert!(
        matches!(err, ServeError::Engine(MuraError::MemoryExceeded { .. })),
        "the half-open probe must reach the engine, got {err}"
    );
    let stats = server.stats();
    assert_eq!(stats.breaker_opened, 2, "probe failure must re-open: {stats:?}");
    assert_eq!(stats.breaker_open, 1, "{stats:?}");
    server.shutdown();
}

#[test]
fn watermark_sheds_with_memory_reason_and_retry_after() {
    // Watermark 0: any nonzero cost estimate (known once the worker has
    // the plan) sheds the execution deterministically.
    let server = Server::start(
        slow_engine(40),
        ServeConfig {
            memory_watermark_bytes: Some(0),
            retry_after: Duration::from_millis(25),
            breaker_threshold: 0,
            ..Default::default()
        },
    );
    let err = server.client().query(TC).unwrap_err();
    assert!(
        matches!(err, ServeError::Overloaded { reason: OverloadReason::Memory, .. }),
        "expected a memory shed, got {err}"
    );
    assert_eq!(err.retry_after_ms(), Some(25));
    let stats = server.stats();
    assert!(stats.shed >= 1);
    assert_eq!(stats.failed, 0, "a shed is not an execution failure: {stats:?}");
    server.shutdown();
}

/// Satellite regression: cancelling a query that is still *queued* must
/// resolve it to `Cancelled` and release its queue slot — a cancelled or
/// deadline-expired client can never wedge the worker pool.
#[test]
fn cancel_while_queued_resolves_cancelled_and_frees_the_slot() {
    let server = Server::start(
        slow_engine(1200),
        ServeConfig { workers: 1, queue_depth: 1, result_cache: 0, ..Default::default() },
    );
    let client = server.client();

    // Occupy the single worker, then the single queue slot.
    let running = client.submit(TC, None).unwrap();
    let queued = loop {
        match client.submit(TC, None) {
            Ok(p) => break p,
            Err(ServeError::Busy { .. }) => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    // The bounce carries a machine-parseable retry hint.
    let err = client.submit(TC, None).unwrap_err();
    assert!(err.is_busy(), "{err}");
    assert!(err.retry_after_ms().unwrap() > 0, "{err}");

    // Cancel the queued query first, then the running one; both must
    // resolve promptly (the worker checks the token before planning).
    queued.cancel();
    running.cancel();
    let start = Instant::now();
    assert!(queued.wait().unwrap_err().is_cancelled());
    assert!(running.wait().unwrap_err().is_cancelled());
    assert!(start.elapsed() < Duration::from_secs(5), "cancellation must not hang");

    // The slot is free again: a new submission is admitted.
    let next = loop {
        match client.submit(TC, None) {
            Ok(p) => break p,
            Err(ServeError::Busy { .. }) => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    next.cancel();
    assert!(next.wait().unwrap_err().is_cancelled());
    server.shutdown();
}

/// The acceptance stress test: N concurrent clients against a small
/// server, a drain mid-storm. Every submission must resolve to exactly
/// one outcome (zero lost responses), and every admitted query must
/// terminate as completed or failed.
#[test]
fn stress_overload_and_drain_lose_no_responses() {
    let max_bytes: Option<u64> =
        std::env::var("MURA_OVERLOAD_MAX_BYTES").ok().and_then(|s| s.parse().ok());
    let server = Server::start(
        slow_engine(160),
        ServeConfig {
            workers: 2,
            queue_depth: 2,
            result_cache: 0,
            limits: ResourceLimits { max_rows: None, max_bytes, timeout: None },
            // Above the ~30 KB cost estimate for TC on this graph, so an
            // idle server admits and executes (charging the gauge), while
            // any in-flight execution pushes the gauge past the watermark
            // and sheds concurrent submissions.
            memory_watermark_bytes: Some(48 << 10),
            breaker_threshold: 0, // isolate shed accounting
            retry_after: Duration::from_millis(10),
            drain_grace: Duration::from_millis(300),
            ..Default::default()
        },
    );

    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 8;
    #[derive(Default)]
    struct Outcomes {
        ok: AtomicU64,
        engine_err: AtomicU64,
        busy: AtomicU64,
        overloaded: AtomicU64,
        closed_submit: AtomicU64,
        /// `wait()` returned `Closed`: the job was admitted but dropped
        /// unprocessed because its slot landed behind the drain pills.
        closed_wait: AtomicU64,
    }
    let outcomes = Arc::new(Outcomes::default());

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let client = server.client();
            let outcomes = Arc::clone(&outcomes);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    match client.submit(TC, None) {
                        Ok(pending) => match pending.wait() {
                            Ok(_) => outcomes.ok.fetch_add(1, Ordering::Relaxed),
                            Err(ServeError::Closed) => {
                                outcomes.closed_wait.fetch_add(1, Ordering::Relaxed)
                            }
                            Err(ServeError::Overloaded { .. }) => {
                                outcomes.overloaded.fetch_add(1, Ordering::Relaxed)
                            }
                            Err(_) => outcomes.engine_err.fetch_add(1, Ordering::Relaxed),
                        },
                        Err(ServeError::Busy { .. }) => {
                            outcomes.busy.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            outcomes.overloaded.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(ServeError::Closed) => {
                            outcomes.closed_submit.fetch_add(1, Ordering::Relaxed)
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    };
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(120));
    // Keep a handle so counters can be read again after every client has
    // resolved: the snapshot `drain` returns can race with submissions
    // still in flight on the client threads.
    let probe = server.client();
    let drain_stats = server.drain();
    assert_eq!(drain_stats.drain_phase, 2, "{drain_stats:?}");
    for h in handles {
        h.join().unwrap();
    }
    let stats = probe.stats();

    let o = &outcomes;
    let total = o.ok.load(Ordering::Relaxed)
        + o.engine_err.load(Ordering::Relaxed)
        + o.busy.load(Ordering::Relaxed)
        + o.overloaded.load(Ordering::Relaxed)
        + o.closed_submit.load(Ordering::Relaxed)
        + o.closed_wait.load(Ordering::Relaxed);
    assert_eq!(total, THREADS * PER_THREAD, "every submission resolves exactly once");

    // Every admitted query terminated in exactly one of answer, typed
    // error, or worker-side shed; jobs dropped behind the drain pills
    // resolved as Closed.
    assert_eq!(
        stats.completed
            + stats.failed
            + stats.shed_admitted
            + o.closed_wait.load(Ordering::Relaxed),
        stats.submitted,
        "admitted queries must all terminate: {stats:?}"
    );
    assert!(
        stats.shed + stats.rejected > 0,
        "a 2-worker/2-slot server under {THREADS} clients must shed or bounce: {stats:?}"
    );
    assert!(stats.mem_high_water_bytes > 0, "{stats:?}");
}

#[test]
fn metrics_expose_overload_families() {
    let server = Server::start(slow_engine(8), ServeConfig::default());
    server.client().query(TC).unwrap();
    let page = server.metrics();
    for family in [
        "mura_shed_total",
        "mura_breaker_state",
        "mura_breaker_opened_total",
        "mura_mem_current_bytes",
        "mura_mem_high_water_bytes",
        "mura_drain_phase",
    ] {
        assert!(page.contains(&format!("# TYPE {family} ")), "missing family {family}:\n{page}");
    }
    assert!(page.contains("mura_breaker_state{state=\"open\"} 0"), "{page}");
    server.shutdown();
}

#[test]
fn drain_via_protocol_reports_counters_and_closes() {
    use std::io::{BufReader, Write};
    let server = Server::start(slow_engine(8), ServeConfig::default());
    let handle = mura_serve::serve_tcp(&server, "127.0.0.1:0").unwrap();
    let stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let write = |line: &str| {
        let mut s = stream.try_clone().unwrap();
        s.write_all(format!("{line}\n").as_bytes()).unwrap();
    };

    write(TC);
    let (status, _) = mura_serve::read_response(&mut reader).unwrap();
    assert!(status.starts_with("OK "), "{status}");

    write(".drain");
    let (status, body) = mura_serve::read_response(&mut reader).unwrap();
    assert_eq!(status, "OK drained");
    assert!(body.iter().any(|l| l.starts_with("drain        drained")), "{body:?}");

    // Post-drain queries are refused, with the reply still delivered.
    write(TC);
    let (status, _) = mura_serve::read_response(&mut reader).unwrap();
    assert!(status.starts_with("ERR server closed"), "{status}");

    write(".quit");
    let _ = mura_serve::read_response(&mut reader).unwrap();
    handle.stop();
    server.shutdown();
}
