//! Acceptance tests for the serving layer: concurrency, admission
//! control, caching, cancellation and deadlines.

use mura_core::{Database, Relation, Value};
use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
use mura_dist::exec::{ExecConfig, FixpointPlan};
use mura_dist::QueryEngine;
use mura_serve::{protocol, serve_tcp, ServeConfig, ServeError, Server};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A labelled random graph with a bound constant, as in the engine tests.
fn test_db() -> Database {
    let mut rng = SplitMix64::seed_from_u64(17);
    let g = erdos_renyi(150, 0.02, 7);
    let lg = with_random_labels(&g, 2, &mut rng);
    let mut db = lg.to_database();
    db.bind_constant("C", Value::node(5));
    db
}

/// A database whose transitive closure is expensive: a single directed
/// cycle of `n` nodes has an n²-row closure reached after n driver
/// iterations under `P_gld` — slow, and rich in preemption points.
fn cycle_db(n: u64) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let edges = (0..n).map(|i| (i, (i + 1) % n));
    db.insert_relation("e", Relation::from_pairs(src, dst, edges));
    db
}

fn slow_engine(n: u64) -> QueryEngine {
    let config = ExecConfig { plan: FixpointPlan::ForceGld, ..Default::default() };
    QueryEngine::with_config(cycle_db(n), config)
}

const SLOW_TC: &str = "?x, ?y <- ?x e+ ?y";

const MIXED_QUERIES: [&str; 10] = [
    "?x, ?y <- ?x a1+ ?y",
    "?x <- ?x a1+ C",
    "?y <- C a1+ ?y",
    "?x, ?y <- ?x a1+/a2+ ?y",
    "?x, ?y <- ?x a2/a1+ ?y",
    "?x, ?y <- ?x a2+ ?y",
    "?y <- C a2+ ?y",
    "?x, ?y <- ?x a1/a2 ?y",
    "?x, ?y <- ?x (a1|a2)+ ?y",
    "?x <- ?x (a1/-a1)+ C",
];

#[test]
fn concurrent_clients_match_direct_runs() {
    let db = test_db();

    // Reference answers straight from a private engine.
    let mut reference = QueryEngine::new(db.clone());
    let expected: Vec<_> = MIXED_QUERIES
        .iter()
        .map(|q| reference.run_ucrpq(q).unwrap().relation.sorted_rows())
        .collect();
    let expected = Arc::new(expected);

    let server = Server::start(
        QueryEngine::new(db),
        ServeConfig { workers: 4, queue_depth: 128, ..Default::default() },
    );

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let client = server.client();
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                for i in 0..MIXED_QUERIES.len() {
                    // Rotate per thread so planning collisions interleave.
                    let q = (t + i) % MIXED_QUERIES.len();
                    let out = client.query(MIXED_QUERIES[q]).unwrap();
                    assert_eq!(
                        out.relation.sorted_rows(),
                        expected[q],
                        "thread {t} query {:?} diverged",
                        MIXED_QUERIES[q]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.completed, 80);
    assert_eq!(stats.failed, 0);
    // 8 threads × 10 queries over 10 distinct plans: repeats must hit.
    assert!(stats.result_hits > 0, "no cache hits across repeats: {stats:?}");
    assert!(stats.hit_rate() > 0.0);
    server.shutdown();
}

#[test]
fn server_busy_at_queue_bound_one() {
    let server = Server::start(
        slow_engine(1200),
        ServeConfig { workers: 1, queue_depth: 1, result_cache: 0, ..Default::default() },
    );
    let client = server.client();

    // Occupy the single worker with a slow closure.
    let running = client.submit(SLOW_TC, None).unwrap();
    // Fill the one queue slot. The worker may not have dequeued the first
    // job yet, so retry briefly until the slot frees.
    let queued = loop {
        match client.submit(SLOW_TC, None) {
            Ok(p) => break p,
            Err(ServeError::Busy { .. }) => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    // Worker busy + queue full: the next submission must bounce.
    let err = client.submit(SLOW_TC, None).unwrap_err();
    assert!(err.is_busy(), "expected Busy, got {err}");
    assert!(server.stats().rejected >= 1);

    // Cancel both in-flight queries so shutdown is quick.
    running.cancel();
    queued.cancel();
    assert!(running.wait().unwrap_err().is_cancelled());
    assert!(queued.wait().unwrap_err().is_cancelled());
    server.shutdown();
}

#[test]
fn deadline_exceeded_promptly_on_slow_query() {
    let server = Server::start(slow_engine(1200), ServeConfig { workers: 1, ..Default::default() });
    let client = server.client();
    let start = Instant::now();
    let err = client.query_with_deadline(SLOW_TC, Duration::from_millis(50)).unwrap_err();
    let elapsed = start.elapsed();
    assert!(err.is_deadline(), "expected DeadlineExceeded, got {err}");
    // "Promptly": within a couple of supersteps of the 50 ms budget, far
    // below the seconds the full closure would take.
    assert!(elapsed < Duration::from_secs(2), "took {elapsed:?}");
    assert_eq!(server.stats().failed, 1);
    server.shutdown();
}

#[test]
fn cancellation_stops_running_query() {
    let server = Server::start(slow_engine(1200), ServeConfig::default());
    let client = server.client();
    let pending = client.submit(SLOW_TC, None).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    pending.cancel();
    let start = Instant::now();
    let err = pending.wait().unwrap_err();
    assert!(err.is_cancelled(), "expected Cancelled, got {err}");
    assert!(start.elapsed() < Duration::from_secs(2));
    server.shutdown();
}

#[test]
fn epoch_bump_invalidates_caches() {
    let server = Server::start(QueryEngine::new(test_db()), ServeConfig::default());
    let client = server.client();
    let q = "?x, ?y <- ?x a1+ ?y";

    let first = client.query(q).unwrap();
    // Adaptive warmup: early runs record observed fixpoint cardinalities
    // and may replan (possibly onto a differently-keyed equivalent plan)
    // until the chosen plan and its observations agree.
    for _ in 0..4 {
        client.query(q).unwrap();
    }
    let warm = server.stats();
    // Converged: one more run hits both caches and observes nothing new.
    client.query(q).unwrap();
    let converged = server.stats();
    assert_eq!(converged.plan_hits, warm.plan_hits + 1, "warm run must hit the plan cache");
    assert_eq!(converged.result_hits, warm.result_hits + 1, "warm run must hit the result cache");
    assert_eq!(converged.plan_misses, warm.plan_misses);

    // Mutating the database must invalidate both caches.
    server.load(|db| {
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a1_extra", Relation::from_pairs(src, dst, [(900, 901)]));
    });
    assert_eq!(server.epoch(), 1);
    client.query(q).unwrap();
    let after = server.stats();
    assert_eq!(
        after.result_hits, converged.result_hits,
        "post-load run must miss the result cache"
    );
    assert_eq!(after.result_misses, converged.result_misses + 1);
    assert_eq!(after.plan_misses, converged.plan_misses + 1);

    // Same relation contents -> same answers, now cached under epoch 1.
    let again = client.query(q).unwrap();
    assert_eq!(again.relation.sorted_rows(), first.relation.sorted_rows());
    server.shutdown();
}

#[test]
fn tcp_protocol_round_trip() {
    let server = Server::start(QueryEngine::new(test_db()), ServeConfig::default());
    let handle = serve_tcp(&server, "127.0.0.1:0").unwrap();
    let addr = handle.addr();

    let mut reference = QueryEngine::new(test_db());
    let expected = reference.run_ucrpq("?x, ?y <- ?x a1+ ?y").unwrap().relation.len();

    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let write = |line: &str| {
        let mut s = stream.try_clone().unwrap();
        s.write_all(format!("{line}\n").as_bytes()).unwrap();
    };

    write("?x, ?y <- ?x a1+ ?y");
    let (status, rows) = protocol::read_response(&mut reader).unwrap();
    assert!(status.starts_with(&format!("OK {expected} rows")), "{status}");
    assert_eq!(rows.len(), expected);

    write(".deadline 5000");
    let (status, _) = protocol::read_response(&mut reader).unwrap();
    assert_eq!(status, "OK deadline 5000 ms");

    write(".rels");
    let (status, body) = protocol::read_response(&mut reader).unwrap();
    assert_eq!(status, "OK rels");
    assert!(body.iter().any(|l| l.starts_with("a1 ")), "{body:?}");

    write(".stats");
    let (status, body) = protocol::read_response(&mut reader).unwrap();
    assert_eq!(status, "OK stats");
    assert!(body.iter().any(|l| l.starts_with("completed")), "{body:?}");

    write("?x <- ?x nosuchlabel+ C");
    let (status, _) = protocol::read_response(&mut reader).unwrap();
    assert!(status.starts_with("ERR "), "{status}");

    write(".bogus");
    let (status, _) = protocol::read_response(&mut reader).unwrap();
    assert!(status.starts_with("ERR unknown command"), "{status}");

    write(".quit");
    let (status, _) = protocol::read_response(&mut reader).unwrap();
    assert_eq!(status, "OK bye");

    handle.stop();
    server.shutdown();
}
