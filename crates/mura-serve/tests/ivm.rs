//! Acceptance tests for incremental view maintenance: random mutation
//! sequences over random graphs must keep maintained views bit-identical
//! to a from-scratch recompute, on all three fixpoint plans × both local
//! engines, with and without injected faults — and the mutation path must
//! respect the serving resource ladder (memory gate, typed errors, zero
//! lost responses across a drain).

use mura_core::{Database, Relation, Value};
use mura_datagen::{erdos_renyi, SplitMix64};
use mura_dist::exec::{ExecConfig, FixpointPlan};
use mura_dist::{FaultConfig, LocalEngine, QueryEngine};
use mura_serve::{DeltaBatch, DeltaSummary, OverloadReason, ServeConfig, ServeError, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const TC: &str = "?x, ?y <- ?x edge+ ?y";
const NODES: u64 = 48;

fn db_from_edges(edges: &[(u64, u64)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("edge", Relation::from_pairs(src, dst, edges.iter().copied()));
    db
}

fn row(a: u64, b: u64) -> Box<[Value]> {
    vec![Value::node(a), Value::node(b)].into_boxed_slice()
}

fn batch_of(db: &Database, ins: &[(u64, u64)], del: &[(u64, u64)]) -> DeltaBatch {
    let rel = db.dict().lookup("edge").expect("edge relation");
    let mut b = DeltaBatch::new();
    for &(x, y) in ins {
        b.push_insert(db, rel, row(x, y)).unwrap();
    }
    for &(x, y) in del {
        b.push_delete(db, rel, row(x, y)).unwrap();
    }
    b
}

/// Drives five rounds of random interleaved insert/delete batches (round 3
/// delete-heavy, forcing DRed) against a server with a warmed TC view,
/// checking after every round that the served answer is bit-identical to a
/// fresh engine over the mirrored edge set. Returns the per-round
/// summaries so callers can assert determinism.
fn check_plan(plan: FixpointPlan, local: LocalEngine, seed: u64, chaos: bool) -> Vec<DeltaSummary> {
    let g = erdos_renyi(NODES, 0.05, seed);
    let mut edges: Vec<(u64, u64)> = g.edges.iter().map(|&(s, _, d)| (s, d)).collect();
    edges.sort_unstable();
    edges.dedup();

    let mut config = ExecConfig { plan, local_engine: local, ..Default::default() };
    if chaos {
        config.fault = FaultConfig::chaos(seed);
        config.checkpoint_every = 2;
    }
    let server = Server::start(
        QueryEngine::with_config(db_from_edges(&edges), config.clone()),
        ServeConfig::default(),
    );
    let client = server.client();

    let mut rng = SplitMix64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) | 1);
    let mut summaries = Vec::new();
    for round in 0..5u64 {
        // (Re-)warm the cached view; after a maintained round this hits.
        client.query(TC).expect("warm query");

        let (n_ins, n_del) = if round == 3 { (1, 6) } else { (4, 2) };
        let ins: Vec<(u64, u64)> =
            (0..n_ins).map(|_| (rng.gen_range(0..NODES), rng.gen_range(0..NODES))).collect();
        let del: Vec<(u64, u64)> =
            (0..n_del.min(edges.len())).filter_map(|_| rng.choose(&edges).copied()).collect();

        let batch = server.with_db(|db| batch_of(db, &ins, &del));
        summaries.push(server.apply_delta(batch).expect("apply_delta"));

        // Mirror `R ← (R \ delete) ∪ insert` on the edge list.
        edges.retain(|e| !del.contains(e));
        edges.extend(ins.iter().copied());
        edges.sort_unstable();
        edges.dedup();

        let got = client.query(TC).expect("query after delta");
        let want = QueryEngine::with_config(db_from_edges(&edges), config.clone())
            .run_ucrpq(TC)
            .expect("recompute");
        assert_eq!(
            got.relation.sorted_rows(),
            want.relation.sorted_rows(),
            "round {round}: maintained view diverged from recompute \
             (plan {plan:?}, engine {local:?}, seed {seed}, chaos {chaos})"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.deltas_applied, 5, "every batch must be applied");
    server.shutdown();
    summaries
}

fn matrix_seed() -> u64 {
    std::env::var("MURA_IVM_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(11)
}

#[test]
fn maintained_views_match_recompute_gld() {
    let s = check_plan(FixpointPlan::ForceGld, LocalEngine::SetRdd, matrix_seed(), false);
    assert!(s.iter().any(|d| d.maintained >= 1), "no view was ever maintained: {s:?}");
}

#[test]
fn maintained_views_match_recompute_plw_setrdd() {
    let s = check_plan(FixpointPlan::ForcePlw, LocalEngine::SetRdd, matrix_seed(), false);
    assert!(s.iter().any(|d| d.maintained >= 1), "no view was ever maintained: {s:?}");
}

#[test]
fn maintained_views_match_recompute_plw_sorted() {
    let s = check_plan(FixpointPlan::ForcePlw, LocalEngine::Sorted, matrix_seed(), false);
    assert!(s.iter().any(|d| d.maintained >= 1), "no view was ever maintained: {s:?}");
}

#[test]
fn maintained_views_match_recompute_async() {
    check_plan(FixpointPlan::ForceAsync, LocalEngine::SetRdd, matrix_seed(), false);
}

#[test]
fn maintained_views_match_recompute_auto_sorted() {
    check_plan(FixpointPlan::Auto, LocalEngine::Sorted, matrix_seed().wrapping_add(1), false);
}

/// Under injected faults (panics, transient errors, drops, stragglers)
/// maintenance must still produce exact answers, and the whole summary
/// sequence must be deterministic for a fixed seed.
#[test]
fn chaos_maintenance_is_exact_and_deterministic() {
    let seed = matrix_seed();
    let a = check_plan(FixpointPlan::Auto, LocalEngine::SetRdd, seed, true);
    let b = check_plan(FixpointPlan::Auto, LocalEngine::SetRdd, seed, true);
    assert_eq!(a, b, "same seed must replay the same maintenance decisions");
}

/// A mutation that touches none of a view's relations revalidates the
/// cached entry in place: the next lookup is a hit, not a recompute.
#[test]
fn unrelated_mutation_revalidates_cached_views() {
    let mut db = db_from_edges(&[(0, 1), (1, 2), (2, 3)]);
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("other", Relation::from_pairs(src, dst, [(7, 8)]));
    let server = Server::start(QueryEngine::new(db), ServeConfig::default());
    let client = server.client();

    // Two warms: the first execution's observed cardinalities can steer
    // the replan to a differently-keyed (equivalent) plan, so converge on
    // the observed-cost plan before caching the view we expect to hit.
    client.query(TC).expect("warm");
    let before = client.query(TC).expect("rewarm under observed costs");
    let batch = server.with_db(|db| {
        let rel = db.dict().lookup("other").unwrap();
        let mut b = DeltaBatch::new();
        b.push_insert(db, rel, row(8, 9)).unwrap();
        b
    });
    let summary = server.apply_delta(batch).expect("apply");
    assert_eq!(summary.inserted, 1);
    assert!(summary.unaffected >= 1, "the TC view reads only 'edge': {summary:?}");
    assert_eq!(summary.maintained, 0);

    let hits_before = server.stats().result_hits;
    let after = client.query(TC).expect("post-delta query");
    assert_eq!(server.stats().result_hits, hits_before + 1, "revalidated entry must hit");
    assert_eq!(before.relation.sorted_rows(), after.relation.sorted_rows());
    server.shutdown();
}

/// Mutations obey the same memory watermark as queries: with an absurdly
/// low watermark the batch is shed with a typed, retryable error.
#[test]
fn mutation_respects_memory_watermark() {
    let db = db_from_edges(&[(0, 1)]);
    let server = Server::start(
        QueryEngine::new(db),
        ServeConfig { memory_watermark_bytes: Some(1), ..Default::default() },
    );
    let batch = server.with_db(|db| batch_of(db, &[(5, 6)], &[]));
    match server.apply_delta(batch) {
        Err(ServeError::Overloaded { reason: OverloadReason::Memory, retry_after_ms }) => {
            assert!(retry_after_ms >= 1, "retry hint must be actionable");
        }
        other => panic!("expected a memory shed, got {other:?}"),
    }
    assert_eq!(server.stats().deltas_applied, 0);
    assert!(server.stats().shed >= 1, "the shed must be counted");
    server.shutdown();
}

/// A drain racing a mutation storm loses nothing: every query and every
/// delta resolves to an answer or a typed error, and once drained further
/// mutations are refused with `Closed`.
#[test]
fn drain_mid_mutation_loses_no_responses() {
    let edges: Vec<(u64, u64)> = (0..32).map(|i| (i, (i + 1) % 32)).collect();
    let server = Server::start(QueryEngine::new(db_from_edges(&edges)), ServeConfig::default());
    let client = server.client();
    client.query(TC).expect("warm");

    let stop = Arc::new(AtomicBool::new(false));
    let querier = {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                match client.query(TC) {
                    Ok(_) | Err(_) => answered += 1, // typed either way
                }
            }
            answered
        })
    };

    let mut applied = 0u64;
    let mut changed = 0u64;
    let mut refused = 0u64;
    for i in 0..200u64 {
        if i == 60 {
            let drainer = client.clone();
            std::thread::spawn(move || drainer.request_drain());
        }
        let batch = server.with_db(|db| batch_of(db, &[(i % 32, (i * 7) % 32)], &[]));
        match server.apply_delta(batch) {
            // Re-inserting an existing edge normalizes to a no-op: it
            // resolves Ok but doesn't count as an applied delta.
            Ok(s) => {
                applied += 1;
                changed += u64::from(s.inserted + s.deleted > 0);
            }
            Err(ServeError::Closed) => refused += 1,
            Err(e) => panic!("mutation {i}: unexpected error {e}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    let answered = querier.join().expect("querier thread");
    assert!(answered >= 1, "querier must have made progress");
    assert!(applied >= 1, "mutations before the drain must land");
    assert!(refused >= 1, "mutations after the drain must be refused, typed");

    let batch = server.with_db(|db| batch_of(db, &[(1, 3)], &[]));
    assert!(
        matches!(server.apply_delta(batch), Err(ServeError::Closed)),
        "a drained server refuses mutations"
    );
    let stats = server.stats();
    assert_eq!(stats.deltas_applied, changed, "no delta may be half-applied");
    server.drain();
}

/// The `.insert`/`.delete` protocol verbs: named and bare forms, one-line
/// replies carrying the new version, typed errors on bad input, and
/// answers that reflect the mutations.
#[test]
fn protocol_mutation_verbs() {
    use mura_serve::{protocol, serve_tcp};
    use std::io::{BufReader, Write};
    use std::net::TcpStream;

    let server =
        Server::start(QueryEngine::new(db_from_edges(&[(0, 1), (1, 2)])), ServeConfig::default());
    let handle = serve_tcp(&server, "127.0.0.1:0").expect("bind");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send = |line: &str| -> (String, Vec<String>) {
        let mut s = stream.try_clone().expect("clone");
        s.write_all(format!("{line}\n").as_bytes()).expect("send");
        protocol::read_response(&mut reader).expect("response")
    };

    let (status, _) = send(TC);
    assert!(status.starts_with("OK 3 rows"), "closure of a 2-path: {status}");

    // Named form.
    let (status, _) = send(".insert edge 2 3");
    assert!(status.starts_with("OK v=1 +1 -0"), "insert reply: {status}");
    // Bare form: exactly one relation, so the name may be omitted.
    let (status, _) = send(".delete 0 1");
    assert!(status.starts_with("OK v=2 +0 -1"), "delete reply: {status}");

    // Arity and value errors are one-line, typed, and non-fatal.
    let (status, _) = send(".insert edge 1");
    assert!(status.starts_with("ERR "), "arity error: {status}");
    let (status, _) = send(".insert edge 1 bogus");
    assert!(status.starts_with("ERR "), "unknown constant: {status}");
    let (status, _) = send(".insert");
    assert!(status.starts_with("ERR "), "empty mutation: {status}");

    // The served answer reflects (R \ {(0,1)}) ∪ {(2,3)}.
    let (status, rows) = send(TC);
    assert!(status.starts_with("OK "), "post-mutation query: {status}");
    assert!(rows.contains(&"(1, 3)".to_string()), "new closure pair: {rows:?}");
    assert!(!rows.iter().any(|r| r.starts_with("(0,")), "deleted source must vanish: {rows:?}");

    send(".quit");
    handle.stop();
    server.shutdown();
}

/// Same-schema loads keep warm plans; shape-changing loads reset them.
/// (The serve-layer unit tests cover breakers; this covers the caches
/// end-to-end.)
#[test]
fn load_invalidation_is_scoped() {
    let server =
        Server::start(QueryEngine::new(db_from_edges(&[(0, 1), (1, 2)])), ServeConfig::default());
    let client = server.client();
    client.query(TC).expect("warm");
    // The first execution records observed fixpoint cardinalities, bumping
    // the feedback generation — which deliberately invalidates the plan
    // cached before the observation existed. Warm once more so the cached
    // plan is tagged with the current generation and the cache is stable.
    client.query(TC).expect("rewarm under observed costs");
    let plan_misses = server.stats().plan_misses;

    // Data-only refresh: same shape — plans survive, results go stale.
    server.load(|db| {
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("edge", Relation::from_pairs(src, dst, [(0, 1), (1, 2), (2, 3)]));
    });
    assert_eq!(server.epoch(), 0, "same shape keeps the epoch");
    let out = client.query(TC).expect("query after refresh");
    assert_eq!(out.relation.len(), 6, "closure of a 3-path");
    assert_eq!(server.stats().plan_misses, plan_misses, "plan cache must survive the refresh");

    // Shape change: new relation — epoch bumps, plans replanned.
    server.load(|db| {
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("brand_new", Relation::from_pairs(src, dst, [(9, 9)]));
    });
    assert_eq!(server.epoch(), 1, "new relation changes the shape");
    client.query(TC).expect("query after shape change");
    assert_eq!(server.stats().plan_misses, plan_misses + 1, "shape change forces a replan");
    server.shutdown();
}
