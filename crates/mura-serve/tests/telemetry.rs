//! Acceptance tests for the observability surface: `.metrics` exposition,
//! `.profile` timelines, and latency quantiles in `.stats`.

use mura_core::{Database, Relation};
use mura_dist::exec::{ExecConfig, FixpointPlan};
use mura_dist::QueryEngine;
use mura_serve::{protocol, serve_tcp, ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// A 12-node path graph: its transitive closure needs several semi-naive
/// supersteps, so a profile shows a real timeline.
fn path_db() -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("e", Relation::from_pairs(src, dst, (0..12).map(|i| (i, i + 1))));
    db
}

const TC: &str = "?x, ?y <- ?x e+ ?y";

#[test]
fn profile_returns_superstep_timeline() {
    let config = ExecConfig { plan: FixpointPlan::ForceGld, ..Default::default() };
    let server = Server::start(QueryEngine::with_config(path_db(), config), ServeConfig::default());
    let client = server.client();

    let out = client.profile(TC).unwrap();
    let trace = out.trace().expect("profiled query carries a trace");
    let steps: Vec<_> = trace.supersteps().collect();
    assert!(steps.len() >= 3, "expected several supersteps, got {}", steps.len());
    // Under P_gld every productive superstep shuffles rows.
    for s in steps.iter().filter(|s| s.delta_rows > 0) {
        assert!(s.rows_shuffled > 0, "superstep {} shows no shuffled rows: {s:?}", s.iteration);
    }
    // The rendered timeline has a header plus one row per event.
    let table = trace.render_timeline();
    assert_eq!(table.lines().count(), 1 + trace.events.len(), "{table}");
    server.shutdown();
}

#[test]
fn profile_bypasses_result_cache_and_plain_queries_stay_untraced() {
    let server = Server::start(QueryEngine::new(path_db()), ServeConfig::default());
    let client = server.client();

    // Warm the result cache with untraced runs: the first executions'
    // observed cardinalities can steer replans onto differently-keyed
    // plans, so run to convergence before pinning cache expectations.
    let plain = client.query(TC).unwrap();
    assert!(plain.trace().is_none(), "plain queries must not pay for tracing");
    client.query(TC).unwrap();
    client.query(TC).unwrap();
    let warm = server.stats();

    // The profile must execute fresh (a cached answer has no trace)...
    let profiled = client.profile(TC).unwrap();
    assert!(profiled.trace().is_some());
    assert_eq!(profiled.relation.sorted_rows(), plain.relation.sorted_rows());
    let mid = server.stats();
    assert_eq!(mid.result_hits, warm.result_hits, "profile must bypass the result cache");
    assert_eq!(mid.result_misses, warm.result_misses, "profile counts neither hit nor miss");

    // ...and must not poison the cache with a traced entry.
    let after = client.query(TC).unwrap();
    assert!(after.trace().is_none(), "cache must never serve traced outputs");
    let stats = server.stats();
    assert_eq!(stats.result_hits, mid.result_hits + 1, "post-profile plain query hits: {stats:?}");
    assert_eq!(stats.result_misses, mid.result_misses, "{stats:?}");
    server.shutdown();
}

#[test]
fn stats_report_latency_quantiles_after_queries() {
    let server = Server::start(QueryEngine::new(path_db()), ServeConfig::default());
    let client = server.client();
    for _ in 0..3 {
        client.query(TC).unwrap();
    }
    let stats = server.stats();
    assert!(stats.wall_p50_us > 0, "wall p50 must be recorded: {stats:?}");
    assert!(stats.wall_p99_us >= stats.wall_p50_us);
    assert!(stats.exec_p50_us > 0, "execution p50 must be recorded: {stats:?}");
    assert!(stats.comm_rows_shuffled + stats.comm_rows_broadcast > 0, "comm totals: {stats:?}");
    let text = stats.to_string();
    assert!(text.contains("latency      p50 "), "{text}");
    assert!(text.contains("queue wait   p50 "), "{text}");
    server.shutdown();
}

#[test]
fn metrics_page_has_required_families() {
    let server = Server::start(QueryEngine::new(path_db()), ServeConfig::default());
    let client = server.client();
    client.query(TC).unwrap();
    let page = server.metrics();
    for family in [
        "mura_queries_total",
        "mura_cache_events_total",
        "mura_comm_rows_shuffled_total",
        "mura_faults_injected_total",
        "mura_fault_recoveries_total",
        "mura_query_wall_seconds",
        "mura_query_queue_seconds",
        "mura_query_execution_seconds",
        "mura_query_planning_seconds",
        "mura_db_epoch",
    ] {
        assert!(page.contains(&format!("# TYPE {family} ")), "missing family {family}:\n{page}");
    }
    assert!(page.contains("mura_queries_total{outcome=\"completed\"} 1"), "{page}");
    assert!(page.contains("mura_query_wall_seconds_bucket{le=\"+Inf\"} 1"), "{page}");
    // Every sample line is "name[{labels}] value" — no blank or malformed lines.
    for line in page.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(!name.is_empty() && value.parse::<f64>().is_ok(), "bad sample line: {line}");
    }
    server.shutdown();
}

#[test]
fn tcp_metrics_and_profile_commands() {
    let server = Server::start(QueryEngine::new(path_db()), ServeConfig::default());
    let handle = serve_tcp(&server, "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let write = |line: &str| {
        let mut s = stream.try_clone().unwrap();
        s.write_all(format!("{line}\n").as_bytes()).unwrap();
    };

    write(&format!(".profile {TC}"));
    let (status, body) = protocol::read_response(&mut reader).unwrap();
    assert!(status.starts_with("OK profile "), "{status}");
    // Header row plus at least fixpoint-start, setup, one superstep, end.
    assert!(body.len() >= 5, "timeline too short: {body:?}");
    assert!(body[0].contains("event"), "missing header: {}", body[0]);
    assert!(body.iter().any(|l| l.contains("superstep")), "{body:?}");

    write(".metrics");
    let (status, body) = protocol::read_response(&mut reader).unwrap();
    assert_eq!(status, "OK metrics");
    assert!(body.iter().any(|l| l.starts_with("mura_queries_total{")), "{body:?}");

    write(".profile");
    let (status, _) = protocol::read_response(&mut reader).unwrap();
    assert!(status.starts_with("ERR usage"), "{status}");

    write(".quit");
    let _ = protocol::read_response(&mut reader).unwrap();
    handle.stop();
    server.shutdown();
}
