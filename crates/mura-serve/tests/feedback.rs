//! Adaptive-replanning acceptance: observed fixpoint cardinalities feed
//! back into the planner, cached plans are invalidated exactly when the
//! measured world changes (material churn, reloads), and `.explain`
//! surfaces the planner's decision procedure.

use mura_core::{Database, Relation};
use mura_dist::QueryEngine;
use mura_serve::{DeltaBatch, ServeConfig, Server};

const TC: &str = "?x, ?y <- ?x edge+ ?y";

fn db_from_edges(edges: &[(u64, u64)]) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("edge", Relation::from_pairs(src, dst, edges.iter().copied()));
    db
}

fn chain(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (i, i + 1)).collect()
}

fn insert_batch(server: &Server, edges: &[(u64, u64)]) -> DeltaBatch {
    server.with_db(|db| {
        let rel = db.dict().lookup("edge").expect("edge relation");
        let mut b = DeltaBatch::new();
        for &(x, y) in edges {
            let row = vec![mura_core::Value::node(x), mura_core::Value::node(y)];
            b.push_insert(db, rel, row.into_boxed_slice()).unwrap();
        }
        b
    })
}

/// Warms `query` to plan-cache convergence: run #1 records the first
/// observations (generation bump), run #2 replans under them, run #3 hits.
fn warm(server: &Server, query: &str) {
    let client = server.client();
    for _ in 0..3 {
        client.query(query).expect("warm query");
    }
}

#[test]
fn first_observation_forces_one_replan_then_stabilizes() {
    let server = Server::start(QueryEngine::new(db_from_edges(&chain(20))), ServeConfig::default());
    let client = server.client();
    assert_eq!(server.stats().feedback_fixpoints, 0, "no observations before any execution");

    client.query(TC).unwrap();
    let s1 = server.stats();
    assert!(s1.feedback_fixpoints >= 1, "execution must record fixpoint totals: {s1:?}");
    assert!(s1.feedback_generation > 0, "first observation bumps the generation");

    // The plan cached before the observation is generation-stale: one
    // replan, re-observing within tolerance (no further bump)…
    client.query(TC).unwrap();
    let s2 = server.stats();
    assert_eq!(s2.plan_misses, 2, "second run must re-optimize under observed costs");
    assert_eq!(s2.feedback_generation, s1.feedback_generation, "re-observation is stable");

    // …and the loop has converged.
    client.query(TC).unwrap();
    assert_eq!(server.stats().plan_hits, 1, "third run hits the generation-current plan");
    server.shutdown();
}

#[test]
fn material_delta_drops_observations_and_replans() {
    let server = Server::start(QueryEngine::new(db_from_edges(&chain(20))), ServeConfig::default());
    let client = server.client();
    warm(&server, TC);
    let before = server.stats();
    assert!(before.feedback_fixpoints >= 1);

    // 10 new rows on a ~21-row relation: far past the ~10% churn threshold
    // (and the absolute floor), so the observation is dropped — and, when
    // the view is maintained rather than recomputed, immediately replaced
    // by the maintenance run's fresh totals. Either way the generation
    // moves, which is what invalidates the cached plan.
    let fresh: Vec<(u64, u64)> = (100..110).map(|i| (i, i + 1)).collect();
    server.apply_delta(insert_batch(&server, &fresh)).expect("apply_delta");
    let after = server.stats();
    assert!(
        after.feedback_generation > before.feedback_generation,
        "invalidation must bump the generation"
    );

    // The repeated query re-optimizes (stale generation) and re-observes
    // the post-delta reality.
    client.query(TC).unwrap();
    let s = server.stats();
    assert_eq!(s.plan_misses, before.plan_misses + 1, "post-churn query must replan");
    assert!(s.feedback_fixpoints >= 1, "fresh observation recorded");
    server.shutdown();
}

#[test]
fn small_delta_keeps_observations_and_cached_plan() {
    let server =
        Server::start(QueryEngine::new(db_from_edges(&chain(200))), ServeConfig::default());
    let client = server.client();
    warm(&server, TC);
    let before = server.stats();

    // One row on a ~201-row relation: below both churn thresholds.
    server.apply_delta(insert_batch(&server, &[(900, 901)])).expect("apply_delta");
    let after = server.stats();
    assert_eq!(after.feedback_fixpoints, before.feedback_fixpoints, "observation survives");
    assert_eq!(after.feedback_generation, before.feedback_generation, "no invalidation");

    client.query(TC).unwrap();
    assert_eq!(
        server.stats().plan_misses,
        before.plan_misses,
        "plan cache must survive an immaterial delta"
    );
    server.shutdown();
}

#[test]
fn loads_drop_stale_feedback() {
    let server = Server::start(QueryEngine::new(db_from_edges(&chain(20))), ServeConfig::default());
    warm(&server, TC);
    assert!(server.stats().feedback_fixpoints >= 1);

    // Same-shape refresh: the measured world is gone, observations with it.
    server.load(|db| {
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("edge", Relation::from_pairs(src, dst, (0..50).map(|i| (i, i + 1))));
    });
    assert_eq!(server.stats().feedback_fixpoints, 0, "refresh must drop observations");

    warm(&server, TC);
    assert!(server.stats().feedback_fixpoints >= 1);

    // Shape-changing load: same story, plus the epoch bump.
    server.load(|db| {
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("brand_new", Relation::from_pairs(src, dst, [(1, 1)]));
    });
    assert_eq!(server.stats().feedback_fixpoints, 0, "shape change must drop observations");
    server.shutdown();
}

#[test]
fn explain_reports_planner_decisions() {
    let server = Server::start(QueryEngine::new(db_from_edges(&chain(20))), ServeConfig::default());
    let client = server.client();

    // Cold: no observations yet — costing is static.
    let cold = server.explain(TC).expect("explain");
    assert!(cold.contains("memoized enumeration"), "{cold}");
    assert!(cold.contains("candidates"), "{cold}");
    assert!(cold.contains("group ["), "per-group best costs: {cold}");
    assert!(cold.contains("static statistics"), "{cold}");
    assert!(cold.contains("plan:"), "{cold}");

    // Explain must not execute or admit anything.
    let s = server.stats();
    assert_eq!(s.completed, 0);
    assert_eq!(s.plan_misses, 0, "explain must not touch the plan cache");

    // Warm: the same query now costs its fixpoints from measured totals.
    client.query(TC).unwrap();
    let hot = client.explain(TC).expect("explain via client");
    assert!(hot.contains("observed cardinalities"), "{hot}");
    server.shutdown();
}
