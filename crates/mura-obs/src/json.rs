//! A minimal JSON value codec.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! the trace exporters cannot lean on serde. This module implements the
//! small slice we need: parse a JSON document into a [`Json`] tree, write
//! it back out, and navigate objects — enough for the `obs-smoke` CI job
//! to round-trip emitted traces and check them against the checked-in
//! schema, and for tests to assert exporter structure.
//!
//! Not a general-purpose parser: numbers become `f64`, `\uXXXX` escapes
//! outside the BMP are kept as-is, and no streaming. Fine for telemetry.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// Serializes the value back to compact JSON (so `to_string()` round-trips
/// through [`Json::parse`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number '{text}'"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unexpected end in string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn write_value(v: &Json, out: &mut String) {
    use std::fmt::Write;
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let j = Json::parse(r#"{"a": [1, 2.5, true, null], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn round_trip_is_stable() {
        let src = r#"{"name":"step 1","ts":12,"nested":[{"k":true},null,-3.5],"s":"q\"uo"}"#;
        let once = Json::parse(src).unwrap();
        let twice = Json::parse(&once.to_string()).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let j = Json::parse(r#""é A""#).unwrap();
        assert_eq!(j.as_str(), Some("é A"));
    }

    #[test]
    fn integers_write_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }
}
