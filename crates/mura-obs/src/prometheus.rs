//! Prometheus text-exposition rendering (version 0.0.4 of the format).
//!
//! The serving layer's `.metrics` command emits this format so standard
//! scrapers (Prometheus, VictoriaMetrics, `promtool check metrics`) can
//! ingest the counters without an adapter. Only the subset we need is
//! implemented: `counter`, `gauge` and `histogram` families with optional
//! labels.

use crate::histogram::{bucket_bound_us, HistogramSnapshot, BUCKETS};
use std::fmt::Write;

/// An in-progress text-exposition page.
#[derive(Default)]
pub struct PromText {
    buf: String,
}

impl PromText {
    /// An empty page.
    pub fn new() -> Self {
        PromText::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a family. Call once per
    /// family, before its samples.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        let _ = writeln!(self.buf, "# HELP {name} {help}");
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
        self
    }

    /// Writes one sample with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.buf.push_str(name);
        write_labels(&mut self.buf, labels);
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = writeln!(self.buf, " {}", value as i64);
        } else {
            let _ = writeln!(self.buf, " {value}");
        }
        self
    }

    /// Writes a whole counter family with one unlabeled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.family(name, "counter", help).sample(name, &[], value as f64)
    }

    /// Writes a whole gauge family with one unlabeled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.family(name, "gauge", help).sample(name, &[], value)
    }

    /// Writes a histogram family (`_bucket` with cumulative `le` labels in
    /// **seconds**, `_sum`, `_count`) from a microsecond snapshot.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) -> &mut Self {
        self.family(name, "histogram", help);
        let mut cum = 0u64;
        for i in 0..=BUCKETS {
            cum += snap.counts.get(i).copied().unwrap_or(0);
            let le =
                if i == BUCKETS { "+Inf".to_string() } else { format_seconds(bucket_bound_us(i)) };
            self.sample(&format!("{name}_bucket"), &[("le", &le)], cum as f64);
        }
        self.sample(&format!("{name}_sum"), &[], snap.sum_us as f64 / 1e6);
        self.sample(&format!("{name}_count"), &[], snap.count as f64);
        self
    }

    /// The finished page.
    pub fn finish(self) -> String {
        self.buf
    }
}

fn write_labels(buf: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    buf.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        let _ = write!(buf, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    buf.push('}');
}

/// A microsecond bound as a seconds string without float noise
/// (`1µs → "0.000001"`, `33554432µs → "33.554432"`).
fn format_seconds(us: u64) -> String {
    let secs = us / 1_000_000;
    let rem = us % 1_000_000;
    if rem == 0 {
        format!("{secs}")
    } else {
        let frac = format!("{rem:06}");
        format!("{secs}.{}", frac.trim_end_matches('0'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn counters_and_gauges_render() {
        let mut p = PromText::new();
        p.counter("mura_queries_total", "Queries.", 5);
        p.gauge("mura_db_epoch", "Epoch.", 2.0);
        let page = p.finish();
        assert!(page.contains("# TYPE mura_queries_total counter"), "{page}");
        assert!(page.contains("mura_queries_total 5"), "{page}");
        assert!(page.contains("mura_db_epoch 2"), "{page}");
    }

    #[test]
    fn labels_are_escaped() {
        let mut p = PromText::new();
        p.family("x_total", "counter", "h");
        p.sample("x_total", &[("q", "say \"hi\"")], 1.0);
        assert!(p.finish().contains("x_total{q=\"say \\\"hi\\\"\"} 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = Histogram::new();
        h.record_us(1);
        h.record_us(3);
        h.record_us(100_000_000); // overflow
        let mut p = PromText::new();
        p.histogram("lat_seconds", "h", &h.snapshot());
        let page = p.finish();
        assert!(page.contains("lat_seconds_bucket{le=\"0.000001\"} 1"), "{page}");
        assert!(page.contains("lat_seconds_bucket{le=\"0.000004\"} 2"), "{page}");
        assert!(page.contains("lat_seconds_bucket{le=\"+Inf\"} 3"), "{page}");
        assert!(page.contains("lat_seconds_count 3"), "{page}");
        assert!(page.contains("lat_seconds_sum 100.000004"), "{page}");
    }

    #[test]
    fn seconds_formatting_is_exact() {
        assert_eq!(format_seconds(1), "0.000001");
        assert_eq!(format_seconds(1_000_000), "1");
        assert_eq!(format_seconds(33_554_432), "33.554432");
        assert_eq!(format_seconds(2_097_152), "2.097152");
    }
}
