//! Per-query tracing: a ring-buffered event recorder fed by the fixpoint
//! drivers, and the finished [`QueryTrace`] with its exporters.
//!
//! Design constraints (see DESIGN.md §11):
//!
//! * **allocation-light** — [`TraceEvent`] is a flat `Copy` struct; the
//!   ring buffer is pre-sized at sink creation and recording never
//!   allocates;
//! * **cheap when off** — drivers hold an `Option<Arc<TraceSink>>`; at
//!   [`TraceLevel::Off`] no sink exists and the guard is a `None` check;
//! * **bounded** — the ring keeps the most recent events and counts what
//!   it dropped, so a runaway fixpoint cannot exhaust memory;
//! * **deterministic modulo time** — [`QueryTrace::signature`] projects
//!   events onto their deterministic fields (no timestamps, no
//!   process-wide kernel counters) and sorts them canonically, so two
//!   same-seed chaos runs compare equal even though worker threads race
//!   for ring-buffer slots.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How much a query records. Levels are ordered: each level includes
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No recording at all (the default; the hot loops see a `None`).
    #[default]
    Off,
    /// Fixpoint-level spans only: start, setup, recovery, end.
    Fixpoint,
    /// One event per superstep (per worker under `P_plw`).
    Superstep,
}

impl TraceLevel {
    /// Stable lowercase name (used by the JSON exporters).
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Fixpoint => "fixpoint",
            TraceLevel::Superstep => "superstep",
        }
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A fixpoint began (carries the seed size in `delta_rows`).
    FixpointStart,
    /// One-time pre-loop work: invariant broadcasts, `P_plw` repartition,
    /// branch preparation. Communication during setup lands here.
    Setup,
    /// One semi-naive superstep (driver-side for `P_gld`, per worker for
    /// `P_plw`).
    Superstep,
    /// Recovery machinery ran (see [`TraceEvent::recovery`]).
    Recovery,
    /// The fixpoint converged (carries the final size in `delta_rows`).
    FixpointEnd,
    /// Worker lane: a relay fanned buckets out to peers (merged from a
    /// worker-side span; `worker` is the relaying worker).
    ExchangeSend,
    /// Worker lane: a bucket arrived from a peer.
    ExchangeRecv,
    /// Worker lane: a `Take` was served; duration = straggler wait.
    ExchangeWait,
    /// Worker lane: a broadcast replica landed on the worker.
    BroadcastRecv,
    /// Supervisor journal: a dead worker process was respawned.
    Respawn,
    /// Supervisor journal: a control/heartbeat connection was remade.
    Reconnect,
    /// Supervisor journal: a heartbeat deadline was missed.
    LivenessMiss,
}

impl EventKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FixpointStart => "fixpoint_start",
            EventKind::Setup => "setup",
            EventKind::Superstep => "superstep",
            EventKind::Recovery => "recovery",
            EventKind::FixpointEnd => "fixpoint_end",
            EventKind::ExchangeSend => "exchange_send",
            EventKind::ExchangeRecv => "exchange_recv",
            EventKind::ExchangeWait => "exchange_wait",
            EventKind::BroadcastRecv => "broadcast_recv",
            EventKind::Respawn => "respawn",
            EventKind::Reconnect => "reconnect",
            EventKind::LivenessMiss => "liveness_miss",
        }
    }

    /// Driver-side kinds whose counts are deterministic for a given query
    /// and fault seed. Only these enter [`QueryTrace::signature`].
    pub fn is_core(self) -> bool {
        matches!(
            self,
            EventKind::FixpointStart
                | EventKind::Setup
                | EventKind::Superstep
                | EventKind::Recovery
                | EventKind::FixpointEnd
        )
    }

    /// Worker-lane communication kinds (merged from worker-side spans).
    /// Timing dependent — repair-path retransmissions duplicate them — so
    /// they are visible in timelines but excluded from signatures.
    pub fn is_worker_comm(self) -> bool {
        matches!(
            self,
            EventKind::ExchangeSend
                | EventKind::ExchangeRecv
                | EventKind::ExchangeWait
                | EventKind::BroadcastRecv
        )
    }
}

/// Which physical fixpoint plan produced the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum PlanKind {
    #[default]
    None,
    Gld,
    Plw,
    Async,
}

impl PlanKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::None => "none",
            PlanKind::Gld => "gld",
            PlanKind::Plw => "plw",
            PlanKind::Async => "async",
        }
    }
}

/// Which recovery action a [`EventKind::Recovery`] event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum RecoveryKind {
    #[default]
    None,
    /// A failed superstep was retried in place.
    Retry,
    /// State was rolled back to a superstep checkpoint.
    Restore,
    /// The fixpoint restarted from its seed.
    Restart,
}

impl RecoveryKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryKind::None => "none",
            RecoveryKind::Retry => "retry",
            RecoveryKind::Restore => "restore",
            RecoveryKind::Restart => "restart",
        }
    }
}

/// Worker id used for driver-side events.
pub const DRIVER: i32 = -1;

/// One recorded event. Flat and `Copy` so recording is a memcpy; fields
/// that do not apply to a kind stay zero.
///
/// The kernel counters (`index_builds`, `join_probes`, `antijoin_probes`)
/// are deltas of the **process-wide** kernel stats and are therefore
/// best-effort under concurrent queries; they are excluded from
/// [`QueryTrace::signature`]. Communication and fault counters come from
/// per-cluster stats and are exact per query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    pub kind: EventKind,
    /// Which fixpoint of the query (0-based, driver-sequential).
    pub fixpoint: u32,
    /// The physical plan executing this fixpoint.
    pub plan: PlanKind,
    /// Worker index, or [`DRIVER`] for driver-side events.
    pub worker: i32,
    /// Superstep number (1-based; 0 for non-superstep events).
    pub iteration: u64,
    /// New tuples this step (or seed/final size for start/end events).
    pub delta_rows: u64,
    /// Shuffle operations during this event's window.
    pub shuffles: u64,
    /// Rows repartitioned during this event's window.
    pub rows_shuffled: u64,
    /// Broadcast operations during this event's window.
    pub broadcasts: u64,
    /// Rows replicated by broadcasts during this event's window.
    pub rows_broadcast: u64,
    /// Data-plane payload bytes that crossed worker sockets during this
    /// event's window (zero on the in-process simulator backend). Measured,
    /// not simulated — but excluded from [`QueryTrace::signature`] because
    /// repair-path retransmissions under real process kills are timing
    /// dependent.
    pub wire_exchange_bytes: u64,
    /// Join/antijoin index builds (process-wide delta, best effort).
    pub index_builds: u64,
    /// Rows probed against cached join indexes (process-wide delta).
    pub join_probes: u64,
    /// Rows probed against cached antijoin key-sets (process-wide delta).
    pub antijoin_probes: u64,
    /// Faults injected during this event's window (per-cluster delta).
    pub faults: u64,
    /// Recovery action, for [`EventKind::Recovery`] events.
    pub recovery: RecoveryKind,
    /// Microseconds since the trace began.
    pub t_us: u64,
    /// Event duration in microseconds.
    pub dur_us: u64,
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            kind: EventKind::Superstep,
            fixpoint: 0,
            plan: PlanKind::None,
            worker: DRIVER,
            iteration: 0,
            delta_rows: 0,
            shuffles: 0,
            rows_shuffled: 0,
            broadcasts: 0,
            rows_broadcast: 0,
            wire_exchange_bytes: 0,
            index_builds: 0,
            join_probes: 0,
            antijoin_probes: 0,
            faults: 0,
            recovery: RecoveryKind::None,
            t_us: 0,
            dur_us: 0,
        }
    }
}

impl TraceEvent {
    /// An event of the given kind within a fixpoint/plan.
    pub fn new(kind: EventKind, fixpoint: u32, plan: PlanKind) -> Self {
        TraceEvent { kind, fixpoint, plan, ..Default::default() }
    }
}

/// Default ring capacity: enough for thousands of supersteps across every
/// worker; ~4 MiB of `Copy` events at the default.
pub const DEFAULT_CAPACITY: usize = 32_768;

/// Process-wide trace-id allocator (ids start at 1; 0 = "no trace" on the
/// wire).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

struct Ring {
    buf: VecDeque<TraceEvent>,
    cap: usize,
}

/// The per-query event recorder handed (behind an `Arc`) to the fixpoint
/// drivers. Thread-safe: `P_plw` workers record concurrently.
pub struct TraceSink {
    level: TraceLevel,
    trace_id: u64,
    start: Instant,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
    next_fixpoint: AtomicU64,
}

impl TraceSink {
    /// A sink at the given level with the default ring capacity.
    pub fn new(level: TraceLevel) -> Self {
        Self::with_capacity(level, DEFAULT_CAPACITY)
    }

    /// A sink with an explicit ring capacity (at least 1).
    pub fn with_capacity(level: TraceLevel, cap: usize) -> Self {
        let cap = cap.max(1);
        TraceSink {
            level,
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            ring: Mutex::new(Ring { buf: VecDeque::with_capacity(cap), cap }),
            dropped: AtomicU64::new(0),
            next_fixpoint: AtomicU64::new(0),
        }
    }

    /// The sink's recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Process-unique id of this sink, propagated on data-plane frames so
    /// worker-side spans can be matched back to the query.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The instant all `t_us` timestamps are relative to — the time base
    /// worker spans are re-based onto after clock alignment.
    pub fn start_instant(&self) -> Instant {
        self.start
    }

    /// Folds externally-dropped events (a worker's bounded span ring) into
    /// this trace's `dropped` count.
    pub fn add_dropped(&self, n: u64) {
        if n > 0 {
            self.dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// True when per-superstep events should be recorded.
    pub fn superstep_enabled(&self) -> bool {
        self.level >= TraceLevel::Superstep
    }

    /// Microseconds since the sink was created (the trace time base).
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Allocates the next fixpoint id (driver-sequential).
    pub fn next_fixpoint(&self) -> u32 {
        self.next_fixpoint.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Appends an event; overwrites the oldest when the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(ev);
    }

    /// Snapshot of the trace so far (idempotent; the sink keeps recording).
    pub fn finish(&self) -> QueryTrace {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        QueryTrace {
            level: self.level,
            trace_id: self.trace_id,
            events: ring.buf.iter().copied().collect(),
            dropped: self.dropped.load(Ordering::Relaxed),
            total_us: self.now_us(),
        }
    }
}

/// A finished per-query trace, attached to `ExecStats` by the evaluator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    /// The level the query recorded at.
    pub level: TraceLevel,
    /// Process-unique id of the sink that recorded this trace.
    pub trace_id: u64,
    /// Events in ring order (append order; worker threads may interleave).
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring when it overflowed (coordinator ring
    /// plus any worker-side span-ring evictions folded in by the merge).
    pub dropped: u64,
    /// Total traced wall time in microseconds.
    pub total_us: u64,
}

/// Per-fixpoint straggler summary computed from worker-lane durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixpointSkew {
    /// Which fixpoint of the query.
    pub fixpoint: u32,
    /// Workers that contributed at least one measured event.
    pub workers: usize,
    /// Busiest worker's total event time, µs.
    pub max_us: u64,
    /// Median worker's total event time, µs.
    pub median_us: u64,
    /// `max / median` — 1.0 means perfectly balanced; large values mean
    /// one straggler dominated the fixpoint's wall clock.
    pub skew_ratio: f64,
}

impl QueryTrace {
    /// Superstep events only.
    pub fn supersteps(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.kind == EventKind::Superstep)
    }

    /// The deterministic projection of the trace: one line per event with
    /// timestamps, durations and process-wide kernel counters removed,
    /// sorted canonically by `(fixpoint, worker, iteration, kind)`. Two
    /// runs of the same query under the same fault seed yield equal
    /// signatures (the chaos determinism contract).
    ///
    /// Only core driver-side kinds ([`EventKind::is_core`]) enter the
    /// signature: worker-lane and supervisor events are timing dependent
    /// (repair-path retransmissions, heartbeat cadence), and excluding
    /// them also keeps sim-backend and proc-backend signatures comparable
    /// (the simulator has no worker lanes).
    pub fn signature(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .events
            .iter()
            .filter(|e| e.kind.is_core())
            .map(|e| {
                format!(
                    "fx={} w={} it={} {} plan={} delta={} shuf={} rows_shuf={} bcast={} \
                     rows_bcast={} faults={} recov={}",
                    e.fixpoint,
                    e.worker,
                    e.iteration,
                    e.kind.name(),
                    e.plan.name(),
                    e.delta_rows,
                    e.shuffles,
                    e.rows_shuffled,
                    e.broadcasts,
                    e.rows_broadcast,
                    e.faults,
                    e.recovery.name(),
                )
            })
            .collect();
        lines.sort();
        lines
    }

    /// Full-trace JSON: a Chrome-trace-compatible document (top-level
    /// `traceEvents` array loads directly in `chrome://tracing` and
    /// Perfetto) with the complete structured event dump under the `mura`
    /// key. See `schemas/trace.schema.json`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256 + self.events.len() * 256);
        out.push_str("{\n  \"traceEvents\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            write_chrome_event(&mut out, e);
        }
        out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\",\n  \"mura\": {\n");
        let _ = write!(
            out,
            "    \"version\": 2,\n    \"level\": \"{}\",\n    \"trace_id\": {},\n    \
             \"dropped\": {},\n    \"total_us\": {},\n    \"events\": [",
            self.level.name(),
            self.trace_id,
            self.dropped,
            self.total_us
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n      ");
            write_event_json(&mut out, e);
        }
        out.push_str("\n    ]\n  }\n}\n");
        out
    }

    /// The bare Chrome-trace event array (`[{...}, ...]`), for tools that
    /// want only the `traceEvents` payload.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(2 + self.events.len() * 192);
        out.push('[');
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            write_chrome_event(&mut out, e);
        }
        out.push_str("\n]\n");
        out
    }

    /// Renders the superstep timeline as an aligned text table (the
    /// `.profile` output): one row per event, canonical order.
    pub fn render_timeline(&self) -> String {
        use std::fmt::Write;
        let mut events: Vec<&TraceEvent> = self.events.iter().collect();
        events.sort_by_key(|e| (e.fixpoint, e.t_us, e.worker, e.iteration, e.kind));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<3} {:<6} {:<6} {:<15} {:>5} {:>9} {:>6} {:>10} {:>10} {:>9} {:>9}",
            "fx",
            "plan",
            "worker",
            "event",
            "step",
            "delta",
            "shuf",
            "rows_shuf",
            "rows_bcast",
            "probes",
            "ms"
        );
        for e in events {
            let worker =
                if e.worker == DRIVER { "drv".to_string() } else { format!("w{}", e.worker) };
            let event = if e.kind == EventKind::Recovery {
                format!("{} ({})", e.kind.name(), e.recovery.name())
            } else {
                e.kind.name().to_string()
            };
            let _ = writeln!(
                out,
                "{:<3} {:<6} {:<6} {:<15} {:>5} {:>9} {:>6} {:>10} {:>10} {:>9} {:>9.3}",
                e.fixpoint,
                e.plan.name(),
                worker,
                event,
                e.iteration,
                e.delta_rows,
                e.shuffles,
                e.rows_shuffled,
                e.rows_broadcast,
                e.join_probes + e.antijoin_probes,
                e.dur_us as f64 / 1_000.0,
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} events dropped by the ring buffer)", self.dropped);
        }
        out
    }

    /// Per-fixpoint skew summary. For each fixpoint, each worker's
    /// [`EventKind::Superstep`] durations are summed (falling back to
    /// worker-lane communication events when no worker recorded
    /// supersteps, as under `P_gld` where the loop is driver-side); the
    /// skew ratio is the busiest worker's total over the median worker's.
    /// Fixpoints with fewer than two contributing workers are skipped —
    /// skew needs a comparison.
    pub fn skew_by_fixpoint(&self) -> Vec<FixpointSkew> {
        use std::collections::BTreeMap;
        // fixpoint → worker → (superstep_us, comm_us)
        let mut per: BTreeMap<u32, BTreeMap<i32, (u64, u64)>> = BTreeMap::new();
        for e in &self.events {
            if e.worker == DRIVER {
                continue;
            }
            let slot = per.entry(e.fixpoint).or_default().entry(e.worker).or_default();
            if e.kind == EventKind::Superstep {
                slot.0 += e.dur_us;
            } else if e.kind.is_worker_comm() {
                slot.1 += e.dur_us;
            }
        }
        let mut out = Vec::new();
        for (fixpoint, workers) in per {
            let use_supersteps = workers.values().any(|&(s, _)| s > 0);
            let mut totals: Vec<u64> = workers
                .values()
                .map(|&(s, c)| if use_supersteps { s } else { c })
                .filter(|&t| t > 0)
                .collect();
            if totals.len() < 2 {
                continue;
            }
            totals.sort_unstable();
            let max_us = *totals.last().unwrap();
            let median_us = totals[totals.len() / 2];
            out.push(FixpointSkew {
                fixpoint,
                workers: totals.len(),
                max_us,
                median_us,
                skew_ratio: max_us as f64 / median_us.max(1) as f64,
            });
        }
        out
    }

    /// Renders the per-fixpoint skew summary as an aligned text table
    /// (empty string when no fixpoint had measurable per-worker work).
    pub fn render_skew(&self) -> String {
        use std::fmt::Write;
        let rows = self.skew_by_fixpoint();
        if rows.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<3} {:>7} {:>10} {:>10} {:>6}",
            "fx", "workers", "max_ms", "median_ms", "skew"
        );
        for s in rows {
            let _ = writeln!(
                out,
                "{:<3} {:>7} {:>10.3} {:>10.3} {:>6.2}",
                s.fixpoint,
                s.workers,
                s.max_us as f64 / 1_000.0,
                s.median_us as f64 / 1_000.0,
                s.skew_ratio,
            );
        }
        out
    }
}

/// One Chrome-trace "complete" event (`ph: "X"`). `pid` tracks the
/// fixpoint, `tid` the worker lane (driver = 0, worker w = w+1), so
/// Perfetto renders one swimlane per worker per fixpoint.
fn write_chrome_event(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    let name = match e.kind {
        EventKind::Superstep => format!("step {}", e.iteration),
        EventKind::Recovery => format!("recovery:{}", e.recovery.name()),
        _ => e.kind.name().to_string(),
    };
    let _ = write!(
        out,
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
         \"pid\": {}, \"tid\": {}, \"args\": {{\"delta_rows\": {}, \"rows_shuffled\": {}, \
         \"rows_broadcast\": {}, \"faults\": {}}}}}",
        name,
        e.plan.name(),
        e.t_us,
        e.dur_us.max(1),
        e.fixpoint,
        e.worker + 1,
        e.delta_rows,
        e.rows_shuffled,
        e.rows_broadcast,
        e.faults,
    );
}

fn write_event_json(out: &mut String, e: &TraceEvent) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"kind\": \"{}\", \"fixpoint\": {}, \"plan\": \"{}\", \"worker\": {}, \
         \"iteration\": {}, \"delta_rows\": {}, \"shuffles\": {}, \"rows_shuffled\": {}, \
         \"broadcasts\": {}, \"rows_broadcast\": {}, \"wire_exchange_bytes\": {}, \
         \"index_builds\": {}, \"join_probes\": {}, \
         \"antijoin_probes\": {}, \"faults\": {}, \"recovery\": \"{}\", \"t_us\": {}, \
         \"dur_us\": {}}}",
        e.kind.name(),
        e.fixpoint,
        e.plan.name(),
        e.worker,
        e.iteration,
        e.delta_rows,
        e.shuffles,
        e.rows_shuffled,
        e.broadcasts,
        e.rows_broadcast,
        e.wire_exchange_bytes,
        e.index_builds,
        e.join_probes,
        e.antijoin_probes,
        e.faults,
        e.recovery.name(),
        e.t_us,
        e.dur_us,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(fixpoint: u32, worker: i32, iteration: u64, delta: u64) -> TraceEvent {
        TraceEvent {
            worker,
            iteration,
            delta_rows: delta,
            ..TraceEvent::new(EventKind::Superstep, fixpoint, PlanKind::Plw)
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = TraceSink::with_capacity(TraceLevel::Superstep, 2);
        sink.record(step(0, 0, 1, 10));
        sink.record(step(0, 0, 2, 20));
        sink.record(step(0, 0, 3, 30));
        let t = sink.finish();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].iteration, 2);
        assert_eq!(t.events[1].iteration, 3);
    }

    #[test]
    fn signature_ignores_time_and_order() {
        let a = QueryTrace {
            level: TraceLevel::Superstep,
            trace_id: 1,
            events: vec![step(0, 1, 1, 5), step(0, 0, 1, 7)],
            dropped: 0,
            total_us: 100,
        };
        let mut b = a.clone();
        b.events.reverse();
        b.events[0].t_us = 999;
        b.events[1].dur_us = 123;
        b.total_us = 5;
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn signature_detects_different_work() {
        let a = QueryTrace { events: vec![step(0, 0, 1, 5)], ..Default::default() };
        let b = QueryTrace { events: vec![step(0, 0, 1, 6)], ..Default::default() };
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn json_exports_parse() {
        let t = QueryTrace {
            level: TraceLevel::Superstep,
            trace_id: 7,
            events: vec![step(0, 0, 1, 5), step(0, 1, 1, 7)],
            dropped: 0,
            total_us: 42,
        };
        let doc = crate::json::Json::parse(&t.to_json()).expect("full trace JSON parses");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        let mura = doc.get("mura").unwrap();
        assert_eq!(mura.get("level").and_then(|v| v.as_str()), Some("superstep"));
        assert_eq!(mura.get("version").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(mura.get("trace_id").and_then(|v| v.as_f64()), Some(7.0));
        assert_eq!(mura.get("events").and_then(|v| v.as_array()).unwrap().len(), 2);
        let chrome = crate::json::Json::parse(&t.to_chrome_trace()).unwrap();
        assert_eq!(chrome.as_array().unwrap().len(), 2);
    }

    #[test]
    fn timeline_has_one_row_per_event() {
        let t = QueryTrace {
            level: TraceLevel::Superstep,
            trace_id: 1,
            events: vec![step(0, 0, 1, 5), step(0, 0, 2, 3)],
            dropped: 0,
            total_us: 42,
        };
        let table = t.render_timeline();
        // Header + one row per superstep.
        assert_eq!(table.lines().count(), 3, "{table}");
        assert!(table.contains("superstep"), "{table}");
    }

    #[test]
    fn signature_excludes_worker_lane_and_supervisor_events() {
        let a = QueryTrace { events: vec![step(0, 0, 1, 5)], ..Default::default() };
        let mut b = a.clone();
        b.events.push(TraceEvent {
            worker: 1,
            iteration: 1,
            wire_exchange_bytes: 512,
            ..TraceEvent::new(EventKind::ExchangeSend, 0, PlanKind::Gld)
        });
        b.events.push(TraceEvent {
            worker: 1,
            ..TraceEvent::new(EventKind::Respawn, 0, PlanKind::None)
        });
        assert_eq!(a.signature(), b.signature());
        assert!(!EventKind::ExchangeSend.is_core());
        assert!(EventKind::ExchangeWait.is_worker_comm());
        assert!(!EventKind::Respawn.is_worker_comm());
    }

    #[test]
    fn skew_summary_finds_the_straggler() {
        let mut events = Vec::new();
        for (worker, dur) in [(0, 100u64), (1, 100), (2, 100), (3, 400)] {
            events.push(TraceEvent { dur_us: dur, ..step(0, worker, 1, 5) });
        }
        let t = QueryTrace { events, ..Default::default() };
        let skew = t.skew_by_fixpoint();
        assert_eq!(skew.len(), 1);
        assert_eq!(skew[0].workers, 4);
        assert_eq!(skew[0].max_us, 400);
        assert_eq!(skew[0].median_us, 100);
        assert!((skew[0].skew_ratio - 4.0).abs() < 1e-9);
        let table = t.render_skew();
        assert!(table.contains("4.00"), "{table}");
    }

    #[test]
    fn skew_falls_back_to_comm_events_and_skips_single_worker() {
        // Fixpoint 0: only worker-lane comm events (P_gld shape).
        // Fixpoint 1: a single worker — no comparison, skipped.
        let mk = |kind, fixpoint, worker, dur_us| TraceEvent {
            worker,
            dur_us,
            ..TraceEvent::new(kind, fixpoint, PlanKind::Gld)
        };
        let t = QueryTrace {
            events: vec![
                mk(EventKind::ExchangeWait, 0, 0, 50),
                mk(EventKind::ExchangeWait, 0, 1, 200),
                mk(EventKind::Superstep, 1, 0, 10),
            ],
            ..Default::default()
        };
        let skew = t.skew_by_fixpoint();
        assert_eq!(skew.len(), 1);
        assert_eq!(skew[0].fixpoint, 0);
        assert_eq!(skew[0].max_us, 200);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceSink::new(TraceLevel::Fixpoint);
        let b = TraceSink::new(TraceLevel::Fixpoint);
        assert_ne!(a.trace_id(), 0);
        assert_ne!(a.trace_id(), b.trace_id());
        assert_eq!(a.finish().trace_id, a.trace_id());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(TraceLevel::Off < TraceLevel::Fixpoint);
        assert!(TraceLevel::Fixpoint < TraceLevel::Superstep);
        let s = TraceSink::new(TraceLevel::Fixpoint);
        assert!(!s.superstep_enabled());
        assert!(TraceSink::new(TraceLevel::Superstep).superstep_enabled());
    }

    #[test]
    fn fixpoint_ids_are_sequential() {
        let s = TraceSink::new(TraceLevel::Superstep);
        assert_eq!(s.next_fixpoint(), 0);
        assert_eq!(s.next_fixpoint(), 1);
    }
}
