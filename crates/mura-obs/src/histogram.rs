//! Fixed log-spaced latency histograms.
//!
//! Buckets are powers of two in microseconds: bucket `k` counts samples
//! `≤ 2^k µs`, for `k ∈ [0, BUCKETS)`, plus one overflow bucket. With
//! `BUCKETS = 26` the largest finite bound is ~33.6 s — wider than any
//! query the serving layer admits under a deadline. Log spacing keeps the
//! relative quantile error bounded (a factor of two) at constant memory,
//! with no samples stored: p50/p95/p99 are derived from the counts.
//!
//! Recording is one `fetch_add` on the bucket plus three on the aggregate
//! counters — safe to call from every worker thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets (bounds `2^0 .. 2^(BUCKETS-1)` µs).
pub const BUCKETS: usize = 26;

/// Upper bound (inclusive) of finite bucket `i`, in microseconds.
pub fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a sample falls into (`BUCKETS` = overflow).
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let idx = (64 - (us - 1).leading_zeros()) as usize;
    idx.min(BUCKETS)
}

/// A concurrent log-spaced histogram of microsecond latencies.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one sample of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one sample from a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_us(d.as_micros() as u64);
    }

    /// Point-in-time copy of the counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], with quantile derivation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; `counts[BUCKETS]` is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in microseconds.
    pub sum_us: u64,
    /// Largest recorded sample in microseconds.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, or `None` when the
    /// histogram is empty. Returns the upper bound of the bucket holding
    /// the quantile rank, capped at the observed maximum (so a quantile
    /// never exceeds any real sample, and the overflow bucket reports the
    /// max instead of infinity).
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i >= BUCKETS {
                    Some(self.max_us)
                } else {
                    Some(bucket_bound_us(i).min(self.max_us))
                };
            }
        }
        Some(self.max_us)
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Formats a microsecond latency as a compact human string (`"1.24ms"`).
pub fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        // Exactly at the largest finite bound stays finite…
        assert_eq!(bucket_index(bucket_bound_us(BUCKETS - 1)), BUCKETS - 1);
        // …one past it overflows.
        assert_eq!(bucket_index(bucket_bound_us(BUCKETS - 1) + 1), BUCKETS);
        assert_eq!(bucket_index(u64::MAX), BUCKETS);
    }

    #[test]
    fn bounds_are_monotone() {
        for i in 1..BUCKETS {
            assert!(bucket_bound_us(i) > bucket_bound_us(i - 1));
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_us(0.5), None);
        assert_eq!(s.quantile_us(0.99), None);
        assert_eq!(s.mean_us(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record_us(100);
        let s = h.snapshot();
        // The bucket bound (128) is capped at the observed max (100).
        assert_eq!(s.quantile_us(0.5), Some(100));
        assert_eq!(s.quantile_us(0.99), Some(100));
        assert_eq!(s.quantile_us(1.0), Some(100));
        assert_eq!(s.mean_us(), 100);
    }

    #[test]
    fn overflow_bucket_reports_max() {
        let h = Histogram::new();
        let huge = bucket_bound_us(BUCKETS - 1) * 4;
        h.record_us(huge);
        let s = h.snapshot();
        assert_eq!(s.counts[BUCKETS], 1);
        assert_eq!(s.quantile_us(0.5), Some(huge));
    }

    #[test]
    fn quantiles_split_a_bimodal_load() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_us(1_000); // ~1ms fast path
        }
        for _ in 0..10 {
            h.record_us(1_000_000); // ~1s slow path
        }
        let s = h.snapshot();
        let p50 = s.quantile_us(0.5).unwrap();
        let p99 = s.quantile_us(0.99).unwrap();
        assert!(p50 <= 1_024, "p50 {p50} should sit in the fast mode");
        assert!(p99 >= 500_000, "p99 {p99} should sit in the slow mode");
    }

    #[test]
    fn quantile_rank_edges() {
        let h = Histogram::new();
        h.record_us(10);
        h.record_us(1_000);
        let s = h.snapshot();
        // q→0 clamps to rank 1 (the smallest sample's bucket).
        assert_eq!(s.quantile_us(0.0), Some(16));
        assert_eq!(s.quantile_us(1.0), Some(1_000));
    }

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(900), "900µs");
        assert_eq!(fmt_us(1_500), "1.50ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
    }
}
