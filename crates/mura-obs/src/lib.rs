//! # mura-obs — observability primitives for Dist-μ-RA
//!
//! The paper's central claim — `P_plw` repartitions once while `P_gld`
//! shuffles every iteration — is a statement about *when* communication
//! happens inside a fixpoint, not just how much of it there is in total.
//! This crate provides the telemetry types that make that (and delta
//! growth, kernel work and fault recovery) observable per superstep:
//!
//! * [`trace`] — a lightweight span/event recorder ([`TraceSink`]) fed by
//!   the fixpoint drivers with one event per superstep, producing a
//!   per-query [`QueryTrace`] with Chrome-trace / JSON exporters and an
//!   aligned-table timeline renderer;
//! * [`histogram`] — fixed log-spaced latency [`Histogram`]s from which
//!   p50/p95/p99 are derivable without storing samples;
//! * [`prometheus`] — Prometheus text-exposition rendering
//!   ([`PromText`]) for counters, gauges and histograms;
//! * [`json`] — a minimal JSON value codec ([`json::Json`]) used by the
//!   exporters and by CI to validate emitted traces offline (the
//!   workspace builds without external dependencies, so there is no serde).
//!
//! The crate is deliberately a **leaf**: it depends on nothing, so every
//! other crate (core, dist, serve, bench, the CLI) can depend on it.
//! Instrumentation cost is governed by a per-query [`TraceLevel`]: at
//! [`TraceLevel::Off`] the drivers skip all recording (a `None` check),
//! and at [`TraceLevel::Superstep`] each superstep appends one `Copy`
//! struct to a pre-sized ring buffer under a short mutex hold.

pub mod histogram;
pub mod json;
pub mod prometheus;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use prometheus::PromText;
pub use trace::{
    EventKind, FixpointSkew, PlanKind, QueryTrace, RecoveryKind, TraceEvent, TraceLevel, TraceSink,
};
