//! Regression tests for the loop-invariant guarantees of the prepared
//! kernels, verified through the process-wide kernel counters:
//!
//! * constant subtrees are folded **once at prepare time** (counted via the
//!   `const_folds` probe), never re-evaluated during iteration;
//! * the build-side join index is constructed **once per fixpoint**, not
//!   once per iteration or once per worker.
//!
//! The counters are global to the process, so everything lives in a single
//! `#[test]` in its own integration-test binary: no other test can run
//! concurrently and pollute the deltas.

use mura_core::kernel::kernel_stats;
use mura_core::{Database, Relation, Sym, Term};
use mura_dist::localfix::{local_fixpoint_prepared, prepare, Budget, Prepared};
use mura_dist::{DistEvaluator, ExecConfig, FixpointPlan, LocalEngine};

fn tc_setup() -> (Database, Relation, Term, Sym) {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let m = db.intern("m");
    let x = db.intern("X");
    // A long chain: many semi-naive iterations.
    let e = Relation::from_pairs(src, dst, (0..12).map(|i| (i, i + 1)));
    // The `ρ_src→m(Cst(E))` subtree is x-free: it must fold to a single
    // pre-materialized constant and feed a cached join index.
    let step = Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
    (db, e, step, x)
}

#[test]
fn const_folds_and_index_builds_happen_once_per_fixpoint() {
    let (db, e, step, x) = tc_setup();

    // --- prepare: folding and index build happen here, exactly once ---
    let before = kernel_stats().snapshot();
    let prepared: Vec<Prepared<Relation>> = vec![prepare(&step, x, e.schema()).unwrap()];
    let after_prepare = kernel_stats().snapshot().since(&before);
    assert_eq!(
        after_prepare.const_folds, 1,
        "exactly the rename-of-constant subtree must fold at prepare time"
    );
    assert_eq!(after_prepare.index_builds, 1, "one join index per constant join side");

    // --- iteration: no folding, no index rebuilds, only probes ---
    let before_loop = kernel_stats().snapshot();
    let budget = Budget::new(None, None);
    let out = local_fixpoint_prepared(&e, &prepared, &budget).unwrap();
    let during_loop = kernel_stats().snapshot().since(&before_loop);
    assert_eq!(out.len(), 12 * 13 / 2, "TC of a 12-edge chain");
    assert!(during_loop.iterations >= 10, "chain TC needs many iterations: {during_loop:?}");
    assert_eq!(
        during_loop.const_folds, 0,
        "constant subtrees must not be re-evaluated during iteration"
    );
    assert_eq!(
        during_loop.index_builds, 0,
        "the join index must be reused across all iterations, never rebuilt"
    );
    assert!(during_loop.join_probes > 0, "delta rows must probe the cached index");
    assert!(during_loop.eval_nanos > 0, "per-iteration kernel timings must be recorded");

    // --- distributed P_plw: prepare is shared, so still once per fixpoint
    //     (not once per worker, not once per iteration) ---
    let (term, workers) = (Term::cst(e.clone()).union(step.clone()).fix(x), 4usize);
    let config = ExecConfig {
        plan: FixpointPlan::ForcePlw,
        local_engine: LocalEngine::SetRdd,
        workers,
        ..Default::default()
    };
    let mut ev = DistEvaluator::new(&db, config);
    let got = ev.eval_collect(&term).unwrap();
    assert_eq!(got.len(), 12 * 13 / 2);
    let k = ev.stats().kernel;
    assert_eq!(
        k.index_builds, 1,
        "P_plw with {workers} workers must build the join index once per fixpoint: {k:?}"
    );
    // The distributed evaluator hoists x-free subtrees at the Term level
    // (evaluated once, bound to fresh constants) before `prepare` runs, so
    // nothing is left for prepare-time folding to do.
    assert_eq!(k.const_folds, 0, "hoisting already folded the invariant subtree: {k:?}");
    assert!(k.iterations > 0);

    // --- P_gld: the driver loop shares one prepared kernel as well ---
    let config = ExecConfig { plan: FixpointPlan::ForceGld, workers, ..Default::default() };
    let mut ev = DistEvaluator::new(&db, config);
    let got = ev.eval_collect(&term).unwrap();
    assert_eq!(got.len(), 12 * 13 / 2);
    let k = ev.stats().kernel;
    assert_eq!(
        k.index_builds, 1,
        "P_gld must build the join index once per fixpoint, not per iteration: {k:?}"
    );
    assert_eq!(k.const_folds, 0, "hoisting already folded the invariant subtree: {k:?}");
}
