//! Property tests for the loop-invariant fixpoint kernels: on random
//! Erdős–Rényi graphs, the hoisted/indexed kernels must produce exactly the
//! same fixpoint as (a) the centralized evaluator and (b) the naive
//! re-evaluating reference kernel, across all distributed plans and both
//! local engines.

use mura_core::{eval as eval_central, Database, Relation, Term};
use mura_datagen::er::erdos_renyi;
use mura_dist::localfix::{local_fixpoint, local_fixpoint_reference, Budget, LocalEngine};
use mura_dist::{DistEvaluator, ExecConfig, FixpointPlan};

/// Transitive-closure fixpoint term over the edge relation `e`.
fn tc_term(db: &mut Database, e: &Relation) -> (Term, mura_core::Sym) {
    let src = db.intern("src");
    let dst = db.intern("dst");
    let m = db.intern("m");
    let x = db.intern("X");
    let step = Term::var(x).rename(dst, m).join(Term::cst(e.clone()).rename(src, m)).antiproject(m);
    (Term::cst(e.clone()).union(step).fix(x), x)
}

fn er_edges(db: &mut Database, n: u64, p: f64, seed: u64) -> Relation {
    let src = db.intern("src");
    let dst = db.intern("dst");
    let g = erdos_renyi(n, p, seed);
    Relation::from_pairs(src, dst, g.plain_edges())
}

#[test]
fn indexed_kernels_match_centralized_on_random_graphs() {
    for seed in [1u64, 7, 42, 1234] {
        let mut db = Database::new();
        let e = er_edges(&mut db, 24, 0.09, seed);
        let (term, _) = tc_term(&mut db, &e);
        let expected = eval_central(&term, &db).unwrap();
        for plan in [
            FixpointPlan::Auto,
            FixpointPlan::ForceGld,
            FixpointPlan::ForcePlw,
            FixpointPlan::ForceAsync,
        ] {
            for engine in [LocalEngine::SetRdd, LocalEngine::Sorted] {
                let config = ExecConfig { plan, local_engine: engine, ..Default::default() };
                let mut ev = DistEvaluator::new(&db, config);
                let got = ev.eval_collect(&term).unwrap();
                assert_eq!(
                    got.sorted_rows(),
                    expected.sorted_rows(),
                    "seed {seed}: {plan:?}/{engine:?} diverged from centralized"
                );
            }
        }
    }
}

#[test]
fn indexed_kernel_matches_reference_kernel() {
    // The optimized local loop (folding + cached indexes + borrow eval)
    // must be row-for-row identical to the naive re-evaluating loop.
    for seed in [3u64, 11, 99] {
        let mut db = Database::new();
        let e = er_edges(&mut db, 20, 0.11, seed);
        let (term, x) = tc_term(&mut db, &e);
        let recs = match &term {
            Term::Fix(_, body) => match body.as_ref() {
                Term::Union(_, step) => vec![(**step).clone()],
                _ => unreachable!(),
            },
            _ => unreachable!(),
        };
        for engine in [LocalEngine::SetRdd, LocalEngine::Sorted] {
            let budget = Budget::new(None, None);
            let fast = local_fixpoint(&e, &recs, x, engine, &budget).unwrap();
            let slow = local_fixpoint_reference(&e, &recs, x, engine, &budget).unwrap();
            assert_eq!(
                fast.sorted_rows(),
                slow.sorted_rows(),
                "seed {seed}: {engine:?} indexed kernel diverged from reference"
            );
        }
    }
}

#[test]
fn antijoin_branch_matches_reference() {
    // A branch with an antijoin against a constant exercises the cached
    // key-set path: extend TC but exclude pairs present in a blocklist.
    for seed in [5u64, 21] {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e = er_edges(&mut db, 18, 0.12, seed);
        let blocked = er_edges(&mut db, 18, 0.05, seed.wrapping_mul(31));
        let step = Term::var(x)
            .rename(dst, m)
            .join(Term::cst(e.clone()).rename(src, m))
            .antiproject(m)
            .antijoin(Term::cst(blocked.clone()));
        let recs = vec![step];
        for engine in [LocalEngine::SetRdd, LocalEngine::Sorted] {
            let budget = Budget::new(None, None);
            let fast = local_fixpoint(&e, &recs, x, engine, &budget).unwrap();
            let slow = local_fixpoint_reference(&e, &recs, x, engine, &budget).unwrap();
            assert_eq!(
                fast.sorted_rows(),
                slow.sorted_rows(),
                "seed {seed}: {engine:?} antijoin kernel diverged from reference"
            );
        }
        let _ = src;
    }
}
