//! Chaos tests for the fault-injection / recovery subsystem.
//!
//! Three properties, over all three fixpoint plans (`P_gld`, `P_plw`,
//! `P_async`) on random Erdős–Rényi graphs:
//!
//! 1. **Determinism** — the same `FaultConfig` seed over the same query
//!    produces the same answer *and* the same [`FaultSnapshot`] counts
//!    (wall-clock time excluded) on every run;
//! 2. **Recovery** — under each fault class (worker panic, transient task
//!    error, dropped/duplicated exchange message, straggler delay) the
//!    answer equals the fault-free centralized evaluation, the relevant
//!    injection counters are nonzero, and no failure goes unrecovered (the
//!    query returns `Ok`);
//! 3. **Liveness under deadlines** — a deadline expiring mid-retry
//!    surfaces as `DeadlineExceeded`, never as a hang.
//!
//! The chaos CI job sweeps `MURA_CHAOS_SEED` over a seed matrix through
//! these same tests.

use mura_core::{eval, CancellationToken, MuraError, Relation};
use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
use mura_dist::{
    ExecConfig, FaultConfig, FaultSnapshot, FixpointPlan, QueryEngine, RecoveryPolicy,
};
use mura_ucrpq::{parse_ucrpq, to_mura};
use std::time::Duration;

const TC_QUERY: &str = "?x, ?y <- ?x a1+ ?y";
const PLANS: [FixpointPlan; 3] =
    [FixpointPlan::ForceGld, FixpointPlan::ForcePlw, FixpointPlan::ForceAsync];

/// Base seed for the run; the chaos CI job sweeps it via `MURA_CHAOS_SEED`.
/// The default is a seed verified to drive every recovery path (task
/// retries, stage reruns, checkpoint restores and full restarts).
fn chaos_seed() -> u64 {
    std::env::var("MURA_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

fn er_db(graph_seed: u64) -> mura_core::Database {
    let mut rng = SplitMix64::seed_from_u64(graph_seed);
    let g = erdos_renyi(80, 0.025, graph_seed);
    let lg = with_random_labels(&g, 2, &mut rng);
    lg.to_database()
}

/// Fault-free centralized reference answer.
fn centralized(db: &mut mura_core::Database, query: &str) -> Relation {
    let q = parse_ucrpq(query).unwrap();
    let term = to_mura(&q, db).unwrap();
    eval(&term, db).unwrap()
}

/// Runs `query` distributed under `config`; returns the answer and the
/// fault counters.
fn run(db: &mura_core::Database, query: &str, config: ExecConfig) -> (Relation, FaultSnapshot) {
    let mut engine = QueryEngine::with_config(db.clone(), config);
    let out = engine.run_ucrpq(query).unwrap();
    (out.relation, out.stats.fault)
}

#[test]
fn same_seed_same_answer_and_same_fault_counts() {
    let base = chaos_seed();
    for plan in PLANS {
        for offset in 0..3u64 {
            let fault_seed = base.wrapping_add(offset);
            let mut db = er_db(5);
            let expected = centralized(&mut db, TC_QUERY);
            let config = || ExecConfig {
                workers: 4,
                plan,
                fault: FaultConfig::chaos(fault_seed),
                checkpoint_every: 2,
                ..Default::default()
            };
            let (r1, f1) = run(&db, TC_QUERY, config());
            let (r2, f2) = run(&db, TC_QUERY, config());
            assert_eq!(
                r1.sorted_rows(),
                expected.sorted_rows(),
                "{plan:?} seed {fault_seed}: answer under chaos diverged from centralized"
            );
            assert_eq!(
                r2.sorted_rows(),
                expected.sorted_rows(),
                "{plan:?} seed {fault_seed}: second run diverged"
            );
            assert_eq!(
                f1.counts(),
                f2.counts(),
                "{plan:?} seed {fault_seed}: fault counts must be reproducible"
            );
            assert!(
                f1.injected() > 0,
                "{plan:?} seed {fault_seed}: chaos profile injected nothing: {f1}"
            );
        }
    }
}

#[test]
fn worker_panics_recover_on_every_plan() {
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                panic_prob: 0.9,
                failures_per_site: 1, // heals within the task retry budget
                ..Default::default()
            },
            checkpoint_every: 2,
            ..Default::default()
        };
        let (got, f) = run(&db, TC_QUERY, config);
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "{plan:?} under panics");
        assert!(f.injected_panics > 0, "{plan:?}: no panic injected: {f}");
        assert!(f.recovered(), "{plan:?}: panics must leave recovery traces: {f}");
    }
}

#[test]
fn transient_errors_recover_on_every_plan() {
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                transient_prob: 0.9,
                failures_per_site: 1,
                ..Default::default()
            },
            checkpoint_every: 2,
            ..Default::default()
        };
        let (got, f) = run(&db, TC_QUERY, config);
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "{plan:?} under transients");
        assert!(f.injected_transients > 0, "{plan:?}: no transient injected: {f}");
        assert!(f.recovered(), "{plan:?}: transients must leave recovery traces: {f}");
    }
}

#[test]
fn dropped_and_duplicated_exchanges_keep_answers_exact() {
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                drop_prob: 0.5,
                duplicate_prob: 0.5,
                ..Default::default()
            },
            ..Default::default()
        };
        let (got, f) = run(&db, TC_QUERY, config);
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "{plan:?} under message faults");
        assert!(
            f.injected_drops + f.injected_duplicates > 0,
            "{plan:?}: no message fault injected: {f}"
        );
    }
}

#[test]
fn stragglers_only_cost_time() {
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                straggler_prob: 0.8,
                straggler_delay_ms: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let (got, f) = run(&db, TC_QUERY, config);
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "{plan:?} under stragglers");
        assert!(f.injected_stragglers > 0, "{plan:?}: no straggler injected: {f}");
        assert_eq!(f.task_retries, 0, "{plan:?}: stragglers are slow, not failed: {f}");
    }
}

/// Injected memory pressure (a worker pretending its allocation failed)
/// is retryable: after the site heals the answer must be exact, the
/// dedicated counter nonzero, and the run must leave recovery traces.
#[test]
fn memory_pressure_recovers_on_every_plan() {
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                memory_pressure_prob: 0.9,
                failures_per_site: 1,
                ..Default::default()
            },
            checkpoint_every: 2,
            ..Default::default()
        };
        let (got, f) = run(&db, TC_QUERY, config);
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "{plan:?} under memory pressure");
        assert!(f.injected_memory_pressure > 0, "{plan:?}: no pressure injected: {f}");
        assert!(f.recovered(), "{plan:?}: memory pressure must leave recovery traces: {f}");
    }
}

/// Memory-pressure injection is a pure function of (seed, site, worker,
/// step, attempt): two runs with the same seed must agree on the answer
/// and on every fault counter.
#[test]
fn memory_pressure_same_seed_is_deterministic() {
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = || ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                memory_pressure_prob: 0.7,
                failures_per_site: 2,
                ..Default::default()
            },
            checkpoint_every: 2,
            ..Default::default()
        };
        let (r1, f1) = run(&db, TC_QUERY, config());
        let (r2, f2) = run(&db, TC_QUERY, config());
        assert_eq!(r1.sorted_rows(), expected.sorted_rows(), "{plan:?}: first run diverged");
        assert_eq!(r2.sorted_rows(), expected.sorted_rows(), "{plan:?}: second run diverged");
        assert_eq!(f1.counts(), f2.counts(), "{plan:?}: pressure counts must be reproducible");
        assert!(f1.injected_memory_pressure > 0, "{plan:?}: no pressure injected: {f1}");
    }
}

/// A real byte-budget breach is *not* retryable: the recovery machinery
/// must surface `MemoryExceeded` immediately instead of burning retries
/// on a deterministic failure.
#[test]
fn memory_exceeded_is_not_retried() {
    use mura_dist::ResourceLimits;
    for plan in PLANS {
        let db = er_db(5);
        let config = ExecConfig {
            workers: 4,
            plan,
            limits: ResourceLimits { max_rows: None, max_bytes: Some(4 << 10), timeout: None },
            ..Default::default()
        };
        let mut engine = QueryEngine::with_config(db, config);
        let err = engine.run_ucrpq(TC_QUERY).unwrap_err();
        assert!(
            matches!(err, MuraError::MemoryExceeded { .. }),
            "{plan:?}: expected MemoryExceeded, got {err:?}"
        );
    }
}

/// Hard faults (failing longer than the task retry budget) must fall back
/// to superstep checkpoints (`P_gld`, `P_plw`) or a fixpoint restart
/// (`P_async`) and still produce the exact answer.
#[test]
fn hard_faults_restore_from_checkpoints() {
    let mut total = FaultSnapshot::default();
    for plan in PLANS {
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                panic_prob: 0.15,
                failures_per_site: 4, // outlasts max_retries = 2
                ..Default::default()
            },
            recovery: RecoveryPolicy { max_restores: 64, ..Default::default() },
            checkpoint_every: 1,
            ..Default::default()
        };
        let (got, f) = run(&db, TC_QUERY, config);
        assert_eq!(got.sorted_rows(), expected.sorted_rows(), "{plan:?} under hard faults");
        eprintln!("hard faults {plan:?}: {f}");
        if f.injected_panics > 0 {
            // Escalation beyond in-task retries: a stage rerun (stateless
            // stage), a checkpoint restore (superstep loops) or a full
            // restart (`P_async`), depending on where the panics landed.
            assert!(
                f.stage_reruns + f.checkpoint_restores + f.full_restarts > 0,
                "{plan:?}: hard faults must escalate past task retries: {f}"
            );
            if f.checkpoint_restores + f.full_restarts > 0 {
                assert!(f.rows_replayed > 0, "{plan:?}: recovery must replay state: {f}");
            }
        }
        total.task_retries += f.task_retries;
        total.checkpoint_restores += f.checkpoint_restores;
        total.full_restarts += f.full_restarts;
    }
    if std::env::var("MURA_CHAOS_SEED").is_err() {
        // The default seed is chosen so the checkpoint restore path is
        // exercised somewhere (a swept seed may legitimately miss it).
        assert!(total.task_retries > 0, "default seed must drive task retries: {total}");
        assert!(
            total.checkpoint_restores > 0,
            "default seed must drive checkpoint restores: {total}"
        );
        assert!(total.full_restarts > 0, "default seed must drive full restarts: {total}");
    }
}

/// Satellite: a deadline expiring while the recovery machinery is mid-retry
/// must surface as `DeadlineExceeded` — not hang, and not be masked by the
/// injected fault.
#[test]
fn deadline_mid_retry_is_deadline_exceeded_not_a_hang() {
    for plan in PLANS {
        let db = er_db(5);
        let config = ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: chaos_seed(),
                transient_prob: 1.0,
                failures_per_site: u32::MAX, // never heals
                ..Default::default()
            },
            recovery: RecoveryPolicy {
                max_retries: 10_000,
                backoff_base_ms: 5,
                backoff_cap_ms: 10,
                max_restores: 10_000,
            },
            cancel: Some(CancellationToken::with_timeout(Duration::from_millis(100))),
            ..Default::default()
        };
        let mut engine = QueryEngine::with_config(db, config);
        let err = engine.run_ucrpq(TC_QUERY).unwrap_err();
        assert!(
            matches!(err, MuraError::DeadlineExceeded { .. }),
            "{plan:?}: expected DeadlineExceeded mid-retry, got {err:?}"
        );
    }
}
