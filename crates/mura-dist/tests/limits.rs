//! Resource-limit coverage across all fixpoint plans: row-cap exhaustion,
//! byte-budget breach, timeout expiry and token cancellation must abort
//! cleanly (no hang, no panic) under `P_gld`, `P_plw` and the asynchronous
//! evaluator.

use mura_core::{CancellationToken, Database, MuraError, Relation};
use mura_dist::exec::{ExecConfig, FixpointPlan, ResourceLimits};
use mura_dist::QueryEngine;
use std::time::Duration;

/// A directed cycle: its transitive closure has n² rows after n
/// iterations, so every budget gets plenty of chances to trip.
fn cycle_db(n: u64) -> Database {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    db.insert_relation("e", Relation::from_pairs(src, dst, (0..n).map(|i| (i, (i + 1) % n))));
    db
}

const TC: &str = "?x, ?y <- ?x e+ ?y";

const PLANS: [FixpointPlan; 3] =
    [FixpointPlan::ForceGld, FixpointPlan::ForcePlw, FixpointPlan::ForceAsync];

fn run_on(
    n: u64,
    plan: FixpointPlan,
    limits: ResourceLimits,
    cancel: Option<CancellationToken>,
) -> Result<usize, MuraError> {
    let config = ExecConfig { plan, limits, cancel, ..Default::default() };
    let mut engine = QueryEngine::with_config(cycle_db(n), config);
    engine.run_ucrpq(TC).map(|out| out.relation.len())
}

fn run(
    plan: FixpointPlan,
    limits: ResourceLimits,
    cancel: Option<CancellationToken>,
) -> Result<usize, MuraError> {
    run_on(400, plan, limits, cancel)
}

#[test]
fn max_rows_exhaustion_aborts_every_plan() {
    for plan in PLANS {
        let limits = ResourceLimits { max_rows: Some(500), max_bytes: None, timeout: None };
        let err =
            run(plan, limits, None).expect_err("closure of 160k rows must trip a 500-row cap");
        assert!(
            matches!(err, MuraError::ResourceExhausted { .. }),
            "{plan:?}: expected ResourceExhausted, got {err}"
        );
    }
}

#[test]
fn max_bytes_breach_reports_memory_exceeded_on_every_plan() {
    for plan in PLANS {
        // 64 KiB covers the 400-row edge relation but not the 160k-row
        // closure: the budget must trip mid-recursion, typed, on all plans.
        let limits = ResourceLimits { max_rows: None, max_bytes: Some(64 << 10), timeout: None };
        let err = run(plan, limits, None).expect_err("closure must blow a 64 KiB byte budget");
        assert!(
            matches!(err, MuraError::MemoryExceeded { .. }),
            "{plan:?}: expected MemoryExceeded, got {err}"
        );
        if let MuraError::MemoryExceeded { used, limit } = err {
            assert_eq!(limit, 64 << 10);
            assert!(used > limit, "reported usage {used} must exceed the limit {limit}");
        }
    }
}

#[test]
fn timeout_expiry_aborts_every_plan() {
    for plan in PLANS {
        let limits = ResourceLimits {
            max_rows: None,
            max_bytes: None,
            timeout: Some(Duration::from_millis(1)),
        };
        let err = run(plan, limits, None).expect_err("1 ms budget must expire");
        assert!(matches!(err, MuraError::Timeout { .. }), "{plan:?}: expected Timeout, got {err}");
    }
}

#[test]
fn pre_cancelled_token_aborts_every_plan() {
    for plan in PLANS {
        let token = CancellationToken::new();
        token.cancel();
        let err = run(plan, ResourceLimits::default(), Some(token))
            .expect_err("cancelled token must abort");
        assert!(matches!(err, MuraError::Cancelled), "{plan:?}: expected Cancelled, got {err}");
    }
}

#[test]
fn token_deadline_reports_deadline_exceeded() {
    for plan in PLANS {
        let token = CancellationToken::with_timeout(Duration::from_millis(1));
        let err = run(plan, ResourceLimits::default(), Some(token))
            .expect_err("1 ms token deadline must expire");
        assert!(
            matches!(err, MuraError::DeadlineExceeded { millis: 1 }),
            "{plan:?}: expected DeadlineExceeded, got {err}"
        );
    }
}

#[test]
fn generous_limits_do_not_interfere() {
    for plan in PLANS {
        let limits = ResourceLimits {
            max_rows: Some(10_000_000),
            max_bytes: Some(1 << 32),
            timeout: Some(Duration::from_secs(600)),
        };
        // Small cycle: this one runs to completion, keep it quick.
        let n = run_on(80, plan, limits, Some(CancellationToken::new()))
            .expect("generous budgets must not abort");
        assert_eq!(n, 80 * 80, "{plan:?}: full closure expected");
    }
}
