//! Integration tests for per-query tracing: the trace must make the
//! paper's communication claim observable (P_gld shuffles every
//! iteration, P_plw only during setup) and stay deterministic under
//! same-seed chaos.

use mura_core::{Database, Relation, Term};
use mura_dist::{DistEvaluator, ExecConfig, FaultConfig, FixpointPlan, QueryTrace, TraceLevel};
use mura_obs::trace::{EventKind, PlanKind};

/// A 12-node path graph and its transitive-closure term — enough edges
/// for several semi-naive supersteps.
fn tc_db() -> (Database, Term) {
    let mut db = Database::new();
    let src = db.intern("src");
    let dst = db.intern("dst");
    let m = db.intern("m");
    let x = db.intern("X");
    let e = db.insert_relation("E", Relation::from_pairs(src, dst, (0..12).map(|i| (i, i + 1))));
    let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
    let term = Term::var(e).union(step).fix(x);
    (db, term)
}

fn run_traced(config: ExecConfig) -> QueryTrace {
    let (db, term) = tc_db();
    let mut ev = DistEvaluator::new(&db, config);
    ev.eval_collect(&term).expect("query must succeed");
    ev.stats().trace.clone().expect("trace must be recorded")
}

#[test]
fn gld_shuffles_every_superstep() {
    let trace = run_traced(ExecConfig {
        plan: FixpointPlan::ForceGld,
        trace: TraceLevel::Superstep,
        ..Default::default()
    });
    let steps: Vec<_> = trace.supersteps().filter(|e| e.plan == PlanKind::Gld).collect();
    assert!(steps.len() >= 3, "expected several supersteps, got {}", steps.len());
    for s in steps.iter().filter(|s| s.delta_rows > 0) {
        assert!(s.shuffles > 0, "P_gld superstep {} recorded no shuffle: {s:?}", s.iteration);
        assert!(s.rows_shuffled > 0, "P_gld superstep {} moved no rows: {s:?}", s.iteration);
    }
}

#[test]
fn plw_communicates_only_during_setup() {
    let trace = run_traced(ExecConfig {
        plan: FixpointPlan::ForcePlw,
        trace: TraceLevel::Superstep,
        ..Default::default()
    });
    let steps: Vec<_> = trace.supersteps().filter(|e| e.plan == PlanKind::Plw).collect();
    assert!(steps.len() >= 3, "expected per-worker supersteps, got {}", steps.len());
    for s in &steps {
        assert_eq!(s.shuffles, 0, "P_plw superstep shuffled: {s:?}");
        assert_eq!(s.rows_shuffled, 0, "P_plw superstep moved rows: {s:?}");
        assert_eq!(s.broadcasts, 0, "P_plw superstep broadcast: {s:?}");
    }
    // All communication (the one-time repartition by the stable column and
    // the invariant broadcasts) lands in the setup event.
    let setup = trace
        .events
        .iter()
        .find(|e| e.kind == EventKind::Setup && e.plan == PlanKind::Plw)
        .expect("a P_plw fixpoint records a setup event");
    assert!(
        setup.shuffles + setup.broadcasts > 0,
        "setup must carry the up-front communication: {setup:?}"
    );
}

#[test]
fn fixpoints_bracketed_by_start_and_end() {
    let trace = run_traced(ExecConfig { trace: TraceLevel::Superstep, ..Default::default() });
    let starts = trace.events.iter().filter(|e| e.kind == EventKind::FixpointStart).count();
    let ends = trace.events.iter().filter(|e| e.kind == EventKind::FixpointEnd).count();
    assert_eq!(starts, 1);
    assert_eq!(ends, 1);
    // The timeline renders a header plus one row per event.
    let table = trace.render_timeline();
    assert_eq!(table.lines().count(), 1 + trace.events.len(), "{table}");
}

#[test]
fn trace_off_records_nothing() {
    let (db, term) = tc_db();
    let mut ev = DistEvaluator::new(&db, ExecConfig::default());
    ev.eval_collect(&term).unwrap();
    assert!(ev.stats().trace.is_none());
}

#[test]
fn fixpoint_level_skips_superstep_events() {
    let trace = run_traced(ExecConfig {
        plan: FixpointPlan::ForceGld,
        trace: TraceLevel::Fixpoint,
        ..Default::default()
    });
    assert_eq!(trace.supersteps().count(), 0, "no superstep events below Superstep level");
    assert!(trace.events.iter().any(|e| e.kind == EventKind::FixpointStart));
    assert!(trace.events.iter().any(|e| e.kind == EventKind::Setup));
    assert!(trace.events.iter().any(|e| e.kind == EventKind::FixpointEnd));
}

#[test]
fn same_seed_chaos_runs_have_identical_signatures() {
    let chaos = |seed: u64| {
        run_traced(ExecConfig {
            fault: FaultConfig::chaos(seed),
            checkpoint_every: 2,
            trace: TraceLevel::Superstep,
            ..Default::default()
        })
        .signature()
    };
    let a = chaos(7);
    let b = chaos(7);
    assert_eq!(a, b, "same-seed chaos traces must agree modulo timestamps");
    assert!(!a.is_empty());
}

/// On the in-process simulator there is no wire, so the merge step
/// contributes no worker-lane exchange events and drops nothing — the
/// trace differs from a process-cluster run only by the absent lanes.
#[test]
fn sim_backend_merges_no_worker_lanes() {
    let trace = run_traced(ExecConfig { trace: TraceLevel::Superstep, ..Default::default() });
    assert!(trace.events.iter().all(|e| !e.kind.is_worker_comm()), "sim traces have no lanes");
    assert_eq!(trace.dropped, 0);
    assert!(trace.trace_id > 0, "every trace carries a nonzero id");
}

#[test]
fn exported_json_is_valid() {
    let trace = run_traced(ExecConfig { trace: TraceLevel::Superstep, ..Default::default() });
    let doc = mura_obs::json::Json::parse(&trace.to_json()).expect("trace JSON parses");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    assert_eq!(events.len(), trace.events.len());
    let mura = doc.get("mura").expect("structured dump present");
    assert_eq!(mura.get("level").and_then(|v| v.as_str()), Some("superstep"));
}
