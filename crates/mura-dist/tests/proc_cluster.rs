//! Integration tests for the multi-process cluster backend
//! ([`ProcCluster`]): real worker OS processes, real sockets, real kills.
//!
//! What must hold, on random Erdős–Rényi graphs across all three fixpoint
//! plans:
//!
//! 1. **Equivalence** — answers over the process backend match both the
//!    in-process simulator and the fault-free centralized evaluation;
//! 2. **Bytes on the wire** — the paper's communication claim holds in
//!    *measured socket bytes*, not simulated counters: `P_plw` moves zero
//!    exchange bytes after setup while `P_gld` ships bytes every
//!    superstep;
//! 3. **Chaos** — under a fixed seed, injected worker kills (a real
//!    `SIGKILL` mid-exchange) and connection drops are survived: the
//!    answer stays exact, the injection counts are deterministic, and the
//!    [`FaultSnapshot`] records the recovery;
//! 4. **Supervision** — an out-of-band `SIGKILL` (the test-hook
//!    equivalent of `kill -9`) is detected by the heartbeat supervisor,
//!    the worker is respawned, and subsequent queries are exact.
//!
//! The chaos CI job sweeps `MURA_CHAOS_SEED` over a seed matrix through
//! these same tests.

use mura_core::{eval, Relation};
use mura_datagen::{erdos_renyi, with_random_labels, SplitMix64};
use mura_dist::{
    CommBackend, ExecConfig, FaultConfig, FaultSnapshot, FixpointPlan, ProcCluster,
    ProcClusterConfig, QueryEngine, TraceLevel,
};
use mura_obs::trace::{EventKind, PlanKind};
use mura_ucrpq::{parse_ucrpq, to_mura};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TC_QUERY: &str = "?x, ?y <- ?x a1+ ?y";
const PLANS: [FixpointPlan; 3] =
    [FixpointPlan::ForceGld, FixpointPlan::ForcePlw, FixpointPlan::ForceAsync];

fn chaos_seed() -> u64 {
    std::env::var("MURA_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2)
}

fn er_db(graph_seed: u64) -> mura_core::Database {
    let mut rng = SplitMix64::seed_from_u64(graph_seed);
    let g = erdos_renyi(60, 0.03, graph_seed);
    let lg = with_random_labels(&g, 2, &mut rng);
    lg.to_database()
}

fn centralized(db: &mut mura_core::Database, query: &str) -> Relation {
    let q = parse_ucrpq(query).unwrap();
    let term = to_mura(&q, db).unwrap();
    eval(&term, db).unwrap()
}

/// Spawns a process cluster whose worker binary is the one Cargo built
/// for this test run (guaranteed present via `CARGO_BIN_EXE_*`).
fn proc_cluster(workers: usize) -> Arc<ProcCluster> {
    ProcCluster::spawn_with(ProcClusterConfig {
        workers,
        worker_bin: Some(PathBuf::from(env!("CARGO_BIN_EXE_mura-worker"))),
        ..Default::default()
    })
    .expect("spawn process cluster")
}

fn run_on(
    db: &mura_core::Database,
    query: &str,
    config: ExecConfig,
) -> (Relation, FaultSnapshot, mura_dist::CommSnapshot) {
    let mut engine = QueryEngine::with_config(db.clone(), config);
    let out = engine.run_ucrpq(query).unwrap();
    (out.relation, out.stats.fault, out.comm)
}

/// Equivalence: for every plan, the process backend computes the same
/// answer as the in-process simulator and the centralized evaluation.
#[test]
fn proc_answers_match_simulator_and_centralized() {
    let cluster = proc_cluster(4);
    for plan in PLANS {
        for graph_seed in [5u64, 11] {
            let mut db = er_db(graph_seed);
            let expected = centralized(&mut db, TC_QUERY);
            let (sim, _, _) =
                run_on(&db, TC_QUERY, ExecConfig { workers: 4, plan, ..Default::default() });
            let (proc_ans, _, comm) = run_on(
                &db,
                TC_QUERY,
                ExecConfig {
                    workers: 4,
                    plan,
                    backend: Some(cluster.clone() as Arc<dyn CommBackend>),
                    ..Default::default()
                },
            );
            assert_eq!(
                sim.sorted_rows(),
                expected.sorted_rows(),
                "{plan:?} graph {graph_seed}: simulator diverged from centralized"
            );
            assert_eq!(
                proc_ans.sorted_rows(),
                expected.sorted_rows(),
                "{plan:?} graph {graph_seed}: process backend diverged from centralized"
            );
            assert!(
                comm.wire_tx_bytes > 0 && comm.wire_rx_bytes > 0,
                "{plan:?} graph {graph_seed}: process backend moved no bytes: {comm:?}"
            );
        }
    }
}

/// The paper's communication claim in measured socket bytes: over real
/// sockets `P_plw` ships exchange payload only during setup (its
/// supersteps move zero bytes), while `P_gld` ships payload on every
/// productive superstep.
#[test]
fn plw_zero_wire_bytes_after_setup_gld_ships_every_superstep() {
    let cluster = proc_cluster(4);
    let mut db = er_db(5);
    let expected = centralized(&mut db, TC_QUERY);
    let traced = |plan| {
        let mut engine = QueryEngine::with_config(
            db.clone(),
            ExecConfig {
                workers: 4,
                plan,
                trace: TraceLevel::Superstep,
                backend: Some(cluster.clone() as Arc<dyn CommBackend>),
                ..Default::default()
            },
        );
        let out = engine.run_ucrpq(TC_QUERY).unwrap();
        assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "{plan:?} diverged");
        (out.stats.trace.expect("trace recorded"), out.comm)
    };

    let (plw, plw_comm) = traced(FixpointPlan::ForcePlw);
    assert!(
        plw_comm.wire_exchange_bytes > 0,
        "P_plw setup must move real bytes (repartition + broadcasts): {plw_comm:?}"
    );
    let setup_bytes: u64 = plw
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Setup && e.plan == PlanKind::Plw)
        .map(|e| e.wire_exchange_bytes)
        .sum();
    assert!(setup_bytes > 0, "P_plw setup event must carry measured wire bytes");
    for s in plw.supersteps().filter(|e| e.plan == PlanKind::Plw) {
        assert_eq!(s.wire_exchange_bytes, 0, "P_plw superstep moved bytes over the wire: {s:?}");
    }

    let (gld, _) = traced(FixpointPlan::ForceGld);
    let productive: Vec<_> =
        gld.supersteps().filter(|e| e.plan == PlanKind::Gld && e.delta_rows > 0).collect();
    assert!(productive.len() >= 2, "expected several productive P_gld supersteps");
    for s in &productive {
        assert!(
            s.wire_exchange_bytes > 0,
            "P_gld superstep {} shipped no measured bytes: {s:?}",
            s.iteration
        );
    }
}

/// Tentpole: the merged cluster trace makes the paper's `P_plw` claim
/// visible *from the worker lanes themselves*. Worker processes record
/// their own exchange spans and ship them back at fixpoint end; after the
/// clock-aligned merge, every `P_plw` worker-lane exchange event sits at
/// superstep 0 (the one-time setup repartition and broadcasts) and none
/// during the recursion — while `P_gld` worker lanes show exchange events
/// on recursive supersteps too.
#[test]
fn plw_worker_lanes_show_zero_exchange_after_setup() {
    let cluster = proc_cluster(4);
    let mut db = er_db(5);
    let expected = centralized(&mut db, TC_QUERY);
    let traced = |plan| {
        let mut engine = QueryEngine::with_config(
            db.clone(),
            ExecConfig {
                workers: 4,
                plan,
                trace: TraceLevel::Superstep,
                backend: Some(cluster.clone() as Arc<dyn CommBackend>),
                ..Default::default()
            },
        );
        let out = engine.run_ucrpq(TC_QUERY).unwrap();
        assert_eq!(out.relation.sorted_rows(), expected.sorted_rows(), "{plan:?} diverged");
        out.stats.trace.expect("trace recorded")
    };

    let plw = traced(FixpointPlan::ForcePlw);
    let lanes: std::collections::BTreeSet<i32> =
        plw.events.iter().filter(|e| e.kind.is_worker_comm()).map(|e| e.worker).collect();
    assert!(lanes.len() >= 2, "merged P_plw trace must carry worker lanes, got {lanes:?}");
    for e in plw.events.iter().filter(|e| e.kind.is_worker_comm()) {
        assert_eq!(
            e.iteration, 0,
            "P_plw worker lane recorded an exchange during the recursion: {e:?}"
        );
    }

    let gld = traced(FixpointPlan::ForceGld);
    assert!(
        gld.events.iter().any(|e| e.kind.is_worker_comm() && e.iteration > 0),
        "P_gld worker lanes must show exchanges during the recursion"
    );
    cluster.shutdown();
}

/// The core trace signature is backend-independent: the same query at the
/// same trace level yields the same timestamp-free `signature()` on the
/// in-process simulator and on the process cluster. Worker-lane events
/// are excluded from signatures precisely so the two stay comparable.
#[test]
fn sim_and_proc_trace_signatures_agree() {
    let cluster = proc_cluster(4);
    let db = er_db(11);
    let run = |backend: Option<Arc<dyn CommBackend>>| {
        let mut engine = QueryEngine::with_config(
            db.clone(),
            ExecConfig {
                workers: 4,
                plan: FixpointPlan::ForcePlw,
                trace: TraceLevel::Superstep,
                backend,
                ..Default::default()
            },
        );
        let out = engine.run_ucrpq(TC_QUERY).unwrap();
        out.stats.trace.expect("trace recorded").signature()
    };
    let sim = run(None);
    let proc_sig = run(Some(cluster.clone() as Arc<dyn CommBackend>));
    assert!(!sim.is_empty());
    assert_eq!(sim, proc_sig, "sim and proc signatures must agree modulo worker lanes");
    cluster.shutdown();
}

/// Same-seed chaos over the *process* backend is deterministic modulo
/// timestamps: two runs with one seed produce identical timestamp-free
/// `signature()`s of their merged traces, even though worker kills,
/// reconnects and retransmissions make the worker-lane span sets
/// timing-dependent (which is why signatures exclude them).
#[test]
fn same_seed_proc_chaos_traces_have_identical_signatures() {
    let base = chaos_seed();
    let cluster = proc_cluster(3);
    let db = er_db(5);
    let traced = || {
        let mut engine = QueryEngine::with_config(
            db.clone(),
            ExecConfig {
                workers: 3,
                plan: FixpointPlan::ForceGld,
                trace: TraceLevel::Superstep,
                fault: FaultConfig {
                    seed: base,
                    panic_prob: 0.4,
                    drop_prob: 0.4,
                    straggler_prob: 0.2,
                    straggler_delay_ms: 1,
                    failures_per_site: 1,
                    ..Default::default()
                },
                checkpoint_every: 2,
                backend: Some(cluster.clone() as Arc<dyn CommBackend>),
                ..Default::default()
            },
        );
        let out = engine.run_ucrpq(TC_QUERY).unwrap();
        out.stats.trace.expect("trace recorded").signature()
    };
    let a = traced();
    let b = traced();
    assert_eq!(a, b, "same-seed process-mode chaos traces must agree modulo timestamps");
    assert!(!a.is_empty());
    cluster.shutdown();
}

/// Chaos: under a fixed seed the process cluster takes real `SIGKILL`s
/// mid-exchange (between the relay and collect phases, so buffered
/// buckets genuinely die with the worker) and severed control
/// connections — and still returns the exact centralized answer, with
/// reproducible injection counts and recovery recorded in the snapshot.
#[test]
fn seeded_kills_and_connection_drops_recover_exactly() {
    let base = chaos_seed();
    for plan in PLANS {
        let cluster = proc_cluster(4);
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = || ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: base,
                panic_prob: 0.4, // drives KillWorker in process mode
                drop_prob: 0.4,  // drives ConnectionDrop in process mode
                straggler_prob: 0.2,
                straggler_delay_ms: 1,
                failures_per_site: 1,
                ..Default::default()
            },
            checkpoint_every: 2,
            backend: Some(cluster.clone() as Arc<dyn CommBackend>),
            ..Default::default()
        };
        let (r1, f1, _) = run_on(&db, TC_QUERY, config());
        let (r2, f2, _) = run_on(&db, TC_QUERY, config());
        assert_eq!(
            r1.sorted_rows(),
            expected.sorted_rows(),
            "{plan:?}: answer under process chaos diverged from centralized"
        );
        assert_eq!(r2.sorted_rows(), expected.sorted_rows(), "{plan:?}: second run diverged");
        assert_eq!(
            f1.counts(),
            f2.counts(),
            "{plan:?}: process-mode injection counts must be reproducible"
        );
        assert!(
            f1.killed_workers + f1.dropped_connections > 0,
            "{plan:?}: chaos injected no process-mode faults: {f1}"
        );
        if f1.killed_workers > 0 {
            assert!(
                f1.worker_respawns + f2.worker_respawns > 0,
                "{plan:?}: real kills must be answered by respawns: {f1} / {f2}"
            );
        }
        let health = cluster.health_snapshot();
        assert_eq!(health.workers, 4);
        if f1.killed_workers + f2.killed_workers > 0 {
            assert!(health.respawns > 0, "supervisor recorded no respawns: {health:?}");
        }
        cluster.shutdown();
    }
}

/// Chaos: seeded in-flight frame corruption (bit flips caught by the wire
/// CRC-32 trailer) is treated exactly like a dropped connection — the
/// answer stays exact on every plan, corrupted rows are never delivered,
/// and the injection counts are reproducible under a fixed seed.
#[test]
fn seeded_frame_corruption_recovers_exactly() {
    let base = chaos_seed();
    for plan in PLANS {
        let cluster = proc_cluster(4);
        let mut db = er_db(5);
        let expected = centralized(&mut db, TC_QUERY);
        let config = || ExecConfig {
            workers: 4,
            plan,
            fault: FaultConfig {
                seed: base,
                corrupt_frame_prob: 0.4,
                failures_per_site: 1,
                ..Default::default()
            },
            checkpoint_every: 2,
            backend: Some(cluster.clone() as Arc<dyn CommBackend>),
            ..Default::default()
        };
        let (r1, f1, _) = run_on(&db, TC_QUERY, config());
        let (r2, f2, _) = run_on(&db, TC_QUERY, config());
        assert_eq!(
            r1.sorted_rows(),
            expected.sorted_rows(),
            "{plan:?}: answer under frame corruption diverged from centralized"
        );
        assert_eq!(r2.sorted_rows(), expected.sorted_rows(), "{plan:?}: second run diverged");
        assert_eq!(
            f1.counts(),
            f2.counts(),
            "{plan:?}: corruption injection counts must be reproducible"
        );
        assert!(f1.corrupted_frames > 0, "{plan:?}: chaos injected no frame corruption: {f1}");
        cluster.shutdown();
    }
}

/// Supervision: an out-of-band `SIGKILL` of a worker process (no fault
/// plan involved — the test-hook equivalent of `kill -9` from a shell) is
/// detected by the heartbeat supervisor, which respawns the worker; a
/// query issued right after the kill and one after recovery are both
/// exact. A severed connection likewise self-heals without a respawn
/// being required for correctness.
#[test]
fn out_of_band_sigkill_is_detected_respawned_and_queries_stay_exact() {
    let cluster = proc_cluster(3);
    let mut db = er_db(7);
    let expected = centralized(&mut db, TC_QUERY);
    let config = || ExecConfig {
        workers: 3,
        plan: FixpointPlan::ForceGld,
        backend: Some(cluster.clone() as Arc<dyn CommBackend>),
        ..Default::default()
    };

    assert!(cluster.kill_worker_process(1), "worker 1 should be running");
    // Query issued while the worker is dead: the exchange path repairs it.
    let (got, _, _) = run_on(&db, TC_QUERY, config());
    assert_eq!(got.sorted_rows(), expected.sorted_rows(), "query during worker death diverged");

    // The supervisor (or the exchange) must have respawned it.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let h = cluster.health_snapshot();
        if h.respawns >= 1 && h.live == 3 {
            break;
        }
        assert!(Instant::now() < deadline, "supervisor never recovered the killed worker: {h:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Severed connections (worker stays alive) self-heal on next use.
    cluster.sever_connection(0);
    cluster.sever_connection(2);
    let (got, _, _) = run_on(&db, TC_QUERY, config());
    assert_eq!(got.sorted_rows(), expected.sorted_rows(), "query after severed connections");
    assert!(cluster.health_snapshot().reconnects > 0, "reconnects must be counted");
    cluster.shutdown();
}

/// Cancellation propagates over the wire: a query cancelled before its
/// exchanges reach the workers reports `Cancelled` and the cluster stays
/// healthy for the next query (no orphaned state, no wedged workers).
#[test]
fn cancellation_reaps_remote_work_and_cluster_stays_usable() {
    use mura_core::{CancellationToken, MuraError};
    let cluster = proc_cluster(2);
    let db = er_db(7);
    let cancel = CancellationToken::new();
    cancel.cancel();
    let mut engine = QueryEngine::with_config(
        db.clone(),
        ExecConfig {
            workers: 2,
            plan: FixpointPlan::ForceGld,
            cancel: Some(cancel),
            backend: Some(cluster.clone() as Arc<dyn CommBackend>),
            ..Default::default()
        },
    );
    let err = engine.run_ucrpq(TC_QUERY).unwrap_err();
    assert!(matches!(err, MuraError::Cancelled), "expected Cancelled, got {err:?}");

    // The cluster is immediately usable for the next query.
    let mut db2 = er_db(7);
    let expected = centralized(&mut db2, TC_QUERY);
    let (got, _, _) = run_on(
        &db,
        TC_QUERY,
        ExecConfig {
            workers: 2,
            backend: Some(cluster.clone() as Arc<dyn CommBackend>),
            ..Default::default()
        },
    );
    assert_eq!(got.sorted_rows(), expected.sorted_rows(), "query after cancellation diverged");
    cluster.shutdown();
}

/// Shutdown reaps every worker process: after `shutdown()` returns, the
/// children have exited (no orphan processes survive the coordinator).
#[test]
fn shutdown_leaves_no_orphan_workers() {
    let cluster = proc_cluster(2);
    let healthy = cluster.health_snapshot();
    assert_eq!(healthy.live, 2, "workers must be live after spawn: {healthy:?}");
    cluster.shutdown();
    let after = cluster.health_snapshot();
    assert_eq!(after.live, 0, "no worker may be live after shutdown: {after:?}");
}
