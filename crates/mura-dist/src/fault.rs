//! Deterministic fault injection and recovery accounting.
//!
//! The paper's Dist-μ-RA prototype inherits Spark's lineage-based fault
//! tolerance; our from-scratch cluster needs its own failure-handling
//! discipline. This module provides the two halves the executor builds on:
//!
//! * a **fault plan** ([`FaultPlan`]) that deterministically decides, from a
//!   SplitMix64 seed, where to inject worker panics, transient task errors,
//!   exchange message drops/duplications and straggler delays. Decisions are
//!   pure functions of the *site coordinates* (a driver-sequential site id,
//!   the worker index, the superstep and the attempt number), never of
//!   wall-clock time or thread scheduling — so the same seed over the same
//!   query produces the same faults, the same recovery path and the same
//!   [`FaultSnapshot`] counts on every run;
//! * **recovery accounting** ([`FaultStats`]): every retry, checkpoint,
//!   restore, replayed row and lost millisecond is counted, surfaced through
//!   `ExecStats.fault` and the `mura-serve` `.stats` report, so degradation
//!   is observable instead of silent.
//!
//! The recovery machinery itself lives next to the loops it protects:
//! task-level retry with bounded exponential backoff in
//! [`Cluster::par_map`](crate::cluster::Cluster), superstep checkpoint /
//! restore in the `P_gld` driver and `P_plw` worker loops, and whole-fixpoint
//! restart for `P_async` (see `DESIGN.md` §10).

use mura_core::{MuraError, Result};
use mura_datagen::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Fault classes the plan can inject. The discriminant salts the RNG so the
/// classes draw independent decisions at the same site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The task panics (`panic!`), as if the worker process died.
    Panic,
    /// The task fails with a retryable [`MuraError::TransientFault`].
    Transient,
    /// An exchange message is lost and must be retransmitted.
    Drop,
    /// An exchange message is delivered twice (at-least-once delivery).
    Duplicate,
    /// The task is delayed by [`FaultConfig::straggler_delay_ms`].
    Straggler,
    /// The task observes artificial memory pressure and fails retryably
    /// (models a worker that sheds its working set under pressure and must
    /// replay). Distinct from a real `max_bytes` breach, which is a final
    /// [`MuraError::MemoryExceeded`]: injected pressure heals after
    /// [`FaultConfig::failures_per_site`] attempts, a blown budget does not.
    MemoryPressure,
    /// Process-mode reinterpretation of [`FaultClass::Panic`]: the worker
    /// *process* is SIGKILLed mid-exchange (drawn from `panic_prob` under
    /// its own salt, so thread-level and process-level chaos coexist).
    KillWorker,
    /// Process-mode reinterpretation of [`FaultClass::Drop`]: a live
    /// coordinator↔worker connection is severed (drawn from `drop_prob`).
    ConnectionDrop,
    /// Process-mode reinterpretation of [`FaultClass::Straggler`]: socket
    /// I/O to a worker is delayed (drawn from `straggler_prob`).
    SocketDelay,
    /// Process-mode only: a frame on a live worker connection has seeded
    /// bytes flipped in flight. The wire layer's CRC-32 trailer must catch
    /// it (`WireError::BadChecksum`); the receiver closes the connection,
    /// so the supervisor handles corruption exactly like a dropped
    /// connection — corrupted rows are never delivered.
    CorruptFrame,
}

impl FaultClass {
    fn salt(self) -> u64 {
        match self {
            FaultClass::Panic => 0x9E37_79B9_7F4A_7C15,
            FaultClass::Transient => 0xC2B2_AE3D_27D4_EB4F,
            FaultClass::Drop => 0x1656_67B1_9E37_79F9,
            FaultClass::Duplicate => 0x2545_F491_4F6C_DD1D,
            FaultClass::Straggler => 0x9DDF_EA08_EB38_2D69,
            FaultClass::MemoryPressure => 0x6C62_272E_07BB_0142,
            FaultClass::KillWorker => 0xCBF2_9CE4_8422_2325,
            FaultClass::ConnectionDrop => 0x100_0000_01B3_u64,
            FaultClass::SocketDelay => 0x14_650F_B045_6A2D_u64,
            FaultClass::CorruptFrame => 0x27D4_EB2F_1656_67C5,
        }
    }
}

/// Configuration of the deterministic fault-injection layer. All
/// probabilities default to zero: a default config injects nothing and the
/// executor behaves exactly as without fault tolerance.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed of the SplitMix64 decision stream. Equal seeds ⇒ equal faults.
    pub seed: u64,
    /// Probability that a task site hosts an injected panic.
    pub panic_prob: f64,
    /// Probability that a task site hosts an injected transient error.
    pub transient_prob: f64,
    /// Probability that an exchange bucket / routed row is dropped (and
    /// retransmitted by the exchange layer).
    pub drop_prob: f64,
    /// Probability that an exchange bucket / routed row is duplicated.
    pub duplicate_prob: f64,
    /// Probability that a task site is a straggler.
    pub straggler_prob: f64,
    /// Probability that a task site observes injected memory pressure (a
    /// retryable failure; see [`FaultClass::MemoryPressure`]).
    pub memory_pressure_prob: f64,
    /// Probability that a process-mode control frame is corrupted in
    /// flight (seeded byte flips; see [`FaultClass::CorruptFrame`]).
    pub corrupt_frame_prob: f64,
    /// Delay injected at straggler sites.
    pub straggler_delay_ms: u64,
    /// How many consecutive attempts fail at an afflicted site. Values
    /// `≤ max_retries` model transient faults (task retry recovers); larger
    /// values model hard faults that exhaust retries and force a checkpoint
    /// restore or restart.
    pub failures_per_site: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            panic_prob: 0.0,
            transient_prob: 0.0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            straggler_prob: 0.0,
            memory_pressure_prob: 0.0,
            corrupt_frame_prob: 0.0,
            straggler_delay_ms: 2,
            failures_per_site: 1,
        }
    }
}

impl FaultConfig {
    /// A moderate all-class chaos profile (used by `murash --chaos` and the
    /// chaos CI job): every fault class fires with visible frequency on
    /// small workloads, and every failure is recoverable.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            panic_prob: 0.08,
            transient_prob: 0.08,
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            straggler_prob: 0.05,
            // Kept at zero in the legacy chaos profile so the 6-seed chaos
            // CI matrix keeps validating the exact same fault streams;
            // memory-pressure and frame-corruption chaos runs opt in
            // explicitly.
            memory_pressure_prob: 0.0,
            corrupt_frame_prob: 0.0,
            straggler_delay_ms: 1,
            failures_per_site: 1,
        }
    }

    /// True when any fault class has a nonzero probability.
    pub fn is_active(&self) -> bool {
        self.panic_prob > 0.0
            || self.transient_prob > 0.0
            || self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.straggler_prob > 0.0
            || self.memory_pressure_prob > 0.0
            || self.corrupt_frame_prob > 0.0
    }
}

/// How the executor recovers from failed tasks and supersteps.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Task-level retries before a failure escalates to the superstep
    /// supervisor.
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Checkpoint restores / full restarts before the fixpoint gives up and
    /// reports the underlying failure.
    pub max_restores: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_retries: 2, backoff_base_ms: 1, backoff_cap_ms: 50, max_restores: 8 }
    }
}

impl RecoveryPolicy {
    /// Bounded exponential backoff for the given retry ordinal (0-based).
    pub fn backoff(&self, retry: u32) -> Duration {
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(self.backoff_cap_ms.max(self.backoff_base_ms));
        Duration::from_millis(ms)
    }
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Injected faults, by class.
    pub injected_panics: u64,
    pub injected_transients: u64,
    pub injected_drops: u64,
    pub injected_duplicates: u64,
    pub injected_stragglers: u64,
    pub injected_memory_pressure: u64,
    /// Task attempts that failed and were retried (with backoff).
    pub task_retries: u64,
    /// Whole stages re-executed at a fresh site after a task exhausted its
    /// retries (lineage recomputation for non-fixpoint stages).
    pub stage_reruns: u64,
    /// Superstep checkpoints taken.
    pub checkpoints: u64,
    /// Fixpoints rolled back to a checkpoint after retries were exhausted.
    pub checkpoint_restores: u64,
    /// Fixpoints restarted from their seed (no checkpoint available).
    pub full_restarts: u64,
    /// Rows reloaded from checkpoints / seeds during recovery.
    pub rows_replayed: u64,
    /// Fixpoint iterations re-executed after restores.
    pub iterations_replayed: u64,
    /// Process-mode injections: worker processes SIGKILLed mid-exchange.
    pub killed_workers: u64,
    /// Process-mode injections: live worker connections severed.
    pub dropped_connections: u64,
    /// Process-mode injections: socket operations artificially delayed.
    pub delayed_sockets: u64,
    /// Process-mode injections: frames corrupted in flight (caught by the
    /// wire CRC, handled as dropped connections).
    pub corrupted_frames: u64,
    /// Worker processes respawned after (injected or genuine) death.
    pub worker_respawns: u64,
    /// Worker connections re-established after a drop.
    pub reconnects: u64,
    /// Wall-clock spent in failed attempts and backoff sleeps. Excluded
    /// from [`FaultSnapshot::counts`]: time is not deterministic.
    pub time_lost_ms: u64,
}

impl FaultSnapshot {
    /// Total injected faults across all classes.
    pub fn injected(&self) -> u64 {
        self.injected_panics
            + self.injected_transients
            + self.injected_drops
            + self.injected_duplicates
            + self.injected_stragglers
            + self.injected_memory_pressure
            + self.killed_workers
            + self.dropped_connections
            + self.delayed_sockets
            + self.corrupted_frames
    }

    /// True when the query hit at least one fault but still completed —
    /// i.e. the answer is correct but the execution was degraded.
    pub fn recovered(&self) -> bool {
        self.task_retries > 0
            || self.stage_reruns > 0
            || self.checkpoint_restores > 0
            || self.full_restarts > 0
            || self.worker_respawns > 0
            || self.reconnects > 0
    }

    /// The deterministic projection: every counter except wall-clock time
    /// and the repair counters (`worker_respawns` / `reconnects`, whose
    /// values depend on which of the supervisor heartbeat and the exchange
    /// path *detects* a death first — the injections themselves stay
    /// deterministic). Two runs of the same query under the same
    /// [`FaultConfig`] seed must compare equal under this projection.
    pub fn counts(&self) -> FaultSnapshot {
        FaultSnapshot { time_lost_ms: 0, worker_respawns: 0, reconnects: 0, ..*self }
    }
}

impl std::fmt::Display for FaultSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} (panic {} / transient {} / drop {} / dup {} / straggler {} / mem {} / \
             kill {} / conn-drop {} / sock-delay {} / corrupt {}), \
             retries {}, stage reruns {}, checkpoints {}, restores {}, restarts {}, \
             respawns {}, reconnects {}, \
             rows replayed {}, iterations replayed {}, time lost {} ms",
            self.injected(),
            self.injected_panics,
            self.injected_transients,
            self.injected_drops,
            self.injected_duplicates,
            self.injected_stragglers,
            self.injected_memory_pressure,
            self.killed_workers,
            self.dropped_connections,
            self.delayed_sockets,
            self.corrupted_frames,
            self.task_retries,
            self.stage_reruns,
            self.checkpoints,
            self.checkpoint_restores,
            self.full_restarts,
            self.worker_respawns,
            self.reconnects,
            self.rows_replayed,
            self.iterations_replayed,
            self.time_lost_ms
        )
    }
}

/// Thread-safe fault/recovery counters (one set per [`FaultPlan`]).
#[derive(Debug, Default)]
pub struct FaultStats {
    injected_panics: AtomicU64,
    injected_transients: AtomicU64,
    injected_drops: AtomicU64,
    injected_duplicates: AtomicU64,
    injected_stragglers: AtomicU64,
    injected_memory_pressure: AtomicU64,
    task_retries: AtomicU64,
    stage_reruns: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_restores: AtomicU64,
    full_restarts: AtomicU64,
    rows_replayed: AtomicU64,
    iterations_replayed: AtomicU64,
    killed_workers: AtomicU64,
    dropped_connections: AtomicU64,
    delayed_sockets: AtomicU64,
    corrupted_frames: AtomicU64,
    worker_respawns: AtomicU64,
    reconnects: AtomicU64,
    time_lost_us: AtomicU64,
}

/// The deterministic fault-injection layer consulted by the cluster and the
/// fixpoint loops. One plan is created per [`DistEvaluator`]
/// (crate::exec::DistEvaluator) from `ExecConfig.fault` and shared (via
/// `Arc`) with the cluster it drives.
///
/// **Determinism.** Site ids come from a driver-sequential counter
/// ([`FaultPlan::next_site`]); every injection decision seeds a fresh
/// [`SplitMix64`] from `(seed, class, site, worker, step)` and compares one
/// draw against the class probability. The attempt number only gates the
/// decision against [`FaultConfig::failures_per_site`] — an afflicted site
/// fails exactly that many attempts, then heals — so retry loops terminate
/// deterministically.
#[derive(Debug, Default)]
pub struct FaultPlan {
    cfg: FaultConfig,
    next_site: AtomicU64,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan over the given configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan { cfg, ..Default::default() }
    }

    /// A plan that injects nothing (all counters still work).
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default())
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Allocates the next site id. Called from driver-sequential code only
    /// (the cluster's `par_map` entry, exchange setup, fixpoint setup), so
    /// the id sequence is identical across runs.
    pub fn next_site(&self) -> u64 {
        self.next_site.fetch_add(1, Ordering::Relaxed)
    }

    /// The deterministic Bernoulli draw at a site coordinate.
    fn roll(&self, class: FaultClass, site: u64, worker: u64, step: u64, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        // Fold the coordinates into one 64-bit key (distinct odd multipliers
        // keep the coordinates from aliasing), then draw one SplitMix64
        // value seeded by it.
        let key = self
            .cfg
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(class.salt())
            .wrapping_add(site.wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add(worker.wrapping_mul(0x8EBC_6AF0_9C88_C6E3))
            .wrapping_add(step.wrapping_mul(0x5897_89E6_C7B3_F71D));
        SplitMix64::seed_from_u64(key).gen_f64() < prob
    }

    /// Whether a fault of `class` fires at `(site, worker, step)` on this
    /// `attempt`. Afflicted sites fail their first
    /// [`FaultConfig::failures_per_site`] attempts, then heal.
    fn fires(&self, class: FaultClass, site: u64, worker: u64, step: u64, attempt: u32) -> bool {
        if attempt >= self.cfg.failures_per_site {
            return false;
        }
        let prob = match class {
            FaultClass::Panic | FaultClass::KillWorker => self.cfg.panic_prob,
            FaultClass::Transient => self.cfg.transient_prob,
            FaultClass::Drop | FaultClass::ConnectionDrop => self.cfg.drop_prob,
            FaultClass::Duplicate => self.cfg.duplicate_prob,
            FaultClass::Straggler | FaultClass::SocketDelay => self.cfg.straggler_prob,
            FaultClass::MemoryPressure => self.cfg.memory_pressure_prob,
            FaultClass::CorruptFrame => self.cfg.corrupt_frame_prob,
        };
        self.roll(class, site, worker, step, prob)
    }

    /// Panics (really) if the plan injects a worker panic here. The caller
    /// runs inside `catch_unwind`, so the panic models a dying worker that
    /// the supervisor observes as [`MuraError::WorkerFailed`].
    pub fn maybe_panic(&self, site: u64, worker: usize, step: u64, attempt: u32) {
        if self.fires(FaultClass::Panic, site, worker as u64, step, attempt) {
            self.stats.injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!(
                "injected worker panic (fault seed {}, site {site}, worker {worker}, step {step})",
                self.cfg.seed
            );
        }
    }

    /// Fails with a retryable [`MuraError::TransientFault`] if the plan
    /// injects a transient task error here.
    pub fn maybe_transient(&self, site: u64, worker: usize, step: u64, attempt: u32) -> Result<()> {
        if self.fires(FaultClass::Transient, site, worker as u64, step, attempt) {
            self.stats.injected_transients.fetch_add(1, Ordering::Relaxed);
            return Err(MuraError::TransientFault { worker });
        }
        Ok(())
    }

    /// Fails with a retryable [`MuraError::TransientFault`] if the plan
    /// injects memory pressure here. The afflicted site heals after
    /// [`FaultConfig::failures_per_site`] attempts, so recovery (retry,
    /// checkpoint restore or restart) always makes progress and same-seed
    /// runs produce identical answers and counts.
    pub fn maybe_memory_pressure(
        &self,
        site: u64,
        worker: usize,
        step: u64,
        attempt: u32,
    ) -> Result<()> {
        if self.fires(FaultClass::MemoryPressure, site, worker as u64, step, attempt) {
            self.stats.injected_memory_pressure.fetch_add(1, Ordering::Relaxed);
            return Err(MuraError::TransientFault { worker });
        }
        Ok(())
    }

    /// The straggler delay to impose here, if any. Only the first attempt
    /// of a site straggles — retries of a slow task are not slowed again.
    pub fn straggler_delay(
        &self,
        site: u64,
        worker: usize,
        step: u64,
        attempt: u32,
    ) -> Option<Duration> {
        if attempt == 0
            && self.cfg.failures_per_site > 0
            && self.roll(FaultClass::Straggler, site, worker as u64, step, self.cfg.straggler_prob)
        {
            self.stats.injected_stragglers.fetch_add(1, Ordering::Relaxed);
            return Some(Duration::from_millis(self.cfg.straggler_delay_ms));
        }
        None
    }

    /// Whether the exchange bucket `from → to` at `site` is dropped. The
    /// exchange layer counts the drop and retransmits (at-least-once
    /// delivery), so no data is lost — only time and traffic.
    pub fn drop_exchange(&self, site: u64, from: usize, to: usize) -> bool {
        let fired = self.roll(FaultClass::Drop, site, from as u64, to as u64, self.cfg.drop_prob);
        if fired {
            self.stats.injected_drops.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Whether the exchange bucket `from → to` at `site` is delivered twice.
    /// Receivers deduplicate (relations are sets), so duplication must not
    /// change any result.
    pub fn duplicate_exchange(&self, site: u64, from: usize, to: usize) -> bool {
        let fired =
            self.roll(FaultClass::Duplicate, site, from as u64, to as u64, self.cfg.duplicate_prob);
        if fired {
            self.stats.injected_duplicates.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Process-mode: whether worker `worker`'s process is SIGKILLed during
    /// the exchange at `site` on this `attempt`. Drawn from `panic_prob`
    /// under its own salt — the process-mode reinterpretation of a worker
    /// panic. Afflicted (site, worker) pairs heal after
    /// [`FaultConfig::failures_per_site`] attempts, so the exchange's
    /// respawn-and-retry loop terminates deterministically.
    pub fn kill_worker(&self, site: u64, worker: usize, attempt: u32) -> bool {
        let fired = self.fires(FaultClass::KillWorker, site, worker as u64, 0, attempt);
        if fired {
            self.stats.killed_workers.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Process-mode: whether the live connection to `worker` is severed at
    /// `site` on this `attempt` (drawn from `drop_prob`). The worker stays
    /// alive; the coordinator must reconnect with backoff.
    pub fn drop_connection(&self, site: u64, worker: usize, attempt: u32) -> bool {
        let fired = self.fires(FaultClass::ConnectionDrop, site, worker as u64, 0, attempt);
        if fired {
            self.stats.dropped_connections.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }

    /// Process-mode: the artificial socket delay to impose before talking
    /// to `worker` at `site`, if any (drawn from `straggler_prob`). Only
    /// the first attempt is delayed, mirroring [`FaultPlan::straggler_delay`].
    pub fn delay_socket(&self, site: u64, worker: usize, attempt: u32) -> Option<Duration> {
        if attempt == 0
            && self.cfg.failures_per_site > 0
            && self.roll(FaultClass::SocketDelay, site, worker as u64, 0, self.cfg.straggler_prob)
        {
            self.stats.delayed_sockets.fetch_add(1, Ordering::Relaxed);
            return Some(Duration::from_millis(self.cfg.straggler_delay_ms));
        }
        None
    }

    /// Process-mode: whether the next frame to `worker` at `site` is
    /// corrupted in flight on this `attempt` (drawn from
    /// `corrupt_frame_prob` under its own salt). Afflicted sites heal after
    /// [`FaultConfig::failures_per_site`] attempts, so the exchange retry
    /// loop terminates deterministically. Returns the entropy that seeds
    /// which byte/bit to flip, keeping the damage itself reproducible.
    pub fn corrupt_frame(&self, site: u64, worker: usize, attempt: u32) -> Option<u64> {
        if !self.fires(FaultClass::CorruptFrame, site, worker as u64, 0, attempt) {
            return None;
        }
        self.stats.corrupted_frames.fetch_add(1, Ordering::Relaxed);
        let entropy = self
            .cfg
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(FaultClass::CorruptFrame.salt())
            .wrapping_add(site.wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add((worker as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        Some(SplitMix64::seed_from_u64(entropy).next_u64())
    }

    /// Records one worker-process respawn (after injected or genuine death).
    pub fn record_worker_respawn(&self) {
        self.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one re-established worker connection.
    pub fn record_reconnect(&self) {
        self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Row-level drop decision for the asynchronous plan, keyed on the row's
    /// content hash: async batch boundaries are timing-dependent, row
    /// contents are not, so this keeps `P_async` fault injection
    /// deterministic. Pure — records nothing; callers accumulate counts
    /// locally and flush them with [`FaultPlan::record_drops`] only when the
    /// attempt succeeds (counts recorded during an attempt that later aborts
    /// would depend on how far each worker got before noticing the abort).
    pub fn would_drop_row(&self, row_hash: u64) -> bool {
        self.roll(FaultClass::Drop, row_hash, 0, 0, self.cfg.drop_prob)
    }

    /// Row-level duplication decision for the asynchronous plan (pure, see
    /// [`FaultPlan::would_drop_row`]).
    pub fn would_duplicate_row(&self, row_hash: u64) -> bool {
        self.roll(FaultClass::Duplicate, row_hash, 0, 0, self.cfg.duplicate_prob)
    }

    /// Records `n` row-level drops from a successful async attempt.
    pub fn record_drops(&self, n: u64) {
        self.stats.injected_drops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` row-level duplications from a successful async attempt.
    pub fn record_duplicates(&self, n: u64) {
        self.stats.injected_duplicates.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one task retry.
    pub fn record_retry(&self) {
        self.stats.task_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stage re-execution (lineage recomputation).
    pub fn record_stage_rerun(&self) {
        self.stats.stage_reruns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one superstep checkpoint.
    pub fn record_checkpoint(&self) {
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rollback to a checkpoint: `rows` reloaded, `iterations`
    /// that must be re-executed.
    pub fn record_restore(&self, rows: u64, iterations: u64) {
        self.stats.checkpoint_restores.fetch_add(1, Ordering::Relaxed);
        self.stats.rows_replayed.fetch_add(rows, Ordering::Relaxed);
        self.stats.iterations_replayed.fetch_add(iterations, Ordering::Relaxed);
    }

    /// Records a restart from the fixpoint seed (no checkpoint existed).
    pub fn record_full_restart(&self, rows: u64) {
        self.stats.full_restarts.fetch_add(1, Ordering::Relaxed);
        self.stats.rows_replayed.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records wall-clock lost to a failed attempt or a backoff sleep.
    pub fn record_time_lost(&self, d: Duration) {
        self.stats.time_lost_us.fetch_add(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Point-in-time copy of the counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        let s = &self.stats;
        FaultSnapshot {
            injected_panics: s.injected_panics.load(Ordering::Relaxed),
            injected_transients: s.injected_transients.load(Ordering::Relaxed),
            injected_drops: s.injected_drops.load(Ordering::Relaxed),
            injected_duplicates: s.injected_duplicates.load(Ordering::Relaxed),
            injected_stragglers: s.injected_stragglers.load(Ordering::Relaxed),
            injected_memory_pressure: s.injected_memory_pressure.load(Ordering::Relaxed),
            task_retries: s.task_retries.load(Ordering::Relaxed),
            stage_reruns: s.stage_reruns.load(Ordering::Relaxed),
            checkpoints: s.checkpoints.load(Ordering::Relaxed),
            checkpoint_restores: s.checkpoint_restores.load(Ordering::Relaxed),
            full_restarts: s.full_restarts.load(Ordering::Relaxed),
            rows_replayed: s.rows_replayed.load(Ordering::Relaxed),
            iterations_replayed: s.iterations_replayed.load(Ordering::Relaxed),
            killed_workers: s.killed_workers.load(Ordering::Relaxed),
            dropped_connections: s.dropped_connections.load(Ordering::Relaxed),
            delayed_sockets: s.delayed_sockets.load(Ordering::Relaxed),
            corrupted_frames: s.corrupted_frames.load(Ordering::Relaxed),
            worker_respawns: s.worker_respawns.load(Ordering::Relaxed),
            reconnects: s.reconnects.load(Ordering::Relaxed),
            time_lost_ms: s.time_lost_us.load(Ordering::Relaxed) / 1_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        for site in 0..200 {
            for w in 0..4usize {
                assert!(p.maybe_transient(site, w, 0, 0).is_ok());
                assert!(p.straggler_delay(site, w, 0, 0).is_none());
                assert!(!p.drop_exchange(site, w, (w + 1) % 4));
                assert!(!p.duplicate_exchange(site, w, (w + 1) % 4));
                p.maybe_panic(site, w, 0, 0); // must not panic
            }
        }
        assert_eq!(p.snapshot(), FaultSnapshot::default());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let cfg = FaultConfig { transient_prob: 0.3, seed: 9, ..Default::default() };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        let da: Vec<bool> =
            (0..500).map(|s| a.maybe_transient(s, (s % 4) as usize, 0, 0).is_err()).collect();
        let db: Vec<bool> =
            (0..500).map(|s| b.maybe_transient(s, (s % 4) as usize, 0, 0).is_err()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&x| x), "probability 0.3 over 500 sites must fire");
        assert!(!da.iter().all(|&x| x));
        let c = FaultPlan::new(FaultConfig { seed: 10, ..cfg });
        let dc: Vec<bool> =
            (0..500).map(|s| c.maybe_transient(s, (s % 4) as usize, 0, 0).is_err()).collect();
        assert_ne!(da, dc, "different seeds must differ somewhere");
    }

    #[test]
    fn afflicted_sites_heal_after_failures_per_site() {
        let cfg = FaultConfig { transient_prob: 1.0, failures_per_site: 3, ..Default::default() };
        let p = FaultPlan::new(cfg);
        for attempt in 0..3 {
            assert!(p.maybe_transient(7, 1, 0, attempt).is_err(), "attempt {attempt}");
        }
        assert!(p.maybe_transient(7, 1, 0, 3).is_ok(), "site must heal after 3 failures");
        assert_eq!(p.snapshot().injected_transients, 3);
    }

    #[test]
    fn injected_panic_is_a_real_panic() {
        let cfg = FaultConfig { panic_prob: 1.0, ..Default::default() };
        let p = FaultPlan::new(cfg);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.maybe_panic(0, 0, 0, 0);
        }));
        assert!(caught.is_err());
        assert_eq!(p.snapshot().injected_panics, 1);
    }

    #[test]
    fn backoff_is_bounded() {
        let r = RecoveryPolicy { backoff_base_ms: 2, backoff_cap_ms: 16, ..Default::default() };
        assert_eq!(r.backoff(0), Duration::from_millis(2));
        assert_eq!(r.backoff(1), Duration::from_millis(4));
        assert_eq!(r.backoff(10), Duration::from_millis(16));
    }

    #[test]
    fn snapshot_counts_projection_drops_time() {
        let p = FaultPlan::disabled();
        p.record_time_lost(Duration::from_millis(12));
        p.record_retry();
        let s = p.snapshot();
        assert_eq!(s.time_lost_ms, 12);
        assert_eq!(s.counts().time_lost_ms, 0);
        assert_eq!(s.counts().task_retries, 1);
        assert!(s.recovered());
    }

    #[test]
    fn process_mode_decisions_deterministic_and_healing() {
        let cfg = FaultConfig { panic_prob: 0.5, drop_prob: 0.5, seed: 11, ..Default::default() };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        let ka: Vec<bool> = (0..200).map(|s| a.kill_worker(s, (s % 3) as usize, 0)).collect();
        let kb: Vec<bool> = (0..200).map(|s| b.kill_worker(s, (s % 3) as usize, 0)).collect();
        assert_eq!(ka, kb);
        assert!(ka.iter().any(|&x| x) && !ka.iter().all(|&x| x));
        // Independent streams: kills and connection drops differ somewhere.
        let da: Vec<bool> = (0..200).map(|s| a.drop_connection(s, (s % 3) as usize, 0)).collect();
        assert_ne!(ka, da);
        // Afflicted sites heal after failures_per_site attempts.
        let site = (0..200).find(|&s| ka[s as usize]).unwrap();
        assert!(!b.kill_worker(site, (site % 3) as usize, 1), "attempt 1 must heal");
        let snap = a.snapshot();
        assert_eq!(snap.killed_workers, ka.iter().filter(|&&x| x).count() as u64);
        assert!(snap.injected() >= snap.killed_workers + snap.dropped_connections);
    }

    #[test]
    fn repair_counters_excluded_from_deterministic_projection() {
        let p = FaultPlan::disabled();
        p.record_worker_respawn();
        p.record_reconnect();
        let s = p.snapshot();
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.reconnects, 1);
        assert!(s.recovered());
        assert_eq!(s.counts().worker_respawns, 0);
        assert_eq!(s.counts().reconnects, 0);
    }

    #[test]
    fn chaos_profile_is_active() {
        assert!(FaultConfig::chaos(1).is_active());
        assert!(!FaultConfig::default().is_active());
    }
}
