//! Distributed evaluation of μ-RA terms: physical plan selection and the
//! `P_gld` / `P_plw` fixpoint plans (paper §IV).
//!
//! Non-recursive operators map to partitioned dataset operations (the role
//! Spark's Dataset API plays in the paper). For every fixpoint the
//! `PhysicalPlanGenerator` logic applies (§IV-B c): *if the fixpoint has a
//! stable column, repartition the constant part by it and run `P_plw`
//! (parallel local loops, no communication during recursion, no final
//! distinct); otherwise run `P_gld` (global driver loop, one shuffle per
//! iteration).*

use crate::cluster::{Cluster, CommBackend};
use crate::distrel::DistRel;
use crate::fault::{FaultConfig, FaultPlan, FaultSnapshot, RecoveryPolicy};
use crate::localfix::{
    eval_branch, local_fixpoint_supervised, prepare, Budget, LocalEngine, LocalRel, LoopCtx,
    Prepared,
};
use crate::metrics::CommSnapshot;
use crate::sorted::SortedRelation;
use crate::wire::TraceCtx;
use mura_core::analysis::{check_fcond, decompose_fixpoint, stable_columns, TypeEnv};
use mura_core::fxhash::FxHashMap;
use mura_core::kernel::kernel_stats;
use mura_core::{
    CancellationToken, Database, KernelSnapshot, MuraError, Relation, Result, Schema, Sym, Term,
};
use mura_obs::trace::{
    EventKind, PlanKind, QueryTrace, RecoveryKind, TraceEvent, TraceLevel, TraceSink,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fixpoint plan selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixpointPlan {
    /// The paper's policy: `P_plw` when a stable column exists, else
    /// `P_gld`.
    #[default]
    Auto,
    /// Always use the global driver loop (the paper's "Dist-μ-RA with
    /// P_gld" configuration of Fig. 9).
    ForceGld,
    /// Always use parallel local loops (without a stable column this adds
    /// a final global distinct, per Proposition 3).
    ForcePlw,
    /// Asynchronous evaluation (Myria's async mode, §VI): workers exchange
    /// deltas through channels with no global barriers. See
    /// [`crate::asyncfix`].
    ForceAsync,
}

/// Row/byte/time budgets; exceeding them aborts with
/// [`MuraError::ResourceExhausted`] / [`MuraError::MemoryExceeded`] /
/// [`MuraError::Timeout`] — how the paper's "system crashed" and "timeout"
/// outcomes are reproduced honestly.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceLimits {
    pub max_rows: Option<u64>,
    /// Estimated-byte budget for materialized state (deltas, accumulators,
    /// cached join indexes and folded constants). Enforced in all three
    /// fixpoint drivers; a breach yields [`MuraError::MemoryExceeded`]
    /// instead of letting the query run the process out of memory.
    pub max_bytes: Option<u64>,
    pub timeout: Option<Duration>,
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of workers (the paper's cluster has 4).
    pub workers: usize,
    /// Fixpoint plan policy.
    pub plan: FixpointPlan,
    /// Local engine for `P_plw` loops.
    pub local_engine: LocalEngine,
    /// Relations up to this many rows are broadcast instead of shuffled.
    pub broadcast_threshold: usize,
    /// Budgets.
    pub limits: ResourceLimits,
    /// Cooperative cancellation / per-request deadline, checked at every
    /// fixpoint superstep and inside every recovery/retry loop.
    pub cancel: Option<CancellationToken>,
    /// Deterministic fault injection (all probabilities zero by default:
    /// nothing is injected and the fast path is taken everywhere).
    pub fault: FaultConfig,
    /// Task retry / checkpoint restore policy.
    pub recovery: RecoveryPolicy,
    /// Checkpoint fixpoint state every this many supersteps (`0` = off).
    /// Checkpoints are cheap (`Relation` is copy-on-write) but not free, so
    /// the fault-free default leaves them off.
    pub checkpoint_every: u64,
    /// Per-query trace level. At [`TraceLevel::Off`] (the default) no sink
    /// exists and the fixpoint hot loops pay only a `None` check.
    pub trace: TraceLevel,
    /// Serving-layer job id propagated in the wire trace context (0 when
    /// the query runs outside the server).
    pub query_id: u64,
    /// Capture every fixpoint's final total into
    /// [`ExecStats::fix_totals`], keyed by the structural
    /// [`mura_core::term_key`] of its `Fix` subterm. The serving layer
    /// enables this for cacheable queries so incremental view maintenance
    /// can later resume the semi-naive loop from the captured total
    /// instead of recomputing from the seed. The captured copy is charged
    /// against the byte budget.
    pub capture_fixpoints: bool,
    /// Resume state per fixpoint (same keying as `capture_fixpoints`).
    /// When a `Fix` subterm's key is present, the driver starts its
    /// semi-naive loop from `acc ∪ seed ∪ delta` with frontier
    /// `delta ∪ (seed \ acc)` instead of from the seed — the incremental
    /// maintenance path after a database delta.
    pub resume: Option<Arc<FxHashMap<u64, FixResume>>>,
    /// Communication backend override. `None` (the default) uses the
    /// in-process simulator; `Some` plugs in e.g. a
    /// [`crate::proc::ProcCluster`] so exchanges and broadcasts cross real
    /// sockets. The worker count must match [`ExecConfig::workers`].
    pub backend: Option<Arc<dyn CommBackend>>,
}

/// Resumable fixpoint state for incremental view maintenance (see
/// [`ExecConfig::resume`]): `acc` is the maintained total (survivors after
/// delete-rederive over-deletion, or the prior total for insert-only
/// deltas) and `delta` is the maintenance frontier — the one-step
/// derivations a database delta introduced, from which the ordinary
/// semi-naive loop continues. Invariant: `delta ⊆ acc` is **not** required
/// here; the driver unions the frontier into the accumulator itself.
#[derive(Debug, Clone)]
pub struct FixResume {
    /// Starting accumulator.
    pub acc: Relation,
    /// Starting frontier.
    pub delta: Relation,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 4,
            plan: FixpointPlan::Auto,
            local_engine: LocalEngine::SetRdd,
            broadcast_threshold: 1_000_000,
            limits: ResourceLimits::default(),
            cancel: None,
            fault: FaultConfig::default(),
            recovery: RecoveryPolicy::default(),
            checkpoint_every: 0,
            trace: TraceLevel::Off,
            query_id: 0,
            capture_fixpoints: false,
            resume: None,
            backend: None,
        }
    }
}

/// Counters reported after a distributed evaluation.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Fixpoint iterations across all fixpoints.
    pub fixpoint_iterations: u64,
    /// Fixpoints executed with `P_plw`.
    pub plw_fixpoints: u64,
    /// Fixpoints executed with `P_gld`.
    pub gld_fixpoints: u64,
    /// Total rows materialized (budget meter).
    pub produced_rows: u64,
    /// Kernel-level counters (index builds, probes, folds, per-iteration
    /// timings) accumulated during this evaluation. Note: the underlying
    /// counters are process-wide, so concurrent evaluations overlap.
    pub kernel: KernelSnapshot,
    /// Fault-injection and recovery counters for this evaluation. All-zero
    /// on a clean run; [`FaultSnapshot::recovered`] marks a degraded (but
    /// correct) execution.
    pub fault: FaultSnapshot,
    /// Per-query trace, recorded when [`ExecConfig::trace`] is above
    /// [`TraceLevel::Off`]. Present even when evaluation failed, so partial
    /// timelines of aborted queries can be inspected.
    pub trace: Option<QueryTrace>,
    /// Final totals of every fixpoint evaluated with
    /// [`ExecConfig::capture_fixpoints`] set, keyed by the structural
    /// [`mura_core::term_key`] of the `Fix` subterm. `None` when capture
    /// was off.
    pub fix_totals: Option<FxHashMap<u64, Relation>>,
}

/// A value during distributed evaluation: partitioned, or replicated to
/// every worker (a Spark broadcast variable).
#[derive(Clone)]
enum DVal {
    Dist(DistRel),
    Repl(Arc<Relation>),
}

impl DVal {
    fn schema(&self) -> &Schema {
        match self {
            DVal::Dist(d) => d.schema(),
            DVal::Repl(r) => r.schema(),
        }
    }

    fn len(&self) -> usize {
        match self {
            DVal::Dist(d) => d.len(),
            DVal::Repl(r) => r.len(),
        }
    }

    fn into_dist(self, cluster: &Cluster) -> DistRel {
        match self {
            DVal::Dist(d) => d,
            // Materializing a replicated value into partitions drops the
            // extra copies — a local operation, no communication.
            DVal::Repl(r) => DistRel::from_relation(&r, cluster),
        }
    }
}

/// Distributed evaluator for μ-RA terms.
pub struct DistEvaluator<'db> {
    db: &'db Database,
    cluster: Cluster,
    config: ExecConfig,
    stats: ExecStats,
    budget: Budget,
    bound: FxHashMap<Sym, DVal>,
    /// Fresh symbols for hoisted loop invariants (must not collide with
    /// dictionary symbols; the dictionary cannot grow during evaluation).
    next_fresh: u32,
    /// Kernel counters at construction time; `stats.kernel` reports the
    /// delta accumulated by this evaluator.
    kernel_base: KernelSnapshot,
    /// Event recorder, present when [`ExecConfig::trace`] is above `Off`.
    sink: Option<Arc<TraceSink>>,
}

/// Counter baselines captured at the start of a traced window.
struct Probe {
    comm: CommSnapshot,
    kernel: KernelSnapshot,
    faults: u64,
    t_us: u64,
}

impl<'db> DistEvaluator<'db> {
    /// New evaluator over a database with the given configuration.
    pub fn new(db: &'db Database, config: ExecConfig) -> Self {
        let fault = Arc::new(FaultPlan::new(config.fault));
        let mut cluster = Cluster::new(config.workers)
            .with_faults(fault, config.recovery)
            .with_cancel(config.cancel.clone());
        if let Some(backend) = &config.backend {
            cluster = cluster.with_backend(Arc::clone(backend));
        }
        let deadline = config.limits.timeout.map(|t| Instant::now() + t);
        let budget = Budget::new(config.limits.max_rows, deadline)
            .with_max_bytes(config.limits.max_bytes)
            .with_cancel(config.cancel.clone());
        let next_fresh = db.dict().len() as u32 + 1_000_000;
        let sink = (config.trace > TraceLevel::Off).then(|| Arc::new(TraceSink::new(config.trace)));
        if let Some(s) = &sink {
            // Publish the query's wire trace context up front so even
            // pre-fixpoint exchanges (e.g. a distinct) carry it.
            cluster.set_trace_ctx(TraceCtx {
                trace_id: s.trace_id(),
                query_id: config.query_id,
                fixpoint: 0,
                superstep: 0,
                level: config.trace as u8,
            });
        }
        DistEvaluator {
            db,
            cluster,
            config,
            stats: ExecStats::default(),
            budget,
            bound: FxHashMap::default(),
            next_fresh,
            kernel_base: kernel_stats().snapshot(),
            sink,
        }
    }

    /// The underlying cluster (for communication metrics).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Execution counters.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Evaluates a closed term and collects the result on the driver.
    pub fn eval_collect(&mut self, term: &Term) -> Result<Relation> {
        check_fcond(term)?;
        let v = self.eval(term);
        self.stats.kernel = kernel_stats().snapshot().since(&self.kernel_base);
        self.stats.fault = self.cluster.fault().snapshot();
        // Attach the trace before the `?` so aborted queries keep theirs
        // (including whatever worker-side spans made it back so far).
        self.flush_worker_trace();
        self.stats.trace = self.sink.as_ref().map(|s| s.finish());
        let out = match v? {
            DVal::Dist(d) => d.distinct(&self.cluster)?.collect(),
            DVal::Repl(r) => (*r).clone(),
        };
        self.stats.fault = self.cluster.fault().snapshot();
        self.flush_worker_trace();
        self.stats.trace = self.sink.as_ref().map(|s| s.finish());
        Ok(out)
    }

    fn fresh(&mut self, _hint: &str) -> Sym {
        self.next_fresh += 1;
        Sym(self.next_fresh)
    }

    fn type_env(&self) -> TypeEnv {
        let mut env = TypeEnv::from_db(self.db);
        for (v, val) in &self.bound {
            env.bind(*v, val.schema().clone());
        }
        env
    }

    fn charge(&mut self, rows: usize, arity: usize) -> Result<()> {
        self.stats.produced_rows += rows as u64;
        self.budget.charge(rows as u64)?;
        self.budget.charge_bytes(mura_core::rel_bytes(rows as u64, arity))
    }

    fn eval(&mut self, term: &Term) -> Result<DVal> {
        let out = match term {
            Term::Var(v) => {
                if let Some(val) = self.bound.get(v) {
                    val.clone()
                } else if let Some(rel) = self.db.relation(*v) {
                    DVal::Dist(DistRel::from_relation(rel, &self.cluster))
                } else {
                    return Err(MuraError::UnboundVariable(*v));
                }
            }
            Term::Cst(r) => {
                if r.len() <= self.config.broadcast_threshold {
                    // Driver-side constant shipped to every worker.
                    self.cluster.broadcast_rel(r)?;
                    DVal::Repl(r.clone())
                } else {
                    DVal::Dist(DistRel::from_relation(r, &self.cluster))
                }
            }
            Term::Filter(preds, t) => match self.eval(t)? {
                DVal::Dist(d) => DVal::Dist(d.filter_preds(preds, &self.cluster)?),
                DVal::Repl(r) => DVal::Repl(Arc::new(mura_core::eval::apply_filter(&r, preds)?)),
            },
            Term::Rename(from, to, t) => {
                let child = self.eval(t)?;
                self.check_rename(child.schema(), *from, *to)?;
                match child {
                    DVal::Dist(d) => DVal::Dist(d.rename(*from, *to, &self.cluster)?),
                    DVal::Repl(r) => DVal::Repl(Arc::new(r.rename(*from, *to))),
                }
            }
            Term::AntiProject(cols, t) => {
                let child = self.eval(t)?;
                for c in cols {
                    if !child.schema().contains(*c) {
                        return Err(MuraError::UnknownColumn {
                            column: *c,
                            schema: child.schema().clone(),
                            context: "antiprojection",
                        });
                    }
                }
                match child {
                    DVal::Dist(d) => {
                        // Dropping columns can create duplicates across
                        // partitions; dedup before further use.
                        DVal::Dist(d.antiproject(cols, &self.cluster)?.distinct(&self.cluster)?)
                    }
                    DVal::Repl(r) => DVal::Repl(Arc::new(r.antiproject(cols))),
                }
            }
            Term::Join(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.join(va, vb)?
            }
            Term::Antijoin(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                self.antijoin(va, vb)?
            }
            Term::Union(a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                if va.schema() != vb.schema() {
                    return Err(MuraError::SchemaMismatch {
                        left: va.schema().clone(),
                        right: vb.schema().clone(),
                        context: "union",
                    });
                }
                match (va, vb) {
                    (DVal::Repl(x), DVal::Repl(y)) => DVal::Repl(Arc::new(x.union(&y))),
                    (x, y) => {
                        let dx = x.into_dist(&self.cluster);
                        let dy = y.into_dist(&self.cluster);
                        DVal::Dist(dx.union(&dy, &self.cluster)?)
                    }
                }
            }
            Term::Fix(x, body) => DVal::Dist(self.eval_fixpoint(term, *x, body)?),
        };
        self.charge(out.len(), out.schema().arity())?;
        Ok(out)
    }

    fn check_rename(&self, schema: &Schema, from: Sym, to: Sym) -> Result<()> {
        if !schema.contains(from) {
            return Err(MuraError::UnknownColumn {
                column: from,
                schema: schema.clone(),
                context: "rename",
            });
        }
        if schema.rename(from, to).is_none() {
            return Err(MuraError::RenameCollision { from, to, schema: schema.clone() });
        }
        Ok(())
    }

    fn join(&mut self, a: DVal, b: DVal) -> Result<DVal> {
        Ok(match (a, b) {
            (DVal::Repl(x), DVal::Repl(y)) => DVal::Repl(Arc::new(x.join(&y))),
            // A replicated side joins locally on every worker (the
            // broadcast was already charged when the value was created).
            (DVal::Dist(d), DVal::Repl(r)) | (DVal::Repl(r), DVal::Dist(d)) => {
                DVal::Dist(d.join_local(&r, &self.cluster)?)
            }
            (DVal::Dist(x), DVal::Dist(y)) => {
                let common = x.schema().intersection(y.schema());
                let (small, big) = if x.len() <= y.len() { (&x, &y) } else { (&y, &x) };
                if small.len() <= self.config.broadcast_threshold || common.is_empty() {
                    let rel = small.collect();
                    self.cluster.broadcast_rel(&rel)?;
                    DVal::Dist(big.join_local(&rel, &self.cluster)?)
                } else {
                    DVal::Dist(x.join_shuffle(&y, &self.cluster)?)
                }
            }
        })
    }

    fn antijoin(&mut self, a: DVal, b: DVal) -> Result<DVal> {
        Ok(match (a, b) {
            (DVal::Repl(x), DVal::Repl(y)) => DVal::Repl(Arc::new(x.antijoin(&y))),
            (DVal::Dist(d), DVal::Repl(r)) => DVal::Dist(d.antijoin_local(&r, &self.cluster)?),
            (DVal::Repl(x), DVal::Dist(y)) => {
                let dx = DistRel::from_relation(&x, &self.cluster);
                self.antijoin(DVal::Dist(dx), DVal::Dist(y))?
            }
            (DVal::Dist(x), DVal::Dist(y)) => {
                let common = x.schema().intersection(y.schema());
                if y.len() <= self.config.broadcast_threshold || common.is_empty() {
                    let rel = y.collect();
                    self.cluster.broadcast_rel(&rel)?;
                    DVal::Dist(x.antijoin_local(&rel, &self.cluster)?)
                } else {
                    DVal::Dist(x.antijoin_shuffle(&y, &self.cluster)?)
                }
            }
        })
    }

    // ------------------------------------------------------------- tracing

    /// Allocates the id of the next fixpoint for trace events.
    fn trace_fixpoint(&self) -> u32 {
        self.sink.as_ref().map_or(0, |s| s.next_fixpoint())
    }

    /// Baseline for a traced window; `None` when tracing is off, so the
    /// untraced cost is a single `Option` check.
    fn probe(&self) -> Option<Probe> {
        self.sink.as_ref().map(|s| Probe {
            comm: self.cluster.metrics().snapshot(),
            kernel: kernel_stats().snapshot(),
            faults: self.cluster.fault().snapshot().injected(),
            t_us: s.now_us(),
        })
    }

    /// Like [`Self::probe`], but only at [`TraceLevel::Superstep`].
    fn probe_superstep(&self) -> Option<Probe> {
        if self.sink.as_deref().is_some_and(|s| s.superstep_enabled()) {
            self.probe()
        } else {
            None
        }
    }

    /// Records `ev` carrying the comm/kernel/fault deltas accumulated since
    /// `probe` and the window's wall time. No-op when `probe` is `None`.
    fn record_window(&self, probe: &Option<Probe>, mut ev: TraceEvent) {
        let (Some(sink), Some(p)) = (self.sink.as_deref(), probe.as_ref()) else { return };
        let comm = self.cluster.metrics().snapshot().since(&p.comm);
        let kernel = kernel_stats().snapshot().since(&p.kernel);
        ev.shuffles = comm.shuffles;
        ev.rows_shuffled = comm.rows_shuffled;
        ev.broadcasts = comm.broadcasts;
        ev.rows_broadcast = comm.rows_broadcast;
        ev.wire_exchange_bytes = comm.wire_exchange_bytes;
        ev.index_builds = kernel.index_builds + kernel.key_index_builds;
        ev.join_probes = kernel.join_probes;
        ev.antijoin_probes = kernel.antijoin_probes;
        ev.faults = self.cluster.fault().snapshot().injected().saturating_sub(p.faults);
        ev.t_us = p.t_us;
        ev.dur_us = sink.now_us().saturating_sub(p.t_us);
        sink.record(ev);
    }

    /// Records a point event (fixpoint start/end, recovery): timestamped
    /// but without a counter window.
    fn record_point(&self, mut ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            ev.t_us = sink.now_us();
            sink.record(ev);
        }
    }

    /// Publishes `(fixpoint, superstep)` into the wire trace context so
    /// data-plane frames sent by subsequent exchanges/broadcasts carry
    /// the position that caused them. No-op when tracing is off.
    fn set_trace_step(&self, fixpoint: u32, superstep: u32) {
        let Some(sink) = self.sink.as_deref() else { return };
        self.cluster.set_trace_ctx(TraceCtx {
            trace_id: sink.trace_id(),
            query_id: self.config.query_id,
            fixpoint,
            superstep,
            level: sink.level() as u8,
        });
    }

    /// Drains worker-side spans (process backend) into the coordinator
    /// sink as clock-aligned worker-lane events. No-op when tracing is
    /// off or the backend keeps no remote spans (the simulator).
    fn flush_worker_trace(&self) {
        let Some(sink) = self.sink.as_deref() else { return };
        let (events, dropped) =
            self.cluster.backend().flush_trace(sink.trace_id(), sink.start_instant());
        for ev in events {
            sink.record(ev);
        }
        sink.add_dropped(dropped);
    }

    // ------------------------------------------------------------ fixpoint

    fn eval_fixpoint(&mut self, fix_term: &Term, x: Sym, body: &Term) -> Result<DistRel> {
        // The structural key ties this `Fix` subterm to captured totals and
        // resume state; only computed when either feature is on.
        let key = (self.config.capture_fixpoints || self.config.resume.is_some())
            .then(|| mura_core::term_key(fix_term));
        let resume: Option<FixResume> =
            key.and_then(|k| self.config.resume.as_ref().and_then(|m| m.get(&k))).cloned();
        let (consts, recs) = decompose_fixpoint(x, body)?;
        // Constant part.
        let mut seed: Option<DVal> = None;
        for c in &consts {
            let v = self.eval(c)?;
            seed = Some(match seed {
                None => v,
                Some(s) => {
                    if s.schema() != v.schema() {
                        return Err(MuraError::SchemaMismatch {
                            left: s.schema().clone(),
                            right: v.schema().clone(),
                            context: "fixpoint constant part",
                        });
                    }
                    let ds = s.into_dist(&self.cluster);
                    let dv = v.into_dist(&self.cluster);
                    DVal::Dist(ds.union(&dv, &self.cluster)?)
                }
            });
        }
        let seed = seed.expect("decompose guarantees a constant part").into_dist(&self.cluster);
        let seed = seed.distinct(&self.cluster)?;
        if recs.is_empty() {
            self.capture_total(key, &seed)?;
            return Ok(seed);
        }
        // Fold the (possibly changed) seed into the maintained state:
        // acc₀ = acc ∪ seed ∪ delta and delta₀ = delta ∪ (seed \ acc), so
        // the drivers below iterate only over what the mutation could have
        // changed while the accumulator already holds everything known.
        let initial: Option<(Relation, Relation)> = match resume {
            Some(r) => {
                let seed_rel = seed.collect();
                if seed_rel.schema() != r.acc.schema() || seed_rel.schema() != r.delta.schema() {
                    return Err(MuraError::SchemaMismatch {
                        left: seed_rel.schema().clone(),
                        right: r.acc.schema().clone(),
                        context: "fixpoint resume state",
                    });
                }
                let mut delta0 = r.delta.clone();
                for row in seed_rel.iter() {
                    if !r.acc.contains(row) {
                        delta0.insert(row.clone());
                    }
                }
                let mut acc0 = r.acc;
                for row in delta0.iter() {
                    // acc ∪ seed ∪ delta = acc ∪ delta₀ (seed rows outside
                    // acc were just folded into delta₀).
                    acc0.insert(row.clone());
                }
                self.charge(acc0.len() + delta0.len(), acc0.schema().arity())?;
                Some((acc0, delta0))
            }
            None => None,
        };
        // Hoist loop invariants: x-free subterms of the recursive branches
        // are evaluated once and bound to fresh variables.
        let recs: Vec<Term> = {
            let mut hoisted = Vec::with_capacity(recs.len());
            for r in &recs {
                hoisted.push(self.hoist(r, x)?);
            }
            hoisted
        };
        // Plan selection (§IV-B c): stable column → P_plw, else P_gld.
        let mut env = self.type_env();
        let stable = stable_columns(x, body, &mut env)?;
        let out = match self.config.plan {
            FixpointPlan::Auto if !stable.is_empty() => {
                self.stats.plw_fixpoints += 1;
                self.eval_plw(x, seed, &recs, &stable, initial)?
            }
            FixpointPlan::ForcePlw => {
                self.stats.plw_fixpoints += 1;
                self.eval_plw(x, seed, &recs, &stable, initial)?
            }
            FixpointPlan::ForceAsync => self.eval_async_plan(x, seed, &recs, initial)?,
            _ => {
                self.stats.gld_fixpoints += 1;
                self.eval_gld(x, seed, &recs, initial)?
            }
        };
        self.capture_total(key, &out)?;
        Ok(out)
    }

    /// Collects `rel` into [`ExecStats::fix_totals`] under `key` when
    /// capture is enabled. The driver-side copy is charged against the byte
    /// budget like any other materialized state.
    fn capture_total(&mut self, key: Option<u64>, rel: &DistRel) -> Result<()> {
        let Some(k) = key else { return Ok(()) };
        if !self.config.capture_fixpoints {
            return Ok(());
        }
        let total = rel.collect();
        self.budget
            .charge_bytes(mura_core::rel_bytes(total.len() as u64, total.schema().arity()))?;
        self.stats.fix_totals.get_or_insert_with(FxHashMap::default).insert(k, total);
        Ok(())
    }

    /// `P_async`: barrier-free delta exchange (see [`crate::asyncfix`]).
    /// Like `P_plw`, workers need local copies of the loop invariants.
    ///
    /// Recovery: an asynchronous computation has no consistent mid-run
    /// snapshot to checkpoint, so a retryable failure restarts the whole
    /// fixpoint from its seed (bounded by
    /// [`RecoveryPolicy::max_restores`]). The fault site is pinned across
    /// attempts, so afflicted workers heal after
    /// [`FaultConfig::failures_per_site`] attempts and the restart loop
    /// terminates deterministically.
    fn eval_async_plan(
        &mut self,
        x: Sym,
        seed: DistRel,
        recs: &[Term],
        initial: Option<(Relation, Relation)>,
    ) -> Result<DistRel> {
        let fx = self.trace_fixpoint();
        self.set_trace_step(fx, 0);
        let mut start_ev = TraceEvent::new(EventKind::FixpointStart, fx, PlanKind::Async);
        start_ev.delta_rows = seed.len() as u64;
        self.record_point(start_ev);
        let window = self.probe();
        let mut recs_local = Vec::with_capacity(recs.len());
        for r in recs {
            recs_local.push(self.resolve_to_constants(r, x)?);
        }
        self.record_window(&window, TraceEvent::new(EventKind::Setup, fx, PlanKind::Async));
        self.stats.fixpoint_iterations += 1;
        let site = self.cluster.fault().next_site();
        let mut attempt: u32 = 0;
        loop {
            match crate::asyncfix::eval_async_at(
                &seed,
                &recs_local,
                x,
                &self.cluster,
                &self.budget,
                site,
                attempt,
                initial.as_ref(),
            ) {
                Ok(out) => {
                    self.flush_worker_trace();
                    let mut end_ev = TraceEvent::new(EventKind::FixpointEnd, fx, PlanKind::Async);
                    end_ev.delta_rows = out.len() as u64;
                    self.record_point(end_ev);
                    return Ok(out);
                }
                Err(e) if e.is_retryable() => {
                    if attempt >= self.config.recovery.max_restores {
                        return Err(e);
                    }
                    // A cancelled or out-of-budget query must not restart.
                    self.budget.check()?;
                    attempt += 1;
                    self.cluster.fault().record_full_restart(seed.len() as u64);
                    let mut ev = TraceEvent::new(EventKind::Recovery, fx, PlanKind::Async);
                    ev.recovery = RecoveryKind::Restart;
                    self.record_point(ev);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Replaces maximal `x`-free subterms by fresh bound variables holding
    /// their (once-)evaluated value.
    fn hoist(&mut self, t: &Term, x: Sym) -> Result<Term> {
        if !t.has_free_var(x) {
            let v = self.eval(t)?;
            let name = self.fresh("inv");
            self.bound.insert(name, v);
            return Ok(Term::Var(name));
        }
        Ok(match t {
            Term::Var(_) | Term::Cst(_) => t.clone(),
            Term::Filter(ps, inner) => Term::Filter(ps.clone(), Box::new(self.hoist(inner, x)?)),
            Term::Rename(a, b, inner) => Term::Rename(*a, *b, Box::new(self.hoist(inner, x)?)),
            Term::AntiProject(cs, inner) => {
                Term::AntiProject(cs.clone(), Box::new(self.hoist(inner, x)?))
            }
            Term::Join(a, b) => {
                Term::Join(Box::new(self.hoist(a, x)?), Box::new(self.hoist(b, x)?))
            }
            Term::Antijoin(a, b) => {
                Term::Antijoin(Box::new(self.hoist(a, x)?), Box::new(self.hoist(b, x)?))
            }
            Term::Union(a, b) => {
                Term::Union(Box::new(self.hoist(a, x)?), Box::new(self.hoist(b, x)?))
            }
            Term::Fix(_, _) => unreachable!("F_cond: x cannot occur under a nested fixpoint"),
        })
    }

    /// `P_gld`: the driver iterates; every step applies the prepared
    /// branch kernels partition-wise to the delta (loop invariants folded
    /// and indexed once, before the loop starts), and the union/difference
    /// with the accumulator forces a shuffle of the new tuples each
    /// iteration (paper §IV-A1).
    ///
    /// The driver is also the recovery supervisor for this plan: every
    /// [`ExecConfig::checkpoint_every`] supersteps it snapshots
    /// `(acc, delta, iteration)` (cheap: `Relation` is copy-on-write), and
    /// when a superstep fails with a retryable error after the cluster's
    /// task retries are exhausted, it rolls back to the last checkpoint —
    /// or restarts from the seed when none exists — up to
    /// [`RecoveryPolicy::max_restores`] times.
    fn eval_gld(
        &mut self,
        x: Sym,
        seed: DistRel,
        recs: &[Term],
        initial: Option<(Relation, Relation)>,
    ) -> Result<DistRel> {
        let fx = self.trace_fixpoint();
        self.set_trace_step(fx, 0);
        let mut start_ev = TraceEvent::new(EventKind::FixpointStart, fx, PlanKind::Gld);
        start_ev.delta_rows = seed.len() as u64;
        self.record_point(start_ev);
        // Resolve hoisted invariants to broadcast constants and compile the
        // branches once per fixpoint: constant folding and join-index
        // builds happen here, not inside the driver loop. Branch-wise
        // evaluation distributes over delta partitions because F_cond
        // guarantees linear recursion with `x` in monotone positions.
        let setup = self.probe();
        let mut recs_local = Vec::with_capacity(recs.len());
        for r in recs {
            recs_local.push(self.resolve_to_constants(r, x)?);
        }
        let prepared: Vec<Prepared<Relation>> =
            recs_local.iter().map(|r| prepare(r, x, seed.schema())).collect::<Result<_>>()?;
        // The cached build-side indexes and folded constants live for the
        // whole fixpoint: charge them against the byte budget up front.
        self.budget.charge_bytes(prepared.iter().map(|p| p.cached_bytes()).sum())?;
        self.record_window(&setup, TraceEvent::new(EventKind::Setup, fx, PlanKind::Gld));
        let checkpoint_every = self.config.checkpoint_every;
        // A resumed fixpoint starts from the maintained accumulator and
        // frontier instead of the seed; restarts must reset to the same
        // pair, or recovery would silently discard the maintained state.
        let (init_acc, init_delta) = match &initial {
            Some((a, d)) => {
                (DistRel::from_relation(a, &self.cluster), DistRel::from_relation(d, &self.cluster))
            }
            None => (seed.clone(), seed.clone()),
        };
        let mut acc = init_acc.clone();
        let mut delta = init_delta.clone();
        let mut iter: u64 = 0;
        let mut ckpt: Option<(DistRel, DistRel, u64)> = None;
        let mut restores: u32 = 0;
        while !delta.is_empty() {
            // Fires between supersteps and after every restore, so a
            // cancelled or out-of-budget query stops recovering immediately.
            self.budget.check()?;
            let window = self.probe_superstep();
            // Frames shuffled by this superstep carry its 1-based number.
            self.set_trace_step(fx, iter as u32 + 1);
            match self.gld_superstep(&prepared, &acc, &delta) {
                Ok(None) => {
                    let mut ev = TraceEvent::new(EventKind::Superstep, fx, PlanKind::Gld);
                    ev.iteration = iter + 1;
                    self.record_window(&window, ev);
                    break;
                }
                Ok(Some((a, d))) => {
                    let mut ev = TraceEvent::new(EventKind::Superstep, fx, PlanKind::Gld);
                    ev.iteration = iter + 1;
                    ev.delta_rows = d.len() as u64;
                    self.record_window(&window, ev);
                    acc = a;
                    delta = d;
                    iter += 1;
                    if checkpoint_every > 0 && iter.is_multiple_of(checkpoint_every) {
                        ckpt = Some((acc.clone(), delta.clone(), iter));
                        self.cluster.fault().record_checkpoint();
                    }
                }
                Err(e) if e.is_retryable() => {
                    if restores >= self.config.recovery.max_restores {
                        return Err(e);
                    }
                    restores += 1;
                    let recovery = match &ckpt {
                        Some((a, d, i)) => {
                            self.cluster
                                .fault()
                                .record_restore((a.len() + d.len()) as u64, iter - *i);
                            acc = a.clone();
                            delta = d.clone();
                            iter = *i;
                            RecoveryKind::Restore
                        }
                        None => {
                            self.cluster.fault().record_full_restart(seed.len() as u64);
                            acc = init_acc.clone();
                            delta = init_delta.clone();
                            iter = 0;
                            RecoveryKind::Restart
                        }
                    };
                    let mut ev = TraceEvent::new(EventKind::Recovery, fx, PlanKind::Gld);
                    ev.recovery = recovery;
                    ev.iteration = iter;
                    self.record_point(ev);
                }
                Err(e) => return Err(e),
            }
        }
        self.set_trace_step(fx, 0);
        self.flush_worker_trace();
        let mut end_ev = TraceEvent::new(EventKind::FixpointEnd, fx, PlanKind::Gld);
        end_ev.iteration = iter;
        end_ev.delta_rows = acc.len() as u64;
        self.record_point(end_ev);
        Ok(acc)
    }

    /// One `P_gld` superstep. Returns the next `(acc, delta)` pair, or
    /// `None` when the fixpoint is reached.
    fn gld_superstep(
        &mut self,
        prepared: &[Prepared<Relation>],
        acc: &DistRel,
        delta: &DistRel,
    ) -> Result<Option<(DistRel, DistRel)>> {
        self.stats.fixpoint_iterations += 1;
        kernel_stats().record_iteration();
        let mut new: Option<DistRel> = None;
        for p in prepared {
            let start = Instant::now();
            // Bypass stage-level reruns for the branch evaluation: a hard
            // task failure here escalates to the superstep supervisor,
            // which restores from the last checkpoint (or the seed).
            let site = self.cluster.fault().next_site();
            let parts = self
                .cluster
                .try_par_map_at(site, 0, delta.parts(), |_, part| eval_branch(p, part))?;
            kernel_stats().record_eval_time(start.elapsed());
            let schema = parts[0].schema().clone();
            let produced = DistRel::from_parts(schema, parts, None);
            self.charge(produced.len(), produced.schema().arity())?;
            new = Some(match new {
                None => produced,
                Some(n) => n.union(&produced, &self.cluster)?,
            });
        }
        let new = new.expect("at least one recursive branch");
        if new.schema() != acc.schema() {
            return Err(MuraError::SchemaMismatch {
                left: acc.schema().clone(),
                right: new.schema().clone(),
                context: "fixpoint recursive part",
            });
        }
        let new = new.minus(acc, &self.cluster)?;
        self.charge(new.len(), new.schema().arity())?;
        if new.is_empty() {
            return Ok(None);
        }
        Ok(Some((acc.union(&new, &self.cluster)?, new)))
    }

    /// `P_plw`: repartition the constant part (by the stable columns when
    /// available), broadcast the loop invariants, and let every worker run
    /// its own local fixpoint. With a stable-column partitioning the local
    /// results are disjoint, so no final distinct is needed (§IV-A2).
    fn eval_plw(
        &mut self,
        x: Sym,
        seed: DistRel,
        recs: &[Term],
        stable: &[Sym],
        initial: Option<(Relation, Relation)>,
    ) -> Result<DistRel> {
        let fx = self.trace_fixpoint();
        self.set_trace_step(fx, 0);
        let mut start_ev = TraceEvent::new(EventKind::FixpointStart, fx, PlanKind::Plw);
        start_ev.delta_rows = seed.len() as u64;
        self.record_point(start_ev);
        // The one-time repartition and the invariant broadcasts are the
        // *only* communication of `P_plw`; the setup window captures both,
        // so every later superstep event shows zero shuffled rows.
        let window = self.probe();
        let seed = if stable.is_empty() { seed } else { seed.repartition(stable, &self.cluster)? };
        // Resumed state is partitioned exactly like the seed (by the stable
        // columns when they exist), so every worker's local loop sees the
        // accumulator and frontier rows of its own key range. Without a
        // stable column the partitioning is arbitrary: local loops may
        // re-derive rows another partition already holds, which the final
        // distinct removes (the Prop. 3 general case).
        let resumed: Option<(DistRel, DistRel)> = match &initial {
            Some((a, d)) => {
                let part = |r: &Relation| -> Result<DistRel> {
                    let dr = DistRel::from_relation(r, &self.cluster);
                    if stable.is_empty() {
                        Ok(dr)
                    } else {
                        dr.repartition(stable, &self.cluster)
                    }
                };
                Some((part(a)?, part(d)?))
            }
            None => None,
        };
        // Resolve hoisted invariants to full local copies (broadcast).
        let mut recs_local = Vec::with_capacity(recs.len());
        for r in recs {
            recs_local.push(self.resolve_to_constants(r, x)?);
        }
        self.record_window(&window, TraceEvent::new(EventKind::Setup, fx, PlanKind::Plw));
        let resumed = resumed.as_ref().map(|(a, d)| (a, d));
        let parts = match self.config.local_engine {
            LocalEngine::SetRdd => {
                self.run_plw_typed::<Relation>(&seed, &recs_local, x, fx, resumed)?
            }
            LocalEngine::Sorted => {
                self.run_plw_typed::<SortedRelation>(&seed, &recs_local, x, fx, resumed)?
            }
        };
        self.stats.fixpoint_iterations += 1; // the parallel local loops count once globally
        let schema = seed.schema().clone();
        let out = DistRel::from_parts(
            schema,
            parts,
            if stable.is_empty() { None } else { Some(stable.to_vec()) },
        );
        let out = if stable.is_empty() {
            // Prop. 3 general case: local fixpoints may overlap.
            out.distinct(&self.cluster)?
        } else {
            out
        };
        self.flush_worker_trace();
        let mut end_ev = TraceEvent::new(EventKind::FixpointEnd, fx, PlanKind::Plw);
        end_ev.delta_rows = out.len() as u64;
        self.record_point(end_ev);
        Ok(out)
    }

    /// Runs the per-worker local loops of `P_plw` with one engine type.
    /// The branches are prepared **once per fixpoint** — constant folding
    /// and join-index builds are shared by every worker, so `index_builds`
    /// counts fixpoints, not workers or iterations.
    ///
    /// Every worker loop runs supervised (see
    /// [`local_fixpoint_supervised`]): per-iteration fault injection, local
    /// checkpoints, and in-loop restore/restart recovery. All workers of
    /// one fixpoint share one fault site, allocated driver-side.
    fn run_plw_typed<R: LocalRel>(
        &self,
        seed: &DistRel,
        recs: &[Term],
        x: Sym,
        fx: u32,
        resumed: Option<(&DistRel, &DistRel)>,
    ) -> Result<Vec<Relation>> {
        let prepared: Vec<Prepared<R>> =
            recs.iter().map(|r| prepare(r, x, seed.schema())).collect::<Result<_>>()?;
        // Shared by every worker, charged once per fixpoint.
        self.budget.charge_bytes(prepared.iter().map(|p| p.cached_bytes()).sum())?;
        let budget = &self.budget;
        let fault = self.cluster.fault();
        let loop_site = fault.next_site();
        let recovery = *self.cluster.recovery();
        let checkpoint_every = self.config.checkpoint_every;
        let trace = self.sink.as_deref();
        self.cluster.try_par_map(seed.parts(), |w, part| {
            let ctx = LoopCtx {
                budget,
                fault,
                site: loop_site,
                worker: w,
                recovery,
                checkpoint_every,
                trace,
                fixpoint: fx,
            };
            // This worker's slice of the maintained accumulator/frontier,
            // co-partitioned with the seed above.
            let initial = resumed.map(|(a, d)| (&a.parts()[w], &d.parts()[w]));
            local_fixpoint_supervised(part, &prepared, &ctx, initial)
        })
    }

    /// Replaces hoisted variables by broadcast constant relations inside a
    /// recursive branch (for worker-local execution).
    fn resolve_to_constants(&mut self, t: &Term, x: Sym) -> Result<Term> {
        Ok(match t {
            Term::Var(v) if *v == x => t.clone(),
            Term::Var(v) => {
                let val = self.bound.get(v).cloned().ok_or(MuraError::UnboundVariable(*v))?;
                let rel = match val {
                    DVal::Repl(r) => r,
                    DVal::Dist(d) => {
                        // Workers need the full relation locally: broadcast.
                        let rel = Arc::new(d.collect());
                        self.cluster.broadcast_rel(&rel)?;
                        let repl = DVal::Repl(rel.clone());
                        self.bound.insert(*v, repl);
                        rel
                    }
                };
                Term::Cst(rel)
            }
            Term::Cst(_) => t.clone(),
            Term::Filter(ps, inner) => {
                Term::Filter(ps.clone(), Box::new(self.resolve_to_constants(inner, x)?))
            }
            Term::Rename(a, b, inner) => {
                Term::Rename(*a, *b, Box::new(self.resolve_to_constants(inner, x)?))
            }
            Term::AntiProject(cs, inner) => {
                Term::AntiProject(cs.clone(), Box::new(self.resolve_to_constants(inner, x)?))
            }
            Term::Join(a, b) => Term::Join(
                Box::new(self.resolve_to_constants(a, x)?),
                Box::new(self.resolve_to_constants(b, x)?),
            ),
            Term::Antijoin(a, b) => Term::Antijoin(
                Box::new(self.resolve_to_constants(a, x)?),
                Box::new(self.resolve_to_constants(b, x)?),
            ),
            Term::Union(a, b) => Term::Union(
                Box::new(self.resolve_to_constants(a, x)?),
                Box::new(self.resolve_to_constants(b, x)?),
            ),
            Term::Fix(_, _) => {
                return Err(MuraError::Other("nested fixpoint must be hoisted before P_plw".into()))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mura_core::eval as eval_central;

    /// The paper's Fig. 2 graph.
    fn paper_db() -> (Database, Term) {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        let m = db.intern("m");
        let x = db.intern("X");
        let e = db.insert_relation(
            "E",
            Relation::from_pairs(
                src,
                dst,
                [
                    (1, 2),
                    (1, 4),
                    (10, 11),
                    (10, 13),
                    (2, 3),
                    (4, 5),
                    (11, 5),
                    (13, 12),
                    (3, 6),
                    (5, 6),
                ],
            ),
        );
        let s = db.insert_relation(
            "S",
            Relation::from_pairs(src, dst, [(1, 2), (1, 4), (10, 11), (10, 13)]),
        );
        let step = Term::var(x).rename(dst, m).join(Term::var(e).rename(src, m)).antiproject(m);
        let term = Term::var(s).union(step).fix(x);
        (db, term)
    }

    fn run(plan: FixpointPlan, engine: LocalEngine) -> (Relation, ExecStats, crate::CommSnapshot) {
        let (db, term) = paper_db();
        let config = ExecConfig { plan, local_engine: engine, ..Default::default() };
        let mut ev = DistEvaluator::new(&db, config);
        let rel = ev.eval_collect(&term).unwrap();
        let stats = ev.stats().clone();
        let comm = ev.cluster().metrics().snapshot();
        (rel, stats, comm)
    }

    #[test]
    fn all_plans_match_centralized() {
        let (db, term) = paper_db();
        let expected = eval_central(&term, &db).unwrap();
        for plan in [
            FixpointPlan::Auto,
            FixpointPlan::ForceGld,
            FixpointPlan::ForcePlw,
            FixpointPlan::ForceAsync,
        ] {
            for engine in [LocalEngine::SetRdd, LocalEngine::Sorted] {
                let (got, _, _) = run(plan, engine);
                assert_eq!(
                    got.sorted_rows(),
                    expected.sorted_rows(),
                    "{plan:?}/{engine:?} diverged"
                );
            }
        }
    }

    #[test]
    fn auto_selects_plw_for_stable_fixpoint() {
        let (_, stats, _) = run(FixpointPlan::Auto, LocalEngine::SetRdd);
        assert_eq!(stats.plw_fixpoints, 1);
        assert_eq!(stats.gld_fixpoints, 0);
    }

    #[test]
    fn plw_shuffles_less_than_gld() {
        let (_, _, comm_plw) = run(FixpointPlan::ForcePlw, LocalEngine::SetRdd);
        let (_, _, comm_gld) = run(FixpointPlan::ForceGld, LocalEngine::SetRdd);
        assert!(
            comm_plw.shuffles < comm_gld.shuffles,
            "P_plw {comm_plw:?} must shuffle less than P_gld {comm_gld:?}"
        );
    }

    #[test]
    fn gld_counts_iterations() {
        let (_, stats, _) = run(FixpointPlan::ForceGld, LocalEngine::SetRdd);
        assert_eq!(stats.fixpoint_iterations, 3);
    }

    #[test]
    fn budget_aborts_distributed_eval() {
        let (db, term) = paper_db();
        let config = ExecConfig {
            limits: ResourceLimits { max_rows: Some(5), max_bytes: None, timeout: None },
            ..Default::default()
        };
        let mut ev = DistEvaluator::new(&db, config);
        assert!(matches!(ev.eval_collect(&term), Err(MuraError::ResourceExhausted { .. })));
    }

    #[test]
    fn same_generation_runs_gld_under_auto() {
        // No stable column → auto must choose P_gld.
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("R", Relation::from_pairs(src, dst, [(0, 1), (0, 2), (1, 3), (2, 4)]));
        let term = mura_ucrpq::suites::same_generation_term(&mut db, "R").unwrap();
        let expected = eval_central(&term, &db).unwrap();
        let mut ev = DistEvaluator::new(&db, ExecConfig::default());
        let got = ev.eval_collect(&term).unwrap();
        assert_eq!(got.sorted_rows(), expected.sorted_rows());
        assert_eq!(ev.stats().gld_fixpoints, 1);
        assert_eq!(ev.stats().plw_fixpoints, 0);
    }

    #[test]
    fn plw_without_stable_column_still_correct() {
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation(
            "R",
            Relation::from_pairs(src, dst, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 5)]),
        );
        let term = mura_ucrpq::suites::same_generation_term(&mut db, "R").unwrap();
        let expected = eval_central(&term, &db).unwrap();
        let config = ExecConfig { plan: FixpointPlan::ForcePlw, ..Default::default() };
        let mut ev = DistEvaluator::new(&db, config);
        let got = ev.eval_collect(&term).unwrap();
        assert_eq!(got.sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn nested_fixpoints_evaluate() {
        // (a+)∘(b+)-style nested term where the inner fixpoint is hoisted.
        let mut db = Database::new();
        let src = db.intern("src");
        let dst = db.intern("dst");
        db.insert_relation("a", Relation::from_pairs(src, dst, [(0, 1), (1, 2)]));
        db.insert_relation("b", Relation::from_pairs(src, dst, [(2, 3), (3, 4)]));
        let q = mura_ucrpq::parse_ucrpq("?x, ?y <- ?x a+/b+ ?y").unwrap();
        let term = mura_ucrpq::to_mura(&q, &mut db).unwrap();
        let expected = eval_central(&term, &db).unwrap();
        let mut ev = DistEvaluator::new(&db, ExecConfig::default());
        let got = ev.eval_collect(&term).unwrap();
        assert_eq!(got.sorted_rows(), expected.sorted_rows());
    }
}
