//! The simulated cluster: a worker pool plus shared communication metrics.
//!
//! Workers are real OS threads (scoped), so partition-parallel operators
//! genuinely run in parallel; "communication" is modeled as movement of
//! rows between partitions and is charged to [`CommStats`].

use crate::metrics::CommStats;
use std::sync::Arc;

/// A simulated Spark-like cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    workers: usize,
    metrics: Arc<CommStats>,
}

impl Cluster {
    /// A cluster with `workers` workers (the paper uses 4).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        Cluster { workers, metrics: Arc::new(CommStats::default()) }
    }

    /// Number of workers (= number of partitions of every dataset).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Shared communication counters.
    pub fn metrics(&self) -> &CommStats {
        &self.metrics
    }

    /// Runs `f(i, &items[i])` on every worker in parallel, collecting the
    /// results in worker order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        assert_eq!(items.len(), self.workers, "one item per worker expected");
        if self.workers == 1 {
            return vec![f(0, &items[0])];
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    s.spawn({
                        let f = &f;
                        move || f(i, item)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
    }
}

impl Default for Cluster {
    /// The paper's 4-worker setup.
    fn default() -> Self {
        Cluster::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let c = Cluster::new(4);
        let data = vec![1u64, 2, 3, 4];
        let out = c.par_map(&data, |i, x| (i, x * 10));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn single_worker_runs_inline() {
        let c = Cluster::new(1);
        let out = c.par_map(&[7u64], |_, x| x + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    #[should_panic(expected = "one item per worker")]
    fn wrong_partition_count_panics() {
        let c = Cluster::new(2);
        c.par_map(&[1], |_, x| *x);
    }

    #[test]
    fn metrics_shared_across_clones() {
        let c = Cluster::new(2);
        let c2 = c.clone();
        c.metrics().record_shuffle(5);
        assert_eq!(c2.metrics().snapshot().rows_shuffled, 5);
    }
}
